//! The `Accelerator` trait and the CPU reference backend.
//!
//! Every backend — CPU, quantum, oscillator, memcomputing — implements
//! [`Accelerator`]; the host runtime ([`crate::host`]) owns them as trait
//! objects and dispatches kernels. The CPU backend executes every kernel
//! with a conventional classical algorithm, so there is always a correct
//! (if slow) fallback and a von-Neumann baseline for every comparison.
//!
//! # Example
//!
//! ```
//! use accel::accelerator::{Accelerator, CpuBackend};
//! use accel::kernel::{Kernel, KernelResult};
//!
//! let mut cpu = CpuBackend::new(7);
//! let run = cpu.execute(&Kernel::Compare { x: 0.25, y: 0.75 })?;
//! match run.result {
//!     KernelResult::Distance(d) => assert!((d - 0.5).abs() < 1e-12),
//!     other => panic!("unexpected {other:?}"),
//! }
//! # Ok::<(), accel::AccelError>(())
//! ```

use crate::family::{registry, BackendProfile};
use crate::kernel::{CostEstimate, CostReport, Kernel, KernelExecution, KernelResult};
use crate::AccelError;
use mem::dpll::Dpll;
use quantum::dna::{edit_distance, kmer_profile};
use quantum::numtheory::trial_division;

/// A device that can execute some subset of kernels.
///
/// Object-safe so the host can hold heterogeneous backends, and `Send` so
/// the `runtime` crate's worker threads can own backend sets.
pub trait Accelerator: Send {
    /// A stable backend name for reports and errors.
    fn name(&self) -> &str;

    /// Whether this backend can execute the kernel.
    fn supports(&self, kernel: &Kernel) -> bool;

    /// Executes a kernel.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::Unsupported`] for unsupported kernels or a
    /// wrapped backend failure.
    fn execute(&mut self, kernel: &Kernel) -> Result<KernelExecution, AccelError>;

    /// Predicts the cost of executing `kernel` on this backend, *without*
    /// executing it.
    ///
    /// Returns `None` for kernels the backend does not support or has no
    /// cost model for; the planner ranks such backends last. Estimates
    /// must be pure functions of the kernel (no RNG, no mutable state) so
    /// planning stays deterministic.
    fn estimate(&self, _kernel: &Kernel) -> Option<CostEstimate> {
        None
    }

    /// Resets the backend's stochastic state to a deterministic seed.
    ///
    /// Concurrent serving dispatches jobs to whichever backend instance is
    /// free, so a backend that advances an internal RNG per execution would
    /// make job results depend on scheduling history. Reseeding before each
    /// execution pins every job's result to its own seed instead. The
    /// default is a no-op for backends with no stochastic state.
    fn reseed(&mut self, _seed: u64) {}
}

/// The classical (von Neumann) reference backend.
///
/// Cost model: a fixed 1 ns per abstract operation (a generously fast
/// classical core), so the *relative* scaling against the specialized
/// backends is what shows up in reports.
#[derive(Debug, Clone)]
pub struct CpuBackend {
    seed: u64,
    /// Seconds per abstract operation.
    pub seconds_per_op: f64,
    /// Modelled core power draw in watts, used for energy estimates. A
    /// conservative 1 W scalar-core budget: generous next to the paper's
    /// 3 mW figure for a single 32 nm CMOS comparison *block*, but the CPU
    /// here stands in for a whole general-purpose core, not one datapath.
    pub watts: f64,
}

impl CpuBackend {
    /// Creates a CPU backend with a deterministic seed for its stochastic
    /// fallbacks.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        CpuBackend {
            seed,
            seconds_per_op: 1e-9,
            watts: 1.0,
        }
    }

    /// The cost-relevant parameters of this backend, for registry-served
    /// families.
    fn profile(&self) -> BackendProfile {
        BackendProfile::Cpu {
            seconds_per_op: self.seconds_per_op,
            watts: self.watts,
        }
    }

    /// Predicted abstract operation count for `kernel` — the calibrated
    /// asymptotics of the classical algorithms in [`CpuBackend::execute`].
    fn predicted_ops(&self, kernel: &Kernel) -> f64 {
        match kernel {
            // Trial division probes odd candidates up to √n: ~√n/2 tries.
            Kernel::Factor { n } => (*n as f64).sqrt() / 2.0 + 1.0,
            // Linear scan: expected (N+1)/(M+1) probes before a hit.
            // Computed in f64 (capped) so absurd qubit counts estimate to a
            // huge-but-finite cost instead of overflowing a shift.
            Kernel::Search { n_qubits, marked } => {
                let space = ((*n_qubits).min(300) as f64).exp2();
                (space + 1.0) / (marked.len().max(1) as f64 + 1.0)
            }
            // Profile builds over both sequences plus dot products across
            // the 4^k k-mer space (capped as above).
            Kernel::DnaSimilarity { a, b, k } => {
                (a.len() + b.len()) as f64 + 3.0 * ((*k).min(150) as f64 * 2.0).exp2()
            }
            // DPLL on satisfiable planted instances stays near-polynomial:
            // roughly one unit of work per clause per √vars of depth.
            Kernel::SolveSat { formula } => {
                formula.len() as f64 * (1.0 + (formula.n_vars() as f64).sqrt())
            }
            // Subtract, abs, compare.
            Kernel::Compare { .. } => 3.0,
            // Registry families are estimated through their family entry
            // (see `estimate` below), never through this table.
            Kernel::Family(_) => 0.0,
        }
    }

    fn report(&self, result: KernelResult, operations: u64) -> KernelExecution {
        KernelExecution {
            result,
            cost: CostReport {
                device_seconds: operations as f64 * self.seconds_per_op,
                operations,
            },
        }
    }
}

impl Accelerator for CpuBackend {
    fn name(&self) -> &str {
        "cpu"
    }

    fn supports(&self, _kernel: &Kernel) -> bool {
        true
    }

    fn estimate(&self, kernel: &Kernel) -> Option<CostEstimate> {
        // Registry-served families carry their own per-profile cost model;
        // legacy families return None here and fall through to the native
        // asymptotics table (byte-identical to the pre-registry planner).
        if let Some(estimate) = registry()
            .family_of(kernel)
            .estimate(kernel, &self.profile())
        {
            return Some(estimate);
        }
        let seconds = self.predicted_ops(kernel) * self.seconds_per_op;
        Some(CostEstimate {
            device_seconds: seconds,
            energy_joules: seconds * self.watts,
        })
    }

    fn reseed(&mut self, seed: u64) {
        self.seed = seed;
    }

    fn execute(&mut self, kernel: &Kernel) -> Result<KernelExecution, AccelError> {
        match kernel {
            Kernel::Factor { n } => {
                let (factor, ops) = trial_division(*n);
                let f = factor.ok_or_else(|| {
                    AccelError::backend(
                        "cpu",
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidInput,
                            format!("{n} has no nontrivial factor"),
                        ),
                    )
                })?;
                Ok(self.report(KernelResult::Factors(f, n / f), ops))
            }
            Kernel::Search { n_qubits, marked } => {
                // Linear scan: expected N/2 probes; executed deterministically.
                let space = 1usize << n_qubits;
                let mut probes = 0u64;
                let mut found = None;
                for item in 0..space {
                    probes += 1;
                    if marked.contains(&item) {
                        found = Some(item);
                        break;
                    }
                }
                let item = found.ok_or_else(|| {
                    AccelError::backend(
                        "cpu",
                        std::io::Error::new(
                            std::io::ErrorKind::NotFound,
                            "no marked item in search space",
                        ),
                    )
                })?;
                Ok(self.report(KernelResult::Found(item), probes))
            }
            Kernel::DnaSimilarity { a, b, k } => {
                // Classical cosine similarity of k-mer profiles, squared to
                // match the quantum overlap² convention.
                let pa = kmer_profile(a, *k).map_err(|e| AccelError::backend("cpu", e))?;
                let pb = kmer_profile(b, *k).map_err(|e| AccelError::backend("cpu", e))?;
                let dot: f64 = pa.iter().zip(&pb).map(|(x, y)| x * y).sum();
                let na: f64 = pa.iter().map(|x| x * x).sum::<f64>().sqrt();
                let nb: f64 = pb.iter().map(|x| x * x).sum::<f64>().sqrt();
                let cos = dot / (na * nb);
                // Op count: profile builds + dot products, plus the edit
                // distance a classical pipeline would typically also run.
                let _ = edit_distance(&a[..a.len().min(16)], &b[..b.len().min(16)]);
                let ops = (a.len() + b.len() + 3 * pa.len()) as u64;
                Ok(self.report(KernelResult::Similarity(cos * cos), ops))
            }
            Kernel::SolveSat { formula } => {
                let result = Dpll::new(10_000_000).solve(formula);
                let ops = result.decisions + result.propagations;
                Ok(self.report(
                    KernelResult::SatSolution(result.solution.map(|a| a.to_bools())),
                    ops.max(1),
                ))
            }
            Kernel::Compare { x, y } => {
                let _ = self.seed;
                Ok(self.report(KernelResult::Distance((x - y).abs()), 3))
            }
            Kernel::Family(_) => {
                registry()
                    .family_of(kernel)
                    .execute(kernel, &self.profile(), self.seed)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem::generators::planted_3sat;

    #[test]
    fn cpu_supports_everything() {
        let cpu = CpuBackend::new(1);
        assert!(cpu.supports(&Kernel::Factor { n: 15 }));
        assert!(cpu.supports(&Kernel::Compare { x: 0.0, y: 1.0 }));
    }

    #[test]
    fn cpu_factors() {
        let mut cpu = CpuBackend::new(1);
        let run = cpu.execute(&Kernel::Factor { n: 91 }).unwrap();
        match run.result {
            KernelResult::Factors(p, q) => assert_eq!(p * q, 91),
            other => panic!("unexpected {other:?}"),
        }
        assert!(run.cost.operations > 0);
    }

    #[test]
    fn cpu_factor_of_prime_errors() {
        let mut cpu = CpuBackend::new(1);
        assert!(cpu.execute(&Kernel::Factor { n: 13 }).is_err());
    }

    #[test]
    fn cpu_search_scans_linearly() {
        let mut cpu = CpuBackend::new(1);
        let run = cpu
            .execute(&Kernel::Search {
                n_qubits: 8,
                marked: vec![200],
            })
            .unwrap();
        assert_eq!(run.result, KernelResult::Found(200));
        assert_eq!(run.cost.operations, 201);
    }

    #[test]
    fn cpu_solves_sat() {
        let inst = planted_3sat(15, 3.5, 2).unwrap();
        let mut cpu = CpuBackend::new(1);
        let run = cpu
            .execute(&Kernel::SolveSat {
                formula: inst.formula.clone(),
            })
            .unwrap();
        match run.result {
            KernelResult::SatSolution(Some(bits)) => {
                let a = mem::assignment::Assignment::from_bools(&bits);
                assert!(inst.formula.is_satisfied(&a));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cpu_dna_similarity_in_unit_interval() {
        let mut cpu = CpuBackend::new(1);
        let run = cpu
            .execute(&Kernel::DnaSimilarity {
                a: "ACGTACGT".into(),
                b: "ACGTTCGT".into(),
                k: 2,
            })
            .unwrap();
        match run.result {
            KernelResult::Similarity(s) => assert!((0.0..=1.0).contains(&s)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cost_scales_with_ops() {
        let cpu = CpuBackend::new(1);
        let r = cpu.report(KernelResult::Found(0), 1000);
        assert!((r.cost.device_seconds - 1e-6).abs() < 1e-18);
    }
}
