//! The specialized backends.
//!
//! * [`QuantumBackend`] — Shor factoring, Grover search, swap-test DNA
//!   similarity on the state-vector simulator, with device time from the
//!   micro-architecture timing model.
//! * [`OscillatorBackend`] — the calibrated coupled-oscillator distance
//!   primitive; device time is one readout window per comparison.
//! * [`MemBackend`] — the DMM SAT solver; device time is the simulated
//!   physical time `steps · dt`.
//! * [`WalkSatBackend`] — a stochastic-local-search SAT engine (WalkSAT/
//!   SKC); device time is flips at a pipelined flip cadence. Only part of
//!   [`portfolio_pool`], where it gives hedged dispatch a third SAT path
//!   to race against the DMM and the CPU's DPLL.
//!
//! # Example
//!
//! ```no_run
//! use accel::accelerator::Accelerator;
//! use accel::backends::MemBackend;
//! use accel::kernel::Kernel;
//! use mem::generators::planted_3sat;
//!
//! let inst = planted_3sat(20, 4.0, 1)?;
//! let mut backend = MemBackend::new(3);
//! let run = backend.execute(&Kernel::SolveSat { formula: inst.formula })?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::accelerator::Accelerator;
use crate::family::{registry, BackendProfile};
use crate::kernel::{CostEstimate, CostReport, Kernel, KernelExecution, KernelResult};
use crate::AccelError;
use mem::dmm::{DmmParams, DmmSolver};
use mem::walksat::{WalkSat, WalkSatParams};
use numerics::rng::SeedStream;
use osc::norms::{NormRegime, OscillatorDistance};
use quantum::microarch::TimingModel;
use quantum::{dna, grover, shor};

const QUANTUM_NAME: &str = "quantum";
const OSC_NAME: &str = "oscillator";
const MEM_NAME: &str = "memcomputing";
const WALKSAT_NAME: &str = "walksat";

/// Oscillator FAST block power: "0.936 mW, significantly smaller than
/// … 3 mW" for the 32 nm CMOS equivalent (paper §III; see
/// `osc::power` / `vision::energy` for the derivation from the circuit
/// model).
const OSC_BLOCK_WATTS: f64 = 0.936e-3;

/// Modelled quantum control-plane power (cryo drive + readout
/// electronics per active chip) for energy estimates.
const QUANTUM_CONTROL_WATTS: f64 = 25.0;

/// Modelled memcomputing crossbar power for energy estimates.
const MEM_CELL_WATTS: f64 = 10e-3;

/// Modelled seconds per WalkSAT variable flip: a dedicated local-search
/// pipeline evaluating break counts from incrementally maintained
/// occurrence lists, one flip per few cycles at a GHz-class clock.
const WALKSAT_FLIP_SECONDS: f64 = 2e-9;

/// Modelled WalkSAT engine power: a compact fixed-function datapath, far
/// below a full core but above the memcomputing crossbar.
const WALKSAT_ENGINE_WATTS: f64 = 0.2;

/// Builds the full heterogeneous pool — quantum, oscillator, memcomputing,
/// and the CPU fallback — in the priority order
/// [`crate::host::DispatchPolicy::PreferSpecialized`] expects.
///
/// This is the constructor the `runtime` crate's workers use: each worker
/// thread owns its own pool, so backends only need `Send`, not `Sync`.
///
/// # Errors
///
/// Propagates oscillator calibration failures.
pub fn standard_pool(
    seed: u64,
) -> Result<Vec<Box<dyn crate::accelerator::Accelerator>>, AccelError> {
    let mut seeds = SeedStream::new(seed);
    Ok(vec![
        Box::new(QuantumBackend::new(seeds.next_seed())),
        Box::new(OscillatorBackend::new()?),
        Box::new(MemBackend::new(seeds.next_seed())),
        Box::new(crate::accelerator::CpuBackend::new(seeds.next_seed())),
    ])
}

/// The SAT-portfolio pool: [`standard_pool`] plus a [`WalkSatBackend`]
/// between the DMM and the CPU, so hedged dispatch has three genuinely
/// different SAT paths to race — DMM dynamics, stochastic local search,
/// and systematic DPLL.
///
/// The standard pool's registration order (and therefore its
/// `PreferSpecialized` rankings and every seeded result derived from
/// them) is deliberately left untouched; serving configurations opt into
/// the portfolio explicitly when hedging is enabled.
///
/// Seed derivation for the backends shared with [`standard_pool`] uses
/// the same stream positions, so a job's result on those backends is
/// identical under either pool.
///
/// # Errors
///
/// Propagates oscillator calibration failures.
pub fn portfolio_pool(
    seed: u64,
) -> Result<Vec<Box<dyn crate::accelerator::Accelerator>>, AccelError> {
    let mut seeds = SeedStream::new(seed);
    let quantum = seeds.next_seed();
    let dmm = seeds.next_seed();
    let cpu = seeds.next_seed();
    let walksat = seeds.next_seed();
    Ok(vec![
        Box::new(QuantumBackend::new(quantum)),
        Box::new(OscillatorBackend::new()?),
        Box::new(MemBackend::new(dmm)),
        Box::new(WalkSatBackend::new(walksat)),
        Box::new(crate::accelerator::CpuBackend::new(cpu)),
    ])
}

/// The quantum accelerator (Fig. 2's stack over the state-vector chip).
#[derive(Debug, Clone)]
pub struct QuantumBackend {
    seeds: SeedStream,
    timing: TimingModel,
    /// Swap-test shots used for DNA similarity.
    pub dna_shots: usize,
}

impl QuantumBackend {
    /// Creates a quantum backend.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        QuantumBackend {
            seeds: SeedStream::new(seed),
            timing: TimingModel::default(),
            dna_shots: 500,
        }
    }

    fn gate_time(&self, ops: u64) -> f64 {
        // Coarse device-time model: every abstract quantum op at the
        // two-qubit latency.
        ops as f64 * self.timing.two_qubit_ns * 1e-9
    }

    /// Predicted gate count for `kernel`, mirroring the op accounting in
    /// [`Accelerator::execute`] but computed without touching the RNG.
    fn predicted_ops(&self, kernel: &Kernel) -> Option<f64> {
        match kernel {
            // Shor is dominated by modular exponentiation over ~2b control
            // bits: O(b³) two-qubit-equivalents per order-finding attempt,
            // and typically a couple of attempts before a good base.
            Kernel::Factor { n } => {
                let bits = (64 - n.leading_zeros()) as f64;
                Some(2.0 * 8.0 * bits.powi(3))
            }
            // Grover's iteration count is known in advance, so the gate
            // count is exactly the one `execute` reports.
            Kernel::Search { n_qubits, marked } => {
                let iterations = grover::optimal_iterations(*n_qubits, marked.len());
                Some((iterations * 2 * (n_qubits + 1)) as f64)
            }
            Kernel::DnaSimilarity { k, .. } => Some((self.dna_shots * 6 * k) as f64),
            _ => None,
        }
    }
}

impl Accelerator for QuantumBackend {
    fn name(&self) -> &str {
        QUANTUM_NAME
    }

    fn reseed(&mut self, seed: u64) {
        self.seeds.reseed(seed);
    }

    fn supports(&self, kernel: &Kernel) -> bool {
        matches!(
            kernel,
            Kernel::Factor { .. } | Kernel::Search { .. } | Kernel::DnaSimilarity { .. }
        )
    }

    fn estimate(&self, kernel: &Kernel) -> Option<CostEstimate> {
        let ops = self.predicted_ops(kernel)?;
        let mut seconds = ops * self.timing.two_qubit_ns * 1e-9;
        if let Kernel::DnaSimilarity { .. } = kernel {
            seconds += self.dna_shots as f64 * self.timing.measure_ns * 1e-9;
        }
        Some(CostEstimate {
            device_seconds: seconds,
            energy_joules: seconds * QUANTUM_CONTROL_WATTS,
        })
    }

    fn execute(&mut self, kernel: &Kernel) -> Result<KernelExecution, AccelError> {
        let mut rng = self.seeds.next_rng();
        match kernel {
            Kernel::Factor { n } => {
                let outcome = shor::factor(*n, &mut rng, 50)
                    .map_err(|e| AccelError::backend(QUANTUM_NAME, e))?;
                let ops = outcome.quantum_ops.max(1);
                Ok(KernelExecution {
                    result: KernelResult::Factors(outcome.factors.0, outcome.factors.1),
                    cost: CostReport {
                        device_seconds: self.gate_time(ops),
                        operations: ops,
                    },
                })
            }
            Kernel::Search { n_qubits, marked } => {
                let run = grover::search(*n_qubits, marked, &mut rng)
                    .map_err(|e| AccelError::backend(QUANTUM_NAME, e))?;
                // Oracle + diffusion per iteration, ~2(n+1) gates each.
                let ops = (run.iterations * 2 * (n_qubits + 1)) as u64;
                Ok(KernelExecution {
                    result: KernelResult::Found(run.found),
                    cost: CostReport {
                        device_seconds: self.gate_time(ops),
                        operations: ops,
                    },
                })
            }
            Kernel::DnaSimilarity { a, b, k } => {
                let s = dna::quantum_similarity(a, b, *k, self.dna_shots, &mut rng)
                    .map_err(|e| AccelError::backend(QUANTUM_NAME, e))?;
                // Per shot: 2k-qubit swap test ≈ 3·2k CSWAP-equivalents.
                let ops = (self.dna_shots * 6 * k) as u64;
                Ok(KernelExecution {
                    result: KernelResult::Similarity(s),
                    cost: CostReport {
                        device_seconds: self.gate_time(ops)
                            + self.dna_shots as f64 * self.timing.measure_ns * 1e-9,
                        operations: ops,
                    },
                })
            }
            other => Err(AccelError::Unsupported {
                backend: QUANTUM_NAME.into(),
                kernel: other.describe(),
            }),
        }
    }
}

/// The coupled-oscillator analog comparison backend.
#[derive(Debug, Clone)]
pub struct OscillatorBackend {
    distance: OscillatorDistance,
    /// Readout window time per comparison (seconds).
    window_seconds: f64,
}

impl OscillatorBackend {
    /// Calibrates an oscillator backend in the shallow-norm regime.
    ///
    /// # Errors
    ///
    /// Propagates calibration failures.
    pub fn new() -> Result<Self, AccelError> {
        let config = NormRegime::Shallow.config();
        let distance = OscillatorDistance::calibrate(config, 0.62, 0.02, 9)
            .map_err(|e| AccelError::backend(OSC_NAME, e))?;
        // One 32-cycle readout window at a ~20 MHz oscillation.
        let window_seconds = 32.0 / 20e6;
        Ok(OscillatorBackend {
            distance,
            window_seconds,
        })
    }

    /// The cost-relevant parameters of this backend, for registry-served
    /// families.
    fn profile(&self) -> BackendProfile {
        BackendProfile::Oscillator {
            window_seconds: self.window_seconds,
            block_watts: OSC_BLOCK_WATTS,
        }
    }
}

impl Accelerator for OscillatorBackend {
    fn name(&self) -> &str {
        OSC_NAME
    }

    fn supports(&self, kernel: &Kernel) -> bool {
        matches!(kernel, Kernel::Compare { .. })
            || registry()
                .family_of(kernel)
                .supports(kernel, &self.profile())
    }

    fn estimate(&self, kernel: &Kernel) -> Option<CostEstimate> {
        // Exactly one readout window per comparison — the one cost this
        // backend ever reports — at the paper's FAST block power.
        // Registry-served families bring their own per-profile cost model.
        match kernel {
            Kernel::Compare { .. } => Some(CostEstimate {
                device_seconds: self.window_seconds,
                energy_joules: self.window_seconds * OSC_BLOCK_WATTS,
            }),
            _ => registry()
                .family_of(kernel)
                .estimate(kernel, &self.profile()),
        }
    }

    fn execute(&mut self, kernel: &Kernel) -> Result<KernelExecution, AccelError> {
        match kernel {
            Kernel::Compare { x, y } => Ok(KernelExecution {
                result: KernelResult::Distance(
                    self.distance.distance(x.clamp(0.0, 1.0), y.clamp(0.0, 1.0)),
                ),
                cost: CostReport {
                    device_seconds: self.window_seconds,
                    operations: 1,
                },
            }),
            // The oscillator substrate is deterministic — no seed state.
            Kernel::Family(_) => registry()
                .family_of(kernel)
                .execute(kernel, &self.profile(), 0),
            other => Err(AccelError::Unsupported {
                backend: OSC_NAME.into(),
                kernel: other.describe(),
            }),
        }
    }
}

/// The digital-memcomputing optimization backend.
#[derive(Debug, Clone)]
pub struct MemBackend {
    seeds: SeedStream,
    solver: DmmSolver,
}

impl MemBackend {
    /// Creates a memcomputing backend.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        MemBackend {
            seeds: SeedStream::new(seed),
            solver: DmmSolver::new(DmmParams::default()),
        }
    }

    /// The cost-relevant parameters of this backend, for registry-served
    /// families.
    fn profile(&self) -> BackendProfile {
        BackendProfile::Mem {
            dt: self.solver.params().dt,
            cell_watts: MEM_CELL_WATTS,
        }
    }
}

impl Accelerator for MemBackend {
    fn name(&self) -> &str {
        MEM_NAME
    }

    fn reseed(&mut self, seed: u64) {
        self.seeds.reseed(seed);
    }

    fn supports(&self, kernel: &Kernel) -> bool {
        matches!(kernel, Kernel::SolveSat { .. })
            || registry()
                .family_of(kernel)
                .supports(kernel, &self.profile())
    }

    fn estimate(&self, kernel: &Kernel) -> Option<CostEstimate> {
        match kernel {
            Kernel::SolveSat { formula } => {
                // The DMM's trajectory length grows roughly linearly in
                // instance size on satisfiable planted formulas; predicted
                // device time is steps · dt at the 1 ns RC time unit.
                let steps = 50.0 * (formula.n_vars() as f64 + formula.len() as f64);
                let seconds = steps * self.solver.params().dt * 1e-9;
                Some(CostEstimate {
                    device_seconds: seconds,
                    energy_joules: seconds * MEM_CELL_WATTS,
                })
            }
            // Registry-served families bring their own per-profile model.
            _ => registry()
                .family_of(kernel)
                .estimate(kernel, &self.profile()),
        }
    }

    fn execute(&mut self, kernel: &Kernel) -> Result<KernelExecution, AccelError> {
        match kernel {
            Kernel::SolveSat { formula } => {
                let seed = self.seeds.next_seed();
                let outcome = self
                    .solver
                    .solve(formula, seed)
                    .map_err(|e| AccelError::backend(MEM_NAME, e))?;
                Ok(KernelExecution {
                    result: KernelResult::SatSolution(
                        outcome.solution.as_ref().map(|a| a.to_bools()),
                    ),
                    cost: CostReport {
                        // The DMM's "device time" is its simulated physical
                        // time, scaled to an RC time unit of 1 ns.
                        device_seconds: outcome.time * 1e-9,
                        operations: outcome.steps,
                    },
                })
            }
            Kernel::Family(_) => {
                let seed = self.seeds.next_seed();
                registry()
                    .family_of(kernel)
                    .execute(kernel, &self.profile(), seed)
            }
            other => Err(AccelError::Unsupported {
                backend: MEM_NAME.into(),
                kernel: other.describe(),
            }),
        }
    }
}

/// A stochastic-local-search SAT backend (WalkSAT/SKC).
///
/// Gives the dispatch layer a third SAT substrate with a cost profile
/// unlike either the DMM (continuous dynamics, strong on structured
/// instances) or DPLL (systematic, strong on small/unsatisfiable ones):
/// local search is cheap per step and excellent on underconstrained
/// satisfiable formulas, but gives up (`SatSolution(None)`) rather than
/// proving unsatisfiability. That asymmetry is exactly what hedged
/// portfolio dispatch exploits.
#[derive(Debug, Clone)]
pub struct WalkSatBackend {
    seeds: SeedStream,
    solver: WalkSat,
}

impl WalkSatBackend {
    /// Creates a WalkSAT backend.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        WalkSatBackend {
            seeds: SeedStream::new(seed),
            solver: WalkSat::new(WalkSatParams::default()),
        }
    }
}

impl Accelerator for WalkSatBackend {
    fn name(&self) -> &str {
        WALKSAT_NAME
    }

    fn reseed(&mut self, seed: u64) {
        self.seeds.reseed(seed);
    }

    fn supports(&self, kernel: &Kernel) -> bool {
        matches!(kernel, Kernel::SolveSat { .. })
    }

    fn estimate(&self, kernel: &Kernel) -> Option<CostEstimate> {
        match kernel {
            Kernel::SolveSat { formula } => {
                // Local search on satisfiable instances near the planted
                // ratio needs on the order of a few flips per variable per
                // clause before converging; predicted device time is that
                // flip count at the pipelined flip cadence.
                let flips = 8.0 * formula.n_vars() as f64 * formula.len() as f64;
                let seconds = flips * WALKSAT_FLIP_SECONDS;
                Some(CostEstimate {
                    device_seconds: seconds,
                    energy_joules: seconds * WALKSAT_ENGINE_WATTS,
                })
            }
            _ => None,
        }
    }

    fn execute(&mut self, kernel: &Kernel) -> Result<KernelExecution, AccelError> {
        match kernel {
            Kernel::SolveSat { formula } => {
                let seed = self.seeds.next_seed();
                let outcome = self.solver.solve(formula, seed);
                Ok(KernelExecution {
                    result: KernelResult::SatSolution(
                        outcome
                            .solution
                            .as_ref()
                            .map(mem::assignment::Assignment::to_bools),
                    ),
                    cost: CostReport {
                        device_seconds: outcome.flips.max(1) as f64 * WALKSAT_FLIP_SECONDS,
                        operations: outcome.flips.max(1),
                    },
                })
            }
            other => Err(AccelError::Unsupported {
                backend: WALKSAT_NAME.into(),
                kernel: other.describe(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem::generators::planted_3sat;

    #[test]
    fn quantum_backend_factors() {
        let mut q = QuantumBackend::new(1);
        let run = q.execute(&Kernel::Factor { n: 15 }).unwrap();
        match run.result {
            KernelResult::Factors(p, qf) => assert_eq!(p * qf, 15),
            other => panic!("unexpected {other:?}"),
        }
        assert!(run.cost.device_seconds > 0.0);
    }

    #[test]
    fn quantum_backend_searches() {
        let mut q = QuantumBackend::new(2);
        let run = q
            .execute(&Kernel::Search {
                n_qubits: 6,
                marked: vec![42],
            })
            .unwrap();
        assert_eq!(run.result, KernelResult::Found(42));
    }

    #[test]
    fn quantum_backend_rejects_sat() {
        let inst = planted_3sat(10, 3.0, 1).unwrap();
        let mut q = QuantumBackend::new(1);
        assert!(matches!(
            q.execute(&Kernel::SolveSat {
                formula: inst.formula
            }),
            Err(AccelError::Unsupported { .. })
        ));
    }

    #[test]
    fn mem_backend_solves_sat() {
        let inst = planted_3sat(15, 3.8, 4).unwrap();
        let mut m = MemBackend::new(3);
        let run = m
            .execute(&Kernel::SolveSat {
                formula: inst.formula.clone(),
            })
            .unwrap();
        match run.result {
            KernelResult::SatSolution(Some(bits)) => {
                let a = mem::assignment::Assignment::from_bools(&bits);
                assert!(inst.formula.is_satisfied(&a));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(run.cost.operations > 0);
    }

    #[test]
    fn oscillator_backend_compares() {
        let mut o = OscillatorBackend::new().unwrap();
        let near = o.execute(&Kernel::Compare { x: 0.5, y: 0.52 }).unwrap();
        let far = o.execute(&Kernel::Compare { x: 0.1, y: 0.9 }).unwrap();
        let (dn, df) = match (near.result, far.result) {
            (KernelResult::Distance(a), KernelResult::Distance(b)) => (a, b),
            other => panic!("unexpected {other:?}"),
        };
        assert!(df >= dn, "{dn} vs {df}");
    }

    #[test]
    fn support_matrices_disjoint() {
        let q = QuantumBackend::new(1);
        let m = MemBackend::new(1);
        let k = Kernel::Compare { x: 0.0, y: 0.0 };
        assert!(!q.supports(&k));
        assert!(!m.supports(&k));
    }

    #[test]
    fn walksat_backend_solves_sat_deterministically() {
        let inst = planted_3sat(15, 3.5, 9).unwrap();
        let kernel = Kernel::SolveSat {
            formula: inst.formula.clone(),
        };
        let mut w = WalkSatBackend::new(5);
        let run = w.execute(&kernel).unwrap();
        match run.result {
            KernelResult::SatSolution(Some(bits)) => {
                let a = mem::assignment::Assignment::from_bools(&bits);
                assert!(inst.formula.is_satisfied(&a));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(run.cost.device_seconds > 0.0);
        // Reseeding replays the identical search.
        let mut again = WalkSatBackend::new(999);
        w.reseed(1234);
        again.reseed(1234);
        assert_eq!(w.execute(&kernel).unwrap(), again.execute(&kernel).unwrap());
    }

    #[test]
    fn walksat_backend_only_speaks_sat() {
        let w = WalkSatBackend::new(1);
        assert!(!w.supports(&Kernel::Factor { n: 21 }));
        assert!(w.estimate(&Kernel::Factor { n: 21 }).is_none());
        let inst = planted_3sat(10, 3.0, 2).unwrap();
        let k = Kernel::SolveSat {
            formula: inst.formula,
        };
        assert!(w.supports(&k));
        let est = w.estimate(&k).unwrap();
        assert!(est.device_seconds > 0.0 && est.energy_joules > 0.0);
    }

    #[test]
    fn portfolio_pool_extends_the_standard_pool() {
        let standard: Vec<String> = standard_pool(7)
            .unwrap()
            .iter()
            .map(|b| b.name().to_string())
            .collect();
        let portfolio: Vec<String> = portfolio_pool(7)
            .unwrap()
            .iter()
            .map(|b| b.name().to_string())
            .collect();
        assert_eq!(
            standard,
            vec!["quantum", "oscillator", "memcomputing", "cpu"]
        );
        assert_eq!(
            portfolio,
            vec!["quantum", "oscillator", "memcomputing", "walksat", "cpu"]
        );
    }

    #[test]
    fn shared_backends_agree_across_pools() {
        // A reseeded job must produce identical bytes on the backends the
        // two pools share — hedging opt-in cannot silently change results.
        let inst = planted_3sat(12, 3.8, 6).unwrap();
        let kernel = Kernel::SolveSat {
            formula: inst.formula,
        };
        let mut std_pool = standard_pool(7).unwrap();
        let mut port_pool = portfolio_pool(7).unwrap();
        for name in ["memcomputing", "cpu"] {
            let a = std_pool.iter_mut().find(|b| b.name() == name).unwrap();
            let b = port_pool.iter_mut().find(|b| b.name() == name).unwrap();
            a.reseed(42);
            b.reseed(42);
            assert_eq!(a.execute(&kernel).unwrap(), b.execute(&kernel).unwrap());
        }
    }
}
