//! Kernel families: the open registry behind [`Kernel`].
//!
//! The paper's premise is a heterogeneous future — new compute substrates
//! and workloads keep arriving, and the host must absorb them without
//! being rebuilt. Historically `Kernel` was a closed enum, so every tier
//! (validation, canonicalization, cost model, planner, wire codec,
//! routing, lint) pattern-matched on it and a new workload meant editing
//! seven crates by hand. This module replaces those matches with a
//! registry of [`KernelFamily`] entries: one trait object per workload
//! family owning its
//!
//! * **stable wire tag** (see [`FAMILY_TAGS`]; append-only, frozen by
//!   rebootlint's family-tag registry),
//! * **validation** ([`KernelFamily::validate`]),
//! * **canonical form + two-level canonical key**
//!   ([`KernelFamily::canonicalize`], [`KernelFamily::canonical_key`] —
//!   the exact byte streams formerly hashed in `admission::canonical`),
//! * **cost model per backend class** ([`KernelFamily::estimate`] against
//!   a [`BackendProfile`]),
//! * **execution** on the backend classes it supports, and
//! * **wire body codec** for the protocol-v6 generic family frame
//!   ([`KernelFamily::encode_body`] / [`KernelFamily::decode_body`] and
//!   the result-side pair).
//!
//! The five legacy families (factor, search, DNA similarity, SAT, analog
//! compare) are registry entries whose canonical keys and wire frames are
//! **byte-identical** to the pre-registry enum code — `tests/family_registry.rs`
//! pins every observable against goldens captured before the refactor.
//! They keep their native v1 wire tags; only *new* families (coloring,
//! QUBO) travel in the generic family frame, which is why old peers keep
//! decoding old traffic unchanged.
//!
//! # The two new families
//!
//! * **Phase-dynamics vertex coloring** ([`ColoringSpec`], tag 6) — a
//!   graph is loaded onto the coupled-oscillator array
//!   (`osc::coloring::color_graph`); anti-phase dynamics push adjacent
//!   vertices apart and the phase clusters read out as color classes
//!   (Bonnin et al., *Coupled oscillator networks for von Neumann and
//!   non von Neumann computing*). Deterministic — no RNG anywhere in the
//!   oscillator path.
//! * **Ising/QUBO energy minimization** ([`QuboSpec`], tag 7) — minimize
//!   `x^T Q x + c^T x` over binary `x` on the digital-memcomputing
//!   machine (`mem::qubo::Qubo::minimize_dmm`), with a seeded
//!   greedy-descent CPU fallback.
//!
//! # Adding a family
//!
//! Implement [`KernelFamily`] for a unit struct, add a `Kernel::Family`
//! spec variant, append a `(tag, name)` row to [`FAMILY_TAGS`], register
//! the entry in [`FamilyRegistry::family_of`] and the `REGISTRY` entry
//! list, then bless the tag with `cargo run -p lint -- --bless-families`.
//! No other crate needs a new match: admission, the planner, the wire
//! codec, the router, and the server all go through the registry.

use crate::kernel::{
    CostEstimate, CostReport, InvalidKernel, Kernel, KernelClass, KernelExecution, KernelResult,
};
use crate::AccelError;
use mem::cnf::{Clause, Formula};
use mem::maxsat::MaxSatDmmParams;
use mem::qubo::Qubo;
use numerics::rng::{rng_from_seed, Rng};
use osc::coloring::{color_graph, ColoringConfig};
use std::collections::BTreeMap;

/// FNV-1a offset basis (the same constants the load generator uses for
/// its outcome digests).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Grid resolution for quantizing the analog compare operands inside the
/// coarse key: operands are snapped to a `2^-20` lattice, far finer than
/// the oscillator substrate's own noise floor.
const COMPARE_QUANTUM: f64 = (1u64 << 20) as f64;

/// Grid resolution for quantizing QUBO coefficients inside the coarse
/// key: a `2^-12` lattice buckets near-identical objective surfaces while
/// the exact half still separates them before any bytes are served.
const QUBO_QUANTUM: f64 = (1u64 << 12) as f64;

/// Serving cap on coloring vertices (the oscillator array size the cost
/// model is calibrated for; also the wire decoder's allocation bound).
pub const MAX_COLORING_VERTICES: usize = 1024;
/// Serving cap on coloring edges.
pub const MAX_COLORING_EDGES: usize = 1 << 16;
/// Serving cap on QUBO variables.
pub const MAX_QUBO_VARS: usize = 1024;
/// Serving cap on QUBO terms (each of the linear and quadratic lists).
pub const MAX_QUBO_TERMS: usize = 1 << 16;

/// Simulated integration window for one oscillator coloring run — the
/// `osc::coloring::ColoringConfig` default duration, restated here so the
/// a-priori estimate matches what execution will report.
const COLORING_SIM_SECONDS: f64 = 4e-6;

/// The append-only wire-tag table: one row per registered family,
/// `(stable wire tag, family name)`.
///
/// Tags 1–5 are the legacy families (their canonical-key domain bytes,
/// now doubling as registry tags); they keep their native v1 wire frames.
/// Tags ≥ 6 are registry-born families served through the v6 generic
/// family frame. Rows are append-only and duplicate-free — rebootlint's
/// family-tag-freeze rule pins this table against
/// `crates/lint/family_tags.registry` and fails the build on any
/// mutation that is not a blessed append.
pub const FAMILY_TAGS: &[(u16, &str)] = &[
    (1, "factor"),
    (2, "search"),
    (3, "dna-similarity"),
    (4, "solve-sat"),
    (5, "compare"),
    (6, "coloring"),
    (7, "qubo"),
];

/// The two-level canonical identity of a kernel. See
/// `admission::canonical` for why both halves must match before a cached
/// result may be served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CanonicalKey {
    /// Coarse identity: FNV-1a over the canonical form after stable
    /// variable renumbering (SAT) and parameter quantization (compare,
    /// QUBO).
    pub key: u64,
    /// Exact identity: FNV-1a over the canonical form verbatim,
    /// including variable count and raw `f64` bit patterns.
    pub exact: u64,
}

impl CanonicalKey {
    /// A single `u64` mixing both halves, for placing the kernel on a
    /// consistent-hash ring.
    ///
    /// Routers shard by this value so duplicate submissions of the same
    /// canonical kernel land on the same shard — and therefore on the same
    /// shard-local result cache. The coarse half alone would suffice for
    /// correctness (both halves must still match inside the cache), but
    /// folding in the exact half spreads α-equivalent-but-distinct kernels
    /// across shards instead of piling a whole coarse bucket onto one.
    #[must_use]
    pub fn routing_hash(&self) -> u64 {
        let mut h = Fnv::new();
        h.u64(self.key);
        h.u64(self.exact);
        h.finish()
    }
}

/// Incremental FNV-1a over a structured byte stream.
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.byte(b);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_be_bytes());
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// A registry-served workload: the spec payload of [`Kernel::Family`].
#[derive(Debug, Clone, PartialEq)]
pub enum FamilyKernel {
    /// Phase-dynamics vertex coloring on the oscillator array.
    Coloring(ColoringSpec),
    /// Ising/QUBO energy minimization on the DMM.
    Qubo(QuboSpec),
}

/// A vertex-coloring instance for the phase-dynamics family.
#[derive(Debug, Clone, PartialEq)]
pub struct ColoringSpec {
    /// Number of vertices (oscillators).
    pub n_vertices: usize,
    /// Number of color classes to cluster the phases into.
    pub n_colors: usize,
    /// Undirected edges as vertex-index pairs.
    pub edges: Vec<(usize, usize)>,
}

/// A QUBO instance: minimize `Σ c_i·x_i + Σ q_ij·x_i·x_j` over binary x.
#[derive(Debug, Clone, PartialEq)]
pub struct QuboSpec {
    /// Number of binary variables.
    pub n_vars: usize,
    /// Linear terms `(i, c_i)`.
    pub linear: Vec<(usize, f64)>,
    /// Quadratic terms `(i, j, q_ij)` with `i != j`.
    pub quadratic: Vec<(usize, usize, f64)>,
}

/// The result payload of a registry-served family execution.
#[derive(Debug, Clone, PartialEq)]
pub enum FamilyResult {
    /// A coloring: one color index per vertex, plus the number of edges
    /// whose endpoints ended up in the same phase cluster.
    Coloring {
        /// Color class per vertex.
        colors: Vec<usize>,
        /// Monochromatic (conflicting) edges.
        conflicts: u64,
    },
    /// A QUBO assignment and its objective value.
    Qubo {
        /// The binary assignment.
        bits: Vec<bool>,
        /// The objective value at `bits`.
        energy: f64,
    },
}

/// The cost-relevant parameters of one backend *class*, handed to the
/// registry so family entries can estimate and execute without depending
/// on concrete backend types.
///
/// Legacy families return `None`/`false` for every profile — their
/// backends keep their native execution arms (byte-identity with the
/// pre-registry code). New families are served exclusively through these
/// profiles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BackendProfile {
    /// The classical reference core.
    Cpu {
        /// Seconds per abstract operation.
        seconds_per_op: f64,
        /// Modelled core power draw in watts.
        watts: f64,
    },
    /// The coupled-oscillator array.
    Oscillator {
        /// Readout window time per measurement (seconds).
        window_seconds: f64,
        /// Per-block power at the paper's FAST figure (watts).
        block_watts: f64,
    },
    /// The digital-memcomputing crossbar.
    Mem {
        /// Integration step in RC time units.
        dt: f64,
        /// Modelled crossbar power (watts).
        cell_watts: f64,
    },
}

impl BackendProfile {
    /// The backend name this profile describes, for error reports.
    #[must_use]
    pub fn backend_name(&self) -> &'static str {
        match self {
            BackendProfile::Cpu { .. } => "cpu",
            BackendProfile::Oscillator { .. } => "oscillator",
            BackendProfile::Mem { .. } => "memcomputing",
        }
    }
}

/// Errors from the generic family frame's body codecs.
///
/// The wire crate maps these onto `WireError`; they exist separately so
/// `accel` does not depend on `wire`.
#[derive(Debug, Clone, PartialEq)]
pub enum FamilyCodecError {
    /// No registered family carries this wire tag.
    UnknownTag {
        /// The unrecognized tag.
        tag: u16,
    },
    /// The family is framed natively (legacy v1 tags), not generically.
    LegacyFraming {
        /// Family name.
        family: &'static str,
    },
    /// The body ended before a field was complete.
    Truncated {
        /// What was being decoded.
        context: &'static str,
    },
    /// A count or size exceeds the family's serving cap.
    TooLarge {
        /// What was being decoded.
        context: &'static str,
        /// The declared size.
        len: u64,
        /// The cap.
        max: u64,
    },
    /// A field value is structurally invalid.
    Invalid {
        /// What was being decoded.
        context: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// Bytes remained after a complete body was decoded.
    TrailingBytes {
        /// What was being decoded.
        context: &'static str,
        /// Leftover byte count.
        remaining: usize,
    },
}

impl std::fmt::Display for FamilyCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FamilyCodecError::UnknownTag { tag } => {
                write!(f, "unknown kernel family tag {tag}")
            }
            FamilyCodecError::LegacyFraming { family } => {
                write!(
                    f,
                    "family `{family}` uses native v1 framing, not the generic family frame"
                )
            }
            FamilyCodecError::Truncated { context } => {
                write!(f, "family frame truncated while decoding {context}")
            }
            FamilyCodecError::TooLarge { context, len, max } => {
                write!(f, "family frame {context} of {len} exceeds cap {max}")
            }
            FamilyCodecError::Invalid { context, detail } => {
                write!(f, "invalid family frame {context}: {detail}")
            }
            FamilyCodecError::TrailingBytes { context, remaining } => {
                write!(f, "{remaining} trailing bytes after family frame {context}")
            }
        }
    }
}

impl std::error::Error for FamilyCodecError {}

/// Big-endian body writer for the generic family frame.
#[derive(Debug, Default)]
pub struct BodyWriter {
    buf: Vec<u8>,
}

impl BodyWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        BodyWriter::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends an `f64` as its big-endian bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Consumes the writer, yielding the body bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked big-endian body reader for the generic family frame.
/// Never panics and never allocates more than the declared body holds.
#[derive(Debug)]
pub struct BodyReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BodyReader<'a> {
    /// Wraps a body slice.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        BodyReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], FamilyCodecError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(FamilyCodecError::Truncated { context })?;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or(FamilyCodecError::Truncated { context })?;
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self, context: &'static str) -> Result<u8, FamilyCodecError> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a big-endian `u16`.
    pub fn get_u16(&mut self, context: &'static str) -> Result<u16, FamilyCodecError> {
        let b = self.take(2, context)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Reads a big-endian `u32`.
    pub fn get_u32(&mut self, context: &'static str) -> Result<u32, FamilyCodecError> {
        let b = self.take(4, context)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a big-endian `u64`.
    pub fn get_u64(&mut self, context: &'static str) -> Result<u64, FamilyCodecError> {
        let b = self.take(8, context)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` bit pattern.
    pub fn get_f64(&mut self, context: &'static str) -> Result<f64, FamilyCodecError> {
        Ok(f64::from_bits(self.get_u64(context)?))
    }

    /// Reads a `u32` element count, rejecting counts above `max` or counts
    /// whose minimum encoding could not fit in the remaining bytes — the
    /// allocation guard against hostile length claims.
    pub fn get_count(
        &mut self,
        max: usize,
        min_elem_bytes: usize,
        context: &'static str,
    ) -> Result<usize, FamilyCodecError> {
        let count = self.get_u32(context)? as usize;
        if count > max {
            return Err(FamilyCodecError::TooLarge {
                context,
                len: count as u64,
                max: max as u64,
            });
        }
        if count.saturating_mul(min_elem_bytes) > self.remaining() {
            return Err(FamilyCodecError::Truncated { context });
        }
        Ok(count)
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// Asserts the body was consumed exactly.
    pub fn finish(&self, context: &'static str) -> Result<(), FamilyCodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(FamilyCodecError::TrailingBytes {
                context,
                remaining: self.remaining(),
            })
        }
    }
}

/// One workload family: the open-world replacement for matching on
/// [`Kernel`].
///
/// Every tier consults the entry for a kernel via
/// [`FamilyRegistry::family_of`] instead of matching on the enum:
/// `Kernel::{describe,validate,class}` delegate here, `admission`
/// canonicalizes and keys through here (and `cluster::router`'s routing
/// hash therefore flows through family canonicalization), backends
/// estimate/execute registry families through [`BackendProfile`]s, the
/// runtime's hedge gate asks [`KernelFamily::hedgeable`], and the wire
/// crate's v6 generic frame calls the body codecs.
pub trait KernelFamily: Send + Sync {
    /// The stable wire tag (a [`FAMILY_TAGS`] row; append-only, linted).
    fn tag(&self) -> u16;

    /// The stable family name (the other half of the [`FAMILY_TAGS`] row).
    fn name(&self) -> &'static str;

    /// The coarse dispatch class every kernel of this family belongs to.
    fn class(&self) -> KernelClass;

    /// A short human-readable description (used in errors and reports).
    fn describe(&self, kernel: &Kernel) -> String;

    /// Validates the kernel's inputs, as done at submission time by the
    /// serving layer.
    ///
    /// # Errors
    ///
    /// The specific [`InvalidKernel`] variant describing the first
    /// violated constraint.
    fn validate(&self, kernel: &Kernel) -> Result<(), InvalidKernel>;

    /// Rewrites a kernel into the canonical form the runtime executes.
    /// Never fails; returns the kernel unchanged when it is already
    /// canonical (or when a rebuild would be rejected, which cannot
    /// happen for validated input).
    fn canonicalize(&self, kernel: &Kernel) -> Kernel;

    /// Derives the two-level [`CanonicalKey`] of a kernel (which should
    /// already be in canonical form).
    fn canonical_key(&self, kernel: &Kernel) -> CanonicalKey;

    /// Whether hedged (portfolio) dispatch may race this family across
    /// backends. Default: no.
    fn hedgeable(&self) -> bool {
        false
    }

    /// Whether a backend with this profile can serve the family. Legacy
    /// families return `false` — their backends keep native support arms.
    fn supports(&self, kernel: &Kernel, profile: &BackendProfile) -> bool {
        let _ = (kernel, profile);
        false
    }

    /// A-priori cost of executing `kernel` on a backend with `profile`,
    /// or `None` when the profile cannot serve the family. Must be a pure
    /// function of `(kernel, profile)` so planning stays deterministic.
    fn estimate(&self, kernel: &Kernel, profile: &BackendProfile) -> Option<CostEstimate> {
        let _ = (kernel, profile);
        None
    }

    /// Executes `kernel` on a backend with `profile`, deterministically
    /// in `seed`.
    ///
    /// # Errors
    ///
    /// [`AccelError::Unsupported`] when the profile cannot serve the
    /// family, or a wrapped solver failure.
    fn execute(
        &self,
        kernel: &Kernel,
        profile: &BackendProfile,
        seed: u64,
    ) -> Result<KernelExecution, AccelError> {
        let _ = seed;
        Err(AccelError::Unsupported {
            backend: profile.backend_name().into(),
            kernel: self.describe(kernel),
        })
    }

    /// Encodes the kernel's spec as a generic family-frame body.
    ///
    /// # Errors
    ///
    /// [`FamilyCodecError::LegacyFraming`] for natively-framed families.
    fn encode_body(&self, kernel: &Kernel, w: &mut BodyWriter) -> Result<(), FamilyCodecError> {
        let _ = (kernel, w);
        Err(FamilyCodecError::LegacyFraming {
            family: self.name(),
        })
    }

    /// Decodes a generic family-frame body back into a kernel.
    ///
    /// # Errors
    ///
    /// Any [`FamilyCodecError`] on malformed input; never panics.
    fn decode_body(&self, r: &mut BodyReader<'_>) -> Result<Kernel, FamilyCodecError> {
        let _ = r;
        Err(FamilyCodecError::LegacyFraming {
            family: self.name(),
        })
    }

    /// Encodes a result of this family as a generic family-frame body.
    ///
    /// # Errors
    ///
    /// [`FamilyCodecError::LegacyFraming`] for natively-framed families.
    fn encode_result(
        &self,
        result: &KernelResult,
        w: &mut BodyWriter,
    ) -> Result<(), FamilyCodecError> {
        let _ = (result, w);
        Err(FamilyCodecError::LegacyFraming {
            family: self.name(),
        })
    }

    /// Decodes a generic family-frame result body.
    ///
    /// # Errors
    ///
    /// Any [`FamilyCodecError`] on malformed input; never panics.
    fn decode_result(&self, r: &mut BodyReader<'_>) -> Result<KernelResult, FamilyCodecError> {
        let _ = r;
        Err(FamilyCodecError::LegacyFraming {
            family: self.name(),
        })
    }
}

/// The registry of every known kernel family, in tag order.
pub struct FamilyRegistry {
    entries: &'static [&'static dyn KernelFamily],
}

static FACTOR_FAMILY: FactorFamily = FactorFamily;
static SEARCH_FAMILY: SearchFamily = SearchFamily;
static DNA_FAMILY: DnaFamily = DnaFamily;
static SAT_FAMILY: SatFamily = SatFamily;
static COMPARE_FAMILY: CompareFamily = CompareFamily;
static COLORING_FAMILY: ColoringFamily = ColoringFamily;
static QUBO_FAMILY: QuboFamily = QuboFamily;

static REGISTRY: FamilyRegistry = FamilyRegistry {
    entries: &[
        &FACTOR_FAMILY,
        &SEARCH_FAMILY,
        &DNA_FAMILY,
        &SAT_FAMILY,
        &COMPARE_FAMILY,
        &COLORING_FAMILY,
        &QUBO_FAMILY,
    ],
};

/// The process-wide family registry.
#[must_use]
pub fn registry() -> &'static FamilyRegistry {
    &REGISTRY
}

impl FamilyRegistry {
    /// All registered families, in tag order.
    pub fn families(&self) -> impl Iterator<Item = &'static dyn KernelFamily> + '_ {
        self.entries.iter().copied()
    }

    /// Looks a family up by its stable wire tag.
    #[must_use]
    pub fn by_tag(&self, tag: u16) -> Option<&'static dyn KernelFamily> {
        self.entries.iter().copied().find(|f| f.tag() == tag)
    }

    /// The family a kernel belongs to. Total: every [`Kernel`] variant
    /// maps to exactly one registered entry (this match is the *single*
    /// place in the workspace that pairs kernel variants with families).
    #[must_use]
    pub fn family_of(&self, kernel: &Kernel) -> &'static dyn KernelFamily {
        match kernel {
            Kernel::Factor { .. } => &FACTOR_FAMILY,
            Kernel::Search { .. } => &SEARCH_FAMILY,
            Kernel::DnaSimilarity { .. } => &DNA_FAMILY,
            Kernel::SolveSat { .. } => &SAT_FAMILY,
            Kernel::Compare { .. } => &COMPARE_FAMILY,
            Kernel::Family(FamilyKernel::Coloring(_)) => &COLORING_FAMILY,
            Kernel::Family(FamilyKernel::Qubo(_)) => &QUBO_FAMILY,
        }
    }

    /// The family a registry result payload belongs to.
    #[must_use]
    pub fn family_of_result(&self, result: &FamilyResult) -> &'static dyn KernelFamily {
        match result {
            FamilyResult::Coloring { .. } => &COLORING_FAMILY,
            FamilyResult::Qubo { .. } => &QUBO_FAMILY,
        }
    }
}

/// Encodes a `Kernel::Family` spec into `(wire tag, body bytes)` for the
/// v6 generic family frame.
///
/// # Errors
///
/// [`FamilyCodecError::LegacyFraming`] for natively-framed kernels.
pub fn encode_kernel_body(kernel: &Kernel) -> Result<(u16, Vec<u8>), FamilyCodecError> {
    let family = registry().family_of(kernel);
    let mut w = BodyWriter::new();
    family.encode_body(kernel, &mut w)?;
    Ok((family.tag(), w.into_bytes()))
}

/// Decodes a v6 generic family-frame body back into a kernel.
///
/// # Errors
///
/// [`FamilyCodecError::UnknownTag`] for unregistered tags, or any codec
/// error on malformed bodies; never panics, never over-allocates.
pub fn decode_kernel_body(tag: u16, body: &[u8]) -> Result<Kernel, FamilyCodecError> {
    let family = registry()
        .by_tag(tag)
        .ok_or(FamilyCodecError::UnknownTag { tag })?;
    let mut r = BodyReader::new(body);
    let kernel = family.decode_body(&mut r)?;
    r.finish("kernel body")?;
    Ok(kernel)
}

/// Encodes a registry result into `(wire tag, body bytes)` for the v6
/// generic family frame.
///
/// # Errors
///
/// Propagates the family codec's errors.
pub fn encode_result_body(result: &FamilyResult) -> Result<(u16, Vec<u8>), FamilyCodecError> {
    let family = registry().family_of_result(result);
    let mut w = BodyWriter::new();
    family.encode_result(&KernelResult::Family(result.clone()), &mut w)?;
    Ok((family.tag(), w.into_bytes()))
}

/// Decodes a v6 generic family-frame result body.
///
/// # Errors
///
/// [`FamilyCodecError::UnknownTag`] for unregistered tags, or any codec
/// error on malformed bodies; never panics, never over-allocates.
pub fn decode_result_body(tag: u16, body: &[u8]) -> Result<KernelResult, FamilyCodecError> {
    let family = registry()
        .by_tag(tag)
        .ok_or(FamilyCodecError::UnknownTag { tag })?;
    let mut r = BodyReader::new(body);
    let result = family.decode_result(&mut r)?;
    r.finish("result body")?;
    Ok(result)
}

// ---------------------------------------------------------------------------
// Legacy families. Their describe/validate/class/canonicalize/canonical_key
// logic is the pre-registry enum code moved verbatim — the byte streams and
// strings are frozen by the goldens in tests/family_registry.rs. Backend
// support and wire framing stay native, so every trait default applies.
// ---------------------------------------------------------------------------

/// Integer factoring (tag 1).
#[derive(Debug)]
struct FactorFamily;

impl KernelFamily for FactorFamily {
    fn tag(&self) -> u16 {
        1
    }

    fn name(&self) -> &'static str {
        "factor"
    }

    fn class(&self) -> KernelClass {
        KernelClass::Quantum
    }

    fn describe(&self, kernel: &Kernel) -> String {
        match kernel {
            Kernel::Factor { n } => format!("factor({n})"),
            _ => self.name().to_string(),
        }
    }

    fn validate(&self, kernel: &Kernel) -> Result<(), InvalidKernel> {
        if let Kernel::Factor { n } = kernel {
            if *n < 4 {
                return Err(InvalidKernel::FactorTooSmall { n: *n });
            }
        }
        Ok(())
    }

    fn canonicalize(&self, kernel: &Kernel) -> Kernel {
        kernel.clone()
    }

    fn canonical_key(&self, kernel: &Kernel) -> CanonicalKey {
        let mut coarse = Fnv::new();
        let mut exact = Fnv::new();
        if let Kernel::Factor { n } = kernel {
            for h in [&mut coarse, &mut exact] {
                h.byte(1);
                h.u64(*n);
            }
        }
        CanonicalKey {
            key: coarse.finish(),
            exact: exact.finish(),
        }
    }
}

/// Unstructured (Grover) search (tag 2).
#[derive(Debug)]
struct SearchFamily;

impl KernelFamily for SearchFamily {
    fn tag(&self) -> u16 {
        2
    }

    fn name(&self) -> &'static str {
        "search"
    }

    fn class(&self) -> KernelClass {
        KernelClass::Quantum
    }

    fn describe(&self, kernel: &Kernel) -> String {
        match kernel {
            Kernel::Search { n_qubits, marked } => {
                format!("search(2^{n_qubits}, {} marked)", marked.len())
            }
            _ => self.name().to_string(),
        }
    }

    fn validate(&self, kernel: &Kernel) -> Result<(), InvalidKernel> {
        if let Kernel::Search { n_qubits, marked } = kernel {
            if *n_qubits == 0 {
                return Err(InvalidKernel::EmptySearchSpace);
            }
            // Past usize::BITS qubits every representable item fits.
            if *n_qubits < usize::BITS as usize {
                let space = 1usize << n_qubits;
                if let Some(&item) = marked.iter().find(|&&m| m >= space) {
                    return Err(InvalidKernel::MarkedOutOfRange {
                        item,
                        n_qubits: *n_qubits,
                    });
                }
            }
        }
        Ok(())
    }

    fn canonicalize(&self, kernel: &Kernel) -> Kernel {
        match kernel {
            Kernel::Search { n_qubits, marked } => {
                let mut marked = marked.clone();
                marked.sort_unstable();
                marked.dedup();
                Kernel::Search {
                    n_qubits: *n_qubits,
                    marked,
                }
            }
            _ => kernel.clone(),
        }
    }

    fn canonical_key(&self, kernel: &Kernel) -> CanonicalKey {
        let mut coarse = Fnv::new();
        let mut exact = Fnv::new();
        if let Kernel::Search { n_qubits, marked } = kernel {
            for h in [&mut coarse, &mut exact] {
                h.byte(2);
                h.u64(*n_qubits as u64);
                h.u64(marked.len() as u64);
                for &m in marked {
                    h.u64(m as u64);
                }
            }
        }
        CanonicalKey {
            key: coarse.finish(),
            exact: exact.finish(),
        }
    }
}

/// DNA sequence similarity (tag 3).
#[derive(Debug)]
struct DnaFamily;

impl KernelFamily for DnaFamily {
    fn tag(&self) -> u16 {
        3
    }

    fn name(&self) -> &'static str {
        "dna-similarity"
    }

    fn class(&self) -> KernelClass {
        KernelClass::Quantum
    }

    fn describe(&self, kernel: &Kernel) -> String {
        match kernel {
            Kernel::DnaSimilarity { a, b, k } => {
                format!("dna_similarity(|a|={}, |b|={}, k={k})", a.len(), b.len())
            }
            _ => self.name().to_string(),
        }
    }

    fn validate(&self, kernel: &Kernel) -> Result<(), InvalidKernel> {
        if let Kernel::DnaSimilarity { a, b, k } = kernel {
            if *k == 0 {
                return Err(InvalidKernel::ZeroKmer);
            }
            let shorter = a.len().min(b.len());
            if *k > shorter {
                return Err(InvalidKernel::KmerTooLong { k: *k, shorter });
            }
        }
        Ok(())
    }

    fn canonicalize(&self, kernel: &Kernel) -> Kernel {
        kernel.clone()
    }

    fn canonical_key(&self, kernel: &Kernel) -> CanonicalKey {
        let mut coarse = Fnv::new();
        let mut exact = Fnv::new();
        if let Kernel::DnaSimilarity { a, b, k } = kernel {
            for h in [&mut coarse, &mut exact] {
                h.byte(3);
                h.u64(a.len() as u64);
                h.bytes(a.as_bytes());
                h.u64(b.len() as u64);
                h.bytes(b.as_bytes());
                h.u64(*k as u64);
            }
        }
        CanonicalKey {
            key: coarse.finish(),
            exact: exact.finish(),
        }
    }
}

/// SAT solving (tag 4). The only hedgeable family: portfolio dispatch
/// races the DMM, WalkSAT, and DPLL paths.
#[derive(Debug)]
struct SatFamily;

impl KernelFamily for SatFamily {
    fn tag(&self) -> u16 {
        4
    }

    fn name(&self) -> &'static str {
        "solve-sat"
    }

    fn class(&self) -> KernelClass {
        KernelClass::Optimization
    }

    fn hedgeable(&self) -> bool {
        true
    }

    fn describe(&self, kernel: &Kernel) -> String {
        match kernel {
            Kernel::SolveSat { formula } => format!(
                "solve_sat({} vars, {} clauses)",
                formula.n_vars(),
                formula.len()
            ),
            _ => self.name().to_string(),
        }
    }

    fn validate(&self, kernel: &Kernel) -> Result<(), InvalidKernel> {
        // Formula validity is enforced by construction in `mem::cnf`.
        let _ = kernel;
        Ok(())
    }

    fn canonicalize(&self, kernel: &Kernel) -> Kernel {
        match kernel {
            Kernel::SolveSat { formula } => canonical_formula(formula)
                .map_or_else(|| kernel.clone(), |formula| Kernel::SolveSat { formula }),
            _ => kernel.clone(),
        }
    }

    fn canonical_key(&self, kernel: &Kernel) -> CanonicalKey {
        let mut coarse = Fnv::new();
        let mut exact = Fnv::new();
        if let Kernel::SolveSat { formula } = kernel {
            exact.byte(4);
            exact.u64(formula.n_vars() as u64);
            exact.u64(formula.len() as u64);
            for clause in formula.clauses() {
                exact.u64(clause.literals().len() as u64);
                for lit in clause.literals() {
                    exact.u64(lit.var() as u64);
                    exact.byte(u8::from(lit.is_negated()));
                }
            }
            // Coarse half: stable first-occurrence renumbering. Variables
            // are relabeled densely in the order they first appear in the
            // canonical clause stream, and the variable *count* is left
            // out, so formulas that differ only by a variable permutation
            // or by trailing unused variables share a bucket. The exact
            // half above still separates them before any bytes are served.
            let mut renumber: BTreeMap<usize, u64> = BTreeMap::new();
            coarse.byte(4);
            coarse.u64(formula.len() as u64);
            for clause in formula.clauses() {
                coarse.u64(clause.literals().len() as u64);
                for lit in clause.literals() {
                    let next = renumber.len() as u64;
                    let dense = *renumber.entry(lit.var()).or_insert(next);
                    coarse.u64(dense);
                    coarse.byte(u8::from(lit.is_negated()));
                }
            }
        }
        CanonicalKey {
            key: coarse.finish(),
            exact: exact.finish(),
        }
    }
}

/// The canonical clause ordering: literals sorted within each clause,
/// clauses sorted lexicographically, duplicates removed. `None` only if a
/// rebuilt clause or formula fails validation, which cannot happen for a
/// formula that was valid on the way in.
fn canonical_formula(formula: &Formula) -> Option<Formula> {
    let mut clauses = Vec::with_capacity(formula.len());
    for clause in formula.clauses() {
        let mut literals = clause.literals().to_vec();
        literals.sort_unstable();
        clauses.push(Clause::new(literals).ok()?);
    }
    clauses.sort_by(|a, b| a.literals().cmp(b.literals()));
    clauses.dedup_by(|a, b| a.literals() == b.literals());
    Formula::new(formula.n_vars(), clauses).ok()
}

/// Analog scalar comparison (tag 5).
#[derive(Debug)]
struct CompareFamily;

impl KernelFamily for CompareFamily {
    fn tag(&self) -> u16 {
        5
    }

    fn name(&self) -> &'static str {
        "compare"
    }

    fn class(&self) -> KernelClass {
        KernelClass::Analog
    }

    fn describe(&self, kernel: &Kernel) -> String {
        match kernel {
            Kernel::Compare { x, y } => format!("compare({x:.3}, {y:.3})"),
            _ => self.name().to_string(),
        }
    }

    fn validate(&self, kernel: &Kernel) -> Result<(), InvalidKernel> {
        if let Kernel::Compare { x, y } = kernel {
            if !x.is_finite() || !y.is_finite() {
                return Err(InvalidKernel::CompareNotFinite { x: *x, y: *y });
            }
            if !(0.0..=1.0).contains(x) || !(0.0..=1.0).contains(y) {
                return Err(InvalidKernel::CompareOutOfRange { x: *x, y: *y });
            }
        }
        Ok(())
    }

    fn canonicalize(&self, kernel: &Kernel) -> Kernel {
        match kernel {
            Kernel::Compare { x, y } => Kernel::Compare {
                x: scrub_zero(*x),
                y: scrub_zero(*y),
            },
            _ => kernel.clone(),
        }
    }

    fn canonical_key(&self, kernel: &Kernel) -> CanonicalKey {
        let mut coarse = Fnv::new();
        let mut exact = Fnv::new();
        if let Kernel::Compare { x, y } = kernel {
            exact.byte(5);
            exact.u64(x.to_bits());
            exact.u64(y.to_bits());
            coarse.byte(5);
            coarse.u64(quantize(*x));
            coarse.u64(quantize(*y));
        }
        CanonicalKey {
            key: coarse.finish(),
            exact: exact.finish(),
        }
    }
}

/// `-0.0` and `+0.0` compare equal but have different bit patterns; fold
/// them together so the exact hash does not split them.
fn scrub_zero(v: f64) -> f64 {
    if v == 0.0 {
        0.0
    } else {
        v
    }
}

/// Snaps an analog operand to the coarse-key lattice.
fn quantize(v: f64) -> u64 {
    // Operands are validated into [0, 1], so the product fits comfortably
    // in i64; the cast saturates rather than wrapping if it ever did not.
    ((v * COMPARE_QUANTUM).round() as i64) as u64
}

/// Snaps a QUBO coefficient to the coarse-key lattice.
fn quantize_coefficient(v: f64) -> u64 {
    // Coefficients are validated finite; the cast saturates at the i64
    // range rather than wrapping for extreme magnitudes.
    ((v * QUBO_QUANTUM).round() as i64) as u64
}

// ---------------------------------------------------------------------------
// Registry-born families: served exclusively through the registry — no
// backend, admission, router, or server code matches on their variants.
// ---------------------------------------------------------------------------

/// Phase-dynamics vertex coloring (tag 6).
#[derive(Debug)]
struct ColoringFamily;

impl ColoringFamily {
    fn spec<'a>(&self, kernel: &'a Kernel) -> Option<&'a ColoringSpec> {
        match kernel {
            Kernel::Family(FamilyKernel::Coloring(spec)) => Some(spec),
            _ => None,
        }
    }

    /// Modelled device time: one anti-phase settling window on the
    /// oscillator array plus one phase-readout window.
    fn oscillator_seconds(window_seconds: f64) -> f64 {
        COLORING_SIM_SECONDS + window_seconds
    }

    /// Deterministic greedy (Welsh–Powell order) fallback coloring:
    /// vertices by descending degree (index-tiebroken), each taking the
    /// lowest color unused among its already-colored neighbors, wrapping
    /// to color 0 when the palette is exhausted.
    fn greedy(spec: &ColoringSpec) -> (Vec<usize>, u64) {
        let mut degree = vec![0usize; spec.n_vertices];
        for &(a, b) in &spec.edges {
            degree[a] += 1;
            degree[b] += 1;
        }
        let mut order: Vec<usize> = (0..spec.n_vertices).collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(degree[v]), v));
        let mut adjacency = vec![Vec::new(); spec.n_vertices];
        for &(a, b) in &spec.edges {
            adjacency[a].push(b);
            adjacency[b].push(a);
        }
        let mut colors = vec![usize::MAX; spec.n_vertices];
        for &v in &order {
            let mut used = vec![false; spec.n_colors];
            for &u in &adjacency[v] {
                if colors[u] != usize::MAX {
                    used[colors[u]] = true;
                }
            }
            colors[v] = used.iter().position(|&taken| !taken).unwrap_or(0);
        }
        let conflicts = spec
            .edges
            .iter()
            .filter(|&&(a, b)| colors[a] == colors[b])
            .count() as u64;
        (colors, conflicts)
    }
}

impl KernelFamily for ColoringFamily {
    fn tag(&self) -> u16 {
        6
    }

    fn name(&self) -> &'static str {
        "coloring"
    }

    fn class(&self) -> KernelClass {
        KernelClass::Analog
    }

    fn describe(&self, kernel: &Kernel) -> String {
        match self.spec(kernel) {
            Some(spec) => format!(
                "coloring({} vertices, {} edges, {} colors)",
                spec.n_vertices,
                spec.edges.len(),
                spec.n_colors
            ),
            None => self.name().to_string(),
        }
    }

    fn validate(&self, kernel: &Kernel) -> Result<(), InvalidKernel> {
        let Some(spec) = self.spec(kernel) else {
            return Ok(());
        };
        if spec.n_vertices > MAX_COLORING_VERTICES {
            return Err(InvalidKernel::FamilyTooLarge {
                family: self.name(),
                field: "vertices",
                len: spec.n_vertices,
                max: MAX_COLORING_VERTICES,
            });
        }
        if spec.edges.len() > MAX_COLORING_EDGES {
            return Err(InvalidKernel::FamilyTooLarge {
                family: self.name(),
                field: "edges",
                len: spec.edges.len(),
                max: MAX_COLORING_EDGES,
            });
        }
        if spec.n_vertices < 2 || spec.n_colors < 2 || spec.n_colors > spec.n_vertices {
            return Err(InvalidKernel::ColoringDegenerate {
                n_vertices: spec.n_vertices,
                n_colors: spec.n_colors,
            });
        }
        for &(a, b) in &spec.edges {
            if a >= spec.n_vertices || b >= spec.n_vertices || a == b {
                return Err(InvalidKernel::ColoringEdgeInvalid {
                    a,
                    b,
                    n_vertices: spec.n_vertices,
                });
            }
        }
        Ok(())
    }

    fn canonicalize(&self, kernel: &Kernel) -> Kernel {
        let Some(spec) = self.spec(kernel) else {
            return kernel.clone();
        };
        // Graph normal form: undirected edges as ordered pairs, sorted,
        // deduplicated.
        let mut edges: Vec<(usize, usize)> = spec
            .edges
            .iter()
            .map(|&(a, b)| (a.min(b), a.max(b)))
            .collect();
        edges.sort_unstable();
        edges.dedup();
        Kernel::Family(FamilyKernel::Coloring(ColoringSpec {
            n_vertices: spec.n_vertices,
            n_colors: spec.n_colors,
            edges,
        }))
    }

    fn canonical_key(&self, kernel: &Kernel) -> CanonicalKey {
        let mut coarse = Fnv::new();
        let mut exact = Fnv::new();
        if let Some(spec) = self.spec(kernel) {
            for h in [&mut coarse, &mut exact] {
                h.byte(6);
                h.u64(spec.n_vertices as u64);
                h.u64(spec.n_colors as u64);
                h.u64(spec.edges.len() as u64);
                for &(a, b) in &spec.edges {
                    h.u64(a as u64);
                    h.u64(b as u64);
                }
            }
        }
        CanonicalKey {
            key: coarse.finish(),
            exact: exact.finish(),
        }
    }

    fn supports(&self, kernel: &Kernel, profile: &BackendProfile) -> bool {
        self.spec(kernel).is_some()
            && matches!(
                profile,
                BackendProfile::Oscillator { .. } | BackendProfile::Cpu { .. }
            )
    }

    fn estimate(&self, kernel: &Kernel, profile: &BackendProfile) -> Option<CostEstimate> {
        let spec = self.spec(kernel)?;
        match profile {
            BackendProfile::Oscillator {
                window_seconds,
                block_watts,
            } => {
                // One settling + readout window, with every vertex's
                // oscillator block powered for the duration.
                let seconds = Self::oscillator_seconds(*window_seconds);
                Some(CostEstimate {
                    device_seconds: seconds,
                    energy_joules: seconds * block_watts * spec.n_vertices as f64,
                })
            }
            BackendProfile::Cpu {
                seconds_per_op,
                watts,
            } => {
                // Greedy coloring touches each vertex and each edge a
                // constant number of times.
                let ops = (spec.n_vertices + 2 * spec.edges.len()) as f64;
                let seconds = ops * seconds_per_op;
                Some(CostEstimate {
                    device_seconds: seconds,
                    energy_joules: seconds * watts,
                })
            }
            BackendProfile::Mem { .. } => None,
        }
    }

    fn execute(
        &self,
        kernel: &Kernel,
        profile: &BackendProfile,
        seed: u64,
    ) -> Result<KernelExecution, AccelError> {
        // Both substrates are deterministic for this family; the seed is
        // deliberately unused so replays are trivially byte-identical.
        let _ = seed;
        let Some(spec) = self.spec(kernel) else {
            return Err(AccelError::Unsupported {
                backend: profile.backend_name().into(),
                kernel: self.describe(kernel),
            });
        };
        match profile {
            BackendProfile::Oscillator {
                window_seconds,
                block_watts: _,
            } => {
                let mut config = ColoringConfig::default();
                config.n_colors = spec.n_colors;
                let run = color_graph(spec.n_vertices, &spec.edges, &config)
                    .map_err(|e| AccelError::backend(profile.backend_name(), e))?;
                Ok(KernelExecution {
                    result: KernelResult::Family(FamilyResult::Coloring {
                        colors: run.colors,
                        conflicts: run.conflicts as u64,
                    }),
                    cost: CostReport {
                        device_seconds: Self::oscillator_seconds(*window_seconds),
                        operations: (spec.n_vertices + spec.edges.len()) as u64,
                    },
                })
            }
            BackendProfile::Cpu { seconds_per_op, .. } => {
                let (colors, conflicts) = Self::greedy(spec);
                let ops = (spec.n_vertices + 2 * spec.edges.len()) as u64;
                Ok(KernelExecution {
                    result: KernelResult::Family(FamilyResult::Coloring { colors, conflicts }),
                    cost: CostReport {
                        device_seconds: ops as f64 * seconds_per_op,
                        operations: ops,
                    },
                })
            }
            BackendProfile::Mem { .. } => Err(AccelError::Unsupported {
                backend: profile.backend_name().into(),
                kernel: self.describe(kernel),
            }),
        }
    }

    fn encode_body(&self, kernel: &Kernel, w: &mut BodyWriter) -> Result<(), FamilyCodecError> {
        let spec = self
            .spec(kernel)
            .ok_or(FamilyCodecError::LegacyFraming { family: "coloring" })?;
        w.put_u64(spec.n_vertices as u64);
        w.put_u64(spec.n_colors as u64);
        w.put_u32(spec.edges.len() as u32);
        for &(a, b) in &spec.edges {
            w.put_u64(a as u64);
            w.put_u64(b as u64);
        }
        Ok(())
    }

    fn decode_body(&self, r: &mut BodyReader<'_>) -> Result<Kernel, FamilyCodecError> {
        let n_vertices = r.get_u64("coloring vertices")?;
        if n_vertices > MAX_COLORING_VERTICES as u64 {
            return Err(FamilyCodecError::TooLarge {
                context: "coloring vertices",
                len: n_vertices,
                max: MAX_COLORING_VERTICES as u64,
            });
        }
        let n_colors = r.get_u64("coloring colors")?;
        if n_colors > MAX_COLORING_VERTICES as u64 {
            return Err(FamilyCodecError::TooLarge {
                context: "coloring colors",
                len: n_colors,
                max: MAX_COLORING_VERTICES as u64,
            });
        }
        let count = r.get_count(MAX_COLORING_EDGES, 16, "coloring edges")?;
        let mut edges = Vec::with_capacity(count);
        for _ in 0..count {
            let a = r.get_u64("coloring edge endpoint")?;
            let b = r.get_u64("coloring edge endpoint")?;
            edges.push((a as usize, b as usize));
        }
        Ok(Kernel::Family(FamilyKernel::Coloring(ColoringSpec {
            n_vertices: n_vertices as usize,
            n_colors: n_colors as usize,
            edges,
        })))
    }

    fn encode_result(
        &self,
        result: &KernelResult,
        w: &mut BodyWriter,
    ) -> Result<(), FamilyCodecError> {
        let KernelResult::Family(FamilyResult::Coloring { colors, conflicts }) = result else {
            return Err(FamilyCodecError::LegacyFraming { family: "coloring" });
        };
        w.put_u32(colors.len() as u32);
        for &c in colors {
            w.put_u32(c as u32);
        }
        w.put_u64(*conflicts);
        Ok(())
    }

    fn decode_result(&self, r: &mut BodyReader<'_>) -> Result<KernelResult, FamilyCodecError> {
        let count = r.get_count(MAX_COLORING_VERTICES, 4, "coloring result colors")?;
        let mut colors = Vec::with_capacity(count);
        for _ in 0..count {
            colors.push(r.get_u32("coloring result color")? as usize);
        }
        let conflicts = r.get_u64("coloring result conflicts")?;
        Ok(KernelResult::Family(FamilyResult::Coloring {
            colors,
            conflicts,
        }))
    }
}

/// Ising/QUBO energy minimization (tag 7).
#[derive(Debug)]
struct QuboFamily;

impl QuboFamily {
    fn spec<'a>(&self, kernel: &'a Kernel) -> Option<&'a QuboSpec> {
        match kernel {
            Kernel::Family(FamilyKernel::Qubo(spec)) => Some(spec),
            _ => None,
        }
    }

    fn terms(spec: &QuboSpec) -> usize {
        spec.linear.len() + spec.quadratic.len()
    }

    /// Predicted DMM trajectory length, mirroring the SAT backend's
    /// steps-linear-in-size model.
    fn dmm_steps(spec: &QuboSpec) -> f64 {
        50.0 * (spec.n_vars as f64 + Self::terms(spec) as f64)
    }

    /// Predicted CPU greedy-descent work: a few full sweeps, each
    /// touching every variable against every term.
    fn cpu_ops(spec: &QuboSpec) -> f64 {
        (spec.n_vars * (spec.n_vars + Self::terms(spec))) as f64
    }

    fn build(&self, spec: &QuboSpec, backend: &'static str) -> Result<Qubo, AccelError> {
        let mut q = Qubo::new(spec.n_vars).map_err(|e| AccelError::backend(backend, e))?;
        for &(i, c) in &spec.linear {
            q.add_linear(i, c)
                .map_err(|e| AccelError::backend(backend, e))?;
        }
        for &(i, j, v) in &spec.quadratic {
            q.add_quadratic(i, j, v)
                .map_err(|e| AccelError::backend(backend, e))?;
        }
        Ok(q)
    }
}

impl KernelFamily for QuboFamily {
    fn tag(&self) -> u16 {
        7
    }

    fn name(&self) -> &'static str {
        "qubo"
    }

    fn class(&self) -> KernelClass {
        KernelClass::Optimization
    }

    fn describe(&self, kernel: &Kernel) -> String {
        match self.spec(kernel) {
            Some(spec) => format!("qubo({} vars, {} terms)", spec.n_vars, Self::terms(spec)),
            None => self.name().to_string(),
        }
    }

    fn validate(&self, kernel: &Kernel) -> Result<(), InvalidKernel> {
        let Some(spec) = self.spec(kernel) else {
            return Ok(());
        };
        if spec.n_vars == 0 {
            return Err(InvalidKernel::QuboEmpty);
        }
        if spec.n_vars > MAX_QUBO_VARS {
            return Err(InvalidKernel::FamilyTooLarge {
                family: self.name(),
                field: "variables",
                len: spec.n_vars,
                max: MAX_QUBO_VARS,
            });
        }
        if spec.linear.len() > MAX_QUBO_TERMS {
            return Err(InvalidKernel::FamilyTooLarge {
                family: self.name(),
                field: "linear terms",
                len: spec.linear.len(),
                max: MAX_QUBO_TERMS,
            });
        }
        if spec.quadratic.len() > MAX_QUBO_TERMS {
            return Err(InvalidKernel::FamilyTooLarge {
                family: self.name(),
                field: "quadratic terms",
                len: spec.quadratic.len(),
                max: MAX_QUBO_TERMS,
            });
        }
        for &(i, c) in &spec.linear {
            if i >= spec.n_vars {
                return Err(InvalidKernel::QuboIndexInvalid {
                    i,
                    j: i,
                    n_vars: spec.n_vars,
                });
            }
            if !c.is_finite() {
                return Err(InvalidKernel::QuboCoefficientNotFinite { i, j: i });
            }
        }
        for &(i, j, v) in &spec.quadratic {
            if i >= spec.n_vars || j >= spec.n_vars || i == j {
                return Err(InvalidKernel::QuboIndexInvalid {
                    i,
                    j,
                    n_vars: spec.n_vars,
                });
            }
            if !v.is_finite() {
                return Err(InvalidKernel::QuboCoefficientNotFinite { i, j });
            }
        }
        Ok(())
    }

    fn canonicalize(&self, kernel: &Kernel) -> Kernel {
        let Some(spec) = self.spec(kernel) else {
            return kernel.clone();
        };
        // Coefficient normal form: like terms combined, exact zeros
        // dropped, `-0.0` scrubbed, sorted by index.
        let mut linear: BTreeMap<usize, f64> = BTreeMap::new();
        for &(i, c) in &spec.linear {
            *linear.entry(i).or_insert(0.0) += c;
        }
        let linear: Vec<(usize, f64)> = linear
            .into_iter()
            .filter(|&(_, c)| c != 0.0)
            .map(|(i, c)| (i, scrub_zero(c)))
            .collect();
        let mut quadratic: BTreeMap<(usize, usize), f64> = BTreeMap::new();
        for &(i, j, v) in &spec.quadratic {
            *quadratic.entry((i.min(j), i.max(j))).or_insert(0.0) += v;
        }
        let quadratic: Vec<(usize, usize, f64)> = quadratic
            .into_iter()
            .filter(|&(_, v)| v != 0.0)
            .map(|((i, j), v)| (i, j, scrub_zero(v)))
            .collect();
        Kernel::Family(FamilyKernel::Qubo(QuboSpec {
            n_vars: spec.n_vars,
            linear,
            quadratic,
        }))
    }

    fn canonical_key(&self, kernel: &Kernel) -> CanonicalKey {
        let mut coarse = Fnv::new();
        let mut exact = Fnv::new();
        if let Some(spec) = self.spec(kernel) {
            exact.byte(7);
            exact.u64(spec.n_vars as u64);
            exact.u64(spec.linear.len() as u64);
            for &(i, c) in &spec.linear {
                exact.u64(i as u64);
                exact.u64(c.to_bits());
            }
            exact.u64(spec.quadratic.len() as u64);
            for &(i, j, v) in &spec.quadratic {
                exact.u64(i as u64);
                exact.u64(j as u64);
                exact.u64(v.to_bits());
            }
            // Coarse half: same structure with coefficients snapped to the
            // QUBO lattice, so near-identical objective surfaces bucket
            // together while the exact half keeps them apart.
            coarse.byte(7);
            coarse.u64(spec.n_vars as u64);
            coarse.u64(spec.linear.len() as u64);
            for &(i, c) in &spec.linear {
                coarse.u64(i as u64);
                coarse.u64(quantize_coefficient(c));
            }
            coarse.u64(spec.quadratic.len() as u64);
            for &(i, j, v) in &spec.quadratic {
                coarse.u64(i as u64);
                coarse.u64(j as u64);
                coarse.u64(quantize_coefficient(v));
            }
        }
        CanonicalKey {
            key: coarse.finish(),
            exact: exact.finish(),
        }
    }

    fn supports(&self, kernel: &Kernel, profile: &BackendProfile) -> bool {
        self.spec(kernel).is_some()
            && matches!(
                profile,
                BackendProfile::Mem { .. } | BackendProfile::Cpu { .. }
            )
    }

    fn estimate(&self, kernel: &Kernel, profile: &BackendProfile) -> Option<CostEstimate> {
        let spec = self.spec(kernel)?;
        match profile {
            BackendProfile::Mem { dt, cell_watts } => {
                // The DMM's trajectory length grows roughly linearly in
                // instance size; predicted device time is steps · dt at
                // the 1 ns RC time unit.
                let seconds = Self::dmm_steps(spec) * dt * 1e-9;
                Some(CostEstimate {
                    device_seconds: seconds,
                    energy_joules: seconds * cell_watts,
                })
            }
            BackendProfile::Cpu {
                seconds_per_op,
                watts,
            } => {
                let seconds = Self::cpu_ops(spec) * seconds_per_op;
                Some(CostEstimate {
                    device_seconds: seconds,
                    energy_joules: seconds * watts,
                })
            }
            BackendProfile::Oscillator { .. } => None,
        }
    }

    fn execute(
        &self,
        kernel: &Kernel,
        profile: &BackendProfile,
        seed: u64,
    ) -> Result<KernelExecution, AccelError> {
        let Some(spec) = self.spec(kernel) else {
            return Err(AccelError::Unsupported {
                backend: profile.backend_name().into(),
                kernel: self.describe(kernel),
            });
        };
        match profile {
            BackendProfile::Mem { dt, .. } => {
                let q = self.build(spec, "memcomputing")?;
                let (bits, energy) = q
                    .minimize_dmm(MaxSatDmmParams::default(), seed)
                    .map_err(|e| AccelError::backend("memcomputing", e))?;
                let steps = Self::dmm_steps(spec);
                Ok(KernelExecution {
                    result: KernelResult::Family(FamilyResult::Qubo { bits, energy }),
                    cost: CostReport {
                        // Modelled device time: the predicted trajectory at
                        // the crossbar's RC time unit (the MaxSAT reduction
                        // does not expose its own step count).
                        device_seconds: steps * dt * 1e-9,
                        operations: steps as u64,
                    },
                })
            }
            BackendProfile::Cpu { seconds_per_op, .. } => {
                let q = self.build(spec, "cpu")?;
                let mut rng = rng_from_seed(seed);
                let start: Vec<bool> = (0..spec.n_vars).map(|_| rng.gen_bool(0.5)).collect();
                let (bits, energy) = q.minimize_greedy(&start);
                let ops = Self::cpu_ops(spec);
                Ok(KernelExecution {
                    result: KernelResult::Family(FamilyResult::Qubo { bits, energy }),
                    cost: CostReport {
                        device_seconds: ops * seconds_per_op,
                        operations: ops as u64,
                    },
                })
            }
            BackendProfile::Oscillator { .. } => Err(AccelError::Unsupported {
                backend: profile.backend_name().into(),
                kernel: self.describe(kernel),
            }),
        }
    }

    fn encode_body(&self, kernel: &Kernel, w: &mut BodyWriter) -> Result<(), FamilyCodecError> {
        let spec = self
            .spec(kernel)
            .ok_or(FamilyCodecError::LegacyFraming { family: "qubo" })?;
        w.put_u64(spec.n_vars as u64);
        w.put_u32(spec.linear.len() as u32);
        for &(i, c) in &spec.linear {
            w.put_u64(i as u64);
            w.put_f64(c);
        }
        w.put_u32(spec.quadratic.len() as u32);
        for &(i, j, v) in &spec.quadratic {
            w.put_u64(i as u64);
            w.put_u64(j as u64);
            w.put_f64(v);
        }
        Ok(())
    }

    fn decode_body(&self, r: &mut BodyReader<'_>) -> Result<Kernel, FamilyCodecError> {
        let n_vars = r.get_u64("qubo variables")?;
        if n_vars > MAX_QUBO_VARS as u64 {
            return Err(FamilyCodecError::TooLarge {
                context: "qubo variables",
                len: n_vars,
                max: MAX_QUBO_VARS as u64,
            });
        }
        let n_linear = r.get_count(MAX_QUBO_TERMS, 16, "qubo linear terms")?;
        let mut linear = Vec::with_capacity(n_linear);
        for _ in 0..n_linear {
            let i = r.get_u64("qubo linear index")?;
            let c = r.get_f64("qubo linear coefficient")?;
            linear.push((i as usize, c));
        }
        let n_quadratic = r.get_count(MAX_QUBO_TERMS, 24, "qubo quadratic terms")?;
        let mut quadratic = Vec::with_capacity(n_quadratic);
        for _ in 0..n_quadratic {
            let i = r.get_u64("qubo quadratic index")?;
            let j = r.get_u64("qubo quadratic index")?;
            let v = r.get_f64("qubo quadratic coefficient")?;
            quadratic.push((i as usize, j as usize, v));
        }
        Ok(Kernel::Family(FamilyKernel::Qubo(QuboSpec {
            n_vars: n_vars as usize,
            linear,
            quadratic,
        })))
    }

    fn encode_result(
        &self,
        result: &KernelResult,
        w: &mut BodyWriter,
    ) -> Result<(), FamilyCodecError> {
        let KernelResult::Family(FamilyResult::Qubo { bits, energy }) = result else {
            return Err(FamilyCodecError::LegacyFraming { family: "qubo" });
        };
        w.put_u32(bits.len() as u32);
        for &b in bits {
            w.put_u8(u8::from(b));
        }
        w.put_f64(*energy);
        Ok(())
    }

    fn decode_result(&self, r: &mut BodyReader<'_>) -> Result<KernelResult, FamilyCodecError> {
        let count = r.get_count(MAX_QUBO_VARS, 1, "qubo result bits")?;
        let mut bits = Vec::with_capacity(count);
        for _ in 0..count {
            let b = r.get_u8("qubo result bit")?;
            match b {
                0 => bits.push(false),
                1 => bits.push(true),
                other => {
                    return Err(FamilyCodecError::Invalid {
                        context: "qubo result bit",
                        detail: format!("expected 0 or 1, got {other}"),
                    })
                }
            }
        }
        let energy = r.get_f64("qubo result energy")?;
        Ok(KernelResult::Family(FamilyResult::Qubo { bits, energy }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coloring(n: usize, colors: usize, edges: &[(usize, usize)]) -> Kernel {
        Kernel::Family(FamilyKernel::Coloring(ColoringSpec {
            n_vertices: n,
            n_colors: colors,
            edges: edges.to_vec(),
        }))
    }

    fn qubo(n: usize, linear: &[(usize, f64)], quadratic: &[(usize, usize, f64)]) -> Kernel {
        Kernel::Family(FamilyKernel::Qubo(QuboSpec {
            n_vars: n,
            linear: linear.to_vec(),
            quadratic: quadratic.to_vec(),
        }))
    }

    #[test]
    fn registry_tags_match_the_frozen_table() {
        let from_registry: Vec<(u16, &str)> =
            registry().families().map(|f| (f.tag(), f.name())).collect();
        assert_eq!(from_registry, FAMILY_TAGS.to_vec());
    }

    #[test]
    fn tags_are_unique_and_resolvable() {
        for &(tag, name) in FAMILY_TAGS {
            let family = registry().by_tag(tag).expect("registered");
            assert_eq!(family.name(), name);
        }
        assert!(registry().by_tag(0).is_none());
        assert!(registry().by_tag(99).is_none());
    }

    #[test]
    fn every_kernel_variant_resolves_to_its_family() {
        let cases = [
            (Kernel::Factor { n: 21 }, "factor"),
            (
                Kernel::Search {
                    n_qubits: 3,
                    marked: vec![1],
                },
                "search",
            ),
            (
                Kernel::DnaSimilarity {
                    a: "ACGT".into(),
                    b: "ACGT".into(),
                    k: 2,
                },
                "dna-similarity",
            ),
            (Kernel::Compare { x: 0.1, y: 0.2 }, "compare"),
            (coloring(3, 2, &[(0, 1)]), "coloring"),
            (qubo(2, &[(0, 1.0)], &[]), "qubo"),
        ];
        for (kernel, name) in cases {
            assert_eq!(registry().family_of(&kernel).name(), name);
        }
    }

    #[test]
    fn coloring_validation_catches_degenerate_and_hostile_specs() {
        assert!(coloring(5, 3, &[(0, 1), (1, 4)]).validate().is_ok());
        assert!(matches!(
            coloring(1, 2, &[]).validate(),
            Err(InvalidKernel::ColoringDegenerate { .. })
        ));
        assert!(matches!(
            coloring(4, 1, &[]).validate(),
            Err(InvalidKernel::ColoringDegenerate { .. })
        ));
        assert!(matches!(
            coloring(4, 5, &[]).validate(),
            Err(InvalidKernel::ColoringDegenerate { .. })
        ));
        assert!(matches!(
            coloring(4, 2, &[(0, 4)]).validate(),
            Err(InvalidKernel::ColoringEdgeInvalid { b: 4, .. })
        ));
        assert!(matches!(
            coloring(4, 2, &[(2, 2)]).validate(),
            Err(InvalidKernel::ColoringEdgeInvalid { a: 2, b: 2, .. })
        ));
        assert!(matches!(
            coloring(MAX_COLORING_VERTICES + 1, 2, &[]).validate(),
            Err(InvalidKernel::FamilyTooLarge { .. })
        ));
    }

    #[test]
    fn qubo_validation_catches_degenerate_and_hostile_specs() {
        assert!(qubo(3, &[(0, 1.0)], &[(0, 1, -2.0)]).validate().is_ok());
        assert_eq!(qubo(0, &[], &[]).validate(), Err(InvalidKernel::QuboEmpty));
        assert!(matches!(
            qubo(2, &[(2, 1.0)], &[]).validate(),
            Err(InvalidKernel::QuboIndexInvalid { i: 2, .. })
        ));
        assert!(matches!(
            qubo(2, &[], &[(1, 1, 1.0)]).validate(),
            Err(InvalidKernel::QuboIndexInvalid { i: 1, j: 1, .. })
        ));
        assert!(matches!(
            qubo(2, &[(0, f64::NAN)], &[]).validate(),
            Err(InvalidKernel::QuboCoefficientNotFinite { .. })
        ));
        assert!(matches!(
            qubo(MAX_QUBO_VARS + 1, &[], &[]).validate(),
            Err(InvalidKernel::FamilyTooLarge { .. })
        ));
    }

    #[test]
    fn coloring_canonical_form_orders_and_dedups_edges() {
        let raw = coloring(4, 2, &[(3, 1), (0, 2), (1, 3), (2, 0)]);
        let canon = registry().family_of(&raw).canonicalize(&raw);
        assert_eq!(canon, coloring(4, 2, &[(0, 2), (1, 3)]));
        // Idempotent, and syntactic variants share both key halves.
        let entry = registry().family_of(&canon);
        assert_eq!(canon, entry.canonicalize(&canon));
        assert_eq!(
            entry.canonical_key(&canon),
            entry.canonical_key(&entry.canonicalize(&raw))
        );
    }

    #[test]
    fn qubo_canonical_form_combines_and_drops_terms() {
        let raw = qubo(
            3,
            &[(1, 0.5), (0, 1.0), (1, -0.5)],
            &[(2, 0, 1.0), (0, 2, 0.5), (1, 2, 0.0)],
        );
        let canon = registry().family_of(&raw).canonicalize(&raw);
        assert_eq!(canon, qubo(3, &[(0, 1.0)], &[(0, 2, 1.5)]));
        let entry = registry().family_of(&canon);
        assert_eq!(canon, entry.canonicalize(&canon));
    }

    #[test]
    fn qubo_coarse_key_quantizes_and_exact_key_does_not() {
        let a = qubo(2, &[(0, 0.5)], &[]);
        let b = qubo(2, &[(0, 0.5 + 1e-9)], &[]);
        let ka = registry().family_of(&a).canonical_key(&a);
        let kb = registry().family_of(&b).canonical_key(&b);
        assert_eq!(ka.key, kb.key);
        assert_ne!(ka.exact, kb.exact);
    }

    #[test]
    fn new_family_keys_are_domain_separated() {
        let c = coloring(3, 2, &[(0, 1)]);
        let q = qubo(3, &[], &[]);
        let kc = registry().family_of(&c).canonical_key(&c);
        let kq = registry().family_of(&q).canonical_key(&q);
        assert_ne!(kc, kq);
    }

    #[test]
    fn kernel_bodies_round_trip() {
        let kernels = [
            coloring(5, 3, &[(0, 1), (1, 2), (3, 4)]),
            coloring(2, 2, &[]),
            qubo(4, &[(0, 1.5), (3, -0.25)], &[(0, 1, 2.0), (2, 3, -1.0)]),
            qubo(1, &[], &[]),
        ];
        for kernel in kernels {
            let (tag, body) = encode_kernel_body(&kernel).expect("encode");
            let back = decode_kernel_body(tag, &body).expect("decode");
            assert_eq!(kernel, back);
        }
    }

    #[test]
    fn result_bodies_round_trip() {
        let results = [
            FamilyResult::Coloring {
                colors: vec![0, 1, 0, 2],
                conflicts: 1,
            },
            FamilyResult::Qubo {
                bits: vec![true, false, true],
                energy: -2.5,
            },
        ];
        for result in results {
            let (tag, body) = encode_result_body(&result).expect("encode");
            let back = decode_result_body(tag, &body).expect("decode");
            assert_eq!(KernelResult::Family(result), back);
        }
    }

    #[test]
    fn hostile_bodies_error_and_never_panic() {
        // Unknown tag.
        assert!(matches!(
            decode_kernel_body(999, &[]),
            Err(FamilyCodecError::UnknownTag { tag: 999 })
        ));
        // Legacy tags have no generic body.
        assert!(matches!(
            decode_kernel_body(1, &[0; 32]),
            Err(FamilyCodecError::LegacyFraming { .. })
        ));
        // Truncations at every prefix of a valid body.
        let (tag, body) =
            encode_kernel_body(&qubo(3, &[(0, 1.0)], &[(1, 2, -1.0)])).expect("encode");
        for cut in 0..body.len() {
            assert!(decode_kernel_body(tag, &body[..cut]).is_err(), "cut {cut}");
        }
        // Trailing garbage is rejected.
        let mut long = body.clone();
        long.push(0);
        assert!(matches!(
            decode_kernel_body(tag, &long),
            Err(FamilyCodecError::TrailingBytes { .. })
        ));
        // A hostile length claim cannot force a large allocation.
        let mut hostile = BodyWriter::new();
        hostile.put_u64(4); // n_vertices
        hostile.put_u64(2); // n_colors
        hostile.put_u32(u32::MAX); // edge count
        assert!(matches!(
            decode_kernel_body(6, &hostile.into_bytes()),
            Err(FamilyCodecError::TooLarge { .. } | FamilyCodecError::Truncated { .. })
        ));
        // Non-boolean result bits are rejected.
        let mut bad = BodyWriter::new();
        bad.put_u32(1);
        bad.put_u8(7);
        bad.put_f64(0.0);
        assert!(matches!(
            decode_result_body(7, &bad.into_bytes()),
            Err(FamilyCodecError::Invalid { .. })
        ));
    }

    #[test]
    fn coloring_estimates_and_supports_follow_profiles() {
        let kernel = coloring(6, 2, &[(0, 1), (2, 3)]);
        let family = registry().family_of(&kernel);
        let osc = BackendProfile::Oscillator {
            window_seconds: 1.6e-6,
            block_watts: 0.936e-3,
        };
        let cpu = BackendProfile::Cpu {
            seconds_per_op: 1e-9,
            watts: 1.0,
        };
        let mem = BackendProfile::Mem {
            dt: 0.1,
            cell_watts: 10e-3,
        };
        assert!(family.supports(&kernel, &osc));
        assert!(family.supports(&kernel, &cpu));
        assert!(!family.supports(&kernel, &mem));
        let e = family.estimate(&kernel, &osc).expect("estimate");
        assert!(e.device_seconds > 0.0 && e.energy_joules > 0.0);
        assert!(family.estimate(&kernel, &mem).is_none());
    }

    #[test]
    fn qubo_executes_deterministically_on_cpu_profile() {
        let kernel = qubo(6, &[(0, 1.0), (5, -2.0)], &[(0, 1, 1.5), (2, 3, -1.0)]);
        let family = registry().family_of(&kernel);
        let cpu = BackendProfile::Cpu {
            seconds_per_op: 1e-9,
            watts: 1.0,
        };
        let a = family.execute(&kernel, &cpu, 42).expect("execute");
        let b = family.execute(&kernel, &cpu, 42).expect("execute");
        assert_eq!(a, b);
        let KernelResult::Family(FamilyResult::Qubo { bits, energy }) = &a.result else {
            panic!("unexpected {:?}", a.result);
        };
        assert_eq!(bits.len(), 6);
        assert!(energy.is_finite());
        // Greedy descent never lands above the all-false baseline it
        // could reach by flipping everything off.
        let spec_value: f64 = 0.0;
        assert!(*energy <= spec_value + 1e-12 || !bits.iter().any(|&b| b));
    }

    #[test]
    fn coloring_greedy_colors_bipartite_graphs_exactly() {
        let kernel = coloring(6, 2, &[(0, 3), (0, 4), (1, 3), (1, 5), (2, 4), (2, 5)]);
        let family = registry().family_of(&kernel);
        let cpu = BackendProfile::Cpu {
            seconds_per_op: 1e-9,
            watts: 1.0,
        };
        let run = family.execute(&kernel, &cpu, 0).expect("execute");
        let KernelResult::Family(FamilyResult::Coloring { colors, conflicts }) = run.result else {
            panic!("unexpected result");
        };
        assert_eq!(colors.len(), 6);
        assert_eq!(conflicts, 0);
        assert!(colors.iter().all(|&c| c < 2));
    }

    #[test]
    fn legacy_families_refuse_generic_framing() {
        let kernel = Kernel::Factor { n: 21 };
        assert!(matches!(
            encode_kernel_body(&kernel),
            Err(FamilyCodecError::LegacyFraming { family: "factor" })
        ));
    }

    #[test]
    fn codec_errors_display() {
        let errs: Vec<FamilyCodecError> = vec![
            FamilyCodecError::UnknownTag { tag: 42 },
            FamilyCodecError::LegacyFraming { family: "factor" },
            FamilyCodecError::Truncated { context: "x" },
            FamilyCodecError::TooLarge {
                context: "x",
                len: 9,
                max: 3,
            },
            FamilyCodecError::Invalid {
                context: "x",
                detail: "bad".into(),
            },
            FamilyCodecError::TrailingBytes {
                context: "x",
                remaining: 2,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
