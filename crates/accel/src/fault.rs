//! Deterministic fault injection for chaos testing.
//!
//! Post-CMOS devices are unreliable by construction — Britt & Humble's
//! survey of quantum accelerators for HPC treats device failure as a
//! first-class event the host stack must absorb, and the oscillator and
//! memcomputing literature assumes noisy, drifting hardware. This module
//! makes that unreliability *injectable and reproducible*: a [`FaultPlan`]
//! seeded through `numerics::rng` decides, as a pure function of
//! `(plan seed, backend name, job seed)`, whether a given execution
//! suffers a transient fault burst, a permanent device failure, a latency
//! spike, or a corrupted cost estimate. Two runs with the same plan and
//! the same job seeds inject byte-for-byte identical fault schedules, so
//! chaos tests can assert exact counters and identical outcomes.
//!
//! [`FaultyBackend`] wraps any [`Accelerator`] with a plan. The host's
//! dispatch loop (see [`crate::host::HostRuntime::dispatch_planned`])
//! turns the injected [`AccelError::DeviceFault`]s into retries with
//! capped exponential backoff, failover down the ranked plan, and
//! quarantine with recovery probes.
//!
//! # Example
//!
//! ```
//! use accel::accelerator::{Accelerator, CpuBackend};
//! use accel::fault::{FaultPlan, FaultSpec};
//! use accel::kernel::Kernel;
//!
//! let plan = FaultPlan::new(7).with_backend("cpu", FaultSpec::transient(1.0, 1));
//! let mut cpu = plan.wrap(Box::new(CpuBackend::new(1)));
//! cpu.reseed(99);
//! // First attempt faults, the retry succeeds: a transient burst.
//! assert!(cpu.execute(&Kernel::Factor { n: 15 }).is_err());
//! assert!(cpu.execute(&Kernel::Factor { n: 15 }).is_ok());
//! ```

use crate::accelerator::Accelerator;
use crate::kernel::{CostEstimate, Kernel, KernelExecution};
use crate::AccelError;
use numerics::rng::{rng_from_seed, Rng, SeedStream};
use std::collections::BTreeMap;
use std::time::Duration;

/// Domain-separation constants so execution faults, estimate skew, and
/// worker stalls draw from independent streams of the same plan seed.
const SCOPE_EXECUTE: u64 = 0x45584543; // "EXEC"
const SCOPE_ESTIMATE: u64 = 0x45535449; // "ESTI"
const SCOPE_STALL: u64 = 0x5354414c; // "STAL"

/// Per-backend fault probabilities and magnitudes.
///
/// All rates are probabilities in `[0, 1]` evaluated once per job (per
/// reseed), not per attempt: a job that draws a transient burst fails a
/// fixed number of attempts and then succeeds, so retry behaviour is
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Probability that a job sees a transient fault burst on this
    /// backend.
    pub transient_rate: f64,
    /// Length of a transient burst: the number of consecutive attempts
    /// that fail before the backend recovers (sampled uniformly in
    /// `1..=max_transient_attempts` when a burst fires).
    pub max_transient_attempts: u32,
    /// Probability that the backend is permanently faulted for a job
    /// (every attempt fails; the dispatcher must fail over).
    pub permanent_rate: f64,
    /// Probability of a latency spike on a successful execution.
    pub latency_spike_rate: f64,
    /// Wall-clock duration of a latency spike. Spikes delay execution but
    /// never change results.
    pub latency_spike: Duration,
    /// Probability that this backend's cost estimate for a kernel is
    /// corrupted (decided per kernel description, so planning stays a
    /// pure function of the kernel).
    pub estimate_skew_rate: f64,
    /// Multiplier applied to a corrupted estimate.
    pub estimate_skew: f64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            transient_rate: 0.0,
            max_transient_attempts: 1,
            permanent_rate: 0.0,
            latency_spike_rate: 0.0,
            latency_spike: Duration::ZERO,
            estimate_skew_rate: 0.0,
            estimate_skew: 1.0,
        }
    }
}

impl FaultSpec {
    /// A spec that injects transient bursts of up to `max_attempts`
    /// failing attempts with probability `rate` per job.
    #[must_use]
    pub fn transient(rate: f64, max_attempts: u32) -> Self {
        FaultSpec {
            transient_rate: rate,
            max_transient_attempts: max_attempts.max(1),
            ..FaultSpec::default()
        }
    }

    /// A spec that permanently faults the backend for a job with
    /// probability `rate`.
    #[must_use]
    pub fn permanent(rate: f64) -> Self {
        FaultSpec {
            permanent_rate: rate,
            ..FaultSpec::default()
        }
    }

    /// Adds a permanent-fault probability to this spec.
    #[must_use]
    pub fn with_permanent(mut self, rate: f64) -> Self {
        self.permanent_rate = rate;
        self
    }

    /// Adds latency spikes: with probability `rate`, a successful
    /// execution sleeps for `spike` first.
    #[must_use]
    pub fn with_latency_spike(mut self, rate: f64, spike: Duration) -> Self {
        self.latency_spike_rate = rate;
        self.latency_spike = spike;
        self
    }

    /// Adds estimate corruption: with probability `rate` (per kernel),
    /// the backend's cost estimate is scaled by `factor`.
    #[must_use]
    pub fn with_estimate_skew(mut self, rate: f64, factor: f64) -> Self {
        self.estimate_skew_rate = rate;
        self.estimate_skew = factor;
        self
    }
}

/// What the plan decided for one `(backend, job seed)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultDecision {
    /// Every attempt fails; the dispatcher must fail over.
    pub permanent: bool,
    /// Number of leading attempts that fail before the backend recovers
    /// (0 = no transient burst).
    pub transient_attempts: u32,
    /// Whether a successful execution sleeps for the spec's spike first.
    pub latency_spike: bool,
}

/// A seeded, deterministic schedule of injected faults.
///
/// Every decision the plan makes is a pure function of the plan seed and
/// the identifiers involved (backend name, job seed, kernel description),
/// so re-running a chaos workload with the same plan and the same job
/// seeds reproduces the exact same faults — the property that lets chaos
/// tests assert byte-for-byte identical outcomes and exact counters.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    seed: u64,
    backends: BTreeMap<String, FaultSpec>,
    worker_stall_rate: f64,
    worker_stall: Duration,
}

impl FaultPlan {
    /// An empty plan (no faults) rooted at `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// The plan's master seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Installs a fault spec for the backend named `name`.
    #[must_use]
    pub fn with_backend(mut self, name: &str, spec: FaultSpec) -> Self {
        self.backends.insert(name.to_string(), spec);
        self
    }

    /// Adds worker stalls: with probability `rate` per job, the serving
    /// worker sleeps for `stall` before dispatching. Stalls delay jobs
    /// (exercising queue pressure) but never change outcomes.
    #[must_use]
    pub fn with_worker_stall(mut self, rate: f64, stall: Duration) -> Self {
        self.worker_stall_rate = rate;
        self.worker_stall = stall;
        self
    }

    /// The canonical moderate chaos plan used by `loadgen --chaos`: every
    /// specialist suffers transient bursts, occasional permanent faults,
    /// latency spikes, and skewed estimates; the CPU fallback only ever
    /// faults transiently (within the default retry budget), so the pool
    /// degrades instead of dying and every job still completes.
    #[must_use]
    pub fn chaos(seed: u64) -> Self {
        let specialist = FaultSpec::transient(0.35, 2)
            .with_permanent(0.15)
            .with_latency_spike(0.10, Duration::from_micros(200))
            .with_estimate_skew(0.20, 6.0);
        FaultPlan::new(seed)
            .with_backend("quantum", specialist.clone())
            .with_backend("oscillator", specialist.clone())
            .with_backend("memcomputing", specialist)
            .with_backend("cpu", FaultSpec::transient(0.10, 1))
            .with_worker_stall(0.05, Duration::from_micros(300))
    }

    /// The spec installed for `backend`, if any.
    #[must_use]
    pub fn spec(&self, backend: &str) -> Option<&FaultSpec> {
        self.backends.get(backend)
    }

    /// Mixes the plan seed, a domain scope, a backend name, and a payload
    /// seed into one decision seed.
    fn mix(&self, scope: u64, backend: &str, seed: u64) -> u64 {
        // FNV-1a over the backend name keeps distinct names independent.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in backend.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut stream = SeedStream::new(self.seed ^ scope.rotate_left(32) ^ h);
        let domain = stream.next_seed();
        SeedStream::new(domain ^ seed).next_seed()
    }

    /// What this plan injects for one job (identified by its execution
    /// seed) on one backend. Pure: same inputs, same decision.
    #[must_use]
    pub fn decision(&self, backend: &str, job_seed: u64) -> FaultDecision {
        let Some(spec) = self.backends.get(backend) else {
            return FaultDecision::default();
        };
        let mut rng = rng_from_seed(self.mix(SCOPE_EXECUTE, backend, job_seed));
        // Fixed draw order keeps decisions independent of rate values.
        let permanent_draw = rng.gen_bool(spec.permanent_rate);
        let transient_draw = rng.gen_bool(spec.transient_rate);
        let burst = rng.gen_range(1..=spec.max_transient_attempts.max(1));
        let spike_draw = rng.gen_bool(spec.latency_spike_rate);
        FaultDecision {
            permanent: permanent_draw,
            transient_attempts: if transient_draw && !permanent_draw {
                burst
            } else {
                0
            },
            latency_spike: spike_draw,
        }
    }

    /// The multiplicative estimate skew for `backend` on a kernel
    /// description (1.0 = uncorrupted). Pure per kernel so planning stays
    /// deterministic.
    #[must_use]
    pub fn estimate_skew(&self, backend: &str, kernel_desc: &str) -> f64 {
        let Some(spec) = self.backends.get(backend) else {
            return 1.0;
        };
        if spec.estimate_skew_rate <= 0.0 {
            return 1.0;
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in kernel_desc.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut rng = rng_from_seed(self.mix(SCOPE_ESTIMATE, backend, h));
        if rng.gen_bool(spec.estimate_skew_rate) {
            spec.estimate_skew
        } else {
            1.0
        }
    }

    /// How long (if at all) a serving worker should stall before
    /// dispatching the job with this execution seed.
    #[must_use]
    pub fn worker_stall(&self, job_seed: u64) -> Option<Duration> {
        if self.worker_stall_rate <= 0.0 || self.worker_stall.is_zero() {
            return None;
        }
        let mut rng = rng_from_seed(self.mix(SCOPE_STALL, "worker", job_seed));
        rng.gen_bool(self.worker_stall_rate)
            .then_some(self.worker_stall)
    }

    /// Wraps one backend with this plan. Backends with no spec installed
    /// are returned unwrapped (zero overhead).
    #[must_use]
    pub fn wrap(&self, backend: Box<dyn Accelerator>) -> Box<dyn Accelerator> {
        if self.backends.contains_key(backend.name()) {
            Box::new(FaultyBackend::new(self.clone(), backend))
        } else {
            backend
        }
    }

    /// Wraps every backend in a pool that has a spec installed.
    #[must_use]
    pub fn instrument(&self, pool: Vec<Box<dyn Accelerator>>) -> Vec<Box<dyn Accelerator>> {
        pool.into_iter().map(|b| self.wrap(b)).collect()
    }
}

/// An [`Accelerator`] wrapper that injects the faults a [`FaultPlan`]
/// schedules for it.
///
/// The wrapper derives its fault decision at [`Accelerator::reseed`] time
/// (once per job) and counts attempts across retries, so a transient
/// burst fails exactly `transient_attempts` executions and then recovers.
/// Before delegating a successful execution it re-reseeds the inner
/// backend, keeping the inner result a pure function of `(kernel, seed)`
/// even when earlier attempts consumed backend state.
pub struct FaultyBackend {
    plan: FaultPlan,
    inner: Box<dyn Accelerator>,
    name: String,
    seed: Option<u64>,
    attempts: u32,
    decision: FaultDecision,
    /// Fallback decision stream for callers that never reseed.
    unseeded_jobs: u64,
    job_active: bool,
}

impl FaultyBackend {
    /// Wraps `inner` under `plan`.
    #[must_use]
    pub fn new(plan: FaultPlan, inner: Box<dyn Accelerator>) -> Self {
        let name = inner.name().to_string();
        FaultyBackend {
            plan,
            inner,
            name,
            seed: None,
            attempts: 0,
            decision: FaultDecision::default(),
            unseeded_jobs: 0,
            job_active: false,
        }
    }

    /// The decision governing the current job.
    #[must_use]
    pub fn decision_now(&self) -> FaultDecision {
        self.decision
    }

    fn begin_job(&mut self, seed: u64) {
        self.decision = self.plan.decision(&self.name, seed);
        self.attempts = 0;
        self.job_active = true;
    }

    fn ensure_job(&mut self) {
        if !self.job_active {
            // No reseed since the last job: derive a deterministic
            // per-execution seed from a local counter instead.
            self.unseeded_jobs += 1;
            let seed = self.seed.unwrap_or(0) ^ self.unseeded_jobs;
            self.begin_job(seed);
        }
    }
}

impl Accelerator for FaultyBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn supports(&self, kernel: &Kernel) -> bool {
        self.inner.supports(kernel)
    }

    fn estimate(&self, kernel: &Kernel) -> Option<CostEstimate> {
        self.inner
            .estimate(kernel)
            .map(|e| e.scaled(self.plan.estimate_skew(&self.name, &kernel.describe())))
    }

    fn reseed(&mut self, seed: u64) {
        self.seed = Some(seed);
        self.begin_job(seed);
        self.inner.reseed(seed);
    }

    fn execute(&mut self, kernel: &Kernel) -> Result<KernelExecution, AccelError> {
        self.ensure_job();
        self.attempts += 1;
        if self.decision.permanent {
            self.job_active = false;
            return Err(AccelError::DeviceFault {
                backend: self.name.clone(),
                transient: false,
                detail: format!(
                    "injected permanent device fault (plan seed {})",
                    self.plan.seed
                ),
            });
        }
        if self.attempts <= self.decision.transient_attempts {
            return Err(AccelError::DeviceFault {
                backend: self.name.clone(),
                transient: true,
                detail: format!(
                    "injected transient device fault, attempt {}/{} (plan seed {})",
                    self.attempts, self.decision.transient_attempts, self.plan.seed
                ),
            });
        }
        if self.decision.latency_spike {
            if let Some(spec) = self.plan.spec(&self.name) {
                if !spec.latency_spike.is_zero() {
                    std::thread::sleep(spec.latency_spike);
                }
            }
        }
        // Earlier (faulted) attempts may have consumed inner RNG state;
        // re-reseed so the delegated result stays a pure function of
        // (kernel, seed) regardless of how many retries preceded it.
        if let Some(seed) = self.seed {
            self.inner.reseed(seed);
        }
        let result = self.inner.execute(kernel);
        self.job_active = false;
        result
    }
}

impl std::fmt::Debug for FaultyBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyBackend")
            .field("name", &self.name)
            .field("plan_seed", &self.plan.seed)
            .field("decision", &self.decision)
            .field("attempts", &self.attempts)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::CpuBackend;

    fn kernel() -> Kernel {
        Kernel::Factor { n: 15 }
    }

    #[test]
    fn decisions_are_pure_functions_of_inputs() {
        let plan = FaultPlan::chaos(42);
        for seed in [0u64, 1, 99, u64::MAX] {
            for backend in ["quantum", "oscillator", "memcomputing", "cpu"] {
                assert_eq!(
                    plan.decision(backend, seed),
                    plan.decision(backend, seed),
                    "{backend}/{seed}"
                );
            }
        }
        // Distinct plan seeds give distinct schedules somewhere.
        let other = FaultPlan::chaos(43);
        let differs = (0..64).any(|s| plan.decision("quantum", s) != other.decision("quantum", s));
        assert!(differs, "two plan seeds produced identical schedules");
    }

    #[test]
    fn rates_behave_like_probabilities() {
        let plan = FaultPlan::new(7)
            .with_backend("cpu", FaultSpec::transient(0.5, 3).with_permanent(0.25));
        let n = 4000;
        let mut permanent = 0usize;
        let mut transient = 0usize;
        for seed in 0..n {
            let d = plan.decision("cpu", seed);
            if d.permanent {
                permanent += 1;
                assert_eq!(d.transient_attempts, 0, "permanent excludes transient");
            } else if d.transient_attempts > 0 {
                transient += 1;
                assert!(d.transient_attempts <= 3);
            }
        }
        let p = permanent as f64 / n as f64;
        assert!((p - 0.25).abs() < 0.05, "permanent rate {p}");
        // Transient fires on the non-permanent 75% at rate 0.5 ⇒ ~37.5%.
        let t = transient as f64 / n as f64;
        assert!((t - 0.375).abs() < 0.05, "transient rate {t}");
    }

    #[test]
    fn zero_rate_plan_never_faults() {
        let plan = FaultPlan::new(1).with_backend("cpu", FaultSpec::default());
        for seed in 0..256 {
            assert_eq!(plan.decision("cpu", seed), FaultDecision::default());
        }
        assert_eq!(plan.worker_stall(3), None);
        assert_eq!(plan.estimate_skew("cpu", "factor(15)"), 1.0);
    }

    #[test]
    fn unlisted_backend_is_left_unwrapped_and_unfaulted() {
        let plan = FaultPlan::new(5).with_backend("quantum", FaultSpec::permanent(1.0));
        assert_eq!(plan.decision("cpu", 9), FaultDecision::default());
        let mut cpu = plan.wrap(Box::new(CpuBackend::new(1)));
        cpu.reseed(9);
        assert!(cpu.execute(&kernel()).is_ok());
    }

    #[test]
    fn transient_burst_fails_then_recovers_with_pure_result() {
        let plan = FaultPlan::new(3).with_backend("cpu", FaultSpec::transient(1.0, 2));
        let mut faulty = plan.wrap(Box::new(CpuBackend::new(1)));
        let mut clean = CpuBackend::new(1);
        clean.reseed(77);
        let expected = clean.execute(&kernel()).unwrap();

        faulty.reseed(77);
        let burst = plan.decision("cpu", 77).transient_attempts;
        assert!(burst >= 1);
        for attempt in 0..burst {
            match faulty.execute(&kernel()) {
                Err(AccelError::DeviceFault {
                    transient: true, ..
                }) => {}
                other => panic!("attempt {attempt}: expected transient fault, got {other:?}"),
            }
        }
        let run = faulty.execute(&kernel()).unwrap();
        assert_eq!(
            run.result, expected.result,
            "retry must not perturb the result"
        );
    }

    #[test]
    fn permanent_fault_fails_every_attempt() {
        let plan = FaultPlan::new(11).with_backend("cpu", FaultSpec::permanent(1.0));
        let mut faulty = plan.wrap(Box::new(CpuBackend::new(1)));
        faulty.reseed(5);
        for _ in 0..4 {
            match faulty.execute(&kernel()) {
                Err(AccelError::DeviceFault {
                    transient: false, ..
                }) => {}
                other => panic!("expected permanent fault, got {other:?}"),
            }
        }
    }

    #[test]
    fn estimate_skew_is_deterministic_and_scales() {
        let plan = FaultPlan::new(2)
            .with_backend("cpu", FaultSpec::default().with_estimate_skew(1.0, 8.0));
        let faulty = plan.wrap(Box::new(CpuBackend::new(1)));
        let clean = CpuBackend::new(1);
        let k = kernel();
        let raw = clean.estimate(&k).unwrap();
        let skewed = faulty.estimate(&k).unwrap();
        assert!((skewed.device_seconds - 8.0 * raw.device_seconds).abs() < 1e-18);
        assert_eq!(
            faulty.estimate(&k).unwrap().device_seconds,
            skewed.device_seconds
        );
    }

    #[test]
    fn worker_stall_fires_at_configured_rate() {
        let plan = FaultPlan::new(9).with_worker_stall(0.5, Duration::from_micros(10));
        let hits = (0..2000)
            .filter(|&s| plan.worker_stall(s).is_some())
            .count();
        let rate = hits as f64 / 2000.0;
        assert!((rate - 0.5).abs() < 0.05, "stall rate {rate}");
        assert_eq!(plan.worker_stall(0), plan.worker_stall(0));
    }

    #[test]
    fn instrument_wraps_only_listed_backends() {
        let plan = FaultPlan::new(4).with_backend("cpu", FaultSpec::permanent(1.0));
        let pool: Vec<Box<dyn Accelerator>> = vec![
            Box::new(CpuBackend::new(1)),
            Box::new(crate::backends::QuantumBackend::new(2)),
        ];
        let pool = plan.instrument(pool);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool[0].name(), "cpu");
        assert_eq!(pool[1].name(), "quantum");
    }
}
