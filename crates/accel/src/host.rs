//! The host runtime (paper Fig. 1).
//!
//! Owns a set of [`Accelerator`] backends and dispatches kernels to them —
//! "end-user application developers are capable of programming their source
//! code to be compiled and executed on the quantum device" — while keeping
//! per-backend utilization accounting so the heterogeneous-speedup
//! experiment (E12) can compare specialized dispatch against a CPU-only
//! configuration.
//!
//! # Example
//!
//! ```
//! use accel::accelerator::CpuBackend;
//! use accel::host::{DispatchPolicy, HostRuntime};
//! use accel::kernel::Kernel;
//!
//! let mut host = HostRuntime::new(DispatchPolicy::PreferSpecialized);
//! host.register(Box::new(CpuBackend::new(1)));
//! let run = host.dispatch(&Kernel::Factor { n: 15 })?;
//! # Ok::<(), accel::AccelError>(())
//! ```

use crate::accelerator::Accelerator;
use crate::kernel::{Kernel, KernelExecution};
use crate::AccelError;
use std::collections::BTreeMap;

/// How the host picks a backend for a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Use the first non-CPU backend that supports the kernel, falling back
    /// to any supporting backend (the heterogeneous configuration).
    PreferSpecialized,
    /// Use only the backend named "cpu" (the von Neumann baseline).
    CpuOnly,
}

/// Per-backend aggregate statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BackendStats {
    /// Kernels executed on this backend.
    pub kernels: u64,
    /// Total modelled device time (seconds).
    pub device_seconds: f64,
    /// Total backend operations.
    pub operations: u64,
}

/// The host runtime: backends + dispatch accounting.
pub struct HostRuntime {
    policy: DispatchPolicy,
    backends: Vec<Box<dyn Accelerator>>,
    stats: BTreeMap<String, BackendStats>,
}

impl std::fmt::Debug for HostRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostRuntime")
            .field("policy", &self.policy)
            .field(
                "backends",
                &self
                    .backends
                    .iter()
                    .map(|b| b.name().to_string())
                    .collect::<Vec<_>>(),
            )
            .field("stats", &self.stats)
            .finish()
    }
}

impl HostRuntime {
    /// Creates an empty host with the given policy.
    #[must_use]
    pub fn new(policy: DispatchPolicy) -> Self {
        HostRuntime {
            policy,
            backends: Vec::new(),
            stats: BTreeMap::new(),
        }
    }

    /// The dispatch policy.
    #[must_use]
    pub fn policy(&self) -> DispatchPolicy {
        self.policy
    }

    /// Registers a backend (later registrations have lower priority).
    pub fn register(&mut self, backend: Box<dyn Accelerator>) {
        self.stats
            .entry(backend.name().to_string())
            .or_default();
        self.backends.push(backend);
    }

    /// The registered backend names, in priority order.
    #[must_use]
    pub fn backend_names(&self) -> Vec<String> {
        self.backends.iter().map(|b| b.name().to_string()).collect()
    }

    /// Dispatches one kernel according to the policy.
    ///
    /// # Errors
    ///
    /// * [`AccelError::NoBackend`] when nothing supports the kernel under
    ///   the policy.
    /// * Propagates backend execution failures.
    pub fn dispatch(&mut self, kernel: &Kernel) -> Result<KernelExecution, AccelError> {
        let idx = match self.policy {
            DispatchPolicy::CpuOnly => self
                .backends
                .iter()
                .position(|b| b.name() == "cpu" && b.supports(kernel)),
            DispatchPolicy::PreferSpecialized => self
                .backends
                .iter()
                .position(|b| b.name() != "cpu" && b.supports(kernel))
                .or_else(|| self.backends.iter().position(|b| b.supports(kernel))),
        };
        let Some(idx) = idx else {
            return Err(AccelError::NoBackend {
                kernel: kernel.describe(),
            });
        };
        let backend = &mut self.backends[idx];
        let name = backend.name().to_string();
        let execution = backend.execute(kernel)?;
        let entry = self.stats.entry(name).or_default();
        entry.kernels += 1;
        entry.device_seconds += execution.cost.device_seconds;
        entry.operations += execution.cost.operations;
        Ok(execution)
    }

    /// Runs a workload of kernels, returning the executions in order.
    ///
    /// # Errors
    ///
    /// Fails on the first kernel that cannot be dispatched or executed.
    pub fn run_workload(
        &mut self,
        kernels: &[Kernel],
    ) -> Result<Vec<KernelExecution>, AccelError> {
        kernels.iter().map(|k| self.dispatch(k)).collect()
    }

    /// Per-backend aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> &BTreeMap<String, BackendStats> {
        &self.stats
    }

    /// Total modelled device time across backends.
    #[must_use]
    pub fn total_device_seconds(&self) -> f64 {
        self.stats.values().map(|s| s.device_seconds).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::CpuBackend;
    use crate::backends::{MemBackend, QuantumBackend};
    use crate::kernel::KernelResult;
    use mem::generators::planted_3sat;

    fn hetero_host() -> HostRuntime {
        let mut host = HostRuntime::new(DispatchPolicy::PreferSpecialized);
        host.register(Box::new(QuantumBackend::new(1)));
        host.register(Box::new(MemBackend::new(2)));
        host.register(Box::new(CpuBackend::new(3)));
        host
    }

    #[test]
    fn specialized_dispatch_routes_by_class() {
        let mut host = hetero_host();
        host.dispatch(&Kernel::Factor { n: 15 }).unwrap();
        let inst = planted_3sat(12, 3.5, 1).unwrap();
        host.dispatch(&Kernel::SolveSat {
            formula: inst.formula,
        })
        .unwrap();
        let stats = host.stats();
        assert_eq!(stats["quantum"].kernels, 1);
        assert_eq!(stats["memcomputing"].kernels, 1);
        assert_eq!(stats["cpu"].kernels, 0);
    }

    #[test]
    fn cpu_fallback_for_unclaimed_kernels() {
        let mut host = hetero_host();
        // No oscillator backend registered: Compare falls back to CPU.
        let run = host.dispatch(&Kernel::Compare { x: 0.2, y: 0.7 }).unwrap();
        match run.result {
            KernelResult::Distance(d) => assert!((d - 0.5).abs() < 1e-12),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(host.stats()["cpu"].kernels, 1);
    }

    #[test]
    fn cpu_only_policy_ignores_specialized() {
        let mut host = HostRuntime::new(DispatchPolicy::CpuOnly);
        host.register(Box::new(QuantumBackend::new(1)));
        host.register(Box::new(CpuBackend::new(2)));
        host.dispatch(&Kernel::Factor { n: 21 }).unwrap();
        assert_eq!(host.stats()["cpu"].kernels, 1);
        assert_eq!(host.stats()["quantum"].kernels, 0);
    }

    #[test]
    fn no_backend_error() {
        let mut host = HostRuntime::new(DispatchPolicy::CpuOnly);
        host.register(Box::new(QuantumBackend::new(1)));
        assert!(matches!(
            host.dispatch(&Kernel::Factor { n: 15 }),
            Err(AccelError::NoBackend { .. })
        ));
    }

    #[test]
    fn workload_accumulates_stats() {
        let mut host = hetero_host();
        let kernels = vec![
            Kernel::Factor { n: 15 },
            Kernel::Search {
                n_qubits: 5,
                marked: vec![7],
            },
            Kernel::Compare { x: 0.1, y: 0.3 },
        ];
        let runs = host.run_workload(&kernels).unwrap();
        assert_eq!(runs.len(), 3);
        assert!(host.total_device_seconds() > 0.0);
        assert_eq!(host.stats()["quantum"].kernels, 2);
    }

    #[test]
    fn backend_names_in_priority_order() {
        let host = hetero_host();
        assert_eq!(host.backend_names(), vec!["quantum", "memcomputing", "cpu"]);
    }
}
