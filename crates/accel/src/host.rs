//! The host runtime (paper Fig. 1).
//!
//! Owns a set of [`Accelerator`] backends and dispatches kernels to them —
//! "end-user application developers are capable of programming their source
//! code to be compiled and executed on the quantum device" — while keeping
//! per-backend utilization accounting so the heterogeneous-speedup
//! experiment (E12) can compare specialized dispatch against a CPU-only
//! configuration.
//!
//! # Example
//!
//! ```
//! use accel::accelerator::CpuBackend;
//! use accel::host::{DispatchPolicy, HostRuntime};
//! use accel::kernel::Kernel;
//!
//! let mut host = HostRuntime::new(DispatchPolicy::PreferSpecialized);
//! host.register(Box::new(CpuBackend::new(1)));
//! let run = host.dispatch(&Kernel::Factor { n: 15 })?;
//! # Ok::<(), accel::AccelError>(())
//! ```

use crate::accelerator::Accelerator;
use crate::kernel::{CostEstimate, Kernel, KernelExecution};
use crate::AccelError;
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Locks a mutex, recovering the guard from a poisoned lock. The hedged
/// race holds locks only around plain-data updates, so a panic elsewhere
/// cannot leave the protected state half-written.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How the host picks a backend for a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Use the first non-CPU backend that supports the kernel, falling back
    /// to any supporting backend (the heterogeneous configuration).
    PreferSpecialized,
    /// Use only the backend named "cpu" (the von Neumann baseline).
    CpuOnly,
    /// Pick the backend with the smallest corrected predicted device time.
    MinPredictedLatency,
    /// Pick the backend with the smallest corrected predicted energy.
    MinPredictedEnergy,
    /// Prefer the specialized backend, but fall back to the cheapest
    /// backend (typically the CPU) whenever the specialist's corrected
    /// estimate would blow the job's deadline budget. With no deadline this
    /// behaves like [`DispatchPolicy::MinPredictedLatency`].
    DeadlineAware,
}

/// The EWMA smoothing weight for predicted-vs-actual corrections.
pub const CORRECTION_ALPHA: f64 = 0.25;

/// Per-backend multiplicative correction factors on cost estimates,
/// learned from predicted-vs-actual device time.
///
/// A factor of 1.0 means the model is trusted as-is; 2.0 means the backend
/// has been running twice as slow as predicted, so estimates are doubled
/// before ranking. Unknown backends default to 1.0.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CorrectionTable {
    factors: BTreeMap<String, f64>,
}

impl CorrectionTable {
    /// An identity table (every factor 1.0).
    #[must_use]
    pub fn new() -> Self {
        CorrectionTable::default()
    }

    /// The correction factor for a backend (1.0 when unknown).
    #[must_use]
    pub fn factor(&self, backend: &str) -> f64 {
        self.factors.get(backend).copied().unwrap_or(1.0)
    }

    /// Pins a backend's correction factor (non-finite or non-positive
    /// values are ignored).
    pub fn set(&mut self, backend: &str, factor: f64) {
        if factor.is_finite() && factor > 0.0 {
            self.factors.insert(backend.to_string(), factor);
        }
    }

    /// Folds one predicted-vs-actual observation into the backend's
    /// factor: `f ← (1−α)·f + α·(actual/predicted)`, with the ratio
    /// clamped to `[1e-3, 1e3]` so one pathological sample cannot wreck
    /// the table.
    pub fn observe(&mut self, backend: &str, predicted_seconds: f64, actual_seconds: f64) {
        if !(predicted_seconds > 0.0) || !actual_seconds.is_finite() || actual_seconds < 0.0 {
            return;
        }
        let ratio = (actual_seconds / predicted_seconds).clamp(1e-3, 1e3);
        let current = self.factor(backend);
        self.factors.insert(
            backend.to_string(),
            (1.0 - CORRECTION_ALPHA) * current + CORRECTION_ALPHA * ratio,
        );
    }

    /// Iterates `(backend, factor)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.factors.iter().map(|(name, &f)| (name.as_str(), f))
    }
}

/// One ranked dispatch plan: the backends to try, best first, with the
/// corrected estimate the ranking used for each.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// `(backend index, corrected estimate)` in the order dispatch should
    /// attempt execution. The estimate is `None` when the backend offers
    /// no cost model for the kernel.
    pub ranked: Vec<(usize, Option<CostEstimate>)>,
}

/// The predictive dispatch planner: ranks candidate backends for a kernel
/// under a policy, using each backend's [`CostEstimate`] scaled by the
/// EWMA [`CorrectionTable`].
///
/// An *adaptive* planner updates its corrections after every execution —
/// right for a single-threaded host where later routing may benefit from
/// what earlier jobs revealed. A *frozen* planner never mutates its table,
/// making routing a pure function of `(kernel, policy, deadline)` — the
/// property the concurrent `runtime` crate needs so that results do not
/// depend on scheduling history. Frozen planners are still calibratable
/// *between* runs: harvest observed corrections from run N's stats and
/// construct run N+1's planner with them.
#[derive(Debug, Clone)]
pub struct Planner {
    corrections: CorrectionTable,
    adaptive: bool,
}

impl Default for Planner {
    fn default() -> Self {
        Planner::adaptive()
    }
}

impl Planner {
    /// A planner that keeps learning corrections from every execution.
    #[must_use]
    pub fn adaptive() -> Self {
        Planner {
            corrections: CorrectionTable::new(),
            adaptive: true,
        }
    }

    /// A planner with fixed corrections; routing never drifts mid-run.
    #[must_use]
    pub fn frozen(corrections: CorrectionTable) -> Self {
        Planner {
            corrections,
            adaptive: false,
        }
    }

    /// Whether this planner updates corrections online.
    #[must_use]
    pub fn is_adaptive(&self) -> bool {
        self.adaptive
    }

    /// The current correction table.
    #[must_use]
    pub fn corrections(&self) -> &CorrectionTable {
        &self.corrections
    }

    /// A backend's estimate for `kernel`, scaled by its correction factor.
    #[must_use]
    pub fn corrected(&self, backend: &dyn Accelerator, kernel: &Kernel) -> Option<CostEstimate> {
        backend
            .estimate(kernel)
            .map(|e| e.scaled(self.corrections.factor(backend.name())))
    }

    fn observe(&mut self, backend: &str, predicted_seconds: f64, actual_seconds: f64) {
        if self.adaptive {
            self.corrections
                .observe(backend, predicted_seconds, actual_seconds);
        }
    }

    /// Ranks the backends that should execute `kernel` under `policy`.
    ///
    /// `deadline_seconds` is the job's device-time budget, consulted only
    /// by [`DispatchPolicy::DeadlineAware`].
    ///
    /// # Errors
    ///
    /// * [`AccelError::NoBackend`] when no registered backend is a
    ///   candidate under the policy (`tried` lists every registered name).
    /// * [`AccelError::DeadlineUnmeetable`] when candidates exist but none
    ///   is predicted to finish inside the deadline budget.
    pub fn plan(
        &self,
        backends: &[Box<dyn Accelerator>],
        kernel: &Kernel,
        policy: DispatchPolicy,
        deadline_seconds: Option<f64>,
    ) -> Result<Plan, AccelError> {
        let no_backend = || AccelError::NoBackend {
            kernel: kernel.describe(),
            tried: backends.iter().map(|b| b.name().to_string()).collect(),
        };
        let candidates: Vec<(usize, Option<CostEstimate>)> = backends
            .iter()
            .enumerate()
            .filter(|(_, b)| b.supports(kernel))
            .filter(|(_, b)| policy != DispatchPolicy::CpuOnly || b.name() == "cpu")
            .map(|(i, b)| (i, self.corrected(b.as_ref(), kernel)))
            .collect();
        if candidates.is_empty() {
            return Err(no_backend());
        }

        // Ranking keys; backends without an estimate sort last (stable
        // sort keeps ties in registration order, preserving determinism).
        let latency = |e: &Option<CostEstimate>| e.map_or(f64::INFINITY, |e| e.device_seconds);
        let energy = |e: &Option<CostEstimate>| e.map_or(f64::INFINITY, |e| e.energy_joules);

        let mut ranked = candidates;
        match policy {
            DispatchPolicy::CpuOnly => {}
            DispatchPolicy::PreferSpecialized => {
                // Compatibility ordering: non-CPU backends in registration
                // order first, then the rest.
                // lint:allow(panic::index, reason = "candidate indices come from enumerate over backends")
                ranked.sort_by_key(|&(i, _)| backends[i].name() == "cpu");
            }
            DispatchPolicy::MinPredictedLatency => {
                ranked.sort_by(|a, b| latency(&a.1).total_cmp(&latency(&b.1)));
            }
            DispatchPolicy::MinPredictedEnergy => {
                ranked.sort_by(|a, b| energy(&a.1).total_cmp(&energy(&b.1)));
            }
            DispatchPolicy::DeadlineAware => {
                ranked.sort_by(|a, b| latency(&a.1).total_cmp(&latency(&b.1)));
                if let Some(budget) = deadline_seconds {
                    // A backend with no estimate cannot be shown to fit.
                    let best = ranked.first().map_or(f64::INFINITY, |r| latency(&r.1));
                    ranked.retain(|(_, e)| latency(e) <= budget);
                    if ranked.is_empty() {
                        return Err(AccelError::DeadlineUnmeetable {
                            kernel: kernel.describe(),
                            deadline_seconds: budget,
                            best_seconds: best,
                        });
                    }
                    // Among the backends that fit, keep the specialist
                    // preference: the whole point of the deadline check is
                    // to fall back only when the specialist cannot finish.
                    // lint:allow(panic::index, reason = "candidate indices come from enumerate over backends")
                    ranked.sort_by_key(|&(i, _)| backends[i].name() == "cpu");
                }
            }
        }
        Ok(Plan { ranked })
    }
}

/// How the dispatcher retries a backend that reports a *transient*
/// [`AccelError::DeviceFault`] before failing over to the next-ranked
/// candidate.
///
/// Retry `k` (1-based) sleeps `min(base_backoff · 2^(k−1), max_backoff)`
/// first — capped exponential backoff. Permanent faults are never
/// retried; they fail over immediately.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the first faulted attempt (0 = fail over at once).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(5),
        }
    }
}

impl RetryPolicy {
    /// A policy that retries without sleeping — what deterministic tests
    /// and bounded-wall-clock chaos runs use.
    #[must_use]
    pub fn no_backoff(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// The backoff before retry number `retry` (1-based).
    #[must_use]
    pub fn backoff(&self, retry: u32) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let shift = retry.saturating_sub(1).min(16);
        (self.base_backoff * (1u32 << shift)).min(self.max_backoff)
    }
}

/// When the dispatcher quarantines a backend and how often it probes for
/// recovery.
///
/// A backend that fault-exhausts `threshold` consecutive dispatches is
/// quarantined: the dispatch walk skips it so the pool degrades
/// gracefully instead of burning retries on dead hardware. Every
/// `probe_interval`-th dispatch that would have used the backend probes
/// it instead; a successful probe lifts the quarantine.
///
/// Quarantine is history-dependent: with it enabled, routing depends on
/// the order dispatches were served, so workloads that need routing to be
/// a pure function of the job (e.g. byte-for-byte determinism checks
/// across worker counts) should use [`QuarantinePolicy::disabled`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantinePolicy {
    /// Consecutive fault-exhausted dispatches before quarantine
    /// (`u32::MAX` disables quarantine entirely).
    pub threshold: u32,
    /// Quarantined-candidate dispatches between recovery probes.
    pub probe_interval: u64,
}

impl Default for QuarantinePolicy {
    fn default() -> Self {
        QuarantinePolicy {
            threshold: 2,
            probe_interval: 8,
        }
    }
}

impl QuarantinePolicy {
    /// Never quarantine (routing stays a pure function of the job).
    #[must_use]
    pub fn disabled() -> Self {
        QuarantinePolicy {
            threshold: u32::MAX,
            probe_interval: u64::MAX,
        }
    }

    /// Whether this policy can ever quarantine a backend.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.threshold != u32::MAX
    }
}

/// Fault and failover counters the host accumulates across dispatches.
///
/// The serving runtime drains this after every dispatch (success *or*
/// failure — a failed dispatch returns no report to hang counters on) and
/// folds it into `RuntimeStats`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultLedger {
    /// Faulted execution attempts per backend name.
    pub faults_by_backend: BTreeMap<String, u64>,
    /// Same-backend retries performed after transient faults.
    pub retries: u64,
    /// Jobs that completed on a backend other than their first-ranked
    /// candidate because an earlier candidate faulted or was quarantined.
    pub reroutes: u64,
    /// Backends newly placed under quarantine.
    pub quarantine_events: u64,
    /// Recovery probes sent to quarantined backends.
    pub recovery_probes: u64,
}

impl FaultLedger {
    /// Total faulted execution attempts across backends.
    #[must_use]
    pub fn total_faults(&self) -> u64 {
        self.faults_by_backend.values().sum()
    }

    /// Whether anything has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults_by_backend.is_empty()
            && self.retries == 0
            && self.reroutes == 0
            && self.quarantine_events == 0
            && self.recovery_probes == 0
    }

    /// Adds every counter of `other` into this ledger.
    pub fn merge(&mut self, other: &FaultLedger) {
        for (name, n) in &other.faults_by_backend {
            *self.faults_by_backend.entry(name.clone()).or_default() += n;
        }
        self.retries += other.retries;
        self.reroutes += other.reroutes;
        self.quarantine_events += other.quarantine_events;
        self.recovery_probes += other.recovery_probes;
    }
}

/// Per-backend quarantine bookkeeping.
#[derive(Debug, Clone, Copy, Default)]
struct QuarantineEntry {
    consecutive_exhausted: u32,
    quarantined: bool,
    since_probe: u64,
}

/// Per-backend aggregate statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BackendStats {
    /// Kernels executed on this backend.
    pub kernels: u64,
    /// Total modelled device time (seconds).
    pub device_seconds: f64,
    /// Total backend operations.
    pub operations: u64,
}

/// A completed dispatch: which backend ran the kernel, and the execution.
#[derive(Debug, Clone, PartialEq)]
pub struct DispatchReport {
    /// Name of the backend that executed the kernel.
    pub backend: String,
    /// The execution result and cost.
    pub execution: KernelExecution,
    /// The corrected cost estimate the planner ranked this backend with
    /// (`None` when the backend offers no model for the kernel).
    pub estimate: Option<CostEstimate>,
    /// Execution attempts this dispatch made, including faulted ones.
    pub attempts: u32,
    /// Faulted attempts encountered along the way (0 = clean dispatch).
    pub faults: u32,
    /// Whether the job landed on a backend other than its first-ranked
    /// candidate because an earlier candidate faulted or was quarantined.
    pub rerouted: bool,
}

/// What one raced candidate contributed to a hedged dispatch (see
/// [`HostRuntime::dispatch_hedged`]).
#[derive(Debug, Clone, PartialEq)]
pub struct HedgeOutcome {
    /// The candidate backend's name.
    pub backend: String,
    /// Its position in the planner ranking (0 = first choice).
    pub rank: u32,
    /// The raw (uncorrected) cost estimate it was raced under.
    pub predicted: Option<CostEstimate>,
    /// The modelled device seconds its execution actually cost.
    pub actual_device_seconds: f64,
    /// Whether this candidate's result was the one returned.
    pub won: bool,
}

/// Accounting for one hedged dispatch: which candidates raced, what each
/// completed execution cost, and how many losers conceded early.
///
/// The serving layer feeds every completed [`HedgeOutcome`] — winner and
/// losers alike — into its predicted-vs-actual calibration, so hedging
/// continuously sharpens the cost model for *all* raced substrates, not
/// just the one that happened to win.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HedgeReport {
    /// Candidates that entered the race.
    pub candidates: u32,
    /// The winning candidate's rank (0 = the planner's first choice).
    pub winner_rank: u32,
    /// Losing candidates that conceded (stopped retrying) after a
    /// higher-ranked candidate had already succeeded.
    pub losers_cancelled: u32,
    /// Every completed candidate execution, in rank order.
    pub outcomes: Vec<HedgeOutcome>,
}

/// Per-dispatch overrides threaded down from the serving layers.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DispatchRequest {
    /// Reseed the selected backend before executing (see
    /// [`HostRuntime::dispatch_traced`]).
    pub reseed: Option<u64>,
    /// Override the host's default policy for this kernel only.
    pub policy: Option<DispatchPolicy>,
    /// Device-time budget in seconds for
    /// [`DispatchPolicy::DeadlineAware`].
    pub deadline_seconds: Option<f64>,
}

/// The host runtime: backends + planner + dispatch accounting.
pub struct HostRuntime {
    policy: DispatchPolicy,
    backends: Vec<Box<dyn Accelerator>>,
    stats: BTreeMap<String, BackendStats>,
    planner: Planner,
    retry: RetryPolicy,
    quarantine: QuarantinePolicy,
    quarantine_state: BTreeMap<String, QuarantineEntry>,
    ledger: FaultLedger,
}

impl std::fmt::Debug for HostRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostRuntime")
            .field("policy", &self.policy)
            .field(
                "backends",
                &self
                    .backends
                    .iter()
                    .map(|b| b.name().to_string())
                    .collect::<Vec<_>>(),
            )
            .field("stats", &self.stats)
            .finish()
    }
}

impl HostRuntime {
    /// Creates an empty host with the given policy and an adaptive
    /// planner that keeps learning cost corrections online.
    #[must_use]
    pub fn new(policy: DispatchPolicy) -> Self {
        HostRuntime {
            policy,
            backends: Vec::new(),
            stats: BTreeMap::new(),
            planner: Planner::adaptive(),
            retry: RetryPolicy::default(),
            quarantine: QuarantinePolicy::default(),
            quarantine_state: BTreeMap::new(),
            ledger: FaultLedger::default(),
        }
    }

    /// Creates an empty host whose planner uses *frozen* corrections:
    /// routing stays a pure function of `(kernel, policy, deadline)`, as
    /// the concurrent `runtime` workers require for reproducible results.
    #[must_use]
    pub fn with_corrections(policy: DispatchPolicy, corrections: CorrectionTable) -> Self {
        HostRuntime {
            policy,
            backends: Vec::new(),
            stats: BTreeMap::new(),
            planner: Planner::frozen(corrections),
            retry: RetryPolicy::default(),
            quarantine: QuarantinePolicy::default(),
            quarantine_state: BTreeMap::new(),
            ledger: FaultLedger::default(),
        }
    }

    /// Sets how transient device faults are retried.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// The retry policy in effect.
    #[must_use]
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Sets when faulting backends are quarantined and probed.
    pub fn set_quarantine_policy(&mut self, quarantine: QuarantinePolicy) {
        self.quarantine = quarantine;
    }

    /// The quarantine policy in effect.
    #[must_use]
    pub fn quarantine_policy(&self) -> QuarantinePolicy {
        self.quarantine
    }

    /// Names of the backends currently under quarantine.
    #[must_use]
    pub fn quarantined_backends(&self) -> Vec<String> {
        self.quarantine_state
            .iter()
            .filter(|(_, e)| e.quarantined)
            .map(|(name, _)| name.clone())
            .collect()
    }

    /// Takes the fault/failover counters accumulated since the last
    /// drain, leaving the ledger empty. The serving runtime calls this
    /// after every dispatch and folds the result into its statistics.
    pub fn drain_faults(&mut self) -> FaultLedger {
        std::mem::take(&mut self.ledger)
    }

    /// Whether the dispatch walk should skip this quarantined candidate,
    /// counting down to (and accounting for) recovery probes.
    fn quarantine_gate(&mut self, name: &str) -> bool {
        if !self.quarantine.is_enabled() {
            return false;
        }
        let interval = self.quarantine.probe_interval.max(1);
        let Some(entry) = self.quarantine_state.get_mut(name) else {
            return false;
        };
        if !entry.quarantined {
            return false;
        }
        entry.since_probe += 1;
        if entry.since_probe >= interval {
            entry.since_probe = 0;
            self.ledger.recovery_probes += 1;
            false
        } else {
            true
        }
    }

    /// A successful execution clears the backend's fault history and any
    /// quarantine.
    fn note_success(&mut self, name: &str) {
        if let Some(entry) = self.quarantine_state.get_mut(name) {
            *entry = QuarantineEntry::default();
        }
    }

    /// A fault-exhausted dispatch (permanent fault, or transient retries
    /// used up) is a strike; enough consecutive strikes quarantine the
    /// backend.
    fn note_fault_exhausted(&mut self, name: &str) {
        if !self.quarantine.is_enabled() {
            return;
        }
        let threshold = self.quarantine.threshold;
        let entry = self.quarantine_state.entry(name.to_string()).or_default();
        entry.consecutive_exhausted = entry.consecutive_exhausted.saturating_add(1);
        if !entry.quarantined && entry.consecutive_exhausted >= threshold {
            entry.quarantined = true;
            entry.since_probe = 0;
            self.ledger.quarantine_events += 1;
        }
    }

    /// The dispatch policy.
    #[must_use]
    pub fn policy(&self) -> DispatchPolicy {
        self.policy
    }

    /// The planner (its correction table reflects any online learning).
    #[must_use]
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// Registers a backend (later registrations have lower priority).
    pub fn register(&mut self, backend: Box<dyn Accelerator>) {
        self.stats.entry(backend.name().to_string()).or_default();
        self.backends.push(backend);
    }

    /// The registered backend names, in priority order.
    #[must_use]
    pub fn backend_names(&self) -> Vec<String> {
        self.backends.iter().map(|b| b.name().to_string()).collect()
    }

    /// Ranks the backends for `kernel` without executing anything.
    ///
    /// # Errors
    ///
    /// Same planning contract as [`Planner::plan`].
    pub fn plan(
        &self,
        kernel: &Kernel,
        policy: Option<DispatchPolicy>,
        deadline_seconds: Option<f64>,
    ) -> Result<Plan, AccelError> {
        self.planner.plan(
            &self.backends,
            kernel,
            policy.unwrap_or(self.policy),
            deadline_seconds,
        )
    }

    /// Dispatches one kernel according to the policy.
    ///
    /// # Errors
    ///
    /// * [`AccelError::NoBackend`] when nothing supports the kernel under
    ///   the policy, listing the backends considered.
    /// * [`AccelError::DeadlineUnmeetable`] from deadline-aware planning.
    /// * Propagates backend execution failures.
    pub fn dispatch(&mut self, kernel: &Kernel) -> Result<KernelExecution, AccelError> {
        self.dispatch_planned(kernel, &DispatchRequest::default())
            .map(|r| r.execution)
    }

    /// Dispatches one kernel, reporting which backend ran it, optionally
    /// reseeding the selected backend first.
    ///
    /// Reseeding makes the result a pure function of `(kernel, seed)`
    /// rather than of the backend's execution history, which is what the
    /// `runtime` crate's concurrent workers need for results that are
    /// reproducible independent of scheduling order.
    ///
    /// # Errors
    ///
    /// Same contract as [`HostRuntime::dispatch`].
    pub fn dispatch_traced(
        &mut self,
        kernel: &Kernel,
        reseed: Option<u64>,
    ) -> Result<DispatchReport, AccelError> {
        self.dispatch_planned(
            kernel,
            &DispatchRequest {
                reseed,
                ..DispatchRequest::default()
            },
        )
    }

    /// Dispatches one kernel with full per-job overrides: the planner
    /// ranks the candidates, then execution walks the ranking with fault
    /// tolerance.
    ///
    /// Per candidate: quarantined backends are skipped (except on
    /// recovery probes); a *transient* [`AccelError::DeviceFault`] is
    /// retried on the same backend under the [`RetryPolicy`]'s capped
    /// exponential backoff; a permanent fault — or exhausted retries —
    /// fails over to the next-ranked candidate and counts a strike toward
    /// quarantine. Backends that refuse the kernel at execution time
    /// ([`AccelError::Unsupported`]) fall through as before. Every fault,
    /// retry, reroute, quarantine event, and probe is accumulated in the
    /// [`FaultLedger`] (see [`HostRuntime::drain_faults`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`HostRuntime::dispatch`]; additionally, when
    /// every planned backend refuses the kernel at execution time, the
    /// returned [`AccelError::NoBackend`] lists them in `tried`, and when
    /// the walk ends on faults the last [`AccelError::DeviceFault`] is
    /// returned.
    pub fn dispatch_planned(
        &mut self,
        kernel: &Kernel,
        request: &DispatchRequest,
    ) -> Result<DispatchReport, AccelError> {
        let policy = request.policy.unwrap_or(self.policy);
        let plan = self
            .planner
            .plan(&self.backends, kernel, policy, request.deadline_seconds)?;
        let mut tried = Vec::with_capacity(plan.ranked.len());
        let mut attempts_total = 0u32;
        let mut faults_total = 0u32;
        let mut diverted = false;
        let mut last_fault: Option<AccelError> = None;
        for (idx, estimate) in plan.ranked {
            // lint:allow(panic::index, reason = "plan indices come from enumerate over self.backends")
            let name = self.backends[idx].name().to_string();
            if self.quarantine_gate(&name) {
                diverted = true;
                tried.push(name);
                continue;
            }
            if let Some(seed) = request.reseed {
                // lint:allow(panic::index, reason = "plan indices come from enumerate over self.backends")
                self.backends[idx].reseed(seed);
            }
            let mut retries = 0u32;
            loop {
                attempts_total += 1;
                // lint:allow(panic::index, reason = "plan indices come from enumerate over self.backends")
                match self.backends[idx].execute(kernel) {
                    Ok(execution) => {
                        self.note_success(&name);
                        if diverted {
                            self.ledger.reroutes += 1;
                        }
                        // Calibration feedback: compare the *raw* model
                        // output (not the corrected one) against what the
                        // execution actually cost, so the factor converges
                        // to the true actual/predicted ratio. No-op for
                        // frozen planners.
                        // lint:allow(panic::index, reason = "plan indices come from enumerate over self.backends")
                        if let Some(raw) = self.backends[idx].estimate(kernel) {
                            self.planner.observe(
                                &name,
                                raw.device_seconds,
                                execution.cost.device_seconds,
                            );
                        }
                        let entry = self.stats.entry(name.clone()).or_default();
                        entry.kernels += 1;
                        entry.device_seconds += execution.cost.device_seconds;
                        entry.operations += execution.cost.operations;
                        return Ok(DispatchReport {
                            backend: name,
                            execution,
                            estimate,
                            attempts: attempts_total,
                            faults: faults_total,
                            rerouted: diverted,
                        });
                    }
                    Err(AccelError::Unsupported { .. }) => {
                        // The backend claimed support but refused the
                        // kernel; fall through to the next-ranked
                        // candidate. Not a fault, so not a reroute either.
                        tried.push(name.clone());
                        break;
                    }
                    Err(fault @ AccelError::DeviceFault { .. }) => {
                        faults_total += 1;
                        *self
                            .ledger
                            .faults_by_backend
                            .entry(name.clone())
                            .or_default() += 1;
                        let transient = matches!(
                            fault,
                            AccelError::DeviceFault {
                                transient: true,
                                ..
                            }
                        );
                        if transient && retries < self.retry.max_retries {
                            retries += 1;
                            self.ledger.retries += 1;
                            let backoff = self.retry.backoff(retries);
                            if !backoff.is_zero() {
                                std::thread::sleep(backoff);
                            }
                            continue;
                        }
                        self.note_fault_exhausted(&name);
                        diverted = true;
                        tried.push(name.clone());
                        last_fault = Some(fault);
                        break;
                    }
                    Err(other) => return Err(other),
                }
            }
        }
        Err(last_fault.unwrap_or_else(|| AccelError::NoBackend {
            kernel: kernel.describe(),
            tried,
        }))
    }

    /// Dispatches one kernel by *racing* the `top_k` planner-ranked
    /// candidates concurrently instead of walking them sequentially.
    ///
    /// Every selected candidate is reseeded with the job seed and started
    /// at once; the job's result is the execution of the **highest-ranked
    /// candidate that succeeds** — exactly the backend the sequential
    /// [`HostRuntime::dispatch_planned`] walk would have returned — so
    /// hedging changes tail latency and calibration, never results. The
    /// physical race supplies the rest: once a candidate succeeds, every
    /// lower-ranked rival checks the shared concession flag between retry
    /// attempts and stops early (a synchronous `execute` is never
    /// preempted mid-attempt, which is what keeps the determinism
    /// argument airtight: a candidate ranked above the winner always runs
    /// to its own deterministic conclusion).
    ///
    /// Accounting: completed executions (winner and losers) are recorded
    /// in the per-backend stats and fed to the planner's correction table
    /// (a no-op for frozen planners — serving runtimes calibrate between
    /// runs from the returned [`HedgeOutcome`]s instead); faults land in
    /// the [`FaultLedger`]; quarantine strikes are only taken from
    /// candidates whose failure is deterministic (ranked above the
    /// winner, or any failure when nothing won).
    ///
    /// # Errors
    ///
    /// Same contract as [`HostRuntime::dispatch_planned`]: the error the
    /// sequential walk would have surfaced.
    pub fn dispatch_hedged(
        &mut self,
        kernel: &Kernel,
        request: &DispatchRequest,
        top_k: usize,
    ) -> Result<(DispatchReport, HedgeReport), AccelError> {
        let policy = request.policy.unwrap_or(self.policy);
        let plan = self
            .planner
            .plan(&self.backends, kernel, policy, request.deadline_seconds)?;
        // Select up to top_k racers in rank order, honoring quarantine.
        let mut selected: Vec<(usize, Option<CostEstimate>)> = Vec::new();
        let mut tried: Vec<String> = Vec::new();
        let mut gated = false;
        for (idx, estimate) in plan.ranked {
            if selected.len() >= top_k.max(1) {
                break;
            }
            let Some(backend) = self.backends.get(idx) else {
                continue;
            };
            let name = backend.name().to_string();
            if self.quarantine_gate(&name) {
                gated = true;
                tried.push(name);
                continue;
            }
            selected.push((idx, estimate));
        }
        if selected.is_empty() {
            return Err(AccelError::NoBackend {
                kernel: kernel.describe(),
                tried,
            });
        }
        if let Some(seed) = request.reseed {
            for &(idx, _) in &selected {
                if let Some(backend) = self.backends.get_mut(idx) {
                    backend.reseed(seed);
                }
            }
        }

        struct RaceResult {
            rank: usize,
            attempts: u32,
            faults: u32,
            retries: u32,
            end: RaceEnd,
        }
        enum RaceEnd {
            Done(KernelExecution),
            Fault { error: AccelError, conceded: bool },
            Refused,
            Broken(AccelError),
        }

        let retry = self.retry;
        let rank_of: BTreeMap<usize, usize> = selected
            .iter()
            .enumerate()
            .map(|(rank, &(idx, _))| (idx, rank))
            .collect();
        let racers: Vec<(usize, &mut Box<dyn Accelerator>)> = self
            .backends
            .iter_mut()
            .enumerate()
            .filter_map(|(idx, backend)| rank_of.get(&idx).map(|&rank| (rank, backend)))
            .collect();

        // Lowest rank that has succeeded so far; the concession signal.
        let best: Mutex<Option<usize>> = Mutex::new(None);
        let results: Mutex<Vec<RaceResult>> = Mutex::new(Vec::with_capacity(racers.len()));
        std::thread::scope(|scope| {
            for (rank, backend) in racers {
                let best = &best;
                let results = &results;
                scope.spawn(move || {
                    let mut attempts = 0u32;
                    let mut faults = 0u32;
                    let mut retries = 0u32;
                    let end = loop {
                        attempts += 1;
                        match backend.execute(kernel) {
                            Ok(execution) => {
                                let mut slot = lock_unpoisoned(best);
                                if slot.is_none_or(|current| rank < current) {
                                    *slot = Some(rank);
                                }
                                break RaceEnd::Done(execution);
                            }
                            Err(error @ AccelError::DeviceFault { .. }) => {
                                faults += 1;
                                let transient = matches!(
                                    error,
                                    AccelError::DeviceFault {
                                        transient: true,
                                        ..
                                    }
                                );
                                if transient && retries < retry.max_retries {
                                    // Concede only to a strictly
                                    // higher-ranked success: rank 0 never
                                    // concedes, so a candidate that would
                                    // beat the winner always finishes its
                                    // deterministic retry schedule.
                                    let conceded = matches!(
                                        *lock_unpoisoned(best),
                                        Some(winner) if winner < rank
                                    );
                                    if conceded {
                                        break RaceEnd::Fault {
                                            error,
                                            conceded: true,
                                        };
                                    }
                                    retries += 1;
                                    let backoff = retry.backoff(retries);
                                    if !backoff.is_zero() {
                                        std::thread::sleep(backoff);
                                    }
                                    continue;
                                }
                                break RaceEnd::Fault {
                                    error,
                                    conceded: false,
                                };
                            }
                            Err(AccelError::Unsupported { .. }) => break RaceEnd::Refused,
                            Err(error) => break RaceEnd::Broken(error),
                        }
                    };
                    lock_unpoisoned(results).push(RaceResult {
                        rank,
                        attempts,
                        faults,
                        retries,
                        end,
                    });
                });
            }
        });

        let mut results = results.into_inner().unwrap_or_else(PoisonError::into_inner);
        results.sort_by_key(|r| r.rank);
        let winner_rank = results
            .iter()
            .position(|r| matches!(r.end, RaceEnd::Done(_)));

        // Fold the race into the ledger / stats / planner, then walk the
        // rank order exactly as the sequential dispatch would have.
        let mut attempts_total = 0u32;
        let mut faults_total = 0u32;
        let mut losers_cancelled = 0u32;
        let mut outcomes = Vec::new();
        for result in &results {
            attempts_total += result.attempts;
            faults_total += result.faults;
            self.ledger.retries += u64::from(result.retries);
            let Some(&(idx, _)) = selected.get(result.rank) else {
                continue;
            };
            let Some(backend) = self.backends.get(idx) else {
                continue;
            };
            let name = backend.name().to_string();
            if result.faults > 0 {
                *self
                    .ledger
                    .faults_by_backend
                    .entry(name.clone())
                    .or_default() += u64::from(result.faults);
            }
            match &result.end {
                RaceEnd::Done(execution) => {
                    let raw = backend.estimate(kernel);
                    if let Some(raw) = raw {
                        self.planner.observe(
                            &name,
                            raw.device_seconds,
                            execution.cost.device_seconds,
                        );
                    }
                    let entry = self.stats.entry(name.clone()).or_default();
                    entry.kernels += 1;
                    entry.device_seconds += execution.cost.device_seconds;
                    entry.operations += execution.cost.operations;
                    outcomes.push(HedgeOutcome {
                        backend: name,
                        rank: result.rank as u32,
                        predicted: raw,
                        actual_device_seconds: execution.cost.device_seconds,
                        won: Some(result.rank) == winner_rank,
                    });
                }
                RaceEnd::Fault { conceded, .. } => {
                    if *conceded {
                        losers_cancelled += 1;
                    } else if winner_rank.is_none_or(|w| result.rank < w) {
                        // Deterministic exhaustion: this candidate outranks
                        // the winner (or nothing won), so the sequential
                        // walk would have struck it too.
                        self.note_fault_exhausted(&name);
                    }
                }
                RaceEnd::Refused | RaceEnd::Broken(_) => {}
            }
        }

        let Some(winner_rank) = winner_rank else {
            // Mirror the sequential walk's terminal error: a non-fault
            // backend error surfaces as-is at its rank position; otherwise
            // the last fault seen, and NoBackend as the fallback.
            for result in &results {
                if let Some(&(idx, _)) = selected.get(result.rank) {
                    if let Some(backend) = self.backends.get(idx) {
                        tried.push(backend.name().to_string());
                    }
                }
            }
            let mut last_fault = None;
            for result in results {
                match result.end {
                    RaceEnd::Broken(error) => return Err(error),
                    RaceEnd::Fault { error, .. } => last_fault = Some(error),
                    RaceEnd::Done(_) | RaceEnd::Refused => {}
                }
            }
            return Err(last_fault.unwrap_or(AccelError::NoBackend {
                kernel: kernel.describe(),
                tried,
            }));
        };

        // Everything ranked above the winner failed deterministically, so
        // the sequential walk would have rerouted past it too.
        let rerouted = gated || winner_rank > 0;
        if rerouted {
            self.ledger.reroutes += 1;
        }
        let mut winner_execution = None;
        for result in results {
            if result.rank == winner_rank {
                if let RaceEnd::Done(execution) = result.end {
                    winner_execution = Some(execution);
                }
            }
        }
        let Some(execution) = winner_execution else {
            // Unreachable: winner_rank came from a Done entry.
            return Err(AccelError::NoBackend {
                kernel: kernel.describe(),
                tried,
            });
        };
        let winner_idx = selected.get(winner_rank).map_or(0, |&(idx, _)| idx);
        let winner_name = self
            .backends
            .get(winner_idx)
            .map_or_else(String::new, |b| b.name().to_string());
        self.note_success(&winner_name);
        let estimate = selected.get(winner_rank).and_then(|&(_, e)| e);
        Ok((
            DispatchReport {
                backend: winner_name,
                execution,
                estimate,
                attempts: attempts_total,
                faults: faults_total,
                rerouted,
            },
            HedgeReport {
                candidates: selected.len() as u32,
                winner_rank: winner_rank as u32,
                losers_cancelled,
                outcomes,
            },
        ))
    }

    /// Runs a workload of kernels, returning the executions in order.
    ///
    /// # Errors
    ///
    /// Fails on the first kernel that cannot be dispatched or executed.
    pub fn run_workload(&mut self, kernels: &[Kernel]) -> Result<Vec<KernelExecution>, AccelError> {
        kernels.iter().map(|k| self.dispatch(k)).collect()
    }

    /// Per-backend aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> &BTreeMap<String, BackendStats> {
        &self.stats
    }

    /// Total modelled device time across backends.
    #[must_use]
    pub fn total_device_seconds(&self) -> f64 {
        self.stats.values().map(|s| s.device_seconds).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::CpuBackend;
    use crate::backends::{standard_pool, MemBackend, QuantumBackend};
    use crate::kernel::KernelResult;
    use mem::generators::planted_3sat;

    fn hetero_host() -> HostRuntime {
        let mut host = HostRuntime::new(DispatchPolicy::PreferSpecialized);
        host.register(Box::new(QuantumBackend::new(1)));
        host.register(Box::new(MemBackend::new(2)));
        host.register(Box::new(CpuBackend::new(3)));
        host
    }

    fn full_host(policy: DispatchPolicy) -> HostRuntime {
        let mut host = HostRuntime::new(policy);
        for backend in standard_pool(7).unwrap() {
            host.register(backend);
        }
        host
    }

    #[test]
    fn specialized_dispatch_routes_by_class() {
        let mut host = hetero_host();
        host.dispatch(&Kernel::Factor { n: 15 }).unwrap();
        let inst = planted_3sat(12, 3.5, 1).unwrap();
        host.dispatch(&Kernel::SolveSat {
            formula: inst.formula,
        })
        .unwrap();
        let stats = host.stats();
        assert_eq!(stats["quantum"].kernels, 1);
        assert_eq!(stats["memcomputing"].kernels, 1);
        assert_eq!(stats["cpu"].kernels, 0);
    }

    #[test]
    fn cpu_fallback_for_unclaimed_kernels() {
        let mut host = hetero_host();
        // No oscillator backend registered: Compare falls back to CPU.
        let run = host.dispatch(&Kernel::Compare { x: 0.2, y: 0.7 }).unwrap();
        match run.result {
            KernelResult::Distance(d) => assert!((d - 0.5).abs() < 1e-12),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(host.stats()["cpu"].kernels, 1);
    }

    #[test]
    fn cpu_only_policy_ignores_specialized() {
        let mut host = HostRuntime::new(DispatchPolicy::CpuOnly);
        host.register(Box::new(QuantumBackend::new(1)));
        host.register(Box::new(CpuBackend::new(2)));
        host.dispatch(&Kernel::Factor { n: 21 }).unwrap();
        assert_eq!(host.stats()["cpu"].kernels, 1);
        assert_eq!(host.stats()["quantum"].kernels, 0);
    }

    #[test]
    fn no_backend_error() {
        let mut host = HostRuntime::new(DispatchPolicy::CpuOnly);
        host.register(Box::new(QuantumBackend::new(1)));
        assert!(matches!(
            host.dispatch(&Kernel::Factor { n: 15 }),
            Err(AccelError::NoBackend { .. })
        ));
    }

    #[test]
    fn workload_accumulates_stats() {
        let mut host = hetero_host();
        let kernels = vec![
            Kernel::Factor { n: 15 },
            Kernel::Search {
                n_qubits: 5,
                marked: vec![7],
            },
            Kernel::Compare { x: 0.1, y: 0.3 },
        ];
        let runs = host.run_workload(&kernels).unwrap();
        assert_eq!(runs.len(), 3);
        assert!(host.total_device_seconds() > 0.0);
        assert_eq!(host.stats()["quantum"].kernels, 2);
    }

    #[test]
    fn backend_names_in_priority_order() {
        let host = hetero_host();
        assert_eq!(host.backend_names(), vec!["quantum", "memcomputing", "cpu"]);
    }

    #[test]
    fn prefer_specialized_respects_registration_order() {
        // Quantum registered after mem: still wins Factor because it is
        // the first *supporting* non-CPU backend; mem never claims Factor.
        let mut host = HostRuntime::new(DispatchPolicy::PreferSpecialized);
        host.register(Box::new(MemBackend::new(1)));
        host.register(Box::new(QuantumBackend::new(2)));
        host.register(Box::new(CpuBackend::new(3)));
        host.dispatch(&Kernel::Factor { n: 15 }).unwrap();
        assert_eq!(host.stats()["quantum"].kernels, 1);
        assert_eq!(host.stats()["memcomputing"].kernels, 0);
    }

    #[test]
    fn prefer_specialized_falls_back_to_cpu_in_order() {
        // No specialized backend supports Compare: the fallback scan must
        // pick the first supporting backend overall, which is the CPU.
        let mut host = hetero_host();
        let report = host
            .dispatch_traced(&Kernel::Compare { x: 0.25, y: 0.75 }, None)
            .unwrap();
        assert_eq!(report.backend, "cpu");
    }

    #[test]
    fn cpu_only_baseline_runs_every_kernel_class() {
        let mut host = HostRuntime::new(DispatchPolicy::CpuOnly);
        host.register(Box::new(QuantumBackend::new(1)));
        host.register(Box::new(MemBackend::new(2)));
        host.register(Box::new(CpuBackend::new(3)));
        let inst = planted_3sat(10, 3.5, 7).unwrap();
        let kernels = vec![
            Kernel::Factor { n: 15 },
            Kernel::Search {
                n_qubits: 4,
                marked: vec![3],
            },
            Kernel::SolveSat {
                formula: inst.formula,
            },
            Kernel::Compare { x: 0.1, y: 0.6 },
        ];
        let runs = host.run_workload(&kernels).unwrap();
        assert_eq!(runs.len(), 4);
        assert_eq!(host.stats()["cpu"].kernels, 4);
        assert_eq!(host.stats()["quantum"].kernels, 0);
        assert_eq!(host.stats()["memcomputing"].kernels, 0);
    }

    #[test]
    fn unsupported_kernel_errors_not_panics() {
        // A host with only specialized backends and a kernel none support.
        let mut host = HostRuntime::new(DispatchPolicy::PreferSpecialized);
        host.register(Box::new(QuantumBackend::new(1)));
        host.register(Box::new(MemBackend::new(2)));
        let err = host
            .dispatch(&Kernel::Compare { x: 0.0, y: 1.0 })
            .unwrap_err();
        assert!(matches!(err, AccelError::NoBackend { .. }));
        assert!(err.to_string().contains("compare"));
    }

    #[test]
    fn stats_accounting_sums_costs() {
        let mut host = hetero_host();
        let a = host.dispatch(&Kernel::Factor { n: 15 }).unwrap();
        let b = host.dispatch(&Kernel::Factor { n: 21 }).unwrap();
        let s = host.stats()["quantum"];
        assert_eq!(s.kernels, 2);
        assert_eq!(s.operations, a.cost.operations + b.cost.operations);
        let expected = a.cost.device_seconds + b.cost.device_seconds;
        assert!((s.device_seconds - expected).abs() < 1e-15);
        assert!((host.total_device_seconds() - expected).abs() < 1e-15);
    }

    #[test]
    fn min_latency_routes_cheap_kernels_to_cpu() {
        // The crossover story: tiny problem sizes never pay for the
        // specialist. A semiprime factorization and a scalar comparison
        // are both predicted cheaper on the CPU than the quantum and
        // oscillator paths.
        let mut host = full_host(DispatchPolicy::MinPredictedLatency);
        let a = host
            .dispatch_traced(&Kernel::Factor { n: 15 }, None)
            .unwrap();
        assert_eq!(a.backend, "cpu");
        let b = host
            .dispatch_traced(&Kernel::Compare { x: 0.2, y: 0.6 }, None)
            .unwrap();
        assert_eq!(b.backend, "cpu");
        assert!(a.estimate.unwrap().device_seconds > 0.0);
    }

    #[test]
    fn min_energy_routes_compare_to_oscillator() {
        // §III: the FAST block at 0.936 mW beats a ~1 W core on energy
        // even though its readout window is slower than three CPU ops.
        let mut host = full_host(DispatchPolicy::MinPredictedEnergy);
        let report = host
            .dispatch_traced(&Kernel::Compare { x: 0.2, y: 0.6 }, None)
            .unwrap();
        assert_eq!(report.backend, "oscillator");
        let latency_choice = full_host(DispatchPolicy::MinPredictedLatency)
            .plan(&Kernel::Compare { x: 0.2, y: 0.6 }, None, None)
            .unwrap();
        assert_ne!(
            latency_choice.ranked[0].0, 1,
            "latency and energy policies should disagree on Compare"
        );
    }

    #[test]
    fn per_job_policy_override_wins() {
        let mut host = full_host(DispatchPolicy::PreferSpecialized);
        let report = host
            .dispatch_planned(
                &Kernel::Compare { x: 0.1, y: 0.9 },
                &DispatchRequest {
                    policy: Some(DispatchPolicy::CpuOnly),
                    ..DispatchRequest::default()
                },
            )
            .unwrap();
        assert_eq!(report.backend, "cpu");
        assert_eq!(host.policy(), DispatchPolicy::PreferSpecialized);
    }

    #[test]
    fn deadline_aware_prefers_specialist_within_budget() {
        let mut host = full_host(DispatchPolicy::DeadlineAware);
        // A one-second device budget is astronomically generous here.
        let report = host
            .dispatch_planned(
                &Kernel::Factor { n: 15 },
                &DispatchRequest {
                    deadline_seconds: Some(1.0),
                    ..DispatchRequest::default()
                },
            )
            .unwrap();
        assert_eq!(report.backend, "quantum");
        assert!(report.estimate.unwrap().device_seconds <= 1.0);
    }

    #[test]
    fn deadline_aware_falls_back_to_cpu_on_tight_budget() {
        let mut host = full_host(DispatchPolicy::DeadlineAware);
        // Quantum factoring is predicted in the tens of microseconds; a
        // 1 µs budget leaves only the CPU's few nanoseconds.
        let report = host
            .dispatch_planned(
                &Kernel::Factor { n: 15 },
                &DispatchRequest {
                    deadline_seconds: Some(1e-6),
                    ..DispatchRequest::default()
                },
            )
            .unwrap();
        assert_eq!(report.backend, "cpu");
        assert!(report.estimate.unwrap().device_seconds <= 1e-6);
    }

    #[test]
    fn deadline_aware_rejects_unmeetable_budget() {
        let mut host = full_host(DispatchPolicy::DeadlineAware);
        let err = host
            .dispatch_planned(
                &Kernel::Factor { n: 15 },
                &DispatchRequest {
                    deadline_seconds: Some(1e-15),
                    ..DispatchRequest::default()
                },
            )
            .unwrap_err();
        assert!(
            matches!(err, AccelError::DeadlineUnmeetable { .. }),
            "{err}"
        );
    }

    #[test]
    fn no_backend_error_lists_candidates_tried() {
        /// Claims support for everything, refuses everything at execution
        /// time — the pathological case the `tried` list exists for.
        struct Liar(&'static str);
        impl Accelerator for Liar {
            fn name(&self) -> &str {
                self.0
            }
            fn supports(&self, _kernel: &Kernel) -> bool {
                true
            }
            fn execute(&mut self, kernel: &Kernel) -> Result<KernelExecution, AccelError> {
                Err(AccelError::Unsupported {
                    backend: self.0.into(),
                    kernel: kernel.describe(),
                })
            }
        }
        let mut host = HostRuntime::new(DispatchPolicy::PreferSpecialized);
        host.register(Box::new(Liar("alpha")));
        host.register(Box::new(Liar("beta")));
        let err = host
            .dispatch(&Kernel::Compare { x: 0.1, y: 0.2 })
            .unwrap_err();
        match err {
            AccelError::NoBackend { kernel, tried } => {
                assert!(kernel.contains("compare"));
                assert_eq!(tried, vec!["alpha".to_string(), "beta".to_string()]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn adaptive_planner_learns_corrections_frozen_does_not() {
        let kernel = Kernel::Factor { n: 77 };
        let mut adaptive = full_host(DispatchPolicy::PreferSpecialized);
        adaptive.dispatch_traced(&kernel, Some(1)).unwrap();
        assert_ne!(
            adaptive.planner().corrections().factor("quantum"),
            1.0,
            "an execution must move the adaptive factor off identity"
        );

        let mut frozen = HostRuntime::with_corrections(
            DispatchPolicy::PreferSpecialized,
            CorrectionTable::new(),
        );
        for backend in standard_pool(7).unwrap() {
            frozen.register(backend);
        }
        frozen.dispatch_traced(&kernel, Some(1)).unwrap();
        assert_eq!(frozen.planner().corrections().factor("quantum"), 1.0);
    }

    #[test]
    fn corrections_steer_routing() {
        // Pin the CPU's factor up so its (truly cheap) Compare estimate
        // ranks *worse* than the oscillator window: routing must follow.
        let mut table = CorrectionTable::new();
        table.set("cpu", 1e6);
        let mut host = HostRuntime::with_corrections(DispatchPolicy::MinPredictedLatency, table);
        for backend in standard_pool(3).unwrap() {
            host.register(backend);
        }
        let report = host
            .dispatch_traced(&Kernel::Compare { x: 0.3, y: 0.4 }, None)
            .unwrap();
        assert_eq!(report.backend, "oscillator");
    }

    #[test]
    fn correction_table_ewma_converges_toward_ratio() {
        let mut table = CorrectionTable::new();
        for _ in 0..64 {
            table.observe("q", 1.0, 2.0);
        }
        assert!((table.factor("q") - 2.0).abs() < 1e-3);
        // Garbage observations are ignored.
        table.observe("q", 0.0, 5.0);
        table.observe("q", f64::NAN, 5.0);
        table.observe("q", 1.0, f64::NAN);
        assert!((table.factor("q") - 2.0).abs() < 1e-3);
    }

    /// Faults permanently for the first `fail_jobs` executions, then
    /// delegates to a healthy CPU backend.
    struct FaultyStub {
        name: &'static str,
        fail_jobs: u64,
        executions: u64,
        inner: CpuBackend,
    }

    impl FaultyStub {
        fn new(name: &'static str, fail_jobs: u64) -> Self {
            FaultyStub {
                name,
                fail_jobs,
                executions: 0,
                inner: CpuBackend::new(1),
            }
        }
    }

    impl Accelerator for FaultyStub {
        fn name(&self) -> &str {
            self.name
        }
        fn supports(&self, kernel: &Kernel) -> bool {
            self.inner.supports(kernel)
        }
        fn execute(&mut self, kernel: &Kernel) -> Result<KernelExecution, AccelError> {
            self.executions += 1;
            if self.executions <= self.fail_jobs {
                Err(AccelError::DeviceFault {
                    backend: self.name.to_string(),
                    transient: false,
                    detail: "stub fault".into(),
                })
            } else {
                self.inner.execute(kernel)
            }
        }
    }

    #[test]
    fn transient_faults_retry_on_the_same_backend() {
        use crate::fault::{FaultPlan, FaultSpec};
        let plan = FaultPlan::new(13).with_backend("cpu", FaultSpec::transient(1.0, 2));
        let mut host = HostRuntime::new(DispatchPolicy::CpuOnly);
        host.set_retry_policy(RetryPolicy::no_backoff(2));
        host.register(plan.wrap(Box::new(CpuBackend::new(1))));
        let burst = plan.decision("cpu", 55).transient_attempts;
        assert!(burst >= 1);
        let report = host
            .dispatch_traced(&Kernel::Factor { n: 15 }, Some(55))
            .unwrap();
        assert_eq!(report.backend, "cpu");
        assert_eq!(report.faults, burst);
        assert_eq!(report.attempts, burst + 1);
        assert!(!report.rerouted);
        let ledger = host.drain_faults();
        assert_eq!(ledger.retries, u64::from(burst));
        assert_eq!(ledger.reroutes, 0);
        assert_eq!(ledger.faults_by_backend["cpu"], u64::from(burst));
        assert!(
            host.drain_faults().is_empty(),
            "drain must reset the ledger"
        );
    }

    #[test]
    fn permanent_fault_fails_over_to_next_candidate() {
        let mut host = HostRuntime::new(DispatchPolicy::PreferSpecialized);
        host.register(Box::new(FaultyStub::new("flaky", u64::MAX)));
        host.register(Box::new(CpuBackend::new(2)));
        let report = host
            .dispatch_traced(&Kernel::Factor { n: 15 }, Some(7))
            .unwrap();
        assert_eq!(report.backend, "cpu");
        assert!(report.rerouted);
        assert_eq!(report.faults, 1, "permanent faults are not retried");
        let ledger = host.drain_faults();
        assert_eq!(ledger.faults_by_backend["flaky"], 1);
        assert_eq!(ledger.reroutes, 1);
        assert_eq!(ledger.retries, 0);
    }

    #[test]
    fn exhausted_retries_fail_over() {
        use crate::fault::{FaultPlan, FaultSpec};
        // A burst longer than the retry budget: the dispatcher gives up
        // on the faulty backend and lands on the healthy one.
        let plan = FaultPlan::new(21).with_backend("flaky", FaultSpec::transient(1.0, 1));
        let mut host = HostRuntime::new(DispatchPolicy::PreferSpecialized);
        host.set_retry_policy(RetryPolicy::no_backoff(0));
        host.register(plan.wrap(Box::new(FaultyStub::new("flaky", 0))));
        host.register(Box::new(CpuBackend::new(2)));
        let report = host
            .dispatch_traced(&Kernel::Factor { n: 15 }, Some(9))
            .unwrap();
        assert_eq!(report.backend, "cpu");
        assert!(report.rerouted);
        let ledger = host.drain_faults();
        assert_eq!(ledger.retries, 0);
        assert_eq!(ledger.reroutes, 1);
    }

    #[test]
    fn every_candidate_faulted_returns_device_fault() {
        let mut host = HostRuntime::new(DispatchPolicy::CpuOnly);
        host.set_retry_policy(RetryPolicy::no_backoff(1));
        host.register(Box::new(FaultyStub::new("cpu", u64::MAX)));
        let err = host
            .dispatch_traced(&Kernel::Factor { n: 15 }, Some(3))
            .unwrap_err();
        assert!(
            matches!(
                err,
                AccelError::DeviceFault {
                    transient: false,
                    ..
                }
            ),
            "{err}"
        );
        assert_eq!(host.drain_faults().total_faults(), 1);
    }

    #[test]
    fn quarantine_skips_dead_backend_and_probes_for_recovery() {
        let mut host = HostRuntime::new(DispatchPolicy::PreferSpecialized);
        host.set_retry_policy(RetryPolicy::no_backoff(0));
        host.set_quarantine_policy(QuarantinePolicy {
            threshold: 2,
            probe_interval: 3,
        });
        host.register(Box::new(FaultyStub::new("dead", u64::MAX)));
        host.register(Box::new(CpuBackend::new(2)));
        let mut ledger = FaultLedger::default();
        for seed in 0..10u64 {
            let report = host
                .dispatch_traced(&Kernel::Factor { n: 15 }, Some(seed))
                .unwrap();
            assert_eq!(report.backend, "cpu");
            assert!(report.rerouted);
            ledger.merge(&host.drain_faults());
        }
        // Dispatches 1–2 strike the dead backend and quarantine it; the
        // walk then skips it except on every 3rd would-be use (probes at
        // dispatches 5 and 8), which fault again and keep it quarantined.
        assert_eq!(ledger.faults_by_backend["dead"], 4);
        assert_eq!(ledger.quarantine_events, 1);
        assert_eq!(ledger.recovery_probes, 2);
        assert_eq!(ledger.reroutes, 10);
        assert_eq!(host.quarantined_backends(), vec!["dead".to_string()]);
    }

    #[test]
    fn successful_probe_lifts_quarantine() {
        let mut host = HostRuntime::new(DispatchPolicy::PreferSpecialized);
        host.set_retry_policy(RetryPolicy::no_backoff(0));
        host.set_quarantine_policy(QuarantinePolicy {
            threshold: 2,
            probe_interval: 1,
        });
        // Faults twice, then heals.
        host.register(Box::new(FaultyStub::new("healing", 2)));
        host.register(Box::new(CpuBackend::new(2)));
        let mut ledger = FaultLedger::default();
        for seed in 0..4u64 {
            let report = host
                .dispatch_traced(&Kernel::Factor { n: 15 }, Some(seed))
                .unwrap();
            ledger.merge(&host.drain_faults());
            match seed {
                0 | 1 => assert_eq!(report.backend, "cpu"),
                // Dispatch 3 probes immediately (interval 1), the backend
                // has healed, and the quarantine lifts.
                _ => assert_eq!(report.backend, "healing"),
            }
        }
        assert!(host.quarantined_backends().is_empty());
        assert_eq!(ledger.quarantine_events, 1);
        assert_eq!(ledger.recovery_probes, 1);
        assert_eq!(ledger.faults_by_backend["healing"], 2);
    }

    #[test]
    fn disabled_quarantine_keeps_routing_pure() {
        let mut host = HostRuntime::new(DispatchPolicy::PreferSpecialized);
        host.set_retry_policy(RetryPolicy::no_backoff(0));
        host.set_quarantine_policy(QuarantinePolicy::disabled());
        host.register(Box::new(FaultyStub::new("dead", u64::MAX)));
        host.register(Box::new(CpuBackend::new(2)));
        let mut ledger = FaultLedger::default();
        for seed in 0..6u64 {
            let report = host
                .dispatch_traced(&Kernel::Factor { n: 15 }, Some(seed))
                .unwrap();
            assert_eq!(report.backend, "cpu");
            ledger.merge(&host.drain_faults());
        }
        // Every dispatch tried the dead backend: no skips, no probes.
        assert_eq!(ledger.faults_by_backend["dead"], 6);
        assert_eq!(ledger.quarantine_events, 0);
        assert_eq!(ledger.recovery_probes, 0);
        assert!(host.quarantined_backends().is_empty());
    }

    #[test]
    fn hedged_dispatch_never_changes_the_result() {
        // A SAT kernel is rankable on two backends (DMM and CPU): the
        // hedge races both, but the job's result must be exactly what the
        // sequential walk returns under the same seed.
        let sat = Kernel::SolveSat {
            formula: planted_3sat(10, 3.8, 5).unwrap().formula,
        };
        let request = DispatchRequest {
            reseed: Some(11),
            ..DispatchRequest::default()
        };
        let sequential = full_host(DispatchPolicy::PreferSpecialized)
            .dispatch_planned(&sat, &request)
            .unwrap();
        let mut hedging = full_host(DispatchPolicy::PreferSpecialized);
        let (report, hedge) = hedging.dispatch_hedged(&sat, &request, 2).unwrap();
        assert_eq!(report.backend, sequential.backend);
        assert_eq!(report.execution, sequential.execution);
        assert!(!report.rerouted);
        assert_eq!(hedge.candidates, 2);
        assert_eq!(hedge.winner_rank, 0);
        let winners: Vec<_> = hedge.outcomes.iter().filter(|o| o.won).collect();
        assert_eq!(winners.len(), 1);
        assert_eq!(winners[0].backend, report.backend);
        // Replaying the hedge on a fresh host reproduces it bit for bit.
        let mut replay = full_host(DispatchPolicy::PreferSpecialized);
        let (report2, hedge2) = replay.dispatch_hedged(&sat, &request, 2).unwrap();
        assert_eq!(report2.execution, report.execution);
        assert_eq!(hedge2.winner_rank, hedge.winner_rank);
    }

    #[test]
    fn hedged_losers_feed_stats_and_corrections() {
        let sat = Kernel::SolveSat {
            formula: planted_3sat(10, 3.8, 6).unwrap().formula,
        };
        let request = DispatchRequest {
            reseed: Some(21),
            ..DispatchRequest::default()
        };
        let mut host = full_host(DispatchPolicy::PreferSpecialized);
        let (_, hedge) = host.dispatch_hedged(&sat, &request, 2).unwrap();
        // Both racers completed, so both appear in the outcomes and in the
        // per-backend utilization stats, and both moved the adaptive
        // planner's correction table off identity.
        assert_eq!(hedge.outcomes.len(), 2);
        for outcome in &hedge.outcomes {
            assert_eq!(host.stats()[&outcome.backend].kernels, 1);
            assert_ne!(
                host.planner().corrections().factor(&outcome.backend),
                1.0,
                "{} completed: its observation must land",
                outcome.backend
            );
        }
    }

    #[test]
    fn hedged_dispatch_fails_over_past_a_dead_racer() {
        let mut host = HostRuntime::new(DispatchPolicy::PreferSpecialized);
        host.set_retry_policy(RetryPolicy::no_backoff(0));
        host.register(Box::new(FaultyStub::new("flaky", u64::MAX)));
        host.register(Box::new(CpuBackend::new(2)));
        let request = DispatchRequest {
            reseed: Some(7),
            ..DispatchRequest::default()
        };
        let (report, hedge) = host
            .dispatch_hedged(&Kernel::Factor { n: 15 }, &request, 2)
            .unwrap();
        assert_eq!(report.backend, "cpu");
        assert!(report.rerouted);
        assert_eq!(report.faults, 1);
        assert_eq!(hedge.winner_rank, 1);
        let ledger = host.drain_faults();
        assert_eq!(ledger.faults_by_backend["flaky"], 1);
        assert_eq!(ledger.reroutes, 1);
    }

    #[test]
    fn hedged_dispatch_with_one_candidate_degenerates() {
        let mut host = full_host(DispatchPolicy::CpuOnly);
        let request = DispatchRequest {
            reseed: Some(3),
            ..DispatchRequest::default()
        };
        let (report, hedge) = host
            .dispatch_hedged(&Kernel::Factor { n: 21 }, &request, 3)
            .unwrap();
        assert_eq!(report.backend, "cpu");
        assert_eq!(hedge.candidates, 1);
        assert_eq!(hedge.winner_rank, 0);
        assert_eq!(hedge.losers_cancelled, 0);
    }

    #[test]
    fn hedged_dispatch_surfaces_total_failure() {
        let mut host = HostRuntime::new(DispatchPolicy::PreferSpecialized);
        host.set_retry_policy(RetryPolicy::no_backoff(0));
        host.register(Box::new(FaultyStub::new("a", u64::MAX)));
        host.register(Box::new(FaultyStub::new("b", u64::MAX)));
        let err = host
            .dispatch_hedged(&Kernel::Factor { n: 15 }, &DispatchRequest::default(), 2)
            .unwrap_err();
        assert!(matches!(err, AccelError::DeviceFault { .. }), "{err}");
        assert_eq!(host.drain_faults().total_faults(), 2);
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let retry = RetryPolicy {
            max_retries: 5,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
        };
        assert_eq!(retry.backoff(1), Duration::from_millis(1));
        assert_eq!(retry.backoff(2), Duration::from_millis(2));
        assert_eq!(retry.backoff(3), Duration::from_millis(4));
        assert_eq!(retry.backoff(10), Duration::from_millis(4));
        assert_eq!(RetryPolicy::no_backoff(2).backoff(1), Duration::ZERO);
    }

    #[test]
    fn seeded_dispatch_is_reproducible() {
        // Same (kernel, seed) must yield identical results regardless of
        // how many executions the backend ran before — the property the
        // concurrent runtime depends on.
        let kernel = Kernel::DnaSimilarity {
            a: "ACGTACGTACGT".into(),
            b: "ACGTTCGTACGA".into(),
            k: 2,
        };
        let mut host = hetero_host();
        let first = host.dispatch_traced(&kernel, Some(99)).unwrap();
        // Burn executions to advance backend state.
        host.dispatch(&Kernel::Factor { n: 15 }).unwrap();
        host.dispatch_traced(&kernel, Some(11)).unwrap();
        let again = host.dispatch_traced(&kernel, Some(99)).unwrap();
        assert_eq!(first.backend, again.backend);
        assert_eq!(first.execution.result, again.execution.result);
    }
}
