//! The host runtime (paper Fig. 1).
//!
//! Owns a set of [`Accelerator`] backends and dispatches kernels to them —
//! "end-user application developers are capable of programming their source
//! code to be compiled and executed on the quantum device" — while keeping
//! per-backend utilization accounting so the heterogeneous-speedup
//! experiment (E12) can compare specialized dispatch against a CPU-only
//! configuration.
//!
//! # Example
//!
//! ```
//! use accel::accelerator::CpuBackend;
//! use accel::host::{DispatchPolicy, HostRuntime};
//! use accel::kernel::Kernel;
//!
//! let mut host = HostRuntime::new(DispatchPolicy::PreferSpecialized);
//! host.register(Box::new(CpuBackend::new(1)));
//! let run = host.dispatch(&Kernel::Factor { n: 15 })?;
//! # Ok::<(), accel::AccelError>(())
//! ```

use crate::accelerator::Accelerator;
use crate::kernel::{Kernel, KernelExecution};
use crate::AccelError;
use std::collections::BTreeMap;

/// How the host picks a backend for a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Use the first non-CPU backend that supports the kernel, falling back
    /// to any supporting backend (the heterogeneous configuration).
    PreferSpecialized,
    /// Use only the backend named "cpu" (the von Neumann baseline).
    CpuOnly,
}

/// Per-backend aggregate statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BackendStats {
    /// Kernels executed on this backend.
    pub kernels: u64,
    /// Total modelled device time (seconds).
    pub device_seconds: f64,
    /// Total backend operations.
    pub operations: u64,
}

/// A completed dispatch: which backend ran the kernel, and the execution.
#[derive(Debug, Clone, PartialEq)]
pub struct DispatchReport {
    /// Name of the backend that executed the kernel.
    pub backend: String,
    /// The execution result and cost.
    pub execution: KernelExecution,
}

/// The host runtime: backends + dispatch accounting.
pub struct HostRuntime {
    policy: DispatchPolicy,
    backends: Vec<Box<dyn Accelerator>>,
    stats: BTreeMap<String, BackendStats>,
}

impl std::fmt::Debug for HostRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostRuntime")
            .field("policy", &self.policy)
            .field(
                "backends",
                &self
                    .backends
                    .iter()
                    .map(|b| b.name().to_string())
                    .collect::<Vec<_>>(),
            )
            .field("stats", &self.stats)
            .finish()
    }
}

impl HostRuntime {
    /// Creates an empty host with the given policy.
    #[must_use]
    pub fn new(policy: DispatchPolicy) -> Self {
        HostRuntime {
            policy,
            backends: Vec::new(),
            stats: BTreeMap::new(),
        }
    }

    /// The dispatch policy.
    #[must_use]
    pub fn policy(&self) -> DispatchPolicy {
        self.policy
    }

    /// Registers a backend (later registrations have lower priority).
    pub fn register(&mut self, backend: Box<dyn Accelerator>) {
        self.stats.entry(backend.name().to_string()).or_default();
        self.backends.push(backend);
    }

    /// The registered backend names, in priority order.
    #[must_use]
    pub fn backend_names(&self) -> Vec<String> {
        self.backends.iter().map(|b| b.name().to_string()).collect()
    }

    /// Index of the backend the policy selects for `kernel`, if any.
    fn select(&self, kernel: &Kernel) -> Option<usize> {
        match self.policy {
            DispatchPolicy::CpuOnly => self
                .backends
                .iter()
                .position(|b| b.name() == "cpu" && b.supports(kernel)),
            DispatchPolicy::PreferSpecialized => self
                .backends
                .iter()
                .position(|b| b.name() != "cpu" && b.supports(kernel))
                .or_else(|| self.backends.iter().position(|b| b.supports(kernel))),
        }
    }

    /// Dispatches one kernel according to the policy.
    ///
    /// # Errors
    ///
    /// * [`AccelError::NoBackend`] when nothing supports the kernel under
    ///   the policy.
    /// * Propagates backend execution failures.
    pub fn dispatch(&mut self, kernel: &Kernel) -> Result<KernelExecution, AccelError> {
        self.dispatch_traced(kernel, None).map(|r| r.execution)
    }

    /// Dispatches one kernel, reporting which backend ran it, optionally
    /// reseeding the selected backend first.
    ///
    /// Reseeding makes the result a pure function of `(kernel, seed)`
    /// rather than of the backend's execution history, which is what the
    /// `runtime` crate's concurrent workers need for results that are
    /// reproducible independent of scheduling order.
    ///
    /// # Errors
    ///
    /// Same contract as [`HostRuntime::dispatch`].
    pub fn dispatch_traced(
        &mut self,
        kernel: &Kernel,
        reseed: Option<u64>,
    ) -> Result<DispatchReport, AccelError> {
        let Some(idx) = self.select(kernel) else {
            return Err(AccelError::NoBackend {
                kernel: kernel.describe(),
            });
        };
        let backend = &mut self.backends[idx];
        let name = backend.name().to_string();
        if let Some(seed) = reseed {
            backend.reseed(seed);
        }
        let execution = backend.execute(kernel)?;
        let entry = self.stats.entry(name.clone()).or_default();
        entry.kernels += 1;
        entry.device_seconds += execution.cost.device_seconds;
        entry.operations += execution.cost.operations;
        Ok(DispatchReport {
            backend: name,
            execution,
        })
    }

    /// Runs a workload of kernels, returning the executions in order.
    ///
    /// # Errors
    ///
    /// Fails on the first kernel that cannot be dispatched or executed.
    pub fn run_workload(&mut self, kernels: &[Kernel]) -> Result<Vec<KernelExecution>, AccelError> {
        kernels.iter().map(|k| self.dispatch(k)).collect()
    }

    /// Per-backend aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> &BTreeMap<String, BackendStats> {
        &self.stats
    }

    /// Total modelled device time across backends.
    #[must_use]
    pub fn total_device_seconds(&self) -> f64 {
        self.stats.values().map(|s| s.device_seconds).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::CpuBackend;
    use crate::backends::{MemBackend, QuantumBackend};
    use crate::kernel::KernelResult;
    use mem::generators::planted_3sat;

    fn hetero_host() -> HostRuntime {
        let mut host = HostRuntime::new(DispatchPolicy::PreferSpecialized);
        host.register(Box::new(QuantumBackend::new(1)));
        host.register(Box::new(MemBackend::new(2)));
        host.register(Box::new(CpuBackend::new(3)));
        host
    }

    #[test]
    fn specialized_dispatch_routes_by_class() {
        let mut host = hetero_host();
        host.dispatch(&Kernel::Factor { n: 15 }).unwrap();
        let inst = planted_3sat(12, 3.5, 1).unwrap();
        host.dispatch(&Kernel::SolveSat {
            formula: inst.formula,
        })
        .unwrap();
        let stats = host.stats();
        assert_eq!(stats["quantum"].kernels, 1);
        assert_eq!(stats["memcomputing"].kernels, 1);
        assert_eq!(stats["cpu"].kernels, 0);
    }

    #[test]
    fn cpu_fallback_for_unclaimed_kernels() {
        let mut host = hetero_host();
        // No oscillator backend registered: Compare falls back to CPU.
        let run = host.dispatch(&Kernel::Compare { x: 0.2, y: 0.7 }).unwrap();
        match run.result {
            KernelResult::Distance(d) => assert!((d - 0.5).abs() < 1e-12),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(host.stats()["cpu"].kernels, 1);
    }

    #[test]
    fn cpu_only_policy_ignores_specialized() {
        let mut host = HostRuntime::new(DispatchPolicy::CpuOnly);
        host.register(Box::new(QuantumBackend::new(1)));
        host.register(Box::new(CpuBackend::new(2)));
        host.dispatch(&Kernel::Factor { n: 21 }).unwrap();
        assert_eq!(host.stats()["cpu"].kernels, 1);
        assert_eq!(host.stats()["quantum"].kernels, 0);
    }

    #[test]
    fn no_backend_error() {
        let mut host = HostRuntime::new(DispatchPolicy::CpuOnly);
        host.register(Box::new(QuantumBackend::new(1)));
        assert!(matches!(
            host.dispatch(&Kernel::Factor { n: 15 }),
            Err(AccelError::NoBackend { .. })
        ));
    }

    #[test]
    fn workload_accumulates_stats() {
        let mut host = hetero_host();
        let kernels = vec![
            Kernel::Factor { n: 15 },
            Kernel::Search {
                n_qubits: 5,
                marked: vec![7],
            },
            Kernel::Compare { x: 0.1, y: 0.3 },
        ];
        let runs = host.run_workload(&kernels).unwrap();
        assert_eq!(runs.len(), 3);
        assert!(host.total_device_seconds() > 0.0);
        assert_eq!(host.stats()["quantum"].kernels, 2);
    }

    #[test]
    fn backend_names_in_priority_order() {
        let host = hetero_host();
        assert_eq!(host.backend_names(), vec!["quantum", "memcomputing", "cpu"]);
    }

    #[test]
    fn prefer_specialized_respects_registration_order() {
        // Quantum registered after mem: still wins Factor because it is
        // the first *supporting* non-CPU backend; mem never claims Factor.
        let mut host = HostRuntime::new(DispatchPolicy::PreferSpecialized);
        host.register(Box::new(MemBackend::new(1)));
        host.register(Box::new(QuantumBackend::new(2)));
        host.register(Box::new(CpuBackend::new(3)));
        host.dispatch(&Kernel::Factor { n: 15 }).unwrap();
        assert_eq!(host.stats()["quantum"].kernels, 1);
        assert_eq!(host.stats()["memcomputing"].kernels, 0);
    }

    #[test]
    fn prefer_specialized_falls_back_to_cpu_in_order() {
        // No specialized backend supports Compare: the fallback scan must
        // pick the first supporting backend overall, which is the CPU.
        let mut host = hetero_host();
        let report = host
            .dispatch_traced(&Kernel::Compare { x: 0.25, y: 0.75 }, None)
            .unwrap();
        assert_eq!(report.backend, "cpu");
    }

    #[test]
    fn cpu_only_baseline_runs_every_kernel_class() {
        let mut host = HostRuntime::new(DispatchPolicy::CpuOnly);
        host.register(Box::new(QuantumBackend::new(1)));
        host.register(Box::new(MemBackend::new(2)));
        host.register(Box::new(CpuBackend::new(3)));
        let inst = planted_3sat(10, 3.5, 7).unwrap();
        let kernels = vec![
            Kernel::Factor { n: 15 },
            Kernel::Search {
                n_qubits: 4,
                marked: vec![3],
            },
            Kernel::SolveSat {
                formula: inst.formula,
            },
            Kernel::Compare { x: 0.1, y: 0.6 },
        ];
        let runs = host.run_workload(&kernels).unwrap();
        assert_eq!(runs.len(), 4);
        assert_eq!(host.stats()["cpu"].kernels, 4);
        assert_eq!(host.stats()["quantum"].kernels, 0);
        assert_eq!(host.stats()["memcomputing"].kernels, 0);
    }

    #[test]
    fn unsupported_kernel_errors_not_panics() {
        // A host with only specialized backends and a kernel none support.
        let mut host = HostRuntime::new(DispatchPolicy::PreferSpecialized);
        host.register(Box::new(QuantumBackend::new(1)));
        host.register(Box::new(MemBackend::new(2)));
        let err = host
            .dispatch(&Kernel::Compare { x: 0.0, y: 1.0 })
            .unwrap_err();
        assert!(matches!(err, AccelError::NoBackend { .. }));
        assert!(err.to_string().contains("compare"));
    }

    #[test]
    fn stats_accounting_sums_costs() {
        let mut host = hetero_host();
        let a = host.dispatch(&Kernel::Factor { n: 15 }).unwrap();
        let b = host.dispatch(&Kernel::Factor { n: 21 }).unwrap();
        let s = host.stats()["quantum"];
        assert_eq!(s.kernels, 2);
        assert_eq!(s.operations, a.cost.operations + b.cost.operations);
        let expected = a.cost.device_seconds + b.cost.device_seconds;
        assert!((s.device_seconds - expected).abs() < 1e-15);
        assert!((host.total_device_seconds() - expected).abs() < 1e-15);
    }

    #[test]
    fn seeded_dispatch_is_reproducible() {
        // Same (kernel, seed) must yield identical results regardless of
        // how many executions the backend ran before — the property the
        // concurrent runtime depends on.
        let kernel = Kernel::DnaSimilarity {
            a: "ACGTACGTACGT".into(),
            b: "ACGTTCGTACGA".into(),
            k: 2,
        };
        let mut host = hetero_host();
        let first = host.dispatch_traced(&kernel, Some(99)).unwrap();
        // Burn executions to advance backend state.
        host.dispatch(&Kernel::Factor { n: 15 }).unwrap();
        host.dispatch_traced(&kernel, Some(11)).unwrap();
        let again = host.dispatch_traced(&kernel, Some(99)).unwrap();
        assert_eq!(first.backend, again.backend);
        assert_eq!(first.execution.result, again.execution.result);
    }
}
