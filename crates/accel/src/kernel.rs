//! Kernels: the work items a heterogeneous host dispatches.
//!
//! One kernel per headline capability of the paper's three paradigms, plus
//! the result and cost-report types every backend returns.
//!
//! # Example
//!
//! ```
//! use accel::kernel::Kernel;
//!
//! let k = Kernel::Factor { n: 15 };
//! assert_eq!(k.describe(), "factor(15)");
//! ```

use mem::cnf::Formula;

/// Why a kernel was rejected at submission time, before reaching any
/// backend.
///
/// Submission-time validation keeps malformed work out of the serving
/// queue entirely: the runtime and the network server both reject these
/// kernels with a typed error instead of letting them fail (or worse,
/// panic) deep inside a backend.
#[derive(Debug, Clone, PartialEq)]
pub enum InvalidKernel {
    /// `Factor { n }` with `n < 4`: no nontrivial factorization exists.
    FactorTooSmall {
        /// The rejected composite.
        n: u64,
    },
    /// `Search` over zero qubits: the search space is empty.
    EmptySearchSpace,
    /// A `Search` marked item outside `0..2^n_qubits`.
    MarkedOutOfRange {
        /// The offending marked item.
        item: usize,
        /// The search-space width in qubits.
        n_qubits: usize,
    },
    /// `DnaSimilarity` with `k == 0`: k-mers must be non-empty.
    ZeroKmer,
    /// `DnaSimilarity` with `k` longer than the shorter sequence: no
    /// k-mer can be extracted.
    KmerTooLong {
        /// The rejected k-mer length.
        k: usize,
        /// Length of the shorter sequence.
        shorter: usize,
    },
    /// A `Compare` operand is NaN or infinite.
    CompareNotFinite {
        /// First operand.
        x: f64,
        /// Second operand.
        y: f64,
    },
    /// A `Compare` operand lies outside the normalized range `[0, 1]`.
    CompareOutOfRange {
        /// First operand.
        x: f64,
        /// Second operand.
        y: f64,
    },
    /// A registry-family kernel exceeds its family's serving cap.
    FamilyTooLarge {
        /// The family name.
        family: &'static str,
        /// Which field overflowed.
        field: &'static str,
        /// The submitted size.
        len: usize,
        /// The serving cap.
        max: usize,
    },
    /// A coloring instance too small or with an unusable palette.
    ColoringDegenerate {
        /// Vertex count.
        n_vertices: usize,
        /// Palette size.
        n_colors: usize,
    },
    /// A coloring edge with an out-of-range endpoint or a self-loop.
    ColoringEdgeInvalid {
        /// First endpoint.
        a: usize,
        /// Second endpoint.
        b: usize,
        /// Vertex count.
        n_vertices: usize,
    },
    /// A QUBO over zero variables.
    QuboEmpty,
    /// A QUBO term indexing outside `0..n_vars`, or a diagonal quadratic
    /// term (diagonal weight belongs in the linear part: `x·x = x`).
    QuboIndexInvalid {
        /// First index.
        i: usize,
        /// Second index (equal to `i` for linear terms).
        j: usize,
        /// Variable count.
        n_vars: usize,
    },
    /// A QUBO coefficient is NaN or infinite.
    QuboCoefficientNotFinite {
        /// First index.
        i: usize,
        /// Second index (equal to `i` for linear terms).
        j: usize,
    },
}

impl std::fmt::Display for InvalidKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvalidKernel::FactorTooSmall { n } => {
                write!(
                    f,
                    "factor({n}): composites below 4 have no nontrivial factors"
                )
            }
            InvalidKernel::EmptySearchSpace => {
                write!(f, "search over 0 qubits: the search space is empty")
            }
            InvalidKernel::MarkedOutOfRange { item, n_qubits } => {
                write!(f, "marked item {item} outside search space 0..2^{n_qubits}")
            }
            InvalidKernel::ZeroKmer => write!(f, "dna similarity with k = 0"),
            InvalidKernel::KmerTooLong { k, shorter } => write!(
                f,
                "dna similarity k-mer length {k} exceeds shorter sequence length {shorter}"
            ),
            InvalidKernel::CompareNotFinite { x, y } => {
                write!(f, "compare operands ({x}, {y}) must be finite")
            }
            InvalidKernel::CompareOutOfRange { x, y } => {
                write!(f, "compare operands ({x}, {y}) must lie in [0, 1]")
            }
            InvalidKernel::FamilyTooLarge {
                family,
                field,
                len,
                max,
            } => {
                write!(
                    f,
                    "{family}: {len} {field} exceeds the serving cap of {max}"
                )
            }
            InvalidKernel::ColoringDegenerate {
                n_vertices,
                n_colors,
            } => {
                write!(
                    f,
                    "coloring over {n_vertices} vertices with {n_colors} colors is degenerate \
                     (need 2 <= colors <= vertices)"
                )
            }
            InvalidKernel::ColoringEdgeInvalid { a, b, n_vertices } => {
                write!(
                    f,
                    "coloring edge ({a}, {b}) invalid for {n_vertices} vertices \
                     (endpoints must be distinct and in range)"
                )
            }
            InvalidKernel::QuboEmpty => write!(f, "qubo over 0 variables"),
            InvalidKernel::QuboIndexInvalid { i, j, n_vars } => {
                write!(
                    f,
                    "qubo term ({i}, {j}) invalid for {n_vars} variables \
                     (indices must be distinct and in range)"
                )
            }
            InvalidKernel::QuboCoefficientNotFinite { i, j } => {
                write!(f, "qubo coefficient at ({i}, {j}) must be finite")
            }
        }
    }
}

impl std::error::Error for InvalidKernel {}

/// A dispatchable unit of work.
#[derive(Debug, Clone, PartialEq)]
pub enum Kernel {
    /// Factor an integer (the cryptography killer app, §II-C).
    Factor {
        /// The composite to factor.
        n: u64,
    },
    /// Unstructured search for any marked item in `0..2^n_qubits`.
    Search {
        /// Search-space width in qubits.
        n_qubits: usize,
        /// Marked items.
        marked: Vec<usize>,
    },
    /// DNA sequence similarity (the genomics discussion, §II-C).
    DnaSimilarity {
        /// First sequence (ACGT alphabet).
        a: String,
        /// Second sequence.
        b: String,
        /// k-mer length.
        k: usize,
    },
    /// Solve a SAT instance (the memcomputing workload, §IV).
    SolveSat {
        /// The CNF formula.
        formula: Formula,
    },
    /// Analog distance between two normalized scalars in `[0, 1]` (the
    /// coupled-oscillator comparison primitive, §III).
    Compare {
        /// First operand.
        x: f64,
        /// Second operand.
        y: f64,
    },
    /// A registry-served workload (coloring, QUBO, and every family
    /// added after the registry opened — see [`crate::family`]).
    Family(crate::family::FamilyKernel),
}

impl Kernel {
    /// A short human-readable description (used in errors and reports).
    ///
    /// Delegates to the kernel's [`crate::family::KernelFamily`] entry.
    #[must_use]
    pub fn describe(&self) -> String {
        crate::family::registry().family_of(self).describe(self)
    }

    /// Validates the kernel's inputs, as done at submission time by the
    /// serving layer (see [`InvalidKernel`]).
    ///
    /// Delegates to the kernel's [`crate::family::KernelFamily`] entry.
    ///
    /// # Errors
    ///
    /// The specific [`InvalidKernel`] variant describing the first
    /// violated constraint.
    pub fn validate(&self) -> Result<(), InvalidKernel> {
        crate::family::registry().family_of(self).validate(self)
    }

    /// A coarse class tag for dispatch policies.
    ///
    /// Delegates to the kernel's [`crate::family::KernelFamily`] entry.
    #[must_use]
    pub fn class(&self) -> KernelClass {
        crate::family::registry().family_of(self).class()
    }

    /// Whether this kernel travels in the protocol-v6 generic family
    /// frame (registry-born families) rather than a native v1 frame.
    #[must_use]
    pub fn uses_family_frame(&self) -> bool {
        matches!(self, Kernel::Family(_))
    }
}

/// Coarse kernel classes used for dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelClass {
    /// Quantum-algorithm-shaped work.
    Quantum,
    /// Combinatorial optimization.
    Optimization,
    /// Analog comparison primitives.
    Analog,
}

impl std::fmt::Display for KernelClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            KernelClass::Quantum => "quantum",
            KernelClass::Optimization => "optimization",
            KernelClass::Analog => "analog",
        };
        f.write_str(s)
    }
}

/// The result payload of a kernel execution.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelResult {
    /// Nontrivial factors `(p, q)` with `p·q = n`.
    Factors(u64, u64),
    /// The found item of a search.
    Found(usize),
    /// A similarity score in `[0, 1]`.
    Similarity(f64),
    /// A SAT solution as booleans, or `None` when unsolved.
    SatSolution(Option<Vec<bool>>),
    /// An analog distance measure.
    Distance(f64),
    /// A registry-served family's result payload (see [`crate::family`]).
    Family(crate::family::FamilyResult),
}

impl KernelResult {
    /// Whether this result travels in the protocol-v6 generic family
    /// frame (registry-born families) rather than a native v1 frame.
    #[must_use]
    pub fn uses_family_frame(&self) -> bool {
        matches!(self, KernelResult::Family(_))
    }
}

/// Device-time and work accounting for one execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostReport {
    /// Modelled device time in seconds (simulated physical time on the
    /// backend's substrate, not wall-clock of the simulator).
    pub device_seconds: f64,
    /// Abstract operation count on the backend (gates, integration steps,
    /// comparisons, instructions — backend-specific units).
    pub operations: u64,
}

/// An a-priori prediction of what executing a kernel will cost on one
/// backend, made *before* dispatch.
///
/// This is the planner's currency: where [`CostReport`] accounts for what
/// an execution *did* cost, a `CostEstimate` predicts what it *will* cost,
/// so the host can route on predicted latency or energy instead of
/// registration order. Estimates are model outputs, not measurements —
/// the dispatch layer tracks predicted-vs-actual error and applies an
/// EWMA correction factor to keep them honest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Predicted device time in seconds (same modelled-substrate clock as
    /// [`CostReport::device_seconds`]).
    pub device_seconds: f64,
    /// Predicted energy in joules (device power × predicted device time).
    pub energy_joules: f64,
}

impl CostEstimate {
    /// Scales both the time and energy prediction by a correction factor.
    #[must_use]
    pub fn scaled(self, factor: f64) -> CostEstimate {
        CostEstimate {
            device_seconds: self.device_seconds * factor,
            energy_joules: self.energy_joules * factor,
        }
    }
}

/// A completed execution: payload + cost.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelExecution {
    /// The result payload.
    pub result: KernelResult,
    /// The cost accounting.
    pub cost: CostReport,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem::generators::random_ksat;

    #[test]
    fn descriptions() {
        assert_eq!(Kernel::Factor { n: 21 }.describe(), "factor(21)");
        let k = Kernel::Search {
            n_qubits: 6,
            marked: vec![1, 2],
        };
        assert!(k.describe().contains("2^6"));
        let f = random_ksat(5, 3, 2.0, 1).unwrap();
        assert!(Kernel::SolveSat { formula: f }
            .describe()
            .contains("5 vars"));
    }

    #[test]
    fn classes() {
        assert_eq!(Kernel::Factor { n: 15 }.class(), KernelClass::Quantum);
        assert_eq!(
            Kernel::Compare { x: 0.1, y: 0.2 }.class(),
            KernelClass::Analog
        );
        let f = random_ksat(4, 3, 2.0, 2).unwrap();
        assert_eq!(
            Kernel::SolveSat { formula: f }.class(),
            KernelClass::Optimization
        );
    }

    #[test]
    fn class_display() {
        assert_eq!(KernelClass::Analog.to_string(), "analog");
    }

    #[test]
    fn validate_accepts_well_formed_kernels() {
        let f = random_ksat(5, 3, 2.0, 1).unwrap();
        for k in [
            Kernel::Factor { n: 4 },
            Kernel::Factor { n: 21 },
            Kernel::Search {
                n_qubits: 3,
                marked: vec![0, 7],
            },
            Kernel::DnaSimilarity {
                a: "ACGT".into(),
                b: "ACGA".into(),
                k: 4,
            },
            Kernel::SolveSat { formula: f },
            Kernel::Compare { x: 0.0, y: 1.0 },
        ] {
            assert_eq!(k.validate(), Ok(()), "{}", k.describe());
        }
    }

    #[test]
    fn validate_rejects_small_factor() {
        for n in 0..4 {
            assert_eq!(
                Kernel::Factor { n }.validate(),
                Err(InvalidKernel::FactorTooSmall { n })
            );
        }
    }

    #[test]
    fn validate_rejects_degenerate_search() {
        assert_eq!(
            Kernel::Search {
                n_qubits: 0,
                marked: vec![],
            }
            .validate(),
            Err(InvalidKernel::EmptySearchSpace)
        );
        assert_eq!(
            Kernel::Search {
                n_qubits: 3,
                marked: vec![1, 8],
            }
            .validate(),
            Err(InvalidKernel::MarkedOutOfRange {
                item: 8,
                n_qubits: 3,
            })
        );
    }

    #[test]
    fn validate_rejects_degenerate_dna() {
        assert_eq!(
            Kernel::DnaSimilarity {
                a: "ACGT".into(),
                b: "ACGT".into(),
                k: 0,
            }
            .validate(),
            Err(InvalidKernel::ZeroKmer)
        );
        assert_eq!(
            Kernel::DnaSimilarity {
                a: "ACGTACGT".into(),
                b: "ACG".into(),
                k: 4,
            }
            .validate(),
            Err(InvalidKernel::KmerTooLong { k: 4, shorter: 3 })
        );
    }

    #[test]
    fn validate_rejects_bad_compare_operands() {
        // NaN != NaN under PartialEq, so match on the variant.
        assert!(matches!(
            Kernel::Compare {
                x: f64::NAN,
                y: 0.5,
            }
            .validate(),
            Err(InvalidKernel::CompareNotFinite { y, .. }) if y == 0.5
        ));
        assert!(matches!(
            Kernel::Compare {
                x: f64::INFINITY,
                y: 0.5,
            }
            .validate(),
            Err(InvalidKernel::CompareNotFinite { .. })
        ));
        assert_eq!(
            Kernel::Compare { x: -0.1, y: 0.5 }.validate(),
            Err(InvalidKernel::CompareOutOfRange { x: -0.1, y: 0.5 })
        );
        assert_eq!(
            Kernel::Compare { x: 0.5, y: 1.5 }.validate(),
            Err(InvalidKernel::CompareOutOfRange { x: 0.5, y: 1.5 })
        );
    }

    #[test]
    fn invalid_kernel_messages_name_the_constraint() {
        assert!(InvalidKernel::FactorTooSmall { n: 2 }
            .to_string()
            .contains("factor(2)"));
        assert!(InvalidKernel::KmerTooLong { k: 9, shorter: 4 }
            .to_string()
            .contains("9"));
        assert!(InvalidKernel::CompareOutOfRange { x: 2.0, y: 0.0 }
            .to_string()
            .contains("[0, 1]"));
    }
}
