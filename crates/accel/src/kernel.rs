//! Kernels: the work items a heterogeneous host dispatches.
//!
//! One kernel per headline capability of the paper's three paradigms, plus
//! the result and cost-report types every backend returns.
//!
//! # Example
//!
//! ```
//! use accel::kernel::Kernel;
//!
//! let k = Kernel::Factor { n: 15 };
//! assert_eq!(k.describe(), "factor(15)");
//! ```

use mem::cnf::Formula;

/// A dispatchable unit of work.
#[derive(Debug, Clone, PartialEq)]
pub enum Kernel {
    /// Factor an integer (the cryptography killer app, §II-C).
    Factor {
        /// The composite to factor.
        n: u64,
    },
    /// Unstructured search for any marked item in `0..2^n_qubits`.
    Search {
        /// Search-space width in qubits.
        n_qubits: usize,
        /// Marked items.
        marked: Vec<usize>,
    },
    /// DNA sequence similarity (the genomics discussion, §II-C).
    DnaSimilarity {
        /// First sequence (ACGT alphabet).
        a: String,
        /// Second sequence.
        b: String,
        /// k-mer length.
        k: usize,
    },
    /// Solve a SAT instance (the memcomputing workload, §IV).
    SolveSat {
        /// The CNF formula.
        formula: Formula,
    },
    /// Analog distance between two normalized scalars in `[0, 1]` (the
    /// coupled-oscillator comparison primitive, §III).
    Compare {
        /// First operand.
        x: f64,
        /// Second operand.
        y: f64,
    },
}

impl Kernel {
    /// A short human-readable description (used in errors and reports).
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            Kernel::Factor { n } => format!("factor({n})"),
            Kernel::Search { n_qubits, marked } => {
                format!("search(2^{n_qubits}, {} marked)", marked.len())
            }
            Kernel::DnaSimilarity { a, b, k } => {
                format!("dna_similarity(|a|={}, |b|={}, k={k})", a.len(), b.len())
            }
            Kernel::SolveSat { formula } => format!(
                "solve_sat({} vars, {} clauses)",
                formula.n_vars(),
                formula.len()
            ),
            Kernel::Compare { x, y } => format!("compare({x:.3}, {y:.3})"),
        }
    }

    /// A coarse class tag for dispatch policies.
    #[must_use]
    pub fn class(&self) -> KernelClass {
        match self {
            Kernel::Factor { .. } | Kernel::Search { .. } | Kernel::DnaSimilarity { .. } => {
                KernelClass::Quantum
            }
            Kernel::SolveSat { .. } => KernelClass::Optimization,
            Kernel::Compare { .. } => KernelClass::Analog,
        }
    }
}

/// Coarse kernel classes used for dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelClass {
    /// Quantum-algorithm-shaped work.
    Quantum,
    /// Combinatorial optimization.
    Optimization,
    /// Analog comparison primitives.
    Analog,
}

impl std::fmt::Display for KernelClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            KernelClass::Quantum => "quantum",
            KernelClass::Optimization => "optimization",
            KernelClass::Analog => "analog",
        };
        f.write_str(s)
    }
}

/// The result payload of a kernel execution.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelResult {
    /// Nontrivial factors `(p, q)` with `p·q = n`.
    Factors(u64, u64),
    /// The found item of a search.
    Found(usize),
    /// A similarity score in `[0, 1]`.
    Similarity(f64),
    /// A SAT solution as booleans, or `None` when unsolved.
    SatSolution(Option<Vec<bool>>),
    /// An analog distance measure.
    Distance(f64),
}

/// Device-time and work accounting for one execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostReport {
    /// Modelled device time in seconds (simulated physical time on the
    /// backend's substrate, not wall-clock of the simulator).
    pub device_seconds: f64,
    /// Abstract operation count on the backend (gates, integration steps,
    /// comparisons, instructions — backend-specific units).
    pub operations: u64,
}

/// A completed execution: payload + cost.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelExecution {
    /// The result payload.
    pub result: KernelResult,
    /// The cost accounting.
    pub cost: CostReport,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem::generators::random_ksat;

    #[test]
    fn descriptions() {
        assert_eq!(Kernel::Factor { n: 21 }.describe(), "factor(21)");
        let k = Kernel::Search {
            n_qubits: 6,
            marked: vec![1, 2],
        };
        assert!(k.describe().contains("2^6"));
        let f = random_ksat(5, 3, 2.0, 1).unwrap();
        assert!(Kernel::SolveSat { formula: f }
            .describe()
            .contains("5 vars"));
    }

    #[test]
    fn classes() {
        assert_eq!(Kernel::Factor { n: 15 }.class(), KernelClass::Quantum);
        assert_eq!(
            Kernel::Compare { x: 0.1, y: 0.2 }.class(),
            KernelClass::Analog
        );
        let f = random_ksat(4, 3, 2.0, 2).unwrap();
        assert_eq!(
            Kernel::SolveSat { formula: f }.class(),
            KernelClass::Optimization
        );
    }

    #[test]
    fn class_display() {
        assert_eq!(KernelClass::Analog.to_string(), "analog");
    }
}
