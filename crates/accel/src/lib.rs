//! Heterogeneous-accelerator substrate (paper Figs. 1–2).
//!
//! The paper's framing device: "a heterogeneous multi-core system
//! architecture … in which GPUs, FPGAs, TPUs and now also quantum
//! accelerators can all be used", with the quantum accelerator itself a
//! layered stack from application down to chip. This crate makes the
//! framing executable:
//!
//! * [`kernel`] — work items spanning the three paradigms (factoring,
//!   search, DNA similarity, SAT, analog vector comparison);
//! * [`accelerator`] — the [`accelerator::Accelerator`] trait and a CPU
//!   reference backend implementing every kernel classically;
//! * [`backends`] — the quantum, coupled-oscillator, and memcomputing
//!   backends built on the workspace's simulators;
//! * [`host`] — the host runtime that dispatches kernels to backends and
//!   accounts device time per backend (Fig. 1's system view);
//! * [`stack`] — the Fig. 2 layer model: per-layer latency accounting for
//!   a quantum job travelling application → … → chip.
//!
//! # Example
//!
//! ```
//! use accel::accelerator::{Accelerator, CpuBackend};
//! use accel::kernel::Kernel;
//!
//! let mut cpu = CpuBackend::new(1);
//! let run = cpu.execute(&Kernel::Factor { n: 21 })?;
//! # Ok::<(), accel::AccelError>(())
//! ```

// Deliberate style choices for numerical simulation code: `!(x > 0.0)`
// rejects NaN alongside non-positive values, and indexed loops mirror the
// mathematics they implement (state-vector strides, lattice walks).
#![allow(
    clippy::neg_cmp_op_on_partial_ord,
    clippy::needless_range_loop,
    clippy::manual_is_multiple_of,
    clippy::field_reassign_with_default
)]
pub mod accelerator;
pub mod backends;
pub mod family;
pub mod fault;
pub mod host;
pub mod kernel;
pub mod stack;

/// Crate-wide error type.
#[derive(Debug)]
pub enum AccelError {
    /// The kernel is not supported by the chosen backend.
    Unsupported {
        /// Backend name.
        backend: String,
        /// Kernel description.
        kernel: String,
    },
    /// No backend in the host runtime supports the kernel.
    NoBackend {
        /// Kernel description.
        kernel: String,
        /// Names of the candidate backends that were considered (or
        /// attempted and refused the kernel), in the order tried.
        tried: Vec<String>,
    },
    /// Every candidate backend's corrected cost estimate exceeds the job's
    /// deadline budget (the `DeadlineAware` policy refuses to start work
    /// it predicts cannot finish in time).
    DeadlineUnmeetable {
        /// Kernel description.
        kernel: String,
        /// The job's device-time budget in seconds.
        deadline_seconds: f64,
        /// The smallest corrected estimate among the candidates, seconds.
        best_seconds: f64,
    },
    /// A backend failed while executing.
    Backend {
        /// Backend name.
        backend: String,
        /// Underlying error.
        source: Box<dyn std::error::Error + Send + Sync + 'static>,
    },
    /// The device itself faulted during execution — the error class the
    /// dispatcher's retry/failover machinery handles (see
    /// [`host::RetryPolicy`] and [`fault::FaultPlan`]). Transient faults
    /// are retried on the same backend with capped exponential backoff;
    /// permanent faults (and exhausted retries) fail over to the
    /// next-ranked candidate.
    DeviceFault {
        /// Backend name.
        backend: String,
        /// Whether the fault is expected to clear on retry.
        transient: bool,
        /// Human-readable fault description.
        detail: String,
    },
}

impl std::fmt::Display for AccelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccelError::Unsupported { backend, kernel } => {
                write!(f, "backend `{backend}` does not support kernel {kernel}")
            }
            AccelError::NoBackend { kernel, tried } => {
                if tried.is_empty() {
                    write!(f, "no backend supports kernel {kernel}")
                } else {
                    write!(
                        f,
                        "no backend supports kernel {kernel} (tried: {})",
                        tried.join(", ")
                    )
                }
            }
            AccelError::DeadlineUnmeetable {
                kernel,
                deadline_seconds,
                best_seconds,
            } => {
                write!(
                    f,
                    "no backend can meet the {deadline_seconds:.3e}s deadline for kernel \
                     {kernel} (best estimate {best_seconds:.3e}s)"
                )
            }
            AccelError::Backend { backend, source } => {
                write!(f, "backend `{backend}` failed: {source}")
            }
            AccelError::DeviceFault {
                backend,
                transient,
                detail,
            } => {
                let kind = if *transient { "transient" } else { "permanent" };
                write!(f, "backend `{backend}` {kind} device fault: {detail}")
            }
        }
    }
}

impl std::error::Error for AccelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AccelError::Backend { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl AccelError {
    /// Wraps a backend failure.
    pub fn backend<E: std::error::Error + Send + Sync + 'static>(backend: &str, source: E) -> Self {
        AccelError::Backend {
            backend: backend.to_string(),
            source: Box::new(source),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let e = AccelError::NoBackend {
            kernel: "factor(15)".into(),
            tried: vec![],
        };
        assert!(e.to_string().contains("factor(15)"));
        let e = AccelError::NoBackend {
            kernel: "factor(15)".into(),
            tried: vec!["quantum".into(), "memcomputing".into()],
        };
        let text = e.to_string();
        assert!(text.contains("tried: quantum, memcomputing"), "{text}");
        let e = AccelError::DeadlineUnmeetable {
            kernel: "compare(0.100, 0.200)".into(),
            deadline_seconds: 1e-9,
            best_seconds: 3e-9,
        };
        assert!(e.to_string().contains("deadline"), "{e}");
        let e = AccelError::DeviceFault {
            backend: "quantum".into(),
            transient: true,
            detail: "injected".into(),
        };
        let text = e.to_string();
        assert!(text.contains("transient device fault"), "{text}");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AccelError>();
    }
}
