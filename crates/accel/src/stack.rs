//! The layered quantum-accelerator stack (paper Fig. 2).
//!
//! "Figure 2 shows the full system stack that any quantum accelerator
//! should have": application → algorithm → programming language/compiler →
//! runtime → QISA → micro-architecture → quantum chip. [`StackModel`] walks
//! a QISA program through those layers, charging each a latency from an
//! analytical model (compilation and routing per gate, decode per
//! instruction, chip time from the micro-architecture's ASAP schedule), and
//! reports where a job's time actually goes.
//!
//! # Example
//!
//! ```
//! use accel::stack::StackModel;
//! use quantum::isa::assemble;
//! use numerics::rng::rng_from_seed;
//!
//! let program = assemble("qubits 2\nh q0\ncnot q0, q1\nmeasure_all\n")?;
//! let model = StackModel::default();
//! let mut rng = rng_from_seed(1);
//! let report = model.run(&program, &mut rng)?;
//! assert!(report.total_ns() > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use numerics::rng::Rng;
use quantum::isa::Program;
use quantum::microarch::{ExecutionReport, Microarchitecture, TimingModel};
use quantum::QuantumError;

/// The layers of Fig. 2, top to bottom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Layer {
    /// End-user application logic.
    Application,
    /// Algorithm selection/specialization.
    Algorithm,
    /// Language/compiler (including mapping & routing).
    Compiler,
    /// Classical runtime management.
    Runtime,
    /// Instruction-set encoding/decoding.
    Qisa,
    /// Micro-architecture control.
    Microarchitecture,
    /// The quantum chip itself.
    Chip,
}

impl Layer {
    /// All layers, top to bottom.
    pub const ALL: [Layer; 7] = [
        Layer::Application,
        Layer::Algorithm,
        Layer::Compiler,
        Layer::Runtime,
        Layer::Qisa,
        Layer::Microarchitecture,
        Layer::Chip,
    ];
}

impl std::fmt::Display for Layer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Layer::Application => "application",
            Layer::Algorithm => "algorithm",
            Layer::Compiler => "compiler",
            Layer::Runtime => "runtime",
            Layer::Qisa => "qisa",
            Layer::Microarchitecture => "micro-architecture",
            Layer::Chip => "chip",
        };
        f.write_str(s)
    }
}

/// Analytic per-layer latency coefficients (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StackModel {
    /// Fixed application-layer overhead per job.
    pub application_ns: f64,
    /// Fixed algorithm-selection overhead per job.
    pub algorithm_ns: f64,
    /// Compiler cost per instruction (parsing, scheduling, routing).
    pub compile_per_instr_ns: f64,
    /// Runtime invocation overhead per job.
    pub runtime_ns: f64,
    /// QISA encode/decode per instruction.
    pub qisa_per_instr_ns: f64,
    /// The micro-architecture timing model (controls both the control
    /// overhead and the chip time).
    pub timing: TimingModel,
}

impl Default for StackModel {
    fn default() -> Self {
        StackModel {
            application_ns: 10_000.0,
            algorithm_ns: 5_000.0,
            compile_per_instr_ns: 500.0,
            runtime_ns: 2_000.0,
            qisa_per_instr_ns: 10.0,
            timing: TimingModel::default(),
        }
    }
}

/// Where a job's time went, layer by layer.
#[derive(Debug, Clone, PartialEq)]
pub struct StackReport {
    layers: Vec<(Layer, f64)>,
    /// The chip-level execution report.
    pub execution: ExecutionReport,
}

impl StackReport {
    /// Per-layer `(layer, nanoseconds)` breakdown, top to bottom.
    #[must_use]
    pub fn layers(&self) -> &[(Layer, f64)] {
        &self.layers
    }

    /// Total job latency in nanoseconds.
    #[must_use]
    pub fn total_ns(&self) -> f64 {
        self.layers.iter().map(|(_, t)| t).sum()
    }

    /// The latency charged to one layer.
    #[must_use]
    pub fn layer_ns(&self, layer: Layer) -> f64 {
        self.layers
            .iter()
            .find(|(l, _)| *l == layer)
            .map_or(0.0, |(_, t)| *t)
    }

    /// Fraction of the total spent on the chip itself — the figure of merit
    /// for how much of the stack is classical overhead.
    #[must_use]
    pub fn chip_fraction(&self) -> f64 {
        let total = self.total_ns();
        if total <= 0.0 {
            return 0.0;
        }
        self.layer_ns(Layer::Chip) / total
    }
}

impl std::fmt::Display for StackReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (layer, ns) in &self.layers {
            writeln!(f, "{layer:>20}: {ns:>12.1} ns")?;
        }
        writeln!(f, "{:>20}: {:>12.1} ns", "total", self.total_ns())
    }
}

impl StackModel {
    /// Runs a program through every layer, executing it once on the
    /// simulated chip at the bottom.
    ///
    /// # Errors
    ///
    /// Propagates micro-architecture execution errors.
    pub fn run<R: Rng>(&self, program: &Program, rng: &mut R) -> Result<StackReport, QuantumError> {
        self.run_shots(program, 1, rng)
    }

    /// Runs a program through every layer with `shots` repeated executions:
    /// the classical layers (application through QISA encoding) are paid
    /// once per job, while the micro-architecture and chip layers repeat
    /// per shot — the standard accelerator usage pattern, under which the
    /// chip fraction grows with both circuit size and shot count.
    ///
    /// The returned [`StackReport::execution`] holds the final shot.
    ///
    /// # Errors
    ///
    /// Propagates micro-architecture execution errors; `shots` is clamped
    /// to at least 1.
    pub fn run_shots<R: Rng>(
        &self,
        program: &Program,
        shots: usize,
        rng: &mut R,
    ) -> Result<StackReport, QuantumError> {
        let shots = shots.max(1);
        let n_instr = program.instructions().len() as f64;
        let arch = Microarchitecture::new(self.timing);
        let mut execution = arch.execute(program, rng)?;
        for _ in 1..shots {
            execution = arch.execute(program, rng)?;
        }
        // The micro-architecture layer is the decode/issue overhead; the
        // chip layer is the quantum critical path. Both repeat per shot.
        let decode_ns = n_instr * self.timing.decode_ns * shots as f64;
        let chip_ns =
            (execution.duration_ns - n_instr * self.timing.decode_ns).max(0.0) * shots as f64;
        let layers = vec![
            (Layer::Application, self.application_ns),
            (Layer::Algorithm, self.algorithm_ns),
            (Layer::Compiler, n_instr * self.compile_per_instr_ns),
            (Layer::Runtime, self.runtime_ns),
            (Layer::Qisa, n_instr * self.qisa_per_instr_ns),
            (Layer::Microarchitecture, decode_ns),
            (Layer::Chip, chip_ns),
        ];
        Ok(StackReport { layers, execution })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numerics::rng::rng_from_seed;
    use quantum::isa::assemble;

    fn bell() -> Program {
        assemble("qubits 2\nh q0\ncnot q0, q1\nmeasure_all\n").unwrap()
    }

    #[test]
    fn report_covers_all_layers() {
        let mut rng = rng_from_seed(1);
        let report = StackModel::default().run(&bell(), &mut rng).unwrap();
        assert_eq!(report.layers().len(), Layer::ALL.len());
        for layer in Layer::ALL {
            assert!(report.layer_ns(layer) >= 0.0);
        }
    }

    #[test]
    fn total_is_sum_of_layers() {
        let mut rng = rng_from_seed(2);
        let report = StackModel::default().run(&bell(), &mut rng).unwrap();
        let sum: f64 = Layer::ALL.iter().map(|&l| report.layer_ns(l)).sum();
        assert!((report.total_ns() - sum).abs() < 1e-9);
    }

    #[test]
    fn small_jobs_dominated_by_classical_overhead() {
        // The practical point of Fig. 2: for small circuits, the classical
        // stack dwarfs the chip time.
        let mut rng = rng_from_seed(3);
        let report = StackModel::default().run(&bell(), &mut rng).unwrap();
        assert!(
            report.chip_fraction() < 0.5,
            "chip fraction {}",
            report.chip_fraction()
        );
    }

    #[test]
    fn bigger_programs_cost_more_compile_time() {
        let mut rng = rng_from_seed(4);
        let small = StackModel::default().run(&bell(), &mut rng).unwrap();
        let big_src = {
            let mut s = String::from("qubits 4\n");
            for _ in 0..50 {
                s.push_str("h q0\ncnot q0, q1\ncnot q1, q2\ncnot q2, q3\n");
            }
            s.push_str("measure_all\n");
            s
        };
        let big = StackModel::default()
            .run(&assemble(&big_src).unwrap(), &mut rng)
            .unwrap();
        assert!(big.layer_ns(Layer::Compiler) > small.layer_ns(Layer::Compiler));
        assert!(big.layer_ns(Layer::Chip) > small.layer_ns(Layer::Chip));
    }

    #[test]
    fn display_renders_every_layer() {
        let mut rng = rng_from_seed(5);
        let report = StackModel::default().run(&bell(), &mut rng).unwrap();
        let text = report.to_string();
        for layer in Layer::ALL {
            assert!(text.contains(&layer.to_string()), "missing {layer}");
        }
        assert!(text.contains("total"));
    }

    #[test]
    fn shots_grow_chip_fraction() {
        let mut rng = rng_from_seed(9);
        let model = StackModel::default();
        let one = model.run_shots(&bell(), 1, &mut rng).unwrap();
        let many = model.run_shots(&bell(), 1000, &mut rng).unwrap();
        assert!(
            many.chip_fraction() > one.chip_fraction() * 5.0,
            "1 shot {} vs 1000 shots {}",
            one.chip_fraction(),
            many.chip_fraction()
        );
    }

    #[test]
    fn layer_display_names_distinct() {
        let names: std::collections::HashSet<String> =
            Layer::ALL.iter().map(Layer::to_string).collect();
        assert_eq!(names.len(), Layer::ALL.len());
    }
}
