//! A deterministic LRU result cache.
//!
//! Every result in this workspace is a pure function of
//! `(canonical key, seed, policy)`, so a cached value is byte-identical to
//! recomputation — the cache trades memory for device time, never for
//! fidelity. The implementation is deliberately boring and deterministic:
//! a `BTreeMap` store plus a `BTreeMap` recency index driven by a logical
//! tick counter. No wall clock, no pointer identity, no hash-order
//! iteration — the same access sequence always produces the same hits,
//! misses, and evictions (the eviction order is part of the serving
//! system's reproducibility contract, not an implementation detail).
//!
//! The cache is generic over key and value so it can be unit-tested here
//! and instantiated by the serving runtime with its own stored-outcome
//! type.

use std::collections::BTreeMap;

/// Hit/miss/eviction counters, exported into `RuntimeStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that returned a stored value.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
}

#[derive(Debug, Clone)]
struct Slot<V> {
    value: V,
    tick: u64,
}

/// A least-recently-used cache with deterministic eviction order.
///
/// Capacity `0` disables the cache entirely: every lookup misses without
/// being counted and inserts are dropped.
#[derive(Debug, Clone)]
pub struct ResultCache<K: Ord + Clone, V: Clone> {
    capacity: usize,
    slots: BTreeMap<K, Slot<V>>,
    /// Recency index: logical tick → key. The smallest tick is the
    /// least-recently-used entry.
    recency: BTreeMap<u64, K>,
    tick: u64,
    counters: CacheCounters,
}

impl<K: Ord + Clone, V: Clone> ResultCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            slots: BTreeMap::new(),
            recency: BTreeMap::new(),
            tick: 0,
            counters: CacheCounters::default(),
        }
    }

    /// The configured capacity (0 = disabled).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the cache holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The hit/miss/eviction counters accumulated so far.
    #[must_use]
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    fn next_tick(&mut self) -> u64 {
        self.tick = self.tick.wrapping_add(1);
        self.tick
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        if self.capacity == 0 {
            return None;
        }
        let tick = self.next_tick();
        if let Some(slot) = self.slots.get_mut(key) {
            let stale = std::mem::replace(&mut slot.tick, tick);
            let value = slot.value.clone();
            self.recency.remove(&stale);
            self.recency.insert(tick, key.clone());
            self.counters.hits += 1;
            Some(value)
        } else {
            self.counters.misses += 1;
            None
        }
    }

    /// Stores `value` under `key`, evicting the least-recently-used entry
    /// if the cache is full. Returns how many entries were evicted (0 or
    /// 1; re-inserting an existing key evicts nothing).
    pub fn insert(&mut self, key: K, value: V) -> u64 {
        if self.capacity == 0 {
            return 0;
        }
        let tick = self.next_tick();
        if let Some(slot) = self.slots.get_mut(&key) {
            let stale = std::mem::replace(&mut slot.tick, tick);
            slot.value = value;
            self.recency.remove(&stale);
            self.recency.insert(tick, key);
            return 0;
        }
        let mut evicted = 0;
        while self.slots.len() >= self.capacity {
            let Some((&oldest, _)) = self.recency.iter().next() else {
                break;
            };
            if let Some(victim) = self.recency.remove(&oldest) {
                self.slots.remove(&victim);
                evicted += 1;
                self.counters.evictions += 1;
            }
        }
        self.slots.insert(key.clone(), Slot { value, tick });
        self.recency.insert(tick, key);
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert_miss_before() {
        let mut c: ResultCache<u32, &str> = ResultCache::new(4);
        assert_eq!(c.get(&1), None);
        c.insert(1, "one");
        assert_eq!(c.get(&1), Some("one"));
        assert_eq!(
            c.counters(),
            CacheCounters {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let mut c: ResultCache<u32, u32> = ResultCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        // Touch 1 so 2 becomes the LRU victim.
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.insert(3, 30), 1);
        assert_eq!(c.get(&2), None, "2 was least recently used");
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), Some(30));
        assert_eq!(c.counters().evictions, 1);
    }

    #[test]
    fn reinsert_refreshes_without_evicting() {
        let mut c: ResultCache<u32, u32> = ResultCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.insert(1, 11), 0);
        assert_eq!(c.len(), 2);
        c.insert(3, 30);
        // 2 was LRU after 1's refresh.
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(11));
    }

    #[test]
    fn zero_capacity_disables_everything() {
        let mut c: ResultCache<u32, u32> = ResultCache::new(0);
        assert_eq!(c.insert(1, 10), 0);
        assert_eq!(c.get(&1), None);
        assert!(c.is_empty());
        assert_eq!(c.counters(), CacheCounters::default());
    }

    #[test]
    fn eviction_order_is_deterministic() {
        let run = || {
            let mut c: ResultCache<u32, u32> = ResultCache::new(3);
            let mut trace = Vec::new();
            for i in 0..10u32 {
                c.insert(i, i);
                trace.push(c.get(&(i / 2)).is_some());
            }
            (trace, c.counters())
        };
        assert_eq!(run(), run());
    }
}
