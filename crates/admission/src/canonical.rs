//! Canonical forms and canonical keys for submitted kernels.
//!
//! Two submissions that denote the same computation should share one cache
//! identity even when their syntax differs: a SAT formula with its clauses
//! permuted, a search kernel with duplicate marked items, a comparison
//! carrying `-0.0`. Each kernel family gets a *canonical form* — the
//! variant of the kernel the runtime actually executes — and an FNV-1a
//! [`CanonicalKey`] derived from it.
//!
//! # The byte-for-byte invariant
//!
//! The solvers behind these kernels are order-sensitive: a DMM or WalkSAT
//! run on a clause-permuted formula takes a different trajectory and may
//! return a *different satisfying assignment*. Canonicalization therefore
//! never tries to be a semantic no-op on the raw backend — instead the
//! serving runtime canonicalizes **every** submission and executes the
//! canonical form, cold or cached alike. That makes
//! `run(canonicalize(k), seed) == run(k, seed)` hold byte-for-byte by
//! construction, and it is why the canonical form stays in the *original
//! variable space*: a returned SAT assignment must still satisfy the
//! formula the client submitted.
//!
//! # Two-level keys
//!
//! The key half of admission is allowed to be more aggressive than the
//! form half. [`CanonicalKey::key`] hashes the form *after* a stable
//! first-occurrence variable renumbering (for SAT) and a coarse parameter
//! quantization (for the analog compare kernel), so α-equivalent formulas
//! and nearly-identical oscillator operands collide into one cache
//! bucket. [`CanonicalKey::exact`] hashes the canonical form verbatim.
//! Both halves must match for the cache to serve a stored result, so the
//! coarse half can only ever *group* candidates, never cause one kernel to
//! be served another kernel's bytes.

use accel::family::registry;
use accel::kernel::Kernel;
use quantum::circuit::Circuit;
use quantum::gate::Gate;

pub use accel::family::CanonicalKey;

/// Rewrites a kernel into the canonical form the runtime executes.
///
/// Dispatches to the kernel's [`accel::family::KernelFamily`] registry
/// entry, which owns the family's normal form. For the legacy families:
///
/// * `SolveSat` — literals sorted within each clause, clauses sorted
///   lexicographically and deduplicated, all in the original variable
///   space. Idempotent, and a satisfying assignment of the canonical
///   formula satisfies the submitted one (same clauses as a set).
/// * `Search` — marked items sorted and deduplicated.
/// * `Compare` — negative zero normalized to positive zero (the two are
///   numerically equal, so every backend's distance is unchanged).
/// * `Factor`, `DnaSimilarity` — already canonical; returned unchanged.
///
/// Registry-born families bring their own normal forms (edge-sorted
/// graphs for coloring, combined-and-sorted coefficients for QUBO).
///
/// Canonicalization never fails: if a rebuilt formula would be rejected by
/// its validating constructor (impossible for input that passed
/// `Kernel::validate`), the kernel is returned unchanged.
#[must_use]
pub fn canonicalize(kernel: &Kernel) -> Kernel {
    registry().family_of(kernel).canonicalize(kernel)
}

/// Derives the two-level [`CanonicalKey`] of a kernel.
///
/// Dispatches to the kernel's [`accel::family::KernelFamily`] registry
/// entry. The input should already be in canonical form (see
/// [`canonicalize`]); [`admit`] packages the two steps. Calling this on a
/// non-canonical kernel simply yields the key of that syntactic variant.
#[must_use]
pub fn canonical_key(kernel: &Kernel) -> CanonicalKey {
    registry().family_of(kernel).canonical_key(kernel)
}

/// Canonicalizes a kernel and derives its key in one step — the form the
/// serving runtime executes plus the identity it caches under.
#[must_use]
pub fn admit(kernel: &Kernel) -> (Kernel, CanonicalKey) {
    let canonical = canonicalize(kernel);
    let key = canonical_key(&canonical);
    (canonical, key)
}

/// The consistent-hash placement of a kernel: canonicalize, key, mix.
///
/// This is the routing entry point — callers hand it the kernel as
/// submitted, so every syntactic variant of one canonical kernel yields
/// the same hash and lands on the same shard (and shard-local cache).
/// [`CanonicalKey::routing_hash`] alone skips the canonicalization and is
/// only safe on keys derived from already-canonical kernels.
#[must_use]
pub fn routing_hash(kernel: &Kernel) -> u64 {
    canonical_key(&canonicalize(kernel)).routing_hash()
}

/// Normalizes a quantum circuit by cancelling adjacent inverse gate pairs.
///
/// A gate immediately followed by its inverse on the same qubits is an
/// identity; removing the pair can expose further cancellations, so the
/// pass runs as a stack fold (`H q0, H q0, X q1` → `X q1`; a palindrome
/// collapses completely). Gate order is otherwise preserved — no
/// commutation reasoning — so the normalized circuit implements the same
/// unitary as the input.
///
/// Kernels do not carry circuits directly; this is the admission-side
/// normalization utility for callers that cache at the circuit level
/// (e.g. pre-transpiled Shor / Grover fragments).
#[must_use]
pub fn cancel_adjacent_inverses(circuit: &Circuit) -> Circuit {
    let mut kept: Vec<Gate> = Vec::with_capacity(circuit.gates().len());
    for &gate in circuit.gates() {
        if kept.last() == Some(&gate.inverse()) {
            kept.pop();
        } else {
            kept.push(gate);
        }
    }
    let Ok(mut rebuilt) = Circuit::new(circuit.n_qubits()) else {
        return circuit.clone();
    };
    for gate in kept {
        if rebuilt.push(gate).is_err() {
            return circuit.clone();
        }
    }
    rebuilt
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem::cnf::{Clause, Formula, Literal};
    use mem::generators::planted_3sat;
    use quantum::state::StateVector;

    fn formula(clauses: &[&[i64]]) -> Formula {
        let built: Vec<Clause> = clauses
            .iter()
            .map(|c| {
                Clause::new(
                    c.iter()
                        .map(|&d| Literal::from_dimacs(d).unwrap())
                        .collect(),
                )
                .unwrap()
            })
            .collect();
        let n_vars = clauses
            .iter()
            .flat_map(|c| c.iter())
            .map(|&d| d.unsigned_abs() as usize)
            .max()
            .unwrap();
        Formula::new(n_vars, built).unwrap()
    }

    #[test]
    fn canonicalization_is_idempotent() {
        let kernels = [
            Kernel::Factor { n: 21 },
            Kernel::Search {
                n_qubits: 4,
                marked: vec![9, 3, 3, 1],
            },
            Kernel::Compare { x: -0.0, y: 0.5 },
            Kernel::SolveSat {
                formula: formula(&[&[2, -1], &[1, 3], &[2, -1]]),
            },
            Kernel::DnaSimilarity {
                a: "ACGT".into(),
                b: "ACGA".into(),
                k: 2,
            },
        ];
        for k in kernels {
            let once = canonicalize(&k);
            assert_eq!(once, canonicalize(&once));
        }
    }

    #[test]
    fn clause_permutations_share_both_key_halves() {
        let a = Kernel::SolveSat {
            formula: formula(&[&[1, -2], &[3, 2], &[1, 2, 3]]),
        };
        let b = Kernel::SolveSat {
            formula: formula(&[&[2, 3], &[2, 1, 3], &[-2, 1]]),
        };
        assert_eq!(canonicalize(&a), canonicalize(&b));
        assert_eq!(admit(&a).1, admit(&b).1);
    }

    #[test]
    fn alpha_equivalent_formulas_share_only_the_coarse_half() {
        // x1..x3 renamed to x4..x6 (same clause structure): coarse keys
        // collide, exact keys must not — α-equivalence may bucket, never
        // serve bytes across.
        let a = Kernel::SolveSat {
            formula: formula(&[&[1, -2], &[2, 3]]),
        };
        let b = Kernel::SolveSat {
            formula: formula(&[&[4, -5], &[5, 6]]),
        };
        let (ka, kb) = (admit(&a).1, admit(&b).1);
        assert_eq!(ka.key, kb.key);
        assert_ne!(ka.exact, kb.exact);
    }

    #[test]
    fn distinct_formulas_get_distinct_keys() {
        let a = Kernel::SolveSat {
            formula: formula(&[&[1, -2], &[2, 3]]),
        };
        let b = Kernel::SolveSat {
            formula: formula(&[&[1, 2], &[2, 3]]),
        };
        let (ka, kb) = (admit(&a).1, admit(&b).1);
        assert_ne!(ka.exact, kb.exact);
        assert_ne!(ka.key, kb.key);
    }

    #[test]
    fn canonical_solution_satisfies_the_original_formula() {
        // The canonical form stays in the original variable space, so any
        // satisfying assignment transfers verbatim.
        let sat = planted_3sat(10, 3.5, 77).unwrap();
        let Kernel::SolveSat { formula: canon } = canonicalize(&Kernel::SolveSat {
            formula: sat.formula.clone(),
        }) else {
            panic!("canonical form changed family");
        };
        assert_eq!(canon.n_vars(), sat.formula.n_vars());
        assert!(sat.formula.is_satisfied(&sat.planted));
        assert!(canon.is_satisfied(&sat.planted));
    }

    #[test]
    fn negative_zero_and_quantization_behave() {
        let a = admit(&Kernel::Compare { x: -0.0, y: 0.25 });
        let b = admit(&Kernel::Compare { x: 0.0, y: 0.25 });
        assert_eq!(a.1, b.1);
        // Sub-lattice perturbation: coarse halves collide, exact differ.
        let c = admit(&Kernel::Compare {
            x: 0.5,
            y: 0.25 + 1e-9,
        });
        let d = admit(&Kernel::Compare { x: 0.5, y: 0.25 });
        assert_eq!(c.1.key, d.1.key);
        assert_ne!(c.1.exact, d.1.exact);
    }

    #[test]
    fn search_marked_items_sort_and_dedup() {
        let (canon, key) = admit(&Kernel::Search {
            n_qubits: 5,
            marked: vec![7, 1, 7, 30],
        });
        assert_eq!(
            canon,
            Kernel::Search {
                n_qubits: 5,
                marked: vec![1, 7, 30],
            }
        );
        assert_eq!(key, admit(&canon).1);
    }

    #[test]
    fn keys_are_stable_across_calls() {
        let k = Kernel::Factor { n: 35 };
        assert_eq!(admit(&k).1, admit(&k).1);
        assert_ne!(admit(&k).1, admit(&Kernel::Factor { n: 33 }).1);
    }

    #[test]
    fn adjacent_inverse_gates_cancel() {
        let mut c = Circuit::new(2).unwrap();
        c.push(Gate::H(0)).unwrap();
        c.push(Gate::H(0)).unwrap();
        c.push(Gate::X(1)).unwrap();
        let n = cancel_adjacent_inverses(&c);
        assert_eq!(n.gates(), &[Gate::X(1)]);
    }

    #[test]
    fn cancellation_cascades_through_palindromes() {
        let mut c = Circuit::new(1).unwrap();
        for g in [Gate::H(0), Gate::X(0), Gate::X(0), Gate::H(0)] {
            c.push(g).unwrap();
        }
        assert!(cancel_adjacent_inverses(&c).gates().is_empty());
    }

    #[test]
    fn gates_on_different_qubits_do_not_cancel() {
        let mut c = Circuit::new(2).unwrap();
        c.push(Gate::X(0)).unwrap();
        c.push(Gate::X(1)).unwrap();
        assert_eq!(cancel_adjacent_inverses(&c).gates().len(), 2);
    }

    #[test]
    fn normalized_circuit_preserves_the_state_vector() {
        let mut c = Circuit::new(3).unwrap();
        for g in [
            Gate::H(0),
            Gate::CX(0, 1),
            Gate::CX(0, 1),
            Gate::Rz(2, 0.7),
            Gate::Rz(2, -0.7),
            Gate::X(2),
        ] {
            c.push(g).unwrap();
        }
        let n = cancel_adjacent_inverses(&c);
        assert!(n.gates().len() < c.gates().len());
        let mut full = StateVector::zero(3);
        let mut reduced = StateVector::zero(3);
        for g in c.gates() {
            g.apply(&mut full).unwrap();
        }
        for g in n.gates() {
            g.apply(&mut reduced).unwrap();
        }
        for (a, b) in full.amplitudes().iter().zip(reduced.amplitudes()) {
            assert!((a.re - b.re).abs() < 1e-12 && (a.im - b.im).abs() < 1e-12);
        }
    }

    #[test]
    fn routing_hash_follows_the_canonical_key() {
        // Syntactic variants of one kernel share a routing hash...
        let a = routing_hash(&Kernel::Search {
            n_qubits: 4,
            marked: vec![3, 1, 3],
        });
        let b = routing_hash(&Kernel::Search {
            n_qubits: 4,
            marked: vec![1, 3],
        });
        assert_eq!(a, b);
        // ...while distinct kernels do not.
        let c = routing_hash(&Kernel::Factor { n: 21 });
        assert_ne!(a, c);
        // And the hash mixes both key halves: flipping `exact` alone
        // moves it.
        let key = canonical_key(&Kernel::Factor { n: 21 });
        let mut flipped = key;
        flipped.exact ^= 1;
        assert_ne!(key.routing_hash(), flipped.routing_hash());
    }
}
