//! The admission tier: what happens to a job *before* it reaches the
//! planner.
//!
//! At serving scale most traffic is near-duplicate, yet every submission
//! would otherwise pay full planner + backend cost. This crate supplies the
//! three deduplication mechanisms the serving runtime layers between
//! submission and dispatch, plus the configuration for hedged dispatch:
//!
//! * [`canonical`] — a canonical form per kernel family and an FNV-1a
//!   [`canonical::CanonicalKey`], so syntactic variants of the same
//!   computation collapse onto one identity. The runtime executes the
//!   canonical form itself, which is what makes the central invariant hold:
//!   *canonicalization preserves results byte-for-byte under the same
//!   seed*.
//! * [`cache`] — a seeded-deterministic LRU result cache keyed on
//!   `(canonical key, seed, policy)`. Results in this workspace are pure
//!   functions of that triple, so a hit is byte-identical to recomputation.
//! * [`singleflight`] — coalescing for identical in-flight submissions:
//!   one execution, many waiters, with per-waiter cancellation that never
//!   leaks to peers.
//!
//! The types here are deliberately generic over the stored value and the
//! waiter handle: the `runtime` crate instantiates them with its own job
//! state, keeping this crate free of any dependency on the serving engine
//! (the dependency points the other way).
//!
//! Everything is deterministic by construction — `BTreeMap` recency and
//! flight tables (no hash-order iteration), a logical clock instead of
//! wall time, and no OS entropy anywhere.

pub mod cache;
pub mod canonical;
pub mod singleflight;

pub use cache::{CacheCounters, ResultCache};
pub use canonical::{
    admit, cancel_adjacent_inverses, canonical_key, canonicalize, routing_hash, CanonicalKey,
};
pub use singleflight::SingleFlight;

/// Configuration for the runtime's admission tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Result-cache capacity in entries. `0` disables the cache.
    pub cache_capacity: usize,
    /// Whether identical in-flight `(canonical key, seed, policy)`
    /// submissions coalesce onto one execution.
    pub coalesce: bool,
    /// Hedged portfolio dispatch for SAT-shaped kernels; `None` dispatches
    /// every job down the single planner-ranked walk.
    pub hedge: Option<HedgeConfig>,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            cache_capacity: 256,
            coalesce: true,
            hedge: None,
        }
    }
}

impl AdmissionConfig {
    /// A configuration with every admission mechanism switched off:
    /// no cache, no coalescing, no hedging. Every submission recomputes.
    #[must_use]
    pub fn disabled() -> Self {
        AdmissionConfig {
            cache_capacity: 0,
            coalesce: false,
            hedge: None,
        }
    }

    /// Whether any admission mechanism is active.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.cache_capacity > 0 || self.coalesce || self.hedge.is_some()
    }
}

/// Configuration for hedged portfolio dispatch of SAT kernels: race the
/// `top_k` planner-ranked backends (DMM vs WalkSAT vs DPLL paths), keep
/// the highest-ranked success, cancel the rest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HedgeConfig {
    /// How many top-ranked candidates to race (clamped to at least 1;
    /// with 1 the dispatch degenerates to the ordinary planned walk).
    pub top_k: usize,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig { top_k: 2 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_caches_and_coalesces() {
        let c = AdmissionConfig::default();
        assert!(c.cache_capacity > 0);
        assert!(c.coalesce);
        assert!(c.hedge.is_none());
        assert!(c.is_enabled());
    }

    #[test]
    fn disabled_config_is_inert() {
        let c = AdmissionConfig::disabled();
        assert!(!c.is_enabled());
        assert_eq!(c.cache_capacity, 0);
        assert!(!c.coalesce);
    }

    #[test]
    fn hedge_default_races_two() {
        assert_eq!(HedgeConfig::default().top_k, 2);
    }
}
