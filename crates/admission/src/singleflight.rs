//! Single-flight coalescing for identical in-flight submissions.
//!
//! When a submission's `(canonical key, seed, policy)` identity matches a
//! job already queued or executing, running it again is pure waste: the
//! result will be byte-identical. Instead the duplicate *attaches* to the
//! in-flight execution as a waiter, and the serving runtime publishes the
//! one outcome to every attached handle when the lead job completes.
//!
//! The registry itself is deliberately dumb: a `BTreeMap` from key to
//! waiter list plus counters. All the delicate semantics — a waiter
//! cancelling without cancelling its peers, the lead being cancelled while
//! live waiters remain, waiters attaching while the lead is already on a
//! backend — live in the serving runtime, which owns the job states. The
//! registry only guarantees that between `lead` and `complete` every
//! attach lands in the drained list exactly once.

use std::collections::BTreeMap;

/// An in-flight registry mapping a key to the waiters coalesced behind
/// its lead execution.
#[derive(Debug, Clone)]
pub struct SingleFlight<K: Ord + Clone, W> {
    flights: BTreeMap<K, Vec<W>>,
    led: u64,
    coalesced: u64,
}

impl<K: Ord + Clone, W> Default for SingleFlight<K, W> {
    fn default() -> Self {
        SingleFlight::new()
    }
}

impl<K: Ord + Clone, W> SingleFlight<K, W> {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        SingleFlight {
            flights: BTreeMap::new(),
            led: 0,
            coalesced: 0,
        }
    }

    /// Registers `key` as in flight with an empty waiter list. Returns
    /// `true` if this call created the flight (the caller becomes the
    /// lead), `false` if the key was already in flight.
    pub fn lead(&mut self, key: K) -> bool {
        if self.flights.contains_key(&key) {
            return false;
        }
        self.flights.insert(key, Vec::new());
        self.led += 1;
        true
    }

    /// Attaches a waiter to an in-flight key. Returns `false` (and hands
    /// the waiter back) when nothing is in flight under `key` — the caller
    /// should then become the lead.
    pub fn attach(&mut self, key: &K, waiter: W) -> Result<(), W> {
        match self.flights.get_mut(key) {
            Some(waiters) => {
                waiters.push(waiter);
                self.coalesced += 1;
                Ok(())
            }
            None => Err(waiter),
        }
    }

    /// Whether `key` is currently in flight.
    #[must_use]
    pub fn contains(&self, key: &K) -> bool {
        self.flights.contains_key(key)
    }

    /// The waiters currently attached to `key` (empty when not in flight).
    #[must_use]
    pub fn waiters(&self, key: &K) -> &[W] {
        self.flights.get(key).map_or(&[], Vec::as_slice)
    }

    /// Ends the flight, returning every attached waiter. Waiters that
    /// attach after this call start a new flight via [`SingleFlight::lead`].
    pub fn complete(&mut self, key: &K) -> Vec<W> {
        self.flights.remove(key).unwrap_or_default()
    }

    /// Flights currently registered.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.flights.len()
    }

    /// Total flights ever led.
    #[must_use]
    pub fn led_total(&self) -> u64 {
        self.led
    }

    /// Total waiters ever coalesced.
    #[must_use]
    pub fn coalesced_total(&self) -> u64 {
        self.coalesced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_caller_leads_duplicates_attach() {
        let mut sf: SingleFlight<u64, &str> = SingleFlight::new();
        assert!(sf.lead(7));
        assert!(!sf.lead(7));
        assert!(sf.attach(&7, "a").is_ok());
        assert!(sf.attach(&7, "b").is_ok());
        assert_eq!(sf.waiters(&7), &["a", "b"]);
        assert_eq!(sf.coalesced_total(), 2);
        assert_eq!(sf.led_total(), 1);
    }

    #[test]
    fn complete_drains_and_releases_the_key() {
        let mut sf: SingleFlight<u64, u32> = SingleFlight::new();
        assert!(sf.lead(1));
        sf.attach(&1, 10).unwrap();
        assert_eq!(sf.complete(&1), vec![10]);
        assert!(!sf.contains(&1));
        // A post-completion duplicate starts a fresh flight.
        assert!(sf.lead(1));
        assert_eq!(sf.waiters(&1), &[] as &[u32]);
    }

    #[test]
    fn attach_without_flight_hands_the_waiter_back() {
        let mut sf: SingleFlight<u64, u32> = SingleFlight::new();
        assert_eq!(sf.attach(&9, 99), Err(99));
        assert_eq!(sf.coalesced_total(), 0);
    }

    #[test]
    fn distinct_keys_fly_independently() {
        let mut sf: SingleFlight<(u64, u64), u32> = SingleFlight::new();
        assert!(sf.lead((1, 1)));
        assert!(sf.lead((1, 2)));
        sf.attach(&(1, 1), 5).unwrap();
        assert_eq!(sf.complete(&(1, 2)), vec![]);
        assert_eq!(sf.complete(&(1, 1)), vec![5]);
        assert_eq!(sf.in_flight(), 0);
    }
}
