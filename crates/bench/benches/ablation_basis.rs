//! A1 — ablation: gate-basis freedom. The paper notes "the corresponding
//! Boolean circuit is not even unique, in view of the freedom available in
//! choosing different logic gates as the basis" (ref. [49]). This ablation
//! re-encodes each 3-literal OR-SOLG as a pair of smaller gates via an
//! auxiliary variable — `(a ∨ b ∨ c)  →  (a ∨ x) ∧ (¬x ∨ b ∨ c)` — an
//! equisatisfiable decomposition over a different gate basis — and measures
//! the effect on DMM convergence.

use bench::banner;
use criterion::{criterion_group, criterion_main, Criterion};
use mem::cnf::{Clause, Formula, Literal};
use mem::dmm::{DmmParams, DmmSolver};
use mem::generators::planted_3sat;
use numerics::stats::median;

/// Splits every 3-literal clause with a fresh auxiliary variable.
fn split_basis(formula: &Formula) -> Formula {
    let mut n_vars = formula.n_vars();
    let mut clauses = Vec::new();
    for clause in formula.clauses() {
        let lits = clause.literals();
        if lits.len() == 3 {
            let aux = n_vars;
            n_vars += 1;
            clauses.push(Clause::new(vec![lits[0], Literal::positive(aux)]).expect("clause"));
            clauses
                .push(Clause::new(vec![Literal::negative(aux), lits[1], lits[2]]).expect("clause"));
        } else {
            clauses.push(clause.clone());
        }
    }
    Formula::new(n_vars, clauses).expect("formula")
}

fn print_experiment() {
    banner("A1 ablation_basis", "§IV gate-basis freedom (ref. 49)");
    let solver = DmmSolver::new(DmmParams {
        max_steps: 1_000_000,
        ..DmmParams::default()
    });
    println!(
        "{:>5} | {:>16} | {:>16} | {:>8}",
        "N", "3-OR basis steps", "split basis steps", "ratio"
    );
    println!("{}", "-".repeat(56));
    for n in [20usize, 40, 60] {
        let mut direct = Vec::new();
        let mut split = Vec::new();
        for seed in 0..5u64 {
            let inst = planted_3sat(n, 4.0, 600 + seed).expect("instance");
            let d = solver.solve(&inst.formula, seed).expect("direct");
            assert!(d.solution.is_some(), "direct timeout N={n}");
            direct.push(d.steps as f64);
            let split_formula = split_basis(&inst.formula);
            let s = solver.solve(&split_formula, seed).expect("split");
            assert!(s.solution.is_some(), "split timeout N={n}");
            // Verify the split solution restricted to original vars solves
            // the original formula.
            let bits = s.solution.as_ref().expect("some").to_bools();
            let restricted =
                mem::assignment::Assignment::from_bools(&bits[..inst.formula.n_vars()]);
            assert!(
                inst.formula.is_satisfied(&restricted),
                "split solution invalid on original formula"
            );
            split.push(s.steps as f64);
        }
        let (dm, sm) = (median(&direct).expect("med"), median(&split).expect("med"));
        println!("{n:>5} | {dm:>16.0} | {sm:>16.0} | {:>7.2}x", sm / dm);
    }
    println!("\nreading: both bases self-organize to valid solutions; the");
    println!("decomposed basis pays extra variables/clauses for the same problem");
}

fn bench(c: &mut Criterion) {
    print_experiment();
    let inst = planted_3sat(40, 4.0, 999).expect("instance");
    let split_formula = split_basis(&inst.formula);
    let solver = DmmSolver::new(DmmParams::default());
    c.bench_function("ablation_basis/direct_n40", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            criterion::black_box(solver.solve(&inst.formula, seed).expect("solve"))
        });
    });
    c.bench_function("ablation_basis/split_n40", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            criterion::black_box(solver.solve(&split_formula, seed).expect("solve"))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
