//! A3 — ablation: SWAP-routing strategy. Compares greedy shortest-path
//! routing against the lookahead scorer on line and grid topologies, in
//! inserted SWAPs and routed depth.

use bench::banner;
use criterion::{criterion_group, criterion_main, Criterion};
use numerics::rng::rng_from_seed;
use numerics::rng::Rng;
use quantum::circuit::Circuit;
use quantum::mapping::{check_routed, route, CouplingGraph, RoutingStrategy};

fn random_circuit(n_qubits: usize, n_gates: usize, seed: u64) -> Circuit {
    let mut rng = rng_from_seed(seed);
    let mut c = Circuit::new(n_qubits).expect("circuit");
    for _ in 0..n_gates {
        let a = rng.gen_range(0..n_qubits);
        let b = loop {
            let b = rng.gen_range(0..n_qubits);
            if b != a {
                break b;
            }
        };
        c.cx(a, b).expect("gate");
    }
    c
}

fn print_experiment() {
    banner("A3 ablation_routing", "compiler SWAP routing strategies");
    println!(
        "{:>10} | {:>6} | {:>14} | {:>14} | {:>10}",
        "topology", "gates", "greedy swaps", "lookahead swaps", "reduction"
    );
    println!("{}", "-".repeat(68));
    let topologies: Vec<(&str, CouplingGraph)> = vec![
        ("line-9", CouplingGraph::line(9)),
        ("grid-3x3", CouplingGraph::grid(3, 3)),
        ("line-12", CouplingGraph::line(12)),
        ("grid-3x4", CouplingGraph::grid(3, 4)),
    ];
    for (name, graph) in &topologies {
        let n = graph.len();
        let mut greedy_total = 0usize;
        let mut look_total = 0usize;
        let n_gates = 40;
        for seed in 0..5u64 {
            let circuit = random_circuit(n, n_gates, seed);
            let greedy = route(&circuit, graph, RoutingStrategy::Greedy).expect("greedy");
            check_routed(&greedy.circuit, graph).expect("valid greedy");
            let look = route(&circuit, graph, RoutingStrategy::Lookahead { window: 5 })
                .expect("lookahead");
            check_routed(&look.circuit, graph).expect("valid lookahead");
            greedy_total += greedy.swap_count;
            look_total += look.swap_count;
        }
        println!(
            "{:>10} | {:>6} | {:>14} | {:>14} | {:>9.1}%",
            name,
            n_gates,
            greedy_total,
            look_total,
            100.0 * (greedy_total as f64 - look_total as f64) / greedy_total.max(1) as f64
        );
    }
    println!("\nexpected shape: lookahead inserts no more SWAPs than greedy on");
    println!("average, with the advantage growing on sparser topologies");
}

fn bench(c: &mut Criterion) {
    print_experiment();
    let graph = CouplingGraph::grid(3, 4);
    let circuit = random_circuit(12, 60, 42);
    c.bench_function("routing/greedy_grid3x4", |b| {
        b.iter(|| {
            criterion::black_box(route(&circuit, &graph, RoutingStrategy::Greedy).expect("route"))
        });
    });
    c.bench_function("routing/lookahead5_grid3x4", |b| {
        b.iter(|| {
            criterion::black_box(
                route(&circuit, &graph, RoutingStrategy::Lookahead { window: 5 }).expect("route"),
            )
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
