//! A2 — ablation: XOR-readout averaging window. The paper's readout is
//! "time-averaged over a certain number of cycles to provide a stable
//! output value"; this ablation quantifies the stability–latency trade:
//! under comparator input noise, longer windows shrink the window-to-window
//! spread of the measure but cost proportionally more comparison time.

use bench::banner;
use criterion::{criterion_group, criterion_main, Criterion};
use device::noise::GaussianNoise;
use device::units::{Seconds, Volts};
use osc::norms::NormRegime;
use osc::pair::{CoupledPair, PairRun};
use osc::readout::XorReadout;

/// Simulates the pair once; the noise is injected at readout time.
fn clean_run() -> PairRun {
    let mut cfg = NormRegime::Shallow.config();
    cfg.sim.duration = Seconds(12e-6); // long run → many windows
    let pair = CoupledPair::new(cfg, Volts(0.6225), Volts(0.6175)).expect("bias");
    pair.simulate_default().expect("simulate")
}

/// RMS of the comparator-referred noise applied per waveform sample.
const NOISE_SIGMA: f64 = 0.05;

fn print_experiment() {
    banner("A2 ablation_window", "Fig. 4 readout averaging window");
    let run = clean_run();
    println!(
        "{:>8} | {:>9} | {:>9} | {:>9} | {:>10}",
        "window", "windows", "mean", "spread", "latency"
    );
    println!("{}", "-".repeat(56));
    let f_osc = run.frequency(0).expect("frequency");
    for cycles in [4usize, 8, 16, 32, 64] {
        let readout = XorReadout::new(cycles);
        let mut noise = GaussianNoise::new(NOISE_SIGMA, 7);
        match readout.measure_windows_noisy(&run, &mut noise) {
            Ok(values) => {
                let mean = values.iter().sum::<f64>() / values.len() as f64;
                let max = values.iter().cloned().fold(f64::MIN, f64::max);
                let min = values.iter().cloned().fold(f64::MAX, f64::min);
                println!(
                    "{:>8} | {:>9} | {:>9.4} | {:>9.4} | {:>8.2}us",
                    cycles,
                    values.len(),
                    mean,
                    max - min,
                    cycles as f64 / f_osc * 1e6
                );
            }
            Err(e) => println!("{cycles:>8} | insufficient cycles: {e}"),
        }
    }
    println!("\nexpected shape: spread shrinks with window length while the");
    println!("per-comparison latency grows linearly");
}

fn bench(c: &mut Criterion) {
    print_experiment();
    let run = clean_run();
    for cycles in [8usize, 32] {
        c.bench_function(&format!("ablation_window/readout_{cycles}cyc"), |b| {
            let readout = XorReadout::new(cycles);
            let mut noise = GaussianNoise::new(NOISE_SIGMA, 1);
            b.iter(|| {
                criterion::black_box(
                    readout
                        .measure_windows_noisy(&run, &mut noise)
                        .expect("measure"),
                )
            });
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
