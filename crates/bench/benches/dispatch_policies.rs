//! E16 — cost-model-driven dispatch: the mixed serving workload under every
//! routing policy, with the calibration loop closed between rounds.
//!
//! Each policy runs the same `src/workload.rs` mix for several rounds; the
//! correction table harvested from one round's [`RuntimeStats`] seeds the
//! next round's planner, so the predicted-vs-actual device-time ledger
//! should converge. Two registry-family mixes (coloring-heavy, qubo-heavy)
//! then run under `PreferSpecialized` to show the family registry's cost
//! models steering the new kernels onto their specialized substrates.
//! Results land in `BENCH_dispatch.json` at the repo root (throughput,
//! p50/p99 latency, predicted vs actual device seconds, per-round
//! calibration error, and per-backend routing for the family mixes).

use accel::kernel::Kernel;
use bench::{banner, eng};
use criterion::{criterion_group, criterion_main, Criterion};
use rebooting_models::workload::{
    coloring_heavy_workload, duplicate_heavy_workload, job_seeds, mixed_workload,
    qubo_heavy_workload,
};
use runtime::{
    AdmissionConfig, CorrectionTable, DispatchPolicy, JobOptions, JobOutcome, Runtime,
    RuntimeConfig, RuntimeStats,
};
use std::time::Instant;

/// Jobs per calibration round.
const JOBS: usize = 32;
/// Calibration rounds per policy (round 0 plans uncorrected).
const ROUNDS: usize = 4;
/// Master seed for the workload mix and the per-job execution seeds.
const SEED: u64 = 2019;
/// Jobs in the duplicate-heavy admission experiment.
const DUP_JOBS: usize = 64;
/// Duplicate fraction of the duplicate-heavy workload.
const DUP_RATIO: f64 = 0.9;
/// Jobs in each registry-family mix experiment.
const FAMILY_JOBS: usize = 32;

const POLICIES: [DispatchPolicy; 5] = [
    DispatchPolicy::PreferSpecialized,
    DispatchPolicy::CpuOnly,
    DispatchPolicy::MinPredictedLatency,
    DispatchPolicy::MinPredictedEnergy,
    DispatchPolicy::DeadlineAware,
];

fn policy_name(policy: DispatchPolicy) -> &'static str {
    match policy {
        DispatchPolicy::PreferSpecialized => "prefer-specialized",
        DispatchPolicy::CpuOnly => "cpu-only",
        DispatchPolicy::MinPredictedLatency => "min-latency",
        DispatchPolicy::MinPredictedEnergy => "min-energy",
        DispatchPolicy::DeadlineAware => "deadline-aware",
    }
}

struct RoundReport {
    stats: RuntimeStats,
    /// Per-job submit-to-completion wall latencies, seconds, sorted.
    latencies: Vec<f64>,
    /// Wall-clock seconds for the whole round.
    elapsed: f64,
}

/// Runs the workload once through a serving runtime planning with the
/// given frozen corrections. Jobs are submitted closed-loop (one in
/// flight) so per-job latency is clean and the stats EWMAs accumulate in
/// a deterministic order.
fn run_round(policy: DispatchPolicy, corrections: &CorrectionTable, jobs: usize) -> RoundReport {
    let kernels = mixed_workload(jobs, SEED).expect("workload generates");
    let seeds = job_seeds(jobs, SEED);
    let rt = Runtime::start(RuntimeConfig {
        workers: 2,
        policy,
        corrections: corrections.clone(),
        ..RuntimeConfig::default()
    })
    .expect("runtime starts");
    let started = Instant::now();
    let mut latencies = Vec::with_capacity(jobs);
    for (kernel, &seed) in kernels.iter().zip(&seeds) {
        let t0 = Instant::now();
        let handle = rt
            .submit_with(kernel.clone(), JobOptions::with_seed(seed))
            .expect("submit accepted");
        match handle.wait() {
            JobOutcome::Completed { .. } => latencies.push(t0.elapsed().as_secs_f64()),
            other => panic!("job did not complete: {other:?}"),
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    RoundReport {
        stats: rt.shutdown(),
        latencies,
        elapsed,
    }
}

/// Runs `ROUNDS` calibration rounds, harvesting each round's corrections
/// for the next.
fn run_policy(policy: DispatchPolicy) -> Vec<RoundReport> {
    let mut corrections = CorrectionTable::new();
    let mut rounds = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        let report = run_round(policy, &corrections, JOBS);
        corrections = report.stats.calibrated(&corrections);
        rounds.push(report);
    }
    rounds
}

struct DupReport {
    /// Wall-clock seconds for the whole run.
    elapsed: f64,
    stats: RuntimeStats,
    /// `backend:result` per job, for the byte-equality check between the
    /// cached and cold runs.
    outcomes: Vec<String>,
}

/// Runs the duplicate-heavy workload closed-loop under
/// `PreferSpecialized` (so cache hits skip genuinely expensive
/// specialized-device executions) with the given admission tier.
fn run_duplicate_heavy(admission: AdmissionConfig) -> DupReport {
    let (kernels, seeds) =
        duplicate_heavy_workload(DUP_JOBS, SEED, DUP_RATIO).expect("workload generates");
    let rt = Runtime::start(RuntimeConfig {
        workers: 2,
        policy: DispatchPolicy::PreferSpecialized,
        admission,
        ..RuntimeConfig::default()
    })
    .expect("runtime starts");
    let started = Instant::now();
    let mut outcomes = Vec::with_capacity(DUP_JOBS);
    for (kernel, &seed) in kernels.iter().zip(&seeds) {
        let handle = rt
            .submit_with(kernel.clone(), JobOptions::with_seed(seed))
            .expect("submit accepted");
        match handle.wait() {
            JobOutcome::Completed {
                backend, execution, ..
            } => outcomes.push(format!("{backend}:{:?}", execution.result)),
            other => panic!("job did not complete: {other:?}"),
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    DupReport {
        elapsed,
        stats: rt.shutdown(),
        outcomes,
    }
}

struct FamilyReport {
    mix: &'static str,
    /// Wall-clock seconds for the whole run.
    elapsed: f64,
    stats: RuntimeStats,
    /// Jobs that rode the protocol-v6 generic family frame.
    family_jobs: usize,
}

/// Runs a registry-family mix closed-loop under `PreferSpecialized`, so
/// the planner routes each family to its specialized substrate purely
/// through its registry entry (no `Kernel` match arms on this path).
fn run_family_mix(mix: &'static str, kernels: &[Kernel]) -> FamilyReport {
    let seeds = job_seeds(kernels.len(), SEED);
    let rt = Runtime::start(RuntimeConfig {
        workers: 2,
        policy: DispatchPolicy::PreferSpecialized,
        ..RuntimeConfig::default()
    })
    .expect("runtime starts");
    let started = Instant::now();
    for (kernel, &seed) in kernels.iter().zip(&seeds) {
        let handle = rt
            .submit_with(kernel.clone(), JobOptions::with_seed(seed))
            .expect("submit accepted");
        match handle.wait() {
            JobOutcome::Completed { .. } => {}
            other => panic!("job did not complete: {other:?}"),
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    FamilyReport {
        mix,
        elapsed,
        stats: rt.shutdown(),
        family_jobs: kernels.iter().filter(|k| k.uses_family_frame()).count(),
    }
}

/// Nearest-rank percentile of an ascending-sorted sample.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted[idx]
}

/// Aggregate relative prediction error of a snapshot:
/// `|predicted − actual| / actual` over total device seconds.
fn abs_rel_error(stats: &RuntimeStats) -> f64 {
    let actual = stats.total_device_seconds();
    if actual > 0.0 {
        (stats.total_predicted_device_seconds() - actual).abs() / actual
    } else {
        0.0
    }
}

/// Job-weighted mean of the per-backend EWMA prediction error.
fn mean_ewma_error(stats: &RuntimeStats) -> f64 {
    let (mut num, mut den) = (0.0, 0.0);
    for t in stats.per_backend.values() {
        num += t.ewma_error * t.jobs as f64;
        den += t.jobs as f64;
    }
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6e}")
    } else {
        "null".into()
    }
}

/// Renders the whole experiment as the `BENCH_dispatch.json` document.
fn render_json(
    results: &[(DispatchPolicy, Vec<RoundReport>)],
    cached: &DupReport,
    cold: &DupReport,
    families: &[FamilyReport],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"dispatch_policies\",\n");
    out.push_str(&format!("  \"jobs_per_round\": {JOBS},\n"));
    out.push_str(&format!("  \"rounds\": {ROUNDS},\n"));
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    let keyed = cached.stats.cache_hits + cached.stats.cache_misses + cached.stats.coalesced;
    #[allow(clippy::cast_precision_loss)]
    let hit_rate = if keyed == 0 {
        0.0
    } else {
        (cached.stats.cache_hits + cached.stats.coalesced) as f64 / keyed as f64
    };
    out.push_str("  \"duplicate_heavy\": {\n");
    out.push_str(&format!("    \"jobs\": {DUP_JOBS},\n"));
    out.push_str(&format!("    \"dup_ratio\": {DUP_RATIO},\n"));
    out.push_str("    \"policy\": \"prefer-specialized\",\n");
    #[allow(clippy::cast_precision_loss)]
    {
        out.push_str(&format!(
            "    \"throughput_cached_jobs_per_sec\": {},\n",
            json_num(DUP_JOBS as f64 / cached.elapsed)
        ));
        out.push_str(&format!(
            "    \"throughput_cold_jobs_per_sec\": {},\n",
            json_num(DUP_JOBS as f64 / cold.elapsed)
        ));
    }
    out.push_str(&format!(
        "    \"speedup\": {},\n",
        json_num(cold.elapsed / cached.elapsed)
    ));
    out.push_str(&format!(
        "    \"cache_hits\": {},\n",
        cached.stats.cache_hits
    ));
    out.push_str(&format!("    \"coalesced\": {},\n", cached.stats.coalesced));
    out.push_str(&format!("    \"hit_rate\": {}\n", json_num(hit_rate)));
    out.push_str("  },\n");
    out.push_str("  \"family_mixes\": [\n");
    for (fi, report) in families.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"mix\": \"{}\",\n", report.mix));
        out.push_str(&format!("      \"jobs\": {FAMILY_JOBS},\n"));
        out.push_str(&format!(
            "      \"family_frame_jobs\": {},\n",
            report.family_jobs
        ));
        out.push_str("      \"policy\": \"prefer-specialized\",\n");
        #[allow(clippy::cast_precision_loss)]
        out.push_str(&format!(
            "      \"throughput_jobs_per_sec\": {},\n",
            json_num(FAMILY_JOBS as f64 / report.elapsed)
        ));
        out.push_str(&format!(
            "      \"predicted_device_seconds\": {},\n",
            json_num(report.stats.total_predicted_device_seconds())
        ));
        out.push_str(&format!(
            "      \"actual_device_seconds\": {},\n",
            json_num(report.stats.total_device_seconds())
        ));
        out.push_str("      \"jobs_per_backend\": {");
        let mut first = true;
        for (name, t) in &report.stats.per_backend {
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!("\"{name}\": {}", t.jobs));
        }
        out.push_str("}\n");
        out.push_str(&format!(
            "    }}{}\n",
            if fi + 1 < families.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"policies\": [\n");
    for (pi, (policy, rounds)) in results.iter().enumerate() {
        let last = rounds.last().expect("at least one round");
        out.push_str("    {\n");
        out.push_str(&format!(
            "      \"policy\": \"{}\",\n",
            policy_name(*policy)
        ));
        out.push_str(&format!(
            "      \"throughput_jobs_per_sec\": {},\n",
            json_num(JOBS as f64 / last.elapsed)
        ));
        out.push_str(&format!(
            "      \"p50_latency_us\": {},\n",
            json_num(percentile(&last.latencies, 50.0) * 1e6)
        ));
        out.push_str(&format!(
            "      \"p99_latency_us\": {},\n",
            json_num(percentile(&last.latencies, 99.0) * 1e6)
        ));
        out.push_str(&format!(
            "      \"predicted_device_seconds\": {},\n",
            json_num(last.stats.total_predicted_device_seconds())
        ));
        out.push_str(&format!(
            "      \"actual_device_seconds\": {},\n",
            json_num(last.stats.total_device_seconds())
        ));
        out.push_str(&format!(
            "      \"prediction_error\": {},\n",
            json_num(abs_rel_error(&last.stats))
        ));
        out.push_str("      \"jobs_per_backend\": {");
        let mut first = true;
        for (name, t) in &last.stats.per_backend {
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!("\"{name}\": {}", t.jobs));
        }
        out.push_str("},\n");
        out.push_str("      \"calibration\": [\n");
        for (ri, round) in rounds.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"round\": {ri}, \"predicted_device_seconds\": {}, \
                 \"actual_device_seconds\": {}, \"abs_rel_error\": {}, \
                 \"mean_ewma_error\": {}}}{}\n",
                json_num(round.stats.total_predicted_device_seconds()),
                json_num(round.stats.total_device_seconds()),
                json_num(abs_rel_error(&round.stats)),
                json_num(mean_ewma_error(&round.stats)),
                if ri + 1 < rounds.len() { "," } else { "" }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if pi + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

fn print_experiment() {
    banner(
        "E16 dispatch_policies",
        "cost-model routing + calibration loop (Fig. 1 serving view)",
    );
    println!("workload: {JOBS} mixed kernels x {ROUNDS} calibration rounds per policy\n");
    let mut results = Vec::new();
    for policy in POLICIES {
        let rounds = run_policy(policy);
        let last = rounds.last().expect("rounds ran");
        println!("policy {:<19}", policy_name(policy));
        println!(
            "  throughput {:>10} jobs/s   p50 {:>10} us   p99 {:>10} us",
            eng(JOBS as f64 / last.elapsed),
            eng(percentile(&last.latencies, 50.0) * 1e6),
            eng(percentile(&last.latencies, 99.0) * 1e6),
        );
        println!(
            "  device-s predicted {:>10}  actual {:>10}",
            eng(last.stats.total_predicted_device_seconds()),
            eng(last.stats.total_device_seconds()),
        );
        let errors: Vec<f64> = rounds.iter().map(|r| abs_rel_error(&r.stats)).collect();
        println!(
            "  prediction error by round: {}",
            errors
                .iter()
                .map(|&e| eng(e))
                .collect::<Vec<_>>()
                .join(" -> ")
        );
        // The calibration loop is deterministic (routing and device costs
        // are pure functions of the submission), so convergence is a hard
        // property, not a tendency.
        assert!(
            errors.last().expect("rounds ran") <= &(errors[0] + 1e-12),
            "calibration failed to shrink the prediction error: {errors:?}"
        );
        results.push((policy, rounds));
    }

    println!("\nduplicate-heavy admission experiment: {DUP_JOBS} jobs, dup ratio {DUP_RATIO}");
    let cached = run_duplicate_heavy(AdmissionConfig::default());
    let cold = run_duplicate_heavy(AdmissionConfig::disabled());
    assert_eq!(
        cached.outcomes, cold.outcomes,
        "cached results must match cold recomputation byte for byte"
    );
    let keyed = cached.stats.cache_hits + cached.stats.cache_misses + cached.stats.coalesced;
    #[allow(clippy::cast_precision_loss)]
    let hit_rate = (cached.stats.cache_hits + cached.stats.coalesced) as f64 / keyed.max(1) as f64;
    #[allow(clippy::cast_precision_loss)]
    {
        println!(
            "  cached {:>10} jobs/s   cold {:>10} jobs/s   speedup {:.1}x",
            eng(DUP_JOBS as f64 / cached.elapsed),
            eng(DUP_JOBS as f64 / cold.elapsed),
            cold.elapsed / cached.elapsed,
        );
        println!(
            "  {} cache hits + {} coalesced over {keyed} keyed submissions (hit rate {:.1}%)",
            cached.stats.cache_hits,
            cached.stats.coalesced,
            hit_rate * 100.0
        );
        assert!(
            hit_rate >= DUP_RATIO,
            "duplicate-heavy hit rate {hit_rate:.3} fell below the duplicate ratio {DUP_RATIO}"
        );
    }
    // Cache hits skip millisecond-scale specialized-device executions, so
    // the admission tier must beat cold recomputation outright.
    assert!(
        cold.elapsed > cached.elapsed,
        "admission caching failed to improve duplicate-heavy throughput \
         (cached {:.4}s vs cold {:.4}s)",
        cached.elapsed,
        cold.elapsed
    );

    println!("\nregistry-family mix experiment: {FAMILY_JOBS} jobs each, prefer-specialized");
    let coloring = run_family_mix(
        "coloring-heavy",
        &coloring_heavy_workload(FAMILY_JOBS, SEED).expect("coloring workload"),
    );
    let qubo = run_family_mix(
        "qubo-heavy",
        &qubo_heavy_workload(FAMILY_JOBS, SEED).expect("qubo workload"),
    );
    for report in [&coloring, &qubo] {
        let routed: Vec<String> = report
            .stats
            .per_backend
            .iter()
            .map(|(name, t)| format!("{name}={}", t.jobs))
            .collect();
        #[allow(clippy::cast_precision_loss)]
        {
            println!(
                "  {:<15} {:>10} jobs/s   {}/{} v6 family frames   [{}]",
                report.mix,
                eng(FAMILY_JOBS as f64 / report.elapsed),
                report.family_jobs,
                FAMILY_JOBS,
                routed.join(", ")
            );
        }
        assert!(
            report.family_jobs > 0 && report.family_jobs < FAMILY_JOBS,
            "a family-heavy mix must interleave family and legacy kernels"
        );
    }
    // The registry cost models — not any `Kernel` match arm — are what
    // steer each family onto its specialized substrate, so routing there
    // is a hard property of the refactor.
    let oscillator_jobs = coloring
        .stats
        .per_backend
        .get("oscillator")
        .map_or(0, |t| t.jobs);
    assert!(
        oscillator_jobs > 0,
        "coloring-heavy mix never reached the oscillator backend"
    );
    let dmm_jobs = qubo
        .stats
        .per_backend
        .get("memcomputing")
        .map_or(0, |t| t.jobs);
    assert!(
        dmm_jobs > 0,
        "qubo-heavy mix never reached the memcomputing backend"
    );

    let json = render_json(&results, &cached, &cold, &[coloring, qubo]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dispatch.json");
    std::fs::write(path, &json).expect("write BENCH_dispatch.json");
    println!("\nwrote {path}");
    println!("expected shape: min-latency pulls Compare kernels onto the CPU (ns-scale");
    println!("estimate) while prefer-specialized keeps them on the oscillator; the");
    println!("per-round error column shrinks as harvested corrections feed the planner");
}

fn bench(c: &mut Criterion) {
    print_experiment();
    c.bench_function("dispatch/duplicate_heavy_cached", |b| {
        b.iter(|| {
            let report = run_duplicate_heavy(AdmissionConfig::default());
            criterion::black_box(report.stats.cache_hits)
        });
    });
    c.bench_function("dispatch/calibrated_round", |b| {
        b.iter_batched(
            CorrectionTable::new,
            |corrections| {
                let report = run_round(DispatchPolicy::MinPredictedLatency, &corrections, 8);
                criterion::black_box(report.stats.total_device_seconds())
            },
            criterion::BatchSize::LargeInput,
        );
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
