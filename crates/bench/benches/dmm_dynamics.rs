//! E6 — §IV dynamical-systems claims (refs. [51, 52, 53]): DMM
//! trajectories are bounded (point dissipativity) and, when a solution
//! exists, show no periodic recurrence in their digital projection.

use bench::banner;
use criterion::{criterion_group, criterion_main, Criterion};
use mem::analysis::{boundedness, cluster_flip_stats, recurrence_check};
use mem::dmm::{DmmParams, DmmSolver};
use mem::generators::planted_3sat;

fn print_experiment() {
    banner(
        "E6 dmm_dynamics",
        "§IV boundedness + no-periodic-orbits (refs. 51-53)",
    );
    let params = DmmParams {
        check_every: 10,
        max_steps: 500_000,
        ..DmmParams::default()
    };
    let solver = DmmSolver::new(params);
    println!(
        "{:>5} | {:>7} | {:>9} | {:>8} | {:>8} | {:>9} | {:>10}",
        "N", "solved", "max|v|", "bounded", "cycles?", "max flip", "collective"
    );
    println!("{}", "-".repeat(72));
    for (i, n) in [30usize, 50, 70].iter().enumerate() {
        let inst = planted_3sat(*n, 4.25, 7_000 + i as u64).expect("instance");
        let out = solver.solve(&inst.formula, i as u64).expect("run");
        let bounds = boundedness(&out);
        let rec = recurrence_check(&out.checkpoints);
        let flips = cluster_flip_stats(&out.checkpoints);
        println!(
            "{:>5} | {:>7} | {:>9.4} | {:>8} | {:>8} | {:>8} | {:>9.2}",
            n,
            out.solution.is_some(),
            bounds.max_abs_v,
            bounds.bounded,
            rec.has_cycle(),
            flips.max_size,
            flips.collective_fraction
        );
    }
    println!("\nexpected shape: bounded = true, cycles = false on solvable");
    println!("instances; collective (multi-variable) flips present — the DLRO");
    println!("signature of instantonic transients (ref. 58)");
}

fn bench(c: &mut Criterion) {
    print_experiment();
    let inst = planted_3sat(50, 4.25, 31).expect("instance");
    let solver = DmmSolver::new(DmmParams::default());
    c.bench_function("dmm_dynamics/solve_and_analyze_n50", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let out = solver.solve(&inst.formula, seed).expect("solve");
            criterion::black_box(cluster_flip_stats(&out.checkpoints))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
