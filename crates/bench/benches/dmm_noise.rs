//! E5 — §IV noise-robustness claim (ref. [59]): Gaussian noise injected
//! into the DMM's equations of motion leaves the solution search intact
//! over a wide amplitude plateau.

use bench::banner;
use criterion::{criterion_group, criterion_main, Criterion};
use mem::dmm::{DmmParams, DmmSolver};
use mem::generators::planted_3sat;
use numerics::stats::median;

const SIGMAS: [f64; 8] = [0.0, 0.01, 0.03, 0.08, 0.2, 0.5, 1.0, 2.0];
const TRIALS: u64 = 8;

fn print_experiment() {
    banner("E5 dmm_noise", "§IV noise robustness (ref. 59)");
    println!(
        "{:>8} | {:>12} | {:>14} | {:>12}",
        "sigma", "success", "median steps", "slowdown"
    );
    println!("{}", "-".repeat(55));
    let mut baseline = None;
    for &sigma in &SIGMAS {
        let params = DmmParams {
            noise_sigma: sigma,
            max_steps: 500_000,
            ..DmmParams::default()
        };
        let solver = DmmSolver::new(params);
        let mut solved = 0u64;
        let mut steps = Vec::new();
        for seed in 0..TRIALS {
            let inst = planted_3sat(60, 4.25, 9_000 + seed).expect("instance");
            let out = solver.solve(&inst.formula, seed).expect("run");
            if out.solution.is_some() {
                solved += 1;
                steps.push(out.steps as f64);
            }
        }
        let med = if steps.is_empty() {
            f64::NAN
        } else {
            median(&steps).expect("median")
        };
        if sigma == 0.0 {
            baseline = Some(med);
        }
        let slowdown = baseline.map_or(f64::NAN, |b| med / b);
        println!(
            "{:>8.2} | {:>7}/{:<4} | {:>14.0} | {:>11.2}x",
            sigma, solved, TRIALS, med, slowdown
        );
    }
    println!("\nexpected shape: success stays at 100% over a wide noise plateau,");
    println!("with graceful slowdown, before eventually failing at large sigma");
}

fn bench(c: &mut Criterion) {
    print_experiment();
    let inst = planted_3sat(60, 4.25, 123).expect("instance");
    let params = DmmParams {
        noise_sigma: 0.05,
        ..DmmParams::default()
    };
    let solver = DmmSolver::new(params);
    c.bench_function("dmm_noise/noisy_solve_n60", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            criterion::black_box(solver.solve(&inst.formula, seed).expect("solve"))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
