//! E10 — §II-C genomics killer app: whole k-mer profiles encoded "as a
//! superposition of a single wave function", compared by swap test, with
//! ranking agreement against classical measures.

use bench::banner;
use criterion::{criterion_group, criterion_main, Criterion};
use numerics::rng::rng_from_seed;
use quantum::dna;

fn print_experiment() {
    banner(
        "E10 dna_similarity",
        "§II-C DNA similarity on superposed data",
    );
    let mut rng = rng_from_seed(23);
    let reference = dna::random_sequence(&mut rng, 150);
    println!(
        "{:>9} | {:>10} | {:>12} | {:>9} | {:>9}",
        "mutation", "swap test", "exact |ab|^2", "cosine", "edit dist"
    );
    println!("{}", "-".repeat(60));
    let mut quantum_sims = Vec::new();
    let mut edit_dists = Vec::new();
    for rate in [0.01, 0.03, 0.07, 0.15, 0.3, 0.5] {
        let mutated = dna::mutate_sequence(&mut rng, &reference, rate);
        let sampled =
            dna::quantum_similarity(&reference, &mutated, 3, 600, &mut rng).expect("swap test");
        let exact = dna::exact_similarity(&reference, &mutated, 3).expect("exact");
        let cosine = dna::cosine_similarity(&reference, &mutated, 3).expect("cosine");
        let edit = dna::edit_distance(&reference, &mutated);
        quantum_sims.push(exact);
        edit_dists.push(edit as f64);
        println!(
            "{:>8.0}% | {:>10.4} | {:>12.4} | {:>9.4} | {:>9}",
            rate * 100.0,
            sampled,
            exact,
            cosine,
            edit
        );
    }
    // Ranking agreement: quantum similarity must decrease as edit distance
    // increases (count concordant pairs).
    let mut concordant = 0;
    let mut pairs = 0;
    for i in 0..quantum_sims.len() {
        for j in i + 1..quantum_sims.len() {
            if edit_dists[i] == edit_dists[j] {
                continue;
            }
            pairs += 1;
            if (quantum_sims[i] > quantum_sims[j]) == (edit_dists[i] < edit_dists[j]) {
                concordant += 1;
            }
        }
    }
    println!("\nranking agreement with edit distance: {concordant}/{pairs} concordant pairs");
}

fn bench(c: &mut Criterion) {
    print_experiment();
    let mut rng = rng_from_seed(9);
    let a = dna::random_sequence(&mut rng, 150);
    let b = dna::mutate_sequence(&mut rng, &a, 0.1);
    c.bench_function("dna/swap_test_600_shots", |b_| {
        let mut rng = rng_from_seed(1);
        b_.iter(|| {
            criterion::black_box(
                dna::quantum_similarity(&a, &b, 3, 600, &mut rng).expect("swap test"),
            )
        });
    });
    c.bench_function("dna/classical_cosine", |b_| {
        b_.iter(|| criterion::black_box(dna::cosine_similarity(&a, &b, 3).expect("cosine")));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
