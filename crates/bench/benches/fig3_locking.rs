//! E1 — Fig. 3: frequency locking of an RC-coupled VO₂ oscillator pair.
//!
//! Sweeps the input detuning `ΔV_gs`, printing each oscillator's frequency
//! uncoupled and coupled; the locking plateau (coupled frequencies equal
//! over a finite detuning range) is the Fig. 3 phenomenon.

use bench::banner;
use criterion::{criterion_group, criterion_main, Criterion};
use device::units::{Seconds, Volts};
use osc::locking::LockingSweep;
use osc::norms::NormRegime;
use osc::pair::{CoupledPair, PairConfig};

fn config() -> PairConfig {
    let mut cfg = NormRegime::Shallow.config();
    cfg.sim.duration = Seconds(3e-6);
    cfg
}

fn print_experiment() {
    banner("E1 fig3_locking", "Fig. 3 (frequency locking)");
    let sweep = LockingSweep::new(config());
    let curve = sweep.run(0.62, 0.05, 15).expect("sweep");
    println!(
        "{:>9} | {:>10} {:>10} | {:>10} {:>10} | {:>7}",
        "dVgs (V)", "f1 unc", "f2 unc", "f1 coup", "f2 coup", "locked"
    );
    println!("{}", "-".repeat(70));
    for p in curve.points() {
        println!(
            "{:>9.4} | {:>9.3}M {:>9.3}M | {:>9.3}M {:>9.3}M | {:>7}",
            p.delta_vgs,
            p.f1_uncoupled / 1e6,
            p.f2_uncoupled / 1e6,
            p.f1_coupled / 1e6,
            p.f2_coupled / 1e6,
            p.is_locked(0.01)
        );
    }
    match curve.locking_range(0.01) {
        Some((lo, hi)) => println!(
            "\nlocking range: [{lo:+.4}, {hi:+.4}] V (width {:.4} V)",
            hi - lo
        ),
        None => println!("\nno locking plateau found"),
    }
    println!(
        "locked fraction of sweep: {:.2}",
        curve.locked_fraction(0.01)
    );
}

fn bench(c: &mut Criterion) {
    print_experiment();
    let cfg = config();
    c.bench_function("fig3/coupled_pair_simulation", |b| {
        let pair = CoupledPair::new(cfg, Volts(0.62), Volts(0.625)).expect("bias");
        b.iter(|| {
            let run = pair.simulate_default().expect("simulate");
            criterion::black_box(run.frequency(0).expect("frequency"))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
