//! E2 — Fig. 5: the XOR measure realizes tunable `l_k` distance norms.
//!
//! For each coupling regime, sweeps `ΔV_gs`, prints the `1 − Avg(XOR)`
//! curve, and fits the exponent `k` of `a·|ΔV_gs|^k + c` near the minimum.
//! Paper values for reference: k ≈ 1.6 → 2.0 → 3.4 across coupling
//! strengths, with fractional tails.

use bench::banner;
use criterion::{criterion_group, criterion_main, Criterion};
use device::units::Seconds;
use osc::norms::{NormRegime, NormSweep};

fn print_experiment() {
    banner("E2 fig5_norms", "Fig. 5 (l_k norm family)");
    for regime in NormRegime::ALL {
        let mut cfg = regime.config();
        cfg.sim.duration = Seconds(4e-6);
        let sweep = NormSweep::new(cfg).expect("sweep");
        let curve = sweep.run(0.62, 0.014, 11).expect("run");
        println!(
            "\nregime `{regime}` (R_C = {}):",
            regime.coupling_resistance()
        );
        print!("  dVgs    : ");
        for p in curve.points().iter().filter(|p| p.delta_vgs >= 0.0) {
            print!("{:>7.4} ", p.delta_vgs);
        }
        print!("\n  measure : ");
        for p in curve.points().iter().filter(|p| p.delta_vgs >= 0.0) {
            print!("{:>7.3}{}", p.measure, if p.locked { " " } else { "*" });
        }
        println!("   (* = unlocked)");
        match curve.fit_exponent(0.3, 6.0) {
            Ok(fit) => println!(
                "  fitted: measure = {:.3}·|dVgs|^{:.2} + {:.3}  (rss {:.2e})",
                fit.amplitude, fit.exponent, fit.offset, fit.rss
            ),
            Err(e) => println!("  fit failed: {e}"),
        }
    }
    println!("\npaper reference: k ~ 1.6 / 2.0 / 3.4 across coupling strengths");
}

fn bench(c: &mut Criterion) {
    print_experiment();
    let mut cfg = NormRegime::Parabolic.config();
    cfg.sim.duration = Seconds(2e-6);
    let sweep = NormSweep::new(cfg).expect("sweep");
    c.bench_function("fig5/norm_probe", |b| {
        b.iter(|| criterion::black_box(sweep.probe(0.62, 0.006).expect("probe")));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
