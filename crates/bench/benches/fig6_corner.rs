//! E3 — Fig. 6 + the §III-B power claim: FAST corner detection with
//! oscillator distance norms vs the 32 nm CMOS implementation.
//!
//! Paper numbers for reference: oscillator block 0.936 mW (incl. XOR
//! readout) vs CMOS 3 mW — a ≈ 3.2× advantage.

use bench::banner;
use criterion::{criterion_group, criterion_main, Criterion};
use vision::energy::{compare_power, ComparisonSetup};
use vision::fast::{FastDetector, FastParams};
use vision::synth::benchmark_scene;

fn print_experiment() {
    banner("E3 fig6_corner", "Fig. 6 + 0.936 mW vs 3 mW power claim");
    println!(
        "{:>6} | {:>12} | {:>12} | {:>7} | {:>6} | {:>10}",
        "scene", "osc (mW)", "cmos (mW)", "ratio", "F1", "frame (ms)"
    );
    println!("{}", "-".repeat(68));
    for size in [48usize, 64, 96] {
        let img = benchmark_scene(size).build(7);
        let setup = ComparisonSetup::default();
        let cmp = compare_power(&img, &setup).expect("comparison");
        println!(
            "{:>4}px | {:>12.3} | {:>12.3} | {:>6.2}x | {:>6.3} | {:>10.3}",
            size,
            cmp.oscillator.0 * 1e3,
            cmp.cmos.0 * 1e3,
            cmp.ratio(),
            cmp.agreement_f1,
            cmp.frame_time.0 * 1e3
        );
    }
    println!("\npaper reference: oscillator 0.936 mW vs CMOS 3.0 mW (3.2x)");
}

fn bench(c: &mut Criterion) {
    print_experiment();
    let img = benchmark_scene(64).build(7);
    c.bench_function("fig6/software_fast_64px", |b| {
        let detector = FastDetector::new(FastParams::default());
        b.iter(|| criterion::black_box(detector.detect(&img)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
