//! E12 — Fig. 1: a heterogeneous host dispatching a mixed workload to
//! specialized accelerators vs the CPU-only configuration.

use accel::accelerator::CpuBackend;
use accel::backends::{MemBackend, OscillatorBackend, QuantumBackend};
use accel::host::{DispatchPolicy, HostRuntime};
use accel::kernel::Kernel;
use bench::banner;
use criterion::{criterion_group, criterion_main, Criterion};
use mem::generators::planted_3sat;

fn workload() -> Vec<Kernel> {
    let mut kernels = vec![
        Kernel::Factor { n: 15 },
        Kernel::Factor { n: 21 },
        Kernel::Search {
            n_qubits: 7,
            marked: vec![100],
        },
        Kernel::DnaSimilarity {
            a: "ACGTACGTACGTACGTACGT".into(),
            b: "ACGAACGTACCTACGTTCGT".into(),
            k: 2,
        },
    ];
    for seed in 0..3u64 {
        let inst = planted_3sat(20, 4.0, 300 + seed).expect("instance");
        kernels.push(Kernel::SolveSat {
            formula: inst.formula,
        });
    }
    for i in 0..6 {
        kernels.push(Kernel::Compare {
            x: 0.3,
            y: 0.3 + i as f64 * 0.05,
        });
    }
    kernels
}

fn build_host(policy: DispatchPolicy) -> HostRuntime {
    let mut host = HostRuntime::new(policy);
    host.register(Box::new(QuantumBackend::new(1)));
    host.register(Box::new(OscillatorBackend::new().expect("calibrates")));
    host.register(Box::new(MemBackend::new(2)));
    host.register(Box::new(CpuBackend::new(3)));
    host
}

fn print_experiment() {
    banner("E12 hetero_dispatch", "Fig. 1 (heterogeneous accelerators)");
    let kernels = workload();
    println!("workload: {} kernels\n", kernels.len());
    for policy in [DispatchPolicy::PreferSpecialized, DispatchPolicy::CpuOnly] {
        let mut host = build_host(policy);
        host.run_workload(&kernels).expect("workload");
        println!("policy {policy:?}:");
        for (name, stats) in host.stats() {
            println!(
                "  {:<14} kernels={:<3} device_time={:>10.3e} s ops={}",
                name, stats.kernels, stats.device_seconds, stats.operations
            );
        }
        println!(
            "  total modelled device time: {:.3e} s\n",
            host.total_device_seconds()
        );
    }
    println!("expected shape: under PreferSpecialized every kernel class lands on");
    println!("its specialist (CPU idle); under CpuOnly the CPU absorbs everything");
}

fn bench(c: &mut Criterion) {
    print_experiment();
    let kernels = workload();
    c.bench_function("hetero/dispatch_workload", |b| {
        b.iter_batched(
            || build_host(DispatchPolicy::PreferSpecialized),
            |mut host| {
                host.run_workload(&kernels).expect("workload");
                criterion::black_box(host.total_device_seconds())
            },
            criterion::BatchSize::LargeInput,
        );
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
