//! E7 — §IV RBM pre-training claim (refs. [55, 57]): mode-assisted
//! (memcomputing) training reaches better likelihood than contrastive
//! divergence at equal iteration count, and yields a downstream accuracy
//! edge (paper: >1 % accuracy ≈ 20 % error-rate reduction).

use bench::banner;
use criterion::{criterion_group, criterion_main, Criterion};
use mem::datasets::{bars_and_stripes, with_label_units};
use mem::rbm::{ModeSearch, Rbm, TrainConfig, Trainer};

fn print_experiment() {
    banner(
        "E7 rbm_training",
        "§IV mode-assisted RBM training (refs. 55, 57)",
    );
    let patterns = bars_and_stripes(2);
    let data: Vec<Vec<bool>> = patterns.iter().map(|p| p.pixels.clone()).collect();
    // Long training (2000 epochs) exposes CD's mixing bias — the regime the
    // mode substitution exists to fix; the substitution probability anneals
    // quadratically to p_max = 0.05 over the run.
    let config = TrainConfig {
        epochs: 2000,
        learning_rate: 0.5,
        weight_decay: 0.0,
    };

    println!("generative quality (equal epochs, bars-and-stripes 2x2,");
    println!("exact LL averaged over 3 seeds):");
    println!("{:>28} | {:>10} | {:>10}", "trainer", "LL@500", "LL@2000");
    println!("{}", "-".repeat(56));
    let trainers: Vec<(&str, Trainer)> = vec![
        ("CD-1", Trainer::cd(1)),
        ("CD-5", Trainer::cd(5)),
        (
            "mode-assisted (exhaustive)",
            Trainer::mode_assisted(0.05, ModeSearch::Exhaustive),
        ),
        (
            "mode-assisted (DMM)",
            Trainer::mode_assisted(0.05, ModeSearch::Dmm),
        ),
    ];
    for (name, trainer) in &trainers {
        let mut ll500 = 0.0;
        let mut ll2000 = 0.0;
        for seed in 0..3u64 {
            let mut rbm = Rbm::new(4, 6, 0.05, 5 + seed).expect("rbm");
            let history = trainer
                .train(&mut rbm, &data, &config, seed)
                .expect("train");
            ll500 += history.get(499).copied().unwrap_or(f64::NAN) / 3.0;
            ll2000 += history.last().copied().unwrap_or(f64::NAN) / 3.0;
        }
        println!("{:>28} | {:>10.4} | {:>10.4}", name, ll500, ll2000);
    }

    // Downstream classification, CD vs mode-assisted.
    println!("\ndownstream bar/stripe classification (labeled RBM, free energy):");
    let labeled = with_label_units(&patterns);
    let cls_config = TrainConfig {
        epochs: 400,
        learning_rate: 0.3,
        weight_decay: 0.0,
    };
    for (name, trainer) in [
        ("CD-1", Trainer::cd(1)),
        (
            "mode-assisted",
            Trainer::mode_assisted(0.05, ModeSearch::Exhaustive),
        ),
    ] {
        // Average over several seeds so the accuracy gap is meaningful.
        let mut total_correct = 0usize;
        let mut total = 0usize;
        for seed in 0..5u64 {
            let mut rbm = Rbm::new(6, 8, 0.05, 7 + seed).expect("rbm");
            trainer
                .train(&mut rbm, &labeled, &cls_config, seed)
                .expect("train");
            total_correct += patterns
                .iter()
                .filter(|p| rbm.classify(&p.pixels) == p.is_stripe)
                .count();
            total += patterns.len();
        }
        println!(
            "  {:<16} accuracy {:>3}/{:<3} = {:.1}%",
            name,
            total_correct,
            total,
            100.0 * total_correct as f64 / total as f64
        );
    }
    // Larger 3x3 benchmark with the multi-start greedy mode search (the
    // exhaustive joint search is infeasible at this size; DMM or greedy
    // stand in, exactly as a memcomputing co-processor would).
    println!("\nBAS 3x3 (9+12 units, greedy mode search), LL averaged over 3 seeds:");
    let data3: Vec<Vec<bool>> = bars_and_stripes(3).into_iter().map(|p| p.pixels).collect();
    let config3 = TrainConfig {
        epochs: 500,
        learning_rate: 0.5,
        weight_decay: 0.0,
    };
    for (name, trainer) in [
        ("CD-1", Trainer::cd(1)),
        (
            "mode-assisted (greedy)",
            Trainer::mode_assisted(0.05, ModeSearch::Greedy),
        ),
    ] {
        let mut avg = 0.0;
        for seed in 0..3u64 {
            let mut rbm = Rbm::new(9, 12, 0.05, 5 + seed).expect("rbm");
            trainer
                .train(&mut rbm, &data3, &config3, seed)
                .expect("train");
            avg += rbm.exact_log_likelihood(&data3).expect("ll");
        }
        println!("  {:<24} LL {:.4}", name, avg / 3.0);
    }

    println!("\npaper reference: mode-assisted (DMM) training matches/beats CD in");
    println!("quality at equal iterations; the full-size MNIST/D-Wave comparison of");
    println!("refs. [55, 57] is out of scope at laptop scale (see EXPERIMENTS.md)");
}

fn bench(c: &mut Criterion) {
    print_experiment();
    let data: Vec<Vec<bool>> = bars_and_stripes(2).into_iter().map(|p| p.pixels).collect();
    let config = TrainConfig {
        epochs: 50,
        learning_rate: 0.5,
        weight_decay: 0.0,
    };
    c.bench_function("rbm/cd1_50_epochs", |b| {
        b.iter(|| {
            let mut rbm = Rbm::new(4, 6, 0.05, 5).expect("rbm");
            Trainer::cd(1)
                .train(&mut rbm, &data, &config, 1)
                .expect("train");
            criterion::black_box(rbm)
        });
    });
    c.bench_function("rbm/mode_assisted_50_epochs", |b| {
        b.iter(|| {
            let mut rbm = Rbm::new(4, 6, 0.05, 5).expect("rbm");
            Trainer::mode_assisted(0.05, ModeSearch::Exhaustive)
                .train(&mut rbm, &data, &config, 1)
                .expect("train");
            criterion::black_box(rbm)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
