//! E4 — §IV scaling claim: DMM cost grows slower than classical solvers on
//! hard random 3-SAT (refs. [47, 54]).
//!
//! Median cost over seeded planted instances at clause ratio 4.25, with a
//! power-law fit `cost ∝ N^k` per solver. The DMM's fitted exponent should
//! be visibly smaller than WalkSAT's and DPLL's.

use bench::banner;
use criterion::{criterion_group, criterion_main, Criterion};
use mem::dmm::{DmmParams, DmmSolver};
use mem::dpll::Dpll;
use mem::generators::planted_3sat;
use mem::walksat::{WalkSat, WalkSatParams};
use numerics::fit::fit_scaling_law;
use numerics::stats::median;

const SIZES: [usize; 5] = [20, 40, 60, 90, 120];
const TRIALS: u64 = 7;
const RATIO: f64 = 4.25;

fn print_experiment() {
    banner(
        "E4 sat_scaling",
        "§IV DMM-vs-solvers scaling (refs. 47, 54)",
    );
    let dmm = DmmSolver::new(DmmParams {
        max_steps: 2_000_000,
        ..DmmParams::default()
    });
    let walksat = WalkSat::new(WalkSatParams {
        max_flips: 5_000_000,
        max_tries: 3,
        ..WalkSatParams::default()
    });

    println!(
        "{:>5} | {:>14} | {:>14} | {:>16}",
        "N", "DMM steps", "WalkSAT flips", "DPLL dec+prop"
    );
    println!("{}", "-".repeat(60));

    let mut dmm_medians = Vec::new();
    let mut ws_medians = Vec::new();
    let mut dpll_medians = Vec::new();
    for &n in &SIZES {
        let mut dmm_cost = Vec::new();
        let mut ws_cost = Vec::new();
        let mut dpll_cost = Vec::new();
        for seed in 0..TRIALS {
            let inst = planted_3sat(n, RATIO, 5_000 + seed).expect("instance");
            let d = dmm.solve(&inst.formula, seed).expect("dmm");
            assert!(d.solution.is_some(), "dmm timeout at N={n}");
            dmm_cost.push(d.steps as f64);
            let w = walksat.solve(&inst.formula, seed);
            assert!(w.solution.is_some(), "walksat timeout at N={n}");
            ws_cost.push(w.flips.max(1) as f64);
            let p = Dpll::new(500_000_000).solve(&inst.formula);
            assert!(p.solution.is_some(), "dpll timeout at N={n}");
            dpll_cost.push((p.decisions + p.propagations).max(1) as f64);
        }
        let (dm, wm, pm) = (
            median(&dmm_cost).expect("median"),
            median(&ws_cost).expect("median"),
            median(&dpll_cost).expect("median"),
        );
        println!("{n:>5} | {dm:>14.0} | {wm:>14.0} | {pm:>16.0}");
        dmm_medians.push(dm);
        ws_medians.push(wm);
        dpll_medians.push(pm);
    }

    let ns: Vec<f64> = SIZES.iter().map(|&n| n as f64).collect();
    println!("\npower-law fits  cost ~ N^k :");
    for (name, series) in [
        ("DMM", &dmm_medians),
        ("WalkSAT", &ws_medians),
        ("DPLL", &dpll_medians),
    ] {
        match fit_scaling_law(&ns, series) {
            Ok((k, _, r2)) => println!("  {name:<8} k = {k:.2}  (r2 = {r2:.3})"),
            Err(e) => println!("  {name:<8} fit failed: {e}"),
        }
    }
    println!("\nexpected shape: DMM exponent below the classical baselines'");
}

fn bench(c: &mut Criterion) {
    print_experiment();
    let inst = planted_3sat(60, RATIO, 77).expect("instance");
    let dmm = DmmSolver::new(DmmParams::default());
    c.bench_function("sat_scaling/dmm_solve_n60", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            criterion::black_box(dmm.solve(&inst.formula, seed).expect("solve"))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
