//! E9 — §II-C cryptography killer app: Shor factoring on the simulated
//! quantum accelerator, with the classical trial-division cost alongside.

use bench::banner;
use criterion::{criterion_group, criterion_main, Criterion};
use numerics::rng::rng_from_seed;
use quantum::numtheory::trial_division;
use quantum::shor;

fn print_experiment() {
    banner("E9 shor", "§II-C Shor factorization");
    println!(
        "{:>5} | {:>9} | {:>13} | {:>12} | {:>14}",
        "N", "factors", "quantum calls", "quantum ops", "classical divs"
    );
    println!("{}", "-".repeat(64));
    let mut rng = rng_from_seed(17);
    for n in [15u64, 21, 33, 35, 39] {
        // Classical gcd shortcuts disabled so every row exercises the
        // quantum order-finding pipeline.
        let outcome = shor::factor_with_options(n, &mut rng, 60, false).expect("factors");
        let (_, divs) = trial_division(n);
        println!(
            "{:>5} | {:>3} x {:>3} | {:>13} | {:>12} | {:>14}",
            n,
            outcome.factors.0,
            outcome.factors.1,
            outcome.quantum_calls,
            outcome.quantum_ops,
            divs
        );
    }
    println!("\norder finding: 2m counting qubits over controlled modular");
    println!("multiplication, inverse QFT, continued fractions — end to end");
}

fn bench(c: &mut Criterion) {
    print_experiment();
    c.bench_function("shor/order_finding_15", |b| {
        let mut rng = rng_from_seed(5);
        b.iter(|| criterion::black_box(shor::order_finding(7, 15, &mut rng).expect("order")));
    });
    c.bench_function("shor/factor_21", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = rng_from_seed(seed);
            criterion::black_box(shor::factor(21, &mut rng, 60).expect("factor"))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
