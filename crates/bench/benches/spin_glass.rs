//! E8 — §IV frustrated-loop spin glass (ref. [56]): the memcomputing route
//! reaches planted ground states, and its transients flip clusters of spins
//! (dynamical long-range order), unlike single-spin-flip annealing.

use bench::banner;
use criterion::{criterion_group, criterion_main, Criterion};
use mem::analysis::cluster_flip_stats;
use mem::assignment::Assignment;
use mem::dmm::{DmmParams, DmmSolver};
use mem::generators::frustrated_loop_ising;
use mem::ising::{AnnealSchedule, SimulatedAnnealing};
use mem::maxsat::MaxSatDmmParams;
use mem::qubo::Qubo;

fn ising_to_qubo(model: &mem::ising::IsingModel) -> Qubo {
    let mut qubo = Qubo::new(model.n_spins()).expect("qubo");
    for &(a, b, j) in model.couplings() {
        // E = −J·s_a·s_b with s = 2x − 1.
        qubo.add_quadratic(a, b, -4.0 * j).expect("quad");
        qubo.add_linear(a, 2.0 * j).expect("lin");
        qubo.add_linear(b, 2.0 * j).expect("lin");
    }
    qubo
}

fn print_experiment() {
    banner("E8 spin_glass", "§IV frustrated loops + DLRO (ref. 56)");
    println!(
        "{:>6} {:>6} | {:>10} | {:>9} {:>9} | {:>9} {:>9}",
        "side", "loops", "E_ground", "DMM E", "hit", "SA E", "hit"
    );
    println!("{}", "-".repeat(72));
    let sa = SimulatedAnnealing::new(AnnealSchedule::default());
    let mut dmm_hits = 0;
    let mut sa_hits = 0;
    let cases = [(4usize, 3usize), (4, 5), (5, 5), (5, 8), (6, 8)];
    for (i, &(side, loops)) in cases.iter().enumerate() {
        let inst = frustrated_loop_ising(side, loops, 40 + i as u64).expect("instance");
        let qubo = ising_to_qubo(&inst.model);
        // Best of 3 restarts, like any stochastic optimizer is run.
        let mut params = MaxSatDmmParams::default();
        params.dynamics.max_steps = 100_000;
        let dmm_energy = (0..3u64)
            .map(|seed| {
                let (bits, _) = qubo
                    .minimize_dmm(params, 10 * i as u64 + seed)
                    .expect("dmm");
                inst.model.energy(&Assignment::from_bools(&bits))
            })
            .fold(f64::INFINITY, f64::min);
        let sa_result = sa.run(&inst.model, i as u64);
        let dmm_hit = (dmm_energy - inst.ground_energy).abs() < 1e-9;
        let sa_hit = (sa_result.best_energy - inst.ground_energy).abs() < 1e-9;
        dmm_hits += i32::from(dmm_hit);
        sa_hits += i32::from(sa_hit);
        println!(
            "{:>6} {:>6} | {:>10.1} | {:>9.1} {:>9} | {:>9.1} {:>9}",
            side, loops, inst.ground_energy, dmm_energy, dmm_hit, sa_result.best_energy, sa_hit
        );
    }
    println!(
        "\nground-state hits: DMM {dmm_hits}/{} vs SA {sa_hits}/{}",
        5, 5
    );

    // DLRO: cluster-flip statistics of the DMM trajectory on a planted SAT
    // projection of the glass vs single-spin SA.
    println!("\ncluster-flip (DLRO) statistics on a hard planted 3-SAT transient:");
    let inst = mem::generators::planted_3sat(60, 4.25, 99).expect("instance");
    let params = DmmParams {
        check_every: 10,
        ..DmmParams::default()
    };
    let out = DmmSolver::new(params)
        .solve(&inst.formula, 3)
        .expect("dmm run");
    let stats = cluster_flip_stats(&out.checkpoints);
    println!(
        "  DMM: events {} | mean flip size {:.2} | max {} | collective fraction {:.2}",
        stats.events, stats.mean_size, stats.max_size, stats.collective_fraction
    );
    println!("  simulated annealing flips exactly 1 spin per accepted move by construction");
}

fn bench(c: &mut Criterion) {
    print_experiment();
    let inst = frustrated_loop_ising(5, 5, 1).expect("instance");
    let sa = SimulatedAnnealing::new(AnnealSchedule::default());
    c.bench_function("spin_glass/sa_5x5", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            criterion::black_box(sa.run(&inst.model, seed))
        });
    });
    let qubo = ising_to_qubo(&inst.model);
    c.bench_function("spin_glass/dmm_maxsat_5x5", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            criterion::black_box(
                qubo.minimize_dmm(MaxSatDmmParams::default(), seed)
                    .expect("dmm"),
            )
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
