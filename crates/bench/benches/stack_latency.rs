//! E11 — Fig. 2: per-layer latency of quantum jobs travelling the full
//! accelerator stack (application → … → chip), for growing circuit sizes.

use accel::stack::{Layer, StackModel};
use bench::banner;
use criterion::{criterion_group, criterion_main, Criterion};
use numerics::rng::rng_from_seed;
use quantum::isa::{assemble, Program};

fn ghz_program(n_qubits: usize, repeats: usize) -> Program {
    let mut src = format!("qubits {n_qubits}\n");
    for _ in 0..repeats {
        src.push_str("h q0\n");
        for q in 1..n_qubits {
            src.push_str(&format!("cnot q{}, q{}\n", q - 1, q));
        }
    }
    src.push_str("measure_all\n");
    assemble(&src).expect("assembles")
}

fn print_experiment() {
    banner(
        "E11 stack_latency",
        "Fig. 2 (quantum accelerator stack layers)",
    );
    let model = StackModel::default();
    let mut rng = rng_from_seed(3);
    const SHOTS: usize = 100;
    println!("(each job compiled once, executed {SHOTS} shots)\n");
    println!(
        "{:>16} | {:>12} | {:>12} | {:>12}",
        "layer (ns)", "bell (3g)", "ghz5 x4", "ghz8 x16"
    );
    println!("{}", "-".repeat(62));
    let programs = [ghz_program(2, 1), ghz_program(5, 4), ghz_program(8, 16)];
    let reports: Vec<_> = programs
        .iter()
        .map(|p| model.run_shots(p, SHOTS, &mut rng).expect("stack run"))
        .collect();
    for layer in Layer::ALL {
        print!("{:>16} |", layer.to_string());
        for r in &reports {
            print!(" {:>12.1} |", r.layer_ns(layer));
        }
        println!();
    }
    print!("{:>16} |", "total");
    for r in &reports {
        print!(" {:>12.1} |", r.total_ns());
    }
    println!();
    print!("{:>16} |", "chip fraction");
    for r in &reports {
        print!(" {:>11.1}% |", r.chip_fraction() * 100.0);
    }
    println!();
    // Shot-count sweep: amortization of the classical stack.
    println!("\nchip fraction vs shot count (ghz5 x4 job):");
    let program = ghz_program(5, 4);
    print!(" ");
    for shots in [1usize, 10, 100, 1000] {
        let r = model
            .run_shots(&program, shots, &mut rng)
            .expect("stack run");
        print!("  {shots} shot(s): {:.1}%", r.chip_fraction() * 100.0);
    }
    println!();
    println!("\nexpected shape: at 1 shot the classical stack dominates; repeated");
    println!("shots amortize compilation until the chip dominates");
}

fn bench(c: &mut Criterion) {
    print_experiment();
    let model = StackModel::default();
    let program = ghz_program(6, 8);
    c.bench_function("stack/ghz6x8_full_stack", |b| {
        let mut rng = rng_from_seed(1);
        b.iter(|| criterion::black_box(model.run(&program, &mut rng).expect("run")));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
