//! Shared helpers for the experiment benches.
//!
//! Every bench target in `benches/` regenerates one of the paper's figures
//! or quantitative claims: it prints the reproduced table/series once (so
//! `cargo bench | tee bench_output.txt` records the experimental data), and
//! then times the experiment's core operation with Criterion.

// Deliberate style choices for numerical simulation code: `!(x > 0.0)`
// rejects NaN alongside non-positive values, and indexed loops mirror the
// mathematics they implement (state-vector strides, lattice walks).
#![allow(
    clippy::neg_cmp_op_on_partial_ord,
    clippy::needless_range_loop,
    clippy::manual_is_multiple_of,
    clippy::field_reassign_with_default
)]
/// Prints a banner announcing which paper artifact a bench reproduces.
pub fn banner(experiment: &str, artifact: &str) {
    println!();
    println!("==================================================================");
    println!("  {experiment} — reproduces {artifact}");
    println!("==================================================================");
}

/// Formats a floating value in engineering style for table cells.
#[must_use]
pub fn eng(value: f64) -> String {
    if value == 0.0 {
        return "0".into();
    }
    let abs = value.abs();
    if !(1e-3..1e6).contains(&abs) {
        format!("{value:.3e}")
    } else if abs < 1.0 {
        format!("{value:.4}")
    } else {
        format!("{value:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eng_formats() {
        assert_eq!(eng(0.0), "0");
        assert_eq!(eng(0.25), "0.2500");
        assert_eq!(eng(12.5), "12.50");
        assert!(eng(1e-9).contains('e'));
    }
}
