//! Incremental reassembly of wire frames from non-blocking reads.
//!
//! The blocking server reads one frame per call with
//! [`wire::read_frame`], which parks until the frame completes. An event
//! loop cannot park per connection, so each connection owns a
//! [`FrameBuffer`]: bytes arrive in whatever chunks the socket delivers,
//! and complete `magic + length + payload` frames are peeled off as they
//! finish. The hostile-input contract matches the wire crate's: a bad
//! magic or an oversized length prefix is rejected *before* any
//! payload-sized allocation, and truncation simply waits for more bytes.

use std::io::{self, ErrorKind, Read};
use wire::{WireError, MAGIC, MAX_FRAME_LEN};

/// Frame header size: 4 magic bytes plus a `u32` big-endian length.
const HEADER_LEN: usize = 8;

/// Read chunk size per [`FrameBuffer::fill_from`] call.
const READ_CHUNK: usize = 8192;

/// Compact the buffer (shift surviving bytes to the front) once this many
/// consumed bytes accumulate at the head.
const COMPACT_THRESHOLD: usize = 4096;

/// What one non-blocking fill observed on the socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fill {
    /// This many bytes were appended to the buffer.
    Bytes(usize),
    /// The peer closed its write side; no more bytes will ever arrive.
    Eof,
    /// No bytes were available right now (`WouldBlock`).
    WouldBlock,
}

/// Buffered reassembly of length-prefixed frames from partial reads.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    start: usize,
}

impl FrameBuffer {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Appends up to one read's worth of bytes from a non-blocking
    /// source. `Err` is a real socket error; `WouldBlock` and
    /// `Interrupted` are normal non-blocking idioms and map to
    /// [`Fill::WouldBlock`].
    pub fn fill_from(&mut self, r: &mut impl Read) -> io::Result<Fill> {
        let mut chunk = [0u8; READ_CHUNK];
        match r.read(&mut chunk) {
            Ok(0) => Ok(Fill::Eof),
            Ok(n) => {
                self.buf.extend_from_slice(chunk.get(..n).unwrap_or(&[]));
                Ok(Fill::Bytes(n))
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(Fill::WouldBlock),
            Err(e) if e.kind() == ErrorKind::Interrupted => Ok(Fill::WouldBlock),
            Err(e) => Err(e),
        }
    }

    /// Appends bytes directly (tests and in-process shims).
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed — nonzero at EOF means the
    /// peer hung up mid-frame.
    #[must_use]
    pub fn pending_len(&self) -> usize {
        self.buf.len().saturating_sub(self.start)
    }

    /// Peels off the next complete frame payload, if one has fully
    /// arrived.
    ///
    /// * `Ok(Some(payload))` — one frame, magic and length already
    ///   validated and stripped;
    /// * `Ok(None)` — the buffer holds only a partial frame so far;
    /// * `Err(..)` — the byte stream is unsalvageable (bad magic or an
    ///   oversized length prefix); the owner should drop the connection.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        let Some(magic) = self.take4(0) else {
            return Ok(None);
        };
        if magic != MAGIC {
            return Err(WireError::BadMagic { found: magic });
        }
        let Some(len_bytes) = self.take4(4) else {
            return Ok(None);
        };
        let len = u32::from_be_bytes(len_bytes);
        if len > MAX_FRAME_LEN {
            return Err(WireError::TooLarge {
                context: "frame payload",
                len: u64::from(len),
                max: u64::from(MAX_FRAME_LEN),
            });
        }
        let total = HEADER_LEN + len as usize;
        if self.pending_len() < total {
            return Ok(None);
        }
        let Some(payload) = self
            .buf
            .get(self.start + HEADER_LEN..self.start + total)
            .map(<[u8]>::to_vec)
        else {
            return Ok(None);
        };
        self.start += total;
        self.compact();
        Ok(Some(payload))
    }

    /// Four buffered bytes at `offset` past the read cursor, if present.
    fn take4(&self, offset: usize) -> Option<[u8; 4]> {
        let at = self.start.checked_add(offset)?;
        let slice = self.buf.get(at..at.checked_add(4)?)?;
        let mut out = [0u8; 4];
        for (dst, &src) in out.iter_mut().zip(slice) {
            *dst = src;
        }
        Some(out)
    }

    fn compact(&mut self) {
        if self.start >= self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start >= COMPACT_THRESHOLD {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wire::message::{encode_request, Request};

    fn framed(req: &Request) -> Vec<u8> {
        let payload = encode_request(req).unwrap();
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        out.extend_from_slice(&payload);
        out
    }

    fn hello() -> Request {
        Request::Hello {
            min_version: 1,
            max_version: 5,
        }
    }

    #[test]
    fn reassembles_across_byte_at_a_time_delivery() {
        let bytes = framed(&hello());
        let mut fb = FrameBuffer::new();
        for (i, b) in bytes.iter().enumerate() {
            fb.push_bytes(&[*b]);
            let got = fb.next_frame().unwrap();
            if i + 1 < bytes.len() {
                assert!(got.is_none(), "frame complete after {} bytes?", i + 1);
            } else {
                let payload = got.expect("frame should complete on final byte");
                assert_eq!(wire::message::decode_request(&payload).unwrap(), hello());
            }
        }
        assert_eq!(fb.pending_len(), 0);
    }

    #[test]
    fn peels_multiple_frames_from_one_fill() {
        let a = framed(&hello());
        let b = framed(&Request::GetStats { request_id: 9 });
        let mut fb = FrameBuffer::new();
        let mut combined = a.clone();
        combined.extend_from_slice(&b);
        fb.push_bytes(&combined);
        assert!(fb.next_frame().unwrap().is_some());
        assert!(fb.next_frame().unwrap().is_some());
        assert!(fb.next_frame().unwrap().is_none());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut fb = FrameBuffer::new();
        fb.push_bytes(b"HTTP/1.1 GET /");
        assert!(matches!(
            fb.next_frame(),
            Err(WireError::BadMagic { found }) if &found == b"HTTP"
        ));
    }

    #[test]
    fn oversized_length_prefix_rejected_before_allocation() {
        let mut fb = FrameBuffer::new();
        fb.push_bytes(&MAGIC);
        fb.push_bytes(&u32::MAX.to_be_bytes());
        assert!(matches!(fb.next_frame(), Err(WireError::TooLarge { .. })));
    }

    #[test]
    fn fill_from_reports_eof_and_bytes() {
        let bytes = framed(&hello());
        let mut cursor = std::io::Cursor::new(bytes.clone());
        let mut fb = FrameBuffer::new();
        assert_eq!(fb.fill_from(&mut cursor).unwrap(), Fill::Bytes(bytes.len()));
        assert_eq!(fb.fill_from(&mut cursor).unwrap(), Fill::Eof);
        assert!(fb.next_frame().unwrap().is_some());
    }

    #[test]
    fn compaction_preserves_pending_frames() {
        let frame = framed(&hello());
        let mut fb = FrameBuffer::new();
        // Enough consumed frames to cross the compaction threshold, with
        // a partial frame straddling the boundary.
        let rounds = COMPACT_THRESHOLD / frame.len() + 2;
        for _ in 0..rounds {
            fb.push_bytes(&frame);
        }
        let half = frame.len() / 2;
        fb.push_bytes(&frame[..half]);
        for _ in 0..rounds {
            assert!(fb.next_frame().unwrap().is_some());
        }
        assert!(fb.next_frame().unwrap().is_none());
        fb.push_bytes(&frame[half..]);
        assert!(fb.next_frame().unwrap().is_some());
        assert_eq!(fb.pending_len(), 0);
    }
}
