//! Per-shard health: alive / suspect / quarantined, with deterministic
//! probe scheduling and epoch-merged gossip.
//!
//! The math is the in-process planner's [`accel::host::QuarantinePolicy`]
//! lifted one level up: where the dispatcher quarantines a *backend*
//! after `threshold` consecutive fault-exhausted dispatches and probes it
//! every `probe_interval`-th skip, the router quarantines a *shard* after
//! `threshold` consecutive connection/submission failures and probes it
//! every `probe_interval`-th heartbeat tick. One policy type, one mental
//! model, two scales.
//!
//! # Determinism
//!
//! Probe scheduling is a pure function of `(seed, shard, tick)`: each
//! shard gets an FNV-derived phase offset within the probe interval, so
//! probes are staggered (no reconnect stampede at tick boundaries) yet a
//! replayed chaos run probes on exactly the same ticks. Observations are
//! versioned with a monotonically increasing `epoch`; gossip merge keeps
//! whichever entry has the higher epoch, making merges commutative,
//! associative, and idempotent — the usual last-writer-wins CRDT shape.

use accel::host::QuarantinePolicy;
use std::collections::BTreeMap;
use wire::{GossipEntry, GOSSIP_ALIVE, GOSSIP_QUARANTINED, GOSSIP_SUSPECT};

/// FNV-1a offset basis (the workspace-wide digest constants).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// A shard's health classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ShardStatus {
    /// Serving normally.
    Alive,
    /// Some consecutive failures, but fewer than the quarantine
    /// threshold; still routable.
    Suspect,
    /// At or past the threshold: taken out of routing until a probe
    /// succeeds.
    Quarantined,
}

impl ShardStatus {
    /// The wire encoding of this status for gossip entries.
    #[must_use]
    pub fn to_wire(self) -> u8 {
        match self {
            ShardStatus::Alive => GOSSIP_ALIVE,
            ShardStatus::Suspect => GOSSIP_SUSPECT,
            ShardStatus::Quarantined => GOSSIP_QUARANTINED,
        }
    }

    /// Decodes a wire status byte (already validated by the wire layer;
    /// unknown bytes conservatively map to `Quarantined`).
    #[must_use]
    pub fn from_wire(status: u8) -> Self {
        match status {
            GOSSIP_ALIVE => ShardStatus::Alive,
            GOSSIP_SUSPECT => ShardStatus::Suspect,
            _ => ShardStatus::Quarantined,
        }
    }
}

/// One shard's health record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardHealth {
    /// Current classification.
    pub status: ShardStatus,
    /// Consecutive failures since the last success.
    pub consecutive_failures: u32,
    /// Observation version; higher is fresher. Bumped on every local
    /// observation, taken from the remote on merge.
    pub epoch: u64,
}

impl ShardHealth {
    fn new() -> Self {
        ShardHealth {
            status: ShardStatus::Alive,
            consecutive_failures: 0,
            epoch: 0,
        }
    }
}

/// The health table one router (or shard) keeps for every shard it knows.
#[derive(Debug, Clone)]
pub struct HealthBoard {
    policy: QuarantinePolicy,
    seed: u64,
    tick: u64,
    shards: BTreeMap<u32, ShardHealth>,
}

impl HealthBoard {
    /// A board tracking `shards`, all initially alive.
    #[must_use]
    pub fn new(policy: QuarantinePolicy, seed: u64, shards: impl IntoIterator<Item = u32>) -> Self {
        let shards = shards
            .into_iter()
            .map(|s| (s, ShardHealth::new()))
            .collect();
        HealthBoard {
            policy,
            seed,
            tick: 0,
            shards,
        }
    }

    /// The policy this board classifies with.
    #[must_use]
    pub fn policy(&self) -> QuarantinePolicy {
        self.policy
    }

    /// The health record for `shard`, if tracked.
    #[must_use]
    pub fn get(&self, shard: u32) -> Option<ShardHealth> {
        self.shards.get(&shard).copied()
    }

    /// Whether `shard` may receive new submissions (alive or suspect;
    /// quarantined shards only see probes).
    #[must_use]
    pub fn is_routable(&self, shard: u32) -> bool {
        self.shards
            .get(&shard)
            .is_some_and(|h| h.status != ShardStatus::Quarantined)
    }

    /// Shard ids currently routable, ascending.
    #[must_use]
    pub fn routable(&self) -> Vec<u32> {
        self.shards
            .iter()
            .filter(|(_, h)| h.status != ShardStatus::Quarantined)
            .map(|(&s, _)| s)
            .collect()
    }

    /// Records a successful exchange with `shard`: failures reset, the
    /// shard returns to `Alive` (lifting any quarantine).
    pub fn record_success(&mut self, shard: u32) {
        let entry = self.shards.entry(shard).or_insert_with(ShardHealth::new);
        entry.consecutive_failures = 0;
        entry.status = ShardStatus::Alive;
        entry.epoch += 1;
    }

    /// Records a failed exchange with `shard`: the failure counter
    /// advances and the status follows the policy threshold.
    pub fn record_failure(&mut self, shard: u32) {
        let threshold = self.policy.threshold;
        let entry = self.shards.entry(shard).or_insert_with(ShardHealth::new);
        entry.consecutive_failures = entry.consecutive_failures.saturating_add(1);
        entry.status = if entry.consecutive_failures >= threshold {
            ShardStatus::Quarantined
        } else {
            ShardStatus::Suspect
        };
        entry.epoch += 1;
    }

    /// Advances the heartbeat clock one tick and returns the quarantined
    /// shards whose probe is due this tick, ascending.
    ///
    /// Each shard probes every `probe_interval` ticks at a seeded phase
    /// offset, so probes stagger deterministically instead of
    /// stampeding together.
    pub fn tick(&mut self) -> Vec<u32> {
        self.tick += 1;
        if !self.policy.is_enabled() {
            return Vec::new();
        }
        let interval = self.policy.probe_interval.max(1);
        let tick = self.tick;
        let seed = self.seed;
        self.shards
            .iter()
            .filter(|(_, h)| h.status == ShardStatus::Quarantined)
            .filter(|(&s, _)| (tick + probe_phase(seed, s, interval)).is_multiple_of(interval))
            .map(|(&s, _)| s)
            .collect()
    }

    /// The current tick count.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// Folds one gossiped observation in: the higher epoch wins; ties
    /// keep the local record (merge is idempotent).
    pub fn merge_remote(&mut self, entry: &GossipEntry) {
        let local = self
            .shards
            .entry(entry.shard)
            .or_insert_with(ShardHealth::new);
        if entry.epoch > local.epoch {
            local.status = ShardStatus::from_wire(entry.status);
            local.consecutive_failures = entry.failures;
            local.epoch = entry.epoch;
        }
    }

    /// This board's view as gossip entries, one per tracked shard,
    /// ascending by shard id.
    #[must_use]
    pub fn to_gossip(&self) -> Vec<GossipEntry> {
        self.shards
            .iter()
            .map(|(&shard, h)| GossipEntry {
                shard,
                status: h.status.to_wire(),
                failures: h.consecutive_failures,
                epoch: h.epoch,
            })
            .collect()
    }
}

/// A shard's deterministic phase offset within the probe interval.
fn probe_phase(seed: u64, shard: u32, interval: u64) -> u64 {
    let mut h = FNV_OFFSET;
    for b in seed
        .to_be_bytes()
        .into_iter()
        .chain(u64::from(shard).to_be_bytes())
    {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h % interval
}

#[cfg(test)]
mod tests {
    use super::*;

    fn board() -> HealthBoard {
        HealthBoard::new(
            QuarantinePolicy {
                threshold: 3,
                probe_interval: 4,
            },
            2019,
            0..3,
        )
    }

    #[test]
    fn failures_walk_alive_suspect_quarantined() {
        let mut b = board();
        assert_eq!(b.get(1).unwrap().status, ShardStatus::Alive);
        b.record_failure(1);
        assert_eq!(b.get(1).unwrap().status, ShardStatus::Suspect);
        assert!(b.is_routable(1));
        b.record_failure(1);
        assert_eq!(b.get(1).unwrap().status, ShardStatus::Suspect);
        b.record_failure(1);
        assert_eq!(b.get(1).unwrap().status, ShardStatus::Quarantined);
        assert!(!b.is_routable(1));
        assert_eq!(b.routable(), vec![0, 2]);
        b.record_success(1);
        assert_eq!(b.get(1).unwrap().status, ShardStatus::Alive);
        assert_eq!(b.get(1).unwrap().consecutive_failures, 0);
    }

    #[test]
    fn probe_schedule_is_deterministic_and_periodic() {
        let run = || {
            let mut b = board();
            for _ in 0..3 {
                b.record_failure(1);
            }
            let mut probes = Vec::new();
            for t in 1..=16u64 {
                for s in b.tick() {
                    probes.push((t, s));
                }
            }
            probes
        };
        let a = run();
        assert_eq!(a, run(), "probe schedule must replay identically");
        assert!(!a.is_empty());
        assert!(a.iter().all(|&(_, s)| s == 1), "only quarantined probe");
        // Periodic: consecutive probe ticks are one interval apart.
        let ticks: Vec<u64> = a.iter().map(|&(t, _)| t).collect();
        for pair in ticks.windows(2) {
            if let [x, y] = pair {
                assert_eq!(y - x, 4);
            }
        }
    }

    #[test]
    fn probe_phases_stagger_across_shards() {
        let policy = QuarantinePolicy {
            threshold: 1,
            probe_interval: 8,
        };
        let mut b = HealthBoard::new(policy, 2019, 0..8);
        for s in 0..8 {
            b.record_failure(s);
        }
        let mut per_tick = Vec::new();
        for _ in 1..=8u64 {
            per_tick.push(b.tick().len());
        }
        // All 8 shards probe exactly once per interval...
        assert_eq!(per_tick.iter().sum::<usize>(), 8);
        // ...and the seeded phases spread them over more than one tick.
        assert!(per_tick.iter().filter(|&&n| n > 0).count() > 1);
    }

    #[test]
    fn disabled_policy_never_probes() {
        let mut b = HealthBoard::new(QuarantinePolicy::disabled(), 7, 0..2);
        for _ in 0..100 {
            b.record_failure(0);
        }
        // u32::MAX threshold is unreachable; shard stays suspect.
        assert_eq!(b.get(0).unwrap().status, ShardStatus::Suspect);
        for _ in 0..32 {
            assert!(b.tick().is_empty());
        }
    }

    #[test]
    fn merge_keeps_the_higher_epoch() {
        let mut b = board();
        b.record_failure(2);
        let local_epoch = b.get(2).unwrap().epoch;
        // A stale remote entry loses...
        b.merge_remote(&GossipEntry {
            shard: 2,
            status: GOSSIP_ALIVE,
            failures: 0,
            epoch: 0,
        });
        assert_eq!(b.get(2).unwrap().status, ShardStatus::Suspect);
        // ...a fresher one wins...
        let fresh = GossipEntry {
            shard: 2,
            status: GOSSIP_QUARANTINED,
            failures: 9,
            epoch: local_epoch + 5,
        };
        b.merge_remote(&fresh);
        assert_eq!(b.get(2).unwrap().status, ShardStatus::Quarantined);
        assert_eq!(b.get(2).unwrap().epoch, local_epoch + 5);
        // ...and merging is idempotent.
        let snapshot = b.get(2).unwrap();
        b.merge_remote(&fresh);
        assert_eq!(b.get(2).unwrap(), snapshot);
    }

    #[test]
    fn merge_learns_previously_unknown_shards() {
        let mut b = board();
        b.merge_remote(&GossipEntry {
            shard: 7,
            status: GOSSIP_SUSPECT,
            failures: 1,
            epoch: 3,
        });
        assert_eq!(b.get(7).unwrap().status, ShardStatus::Suspect);
        assert!(b.to_gossip().iter().any(|e| e.shard == 7));
    }

    #[test]
    fn gossip_round_trips_through_wire_entries() {
        let mut a = board();
        a.record_failure(0);
        a.record_failure(0);
        a.record_success(2);
        let mut b = board();
        for e in a.to_gossip() {
            b.merge_remote(&e);
        }
        assert_eq!(a.to_gossip(), b.to_gossip());
    }
}
