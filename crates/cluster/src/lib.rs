//! The cluster serving tier: event loop, consistent-hash router, and
//! shard health gossip.
//!
//! The paper's closing argument is that post-CMOS accelerators will be
//! reached *as services* long before they are linked as libraries — which
//! means the serving layer in front of them has to scale past one host.
//! This crate supplies the three pieces of that tier, all `std`-only and
//! fully offline:
//!
//! * [`poll`] — a readiness-driven event loop over non-blocking TCP (an
//!   own miniature mio: tokens, an event queue, a cross-thread waker),
//!   plus [`pool::WorkerPool`], a fixed pool that replaces per-job waiter
//!   threads, and [`frame::FrameBuffer`], incremental reassembly of
//!   length-prefixed wire frames from partial reads.
//! * [`router`] — a front-end that shards submissions across N runtime
//!   shards by [`admission::CanonicalKey`] on a consistent-hash
//!   [`ring::HashRing`], so duplicate submissions of one canonical kernel
//!   land on the same shard's result cache. Unkeyed and `DeadlineAware`
//!   jobs round-robin instead. Each shard link keeps a bounded in-flight
//!   window and surfaces `Busy` instead of queueing unboundedly.
//! * [`health`] — per-shard alive/suspect/quarantined state driven by
//!   seeded-deterministic heartbeat ticks and consecutive-failure
//!   counters (the same [`accel::host::QuarantinePolicy`] math the
//!   in-process planner uses), exchanged between routers and shards in
//!   wire v5 gossip frames and merged by epoch.
//!
//! # Determinism contract
//!
//! The cluster tier routes and retries; it never computes. A job's result
//! bytes remain a pure function of (canonical kernel, explicit seed,
//! policy) no matter which shard executes it, so re-routing after a shard
//! death cannot change outcomes — only placement. Everything that *is*
//! cluster-local state (health transitions, probe schedules, reconnect
//! jitter) derives from explicit seeds, so a chaos run replays exactly.

pub mod frame;
pub mod health;
pub mod poll;
pub mod pool;
pub mod ring;
pub mod router;

pub use frame::{Fill, FrameBuffer};
pub use health::{HealthBoard, ShardHealth, ShardStatus};
pub use poll::{Event, Poll, Token, Waker};
pub use pool::WorkerPool;
pub use ring::HashRing;
pub use router::{ClusterStats, Router, RouterConfig, RouterError};

/// Shared lock helper: recover the guard from a poisoned mutex instead of
/// panicking.
///
/// A worker that panics while holding a cluster lock poisons it; every
/// structure guarded here (event queues, outboxes, health boards) stays
/// structurally valid at each await point, so the right response is to
/// keep serving, not to cascade the panic through the event loop.
pub(crate) mod sync {
    use std::sync::{Mutex, MutexGuard};

    pub(crate) fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        match m.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}
