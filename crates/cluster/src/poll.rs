//! A miniature readiness-driven event loop over non-blocking TCP.
//!
//! `std` exposes no portable `epoll`/`kqueue` wrapper, so this module
//! builds readiness the only way the standard library allows while
//! staying fully offline: sockets are switched to non-blocking mode and
//! probed with zero-consumption [`TcpStream::peek`] calls. Between scans
//! the loop parks on a condvar in short slices, so a cross-thread
//! [`Waker`] (job completions, shutdown) interrupts the park immediately
//! and an idle loop costs no busy-wait — the hot path never sleeps while
//! there is work, and the cold path never spins.
//!
//! # Semantics
//!
//! * **Level-triggered.** A stream with buffered bytes reports
//!   [`Event::Readable`] on every poll until drained; owners read until
//!   `WouldBlock`.
//! * **EOF is readable.** A half-closed peer reports `Readable`; the
//!   owner's next read observes the end-of-stream and must deregister,
//!   otherwise the poll keeps reporting readiness (that is what
//!   level-triggered means).
//! * **No write events.** Non-blocking writes fail fast with
//!   `WouldBlock`; callers keep per-connection outboxes and retry flushes
//!   each loop iteration instead of tracking write interest.

use crate::sync::lock_or_recover;
use std::collections::BTreeMap;
use std::io::{self, ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long one condvar park slice lasts. Socket readiness cannot signal
/// the condvar, so this bounds the latency between a peer's bytes
/// arriving and the loop noticing them while idle.
const PARK_SLICE: Duration = Duration::from_millis(1);

/// An opaque registration handle, unique per [`Poll`] for its lifetime.
/// Tokens are never reused, so a stale token in a late completion can
/// never alias a newer connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub u64);

/// One readiness event out of [`Poll::poll`].
#[derive(Debug)]
pub enum Event {
    /// A listener accepted a connection. The stream is already
    /// non-blocking; the owner decides whether to register it.
    Accepted {
        /// The listener's token.
        listener: Token,
        /// The accepted stream.
        stream: TcpStream,
        /// The peer's address.
        peer: SocketAddr,
    },
    /// A registered stream has bytes to read (or a pending EOF).
    Readable(Token),
    /// A registered stream failed its readiness probe with a real error
    /// (not `WouldBlock`); the owner should deregister it.
    Closed(Token),
}

/// Cross-thread wake signal: a flag under a mutex plus a condvar. The
/// poll loop parks here between scans; any thread holding a [`Waker`]
/// can cut the park short.
#[derive(Debug, Default)]
struct WakeSignal {
    flag: Mutex<bool>,
    cond: Condvar,
}

/// A cheap, cloneable handle that interrupts [`Poll::poll`] from another
/// thread — the stand-in for mio's `Waker`.
#[derive(Debug, Clone)]
pub struct Waker {
    signal: Arc<WakeSignal>,
}

impl Waker {
    /// Wakes the owning [`Poll`] if it is parked, or makes its next park
    /// return immediately if it is mid-scan.
    pub fn wake(&self) {
        // lint:allow(eventloop, reason = "bounded hold: the wake flag is a bool set-and-notify, never held across work")
        let mut flag = lock_or_recover(&self.signal.flag);
        *flag = true;
        drop(flag);
        self.signal.cond.notify_all();
    }
}

#[derive(Debug)]
struct StreamEntry {
    stream: TcpStream,
    /// Muted streams stay registered (writable via [`Poll::stream`]) but
    /// are skipped by the readiness scan — how an owner stops consuming
    /// a connection (backpressure, half-close) without a hot loop of
    /// redundant `Readable` events.
    muted: bool,
}

/// The event loop core: registered listeners and streams, an event
/// queue, and the park/wake signal. Owned by exactly one loop thread;
/// only [`Waker`] handles cross threads.
#[derive(Debug)]
pub struct Poll {
    listeners: BTreeMap<u64, TcpListener>,
    streams: BTreeMap<u64, StreamEntry>,
    signal: Arc<WakeSignal>,
    next_token: u64,
}

impl Default for Poll {
    fn default() -> Self {
        Self::new()
    }
}

impl Poll {
    /// An empty poll with no registrations.
    #[must_use]
    pub fn new() -> Self {
        Poll {
            listeners: BTreeMap::new(),
            streams: BTreeMap::new(),
            signal: Arc::new(WakeSignal::default()),
            next_token: 0,
        }
    }

    /// A handle other threads can use to interrupt [`Poll::poll`].
    #[must_use]
    pub fn waker(&self) -> Waker {
        Waker {
            signal: Arc::clone(&self.signal),
        }
    }

    /// Registers a listener, switching it to non-blocking mode.
    pub fn register_listener(&mut self, listener: TcpListener) -> io::Result<Token> {
        listener.set_nonblocking(true)?;
        let token = self.alloc();
        self.listeners.insert(token.0, listener);
        Ok(token)
    }

    /// Registers a stream, switching it to non-blocking mode.
    pub fn register_stream(&mut self, stream: TcpStream) -> io::Result<Token> {
        stream.set_nonblocking(true)?;
        let token = self.alloc();
        self.streams.insert(
            token.0,
            StreamEntry {
                stream,
                muted: false,
            },
        );
        Ok(token)
    }

    /// Removes a stream registration, returning the stream so the owner
    /// can flush, shut down, or drop it.
    pub fn deregister(&mut self, token: Token) -> Option<TcpStream> {
        self.streams.remove(&token.0).map(|entry| entry.stream)
    }

    /// Stops scanning `token` for readiness without deregistering it.
    /// The stream stays writable via [`Poll::stream`]; use for
    /// backpressure (stop consuming a connection that is ahead of the
    /// runtime) and for half-closed peers awaiting a final flush, where
    /// level-triggered readiness would otherwise spin the loop.
    pub fn mute(&mut self, token: Token) {
        if let Some(entry) = self.streams.get_mut(&token.0) {
            entry.muted = true;
        }
    }

    /// Resumes readiness scanning for a muted stream.
    pub fn unmute(&mut self, token: Token) {
        if let Some(entry) = self.streams.get_mut(&token.0) {
            entry.muted = false;
        }
    }

    /// Removes a listener registration.
    pub fn deregister_listener(&mut self, token: Token) -> Option<TcpListener> {
        self.listeners.remove(&token.0)
    }

    /// Shared access to a registered stream (for reads and writes; the
    /// socket is non-blocking, so `&TcpStream`'s `Read`/`Write` impls
    /// never park).
    #[must_use]
    pub fn stream(&self, token: Token) -> Option<&TcpStream> {
        self.streams.get(&token.0).map(|entry| &entry.stream)
    }

    /// How many streams are currently registered.
    #[must_use]
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Scans for readiness, parking up to `timeout` if nothing is ready.
    ///
    /// Appends events to `events` and returns how many were added. Returns
    /// early (possibly with zero events) when a [`Waker`] fires, so the
    /// caller can service cross-thread work like completion queues.
    pub fn poll(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<usize> {
        // lint:allow(wall-clock, reason = "park-deadline accounting; never feeds a result")
        let deadline = Instant::now() + timeout;
        let before = events.len();
        loop {
            self.scan(events)?;
            if events.len() > before || self.take_wake() {
                return Ok(events.len() - before);
            }
            // lint:allow(wall-clock, reason = "park-deadline accounting; never feeds a result")
            let now = Instant::now();
            if now >= deadline {
                return Ok(0);
            }
            let slice = PARK_SLICE.min(deadline - now);
            if self.park(slice) {
                return Ok(0);
            }
        }
    }

    /// One pass over every registration.
    fn scan(&mut self, events: &mut Vec<Event>) -> io::Result<usize> {
        let before = events.len();
        for (&tok, listener) in &self.listeners {
            // Drain the accept backlog; each poll call reports every
            // connection that is already queued.
            loop {
                match listener.accept() {
                    Ok((stream, peer)) => {
                        stream.set_nonblocking(true)?;
                        events.push(Event::Accepted {
                            listener: Token(tok),
                            stream,
                            peer,
                        });
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    // Transient per-connection accept failures (peer reset
                    // mid-handshake) are not listener failures.
                    Err(_) => break,
                }
            }
        }
        let mut probe = [0u8; 1];
        for (&tok, entry) in &self.streams {
            if entry.muted {
                continue;
            }
            match entry.stream.peek(&mut probe) {
                // Ok(0) is EOF: readable in the level-triggered sense —
                // the owner's read returns 0 and handles the close.
                Ok(_) => events.push(Event::Readable(Token(tok))),
                Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => events.push(Event::Closed(Token(tok))),
            }
        }
        Ok(events.len() - before)
    }

    /// Parks up to `slice`, returning `true` if a waker fired.
    fn park(&self, slice: Duration) -> bool {
        // lint:allow(eventloop, reason = "the park itself: this is where the loop is designed to block, for one bounded slice")
        let flag = lock_or_recover(&self.signal.flag);
        if *flag {
            drop(flag);
            return self.take_wake();
        }
        // lint:allow(eventloop, reason = "the park itself: bounded by `slice`, interrupted by any waker")
        let (mut flag, _timed_out) = match self.signal.cond.wait_timeout(flag, slice) {
            Ok(pair) => pair,
            Err(poisoned) => poisoned.into_inner(),
        };
        let woken = *flag;
        *flag = false;
        woken
    }

    /// Consumes a pending wake, if any.
    fn take_wake(&self) -> bool {
        // lint:allow(eventloop, reason = "bounded hold: swaps the wake flag, nothing else under the guard")
        let mut flag = lock_or_recover(&self.signal.flag);
        std::mem::replace(&mut *flag, false)
    }

    fn alloc(&mut self) -> Token {
        let token = Token(self.next_token);
        self.next_token += 1;
        token
    }
}

/// Blocks until `stream` is readable (bytes or EOF), a real error
/// surfaces, or `timeout` elapses. Returns `Ok(true)` when readable,
/// `Ok(false)` on timeout.
///
/// The client-side counterpart to [`Poll`]: router shard links are plain
/// non-blocking sockets without a loop thread, and their blocking waits
/// go through here instead of a sleep-and-retry read. The stream must
/// already be in non-blocking mode — on a blocking stream the readiness
/// probe itself would park indefinitely.
pub fn wait_readable(stream: &TcpStream, timeout: Duration) -> io::Result<bool> {
    // lint:allow(wall-clock, reason = "wait-deadline accounting; never feeds a result")
    let deadline = Instant::now() + timeout;
    let mut probe = [0u8; 1];
    loop {
        match stream.peek(&mut probe) {
            Ok(_) => return Ok(true),
            Err(e) if e.kind() == ErrorKind::WouldBlock => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
        // lint:allow(wall-clock, reason = "wait-deadline accounting; never feeds a result")
        let now = Instant::now();
        if now >= deadline {
            return Ok(false);
        }
        // lint:allow(eventloop, reason = "bounded park slice on the client-side wait path; capped by PARK_SLICE and the caller's deadline")
        std::thread::sleep(PARK_SLICE.min(deadline - now));
    }
}

/// Drains a non-blocking stream into `buf` via `read`, translating the
/// non-blocking idioms: `Ok(Some(0))` is EOF, `Ok(None)` means no bytes
/// were available right now.
pub fn read_nonblocking(mut stream: &TcpStream, buf: &mut [u8]) -> io::Result<Option<usize>> {
    match stream.read(buf) {
        Ok(n) => Ok(Some(n)),
        Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(None),
        Err(e) if e.kind() == ErrorKind::Interrupted => Ok(None),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn accept_surfaces_as_an_event() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut poll = Poll::new();
        let ltok = poll.register_listener(listener).unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let mut events = Vec::new();
        let n = poll.poll(&mut events, Duration::from_secs(2)).unwrap();
        assert!(n >= 1);
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::Accepted { listener, .. } if *listener == ltok)));
    }

    #[test]
    fn readable_is_level_triggered_until_drained() {
        let (mut writer, reader) = pair();
        let mut poll = Poll::new();
        let tok = poll.register_stream(reader).unwrap();
        writer.write_all(b"hi").unwrap();
        writer.flush().unwrap();

        for _ in 0..2 {
            let mut events = Vec::new();
            poll.poll(&mut events, Duration::from_secs(2)).unwrap();
            assert!(events
                .iter()
                .any(|e| matches!(e, Event::Readable(t) if *t == tok)));
        }

        // Drain, then expect a quiet poll (timeout, zero events).
        let stream = poll.stream(tok).unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(read_nonblocking(stream, &mut buf).unwrap(), Some(2));
        let mut events = Vec::new();
        let n = poll.poll(&mut events, Duration::from_millis(20)).unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn eof_reports_readable() {
        let (writer, reader) = pair();
        let mut poll = Poll::new();
        let tok = poll.register_stream(reader).unwrap();
        drop(writer);
        let mut events = Vec::new();
        poll.poll(&mut events, Duration::from_secs(2)).unwrap();
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::Readable(t) | Event::Closed(t) if *t == tok)));
        let stream = poll.stream(tok).unwrap();
        let mut buf = [0u8; 4];
        // The read observes the EOF (or the reset, on some platforms).
        match read_nonblocking(stream, &mut buf) {
            Ok(Some(0)) | Err(_) => {}
            other => panic!("expected EOF, got {other:?}"),
        }
    }

    #[test]
    fn waker_interrupts_a_long_park() {
        let mut poll = Poll::new();
        let waker = poll.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
        });
        let start = Instant::now();
        let mut events = Vec::new();
        poll.poll(&mut events, Duration::from_secs(10)).unwrap();
        assert!(start.elapsed() < Duration::from_secs(5));
        handle.join().unwrap();
    }

    #[test]
    fn wake_before_poll_is_not_lost() {
        let mut poll = Poll::new();
        poll.waker().wake();
        let start = Instant::now();
        let mut events = Vec::new();
        poll.poll(&mut events, Duration::from_secs(10)).unwrap();
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn tokens_are_never_reused() {
        let (_w1, r1) = pair();
        let (_w2, r2) = pair();
        let mut poll = Poll::new();
        let t1 = poll.register_stream(r1).unwrap();
        poll.deregister(t1).unwrap();
        let t2 = poll.register_stream(r2).unwrap();
        assert_ne!(t1, t2);
    }

    #[test]
    fn muted_streams_are_skipped_until_unmuted() {
        let (mut writer, reader) = pair();
        let mut poll = Poll::new();
        let tok = poll.register_stream(reader).unwrap();
        writer.write_all(b"hi").unwrap();
        writer.flush().unwrap();
        poll.mute(tok);
        let mut events = Vec::new();
        let n = poll.poll(&mut events, Duration::from_millis(20)).unwrap();
        assert_eq!(n, 0, "muted stream still reported readiness");
        // The stream stays registered and usable while muted.
        assert!(poll.stream(tok).is_some());
        poll.unmute(tok);
        poll.poll(&mut events, Duration::from_secs(2)).unwrap();
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::Readable(t) if *t == tok)));
    }

    #[test]
    fn wait_readable_sees_bytes_and_times_out_without() {
        let (mut writer, reader) = pair();
        reader.set_nonblocking(true).unwrap();
        assert!(!wait_readable(&reader, Duration::from_millis(10)).unwrap());
        writer.write_all(b"x").unwrap();
        writer.flush().unwrap();
        assert!(wait_readable(&reader, Duration::from_secs(2)).unwrap());
    }
}
