//! A fixed worker pool for off-loop work.
//!
//! The thread-per-connection server spent a thread *per in-flight job*
//! waiting on [`runtime::JobHandle::wait`]. The event-loop server keeps
//! completion event-driven (`JobHandle::on_finish`) and pushes the only
//! remaining CPU work — encoding result frames, running submission
//! callbacks — onto this pool: N threads created once at startup, fed
//! over a channel, joined on shutdown. Pool size bounds concurrency
//! explicitly instead of letting the connection count decide it.

use crate::sync::lock_or_recover;
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Task = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads draining one shared task channel.
#[derive(Debug)]
pub struct WorkerPool {
    sender: Option<Sender<Task>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `size.max(1)` workers, each named `{name}-{index}`.
    #[must_use]
    pub fn new(name: &str, size: usize) -> Self {
        let (sender, receiver) = mpsc::channel::<Task>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..size.max(1))
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || worker_loop(&receiver))
            })
            .filter_map(Result::ok)
            .collect();
        WorkerPool {
            sender: Some(sender),
            workers,
        }
    }

    /// How many worker threads are running.
    #[must_use]
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Queues a task. Returns `false` if the pool has already shut down
    /// (the task is dropped in that case).
    pub fn execute(&self, task: impl FnOnce() + Send + 'static) -> bool {
        match &self.sender {
            Some(sender) => sender.send(Box::new(task)).is_ok(),
            None => false,
        }
    }

    /// Closes the channel and joins every worker. Queued tasks all run
    /// before this returns; new `execute` calls fail.
    pub fn shutdown(&mut self) {
        self.sender = None;
        let me = std::thread::current().id();
        for handle in self.workers.drain(..) {
            // A pool task can end up dropping the last handle to the pool
            // itself (late completions during teardown); a thread cannot
            // join itself, so let that one worker exit unjoined.
            if handle.thread().id() == me {
                continue;
            }
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(receiver: &Arc<Mutex<Receiver<Task>>>) {
    loop {
        // Hold the receiver lock only for the dequeue, never while the
        // task runs — tasks themselves may take other locks.
        let task = {
            let guard = lock_or_recover(receiver);
            guard.recv()
        };
        match task {
            Ok(task) => task(),
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc::channel;

    #[test]
    fn runs_tasks_on_pool_threads() {
        let pool = WorkerPool::new("test-pool", 4);
        assert_eq!(pool.size(), 4);
        let (tx, rx) = channel();
        for i in 0..32 {
            let tx = tx.clone();
            assert!(pool.execute(move || {
                let name = std::thread::current().name().map(str::to_owned);
                tx.send((i, name)).unwrap();
            }));
        }
        let mut seen = Vec::new();
        for _ in 0..32 {
            let (i, name) = rx.recv().unwrap();
            assert!(name.unwrap().starts_with("test-pool-"));
            seen.push(i);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn shutdown_drains_queued_tasks_then_rejects() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut pool = WorkerPool::new("drain", 2);
        for _ in 0..64 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 64);
        assert!(!pool.execute(|| {}));
    }

    #[test]
    fn zero_size_still_gets_one_worker() {
        let pool = WorkerPool::new("min", 0);
        assert_eq!(pool.size(), 1);
        let (tx, rx) = channel();
        pool.execute(move || tx.send(7u32).unwrap());
        assert_eq!(rx.recv().unwrap(), 7);
    }
}
