//! A consistent-hash ring for placing canonical keys on shards.
//!
//! Classic Karger-style consistent hashing: each shard owns `replicas`
//! pseudo-random points on a `u64` circle, and a key routes to the owner
//! of the first point at or clockwise past the key's hash. Adding or
//! removing one shard relocates only the keys in the arcs that shard's
//! points bound — about `K/N` of them — so a scaled cluster keeps most
//! shard-local caches warm. The routing input is
//! [`admission::CanonicalKey::routing_hash`], which is why duplicate
//! submissions of one canonical kernel keep landing on the same shard's
//! result cache.
//!
//! Point placement is pure FNV-1a over `(shard id, replica index)` — no
//! ambient entropy — so every router in a cluster derives the identical
//! ring from the identical shard list.

use std::collections::BTreeSet;

/// FNV-1a offset basis (the workspace-wide digest constants).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Virtual points per shard. More points smooth the load split between
/// shards at the cost of a larger sorted table; 64 keeps the worst-case
/// imbalance low for single-digit shard counts while the whole table
/// still fits in a few cache lines.
pub const DEFAULT_REPLICAS: u32 = 64;

/// A consistent-hash ring over `u32` shard ids.
#[derive(Debug, Clone)]
pub struct HashRing {
    replicas: u32,
    /// `(point hash, shard)` sorted ascending; ties broken by shard id so
    /// the ring is identical no matter the insertion order.
    points: Vec<(u64, u32)>,
    shards: BTreeSet<u32>,
}

impl Default for HashRing {
    fn default() -> Self {
        Self::new()
    }
}

impl HashRing {
    /// An empty ring with [`DEFAULT_REPLICAS`] points per shard.
    #[must_use]
    pub fn new() -> Self {
        Self::with_replicas(DEFAULT_REPLICAS)
    }

    /// An empty ring with `replicas.max(1)` points per shard.
    #[must_use]
    pub fn with_replicas(replicas: u32) -> Self {
        HashRing {
            replicas: replicas.max(1),
            points: Vec::new(),
            shards: BTreeSet::new(),
        }
    }

    /// The shard ids currently on the ring, ascending.
    #[must_use]
    pub fn shards(&self) -> Vec<u32> {
        self.shards.iter().copied().collect()
    }

    /// Whether the ring has no shards.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Adds a shard's points. Idempotent.
    pub fn add_shard(&mut self, shard: u32) {
        if !self.shards.insert(shard) {
            return;
        }
        for replica in 0..self.replicas {
            self.points.push((point_hash(shard, replica), shard));
        }
        self.points.sort_unstable();
    }

    /// Removes a shard's points. Idempotent.
    pub fn remove_shard(&mut self, shard: u32) {
        if !self.shards.remove(&shard) {
            return;
        }
        self.points.retain(|&(_, s)| s != shard);
    }

    /// The shard owning `hash`: the first point at or clockwise past it,
    /// wrapping at the top of the `u64` circle. `None` on an empty ring.
    #[must_use]
    pub fn route(&self, hash: u64) -> Option<u32> {
        self.route_filtered(hash, |_| true)
    }

    /// Like [`HashRing::route`], but walks clockwise past shards the
    /// predicate rejects (quarantined, disconnected), returning the first
    /// acceptable owner. `None` when no shard passes.
    #[must_use]
    pub fn route_filtered(&self, hash: u64, accept: impl Fn(u32) -> bool) -> Option<u32> {
        if self.points.is_empty() {
            return None;
        }
        let start = self.points.partition_point(|&(h, _)| h < hash);
        let n = self.points.len();
        let mut seen: BTreeSet<u32> = BTreeSet::new();
        for step in 0..n {
            let idx = (start + step) % n;
            let &(_, shard) = self.points.get(idx)?;
            if seen.insert(shard) && accept(shard) {
                return Some(shard);
            }
            if seen.len() == self.shards.len() {
                break;
            }
        }
        None
    }
}

/// FNV-1a over the big-endian bytes of `(shard, replica)`, finalized
/// with a splitmix-style bit mix. The finalizer matters: ring placement
/// orders points by the *high* bits of the hash, and plain FNV over
/// short, near-identical inputs leaves those bits weakly mixed — points
/// would clump and the load split would skew badly.
fn point_hash(shard: u32, replica: u32) -> u64 {
    let mut h = FNV_OFFSET;
    for b in shard.to_be_bytes().into_iter().chain(replica.to_be_bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64) -> impl Iterator<Item = u64> {
        // A cheap splitmix-style sequence: deterministic, well spread.
        (0..n).map(|i| {
            let mut z = i.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z ^ (z >> 27)
        })
    }

    #[test]
    fn routing_is_deterministic_and_insertion_order_free() {
        let mut a = HashRing::new();
        for s in [0, 1, 2, 3] {
            a.add_shard(s);
        }
        let mut b = HashRing::new();
        for s in [3, 1, 0, 2] {
            b.add_shard(s);
        }
        for k in keys(2000) {
            assert_eq!(a.route(k), b.route(k));
        }
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        let ring = HashRing::new();
        assert_eq!(ring.route(42), None);
        let mut ring = HashRing::new();
        ring.add_shard(0);
        ring.remove_shard(0);
        assert_eq!(ring.route(42), None);
    }

    #[test]
    fn filtered_routing_skips_rejected_shards_only() {
        let mut ring = HashRing::new();
        for s in 0..4 {
            ring.add_shard(s);
        }
        for k in keys(2000) {
            let owner = ring.route(k).unwrap();
            let rerouted = ring.route_filtered(k, |s| s != owner).unwrap();
            assert_ne!(rerouted, owner);
            // A key whose owner is acceptable never moves.
            assert_eq!(ring.route_filtered(k, |_| true).unwrap(), owner);
        }
        assert_eq!(ring.route_filtered(7, |_| false), None);
    }

    #[test]
    fn removing_a_shard_relocates_only_its_keys() {
        let mut ring = HashRing::new();
        for s in 0..5 {
            ring.add_shard(s);
        }
        let before: Vec<(u64, u32)> = keys(4000).map(|k| (k, ring.route(k).unwrap())).collect();
        ring.remove_shard(2);
        for (k, owner) in before {
            let after = ring.route(k).unwrap();
            if owner == 2 {
                assert_ne!(after, 2);
            } else {
                assert_eq!(after, owner, "key {k} moved despite its shard surviving");
            }
        }
    }

    #[test]
    fn adding_a_shard_steals_keys_only_for_itself() {
        let mut ring = HashRing::new();
        for s in 0..4 {
            ring.add_shard(s);
        }
        let before: Vec<(u64, u32)> = keys(4000).map(|k| (k, ring.route(k).unwrap())).collect();
        ring.add_shard(9);
        let mut moved = 0u64;
        for (k, owner) in &before {
            let after = ring.route(*k).unwrap();
            if after != *owner {
                assert_eq!(after, 9, "key moved to a pre-existing shard");
                moved += 1;
            }
        }
        // Expect roughly K/N keys to move (1/5 of 4000 = 800); allow a
        // generous band for hash-placement variance.
        assert!(moved > 0, "new shard took nothing");
        assert!(
            moved < before.len() as u64 / 2,
            "new shard took {moved} of {} keys",
            before.len()
        );
    }

    #[test]
    fn load_split_is_roughly_even() {
        let mut ring = HashRing::new();
        for s in 0..4 {
            ring.add_shard(s);
        }
        let mut counts = [0u64; 4];
        let total = 8000u64;
        for k in keys(total) {
            counts[ring.route(k).unwrap() as usize] += 1;
        }
        let expected = total / 4;
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                c > expected / 3 && c < expected * 3,
                "shard {s} owns {c} of {total} keys"
            );
        }
    }
}
