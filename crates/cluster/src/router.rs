//! The cluster front-end: consistent-hash routing of submissions across
//! runtime shards, with bounded in-flight windows, failure re-routing,
//! and health gossip.
//!
//! A [`Router`] owns one non-blocking connection per shard (a running
//! `server::Server` over the wire protocol). Submissions are canonical-
//! key sharded: the kernel's [`admission::routing_hash`] (canonicalize,
//! then key, then mix — so every syntactic variant hashes alike) picks
//! the shard on a [`crate::HashRing`], so duplicate submissions of
//! one canonical kernel keep hitting the same shard's result cache and
//! the cluster-wide hit rate survives sharding. Two classes round-robin
//! instead:
//!
//! * submissions without an explicit seed — their results depend on the
//!   executing runtime's master seed, so cache identity is not portable
//!   and placement may as well balance load;
//! * `DeadlineAware` submissions — latency-critical by declaration, they
//!   go wherever the shortest queue is rather than wherever their key
//!   lives.
//!
//! # Tickets and demux
//!
//! Every submission gets a router-wide unique ticket that is *also* the
//! wire `request_id` on whichever shard executes it — so responses demux
//! by ticket alone, and a job re-routed after a shard death keeps its
//! ticket. Per-shard in-flight windows are bounded; a submission that
//! finds its shard's window full (after one drain attempt) fails fast
//! with [`RouterError::Busy`] instead of queueing unboundedly.
//!
//! # Failure handling
//!
//! A dead link marks the shard failed in the [`crate::HealthBoard`]
//! (consecutive failures walk it alive → suspect → quarantined, exactly
//! the planner's backend-quarantine math) and every in-flight ticket on
//! it re-routes to the next live shard on the ring. Determinism holds
//! through the move: results are pure functions of (canonical kernel,
//! explicit seed, policy), so re-execution elsewhere returns the same
//! bytes. Quarantined shards are probed on seeded heartbeat ticks and
//! rejoin routing when a reconnect succeeds.

use crate::frame::FrameBuffer;
use crate::health::HealthBoard;
use crate::poll::wait_readable;
use crate::ring::HashRing;
use accel::host::{DispatchPolicy, QuarantinePolicy};
use accel::kernel::Kernel;
use admission::routing_hash;
use runtime::{JobOptions, RuntimeStats};
use std::collections::BTreeMap;
use std::io::{self, ErrorKind, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};
use wire::{
    decode_response_v, encode_request_v, read_frame, write_frame, ErrorCode, Request, Response,
    WireError, WireOutcome, MIN_SUPPORTED_VERSION, PROTOCOL_VERSION,
};

/// How long a non-blocking send may retry `WouldBlock` before the link
/// is declared wedged.
const SEND_TIMEOUT: Duration = Duration::from_secs(5);

/// Connect/handshake timeout per shard link.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// One pump slice while blocking in [`Router::wait`].
const PUMP_SLICE: Duration = Duration::from_millis(20);

/// Router configuration.
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Max in-flight submissions per shard before [`RouterError::Busy`].
    pub window: usize,
    /// Shard quarantine math (threshold of consecutive failures, probe
    /// cadence in heartbeat ticks) — the planner's
    /// [`QuarantinePolicy`] one level up.
    pub quarantine: QuarantinePolicy,
    /// Seed for the deterministic probe phases.
    pub seed: u64,
    /// Virtual points per shard on the hash ring.
    pub replicas: u32,
    /// Default timeout for [`Router::wait`].
    pub wait_timeout: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            window: 64,
            quarantine: QuarantinePolicy {
                threshold: 2,
                probe_interval: 4,
            },
            seed: 0,
            replicas: crate::ring::DEFAULT_REPLICAS,
            wait_timeout: Duration::from_secs(60),
        }
    }
}

/// Why a router call failed.
#[derive(Debug)]
pub enum RouterError {
    /// A transport failure talking to a shard.
    Io(io::Error),
    /// A codec failure.
    Wire(WireError),
    /// A shard handshake was rejected.
    Handshake(String),
    /// No shard is currently connected and routable.
    NoLiveShards,
    /// The target shard's in-flight window is full; retry after draining.
    Busy,
    /// A shard rejected this specific request.
    Rejected {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The ticket is not in flight (never issued, or already redeemed).
    UnknownTicket(u64),
    /// [`Router::wait`] hit its deadline before the result arrived.
    WaitTimeout(u64),
}

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterError::Io(e) => write!(f, "router i/o error: {e}"),
            RouterError::Wire(e) => write!(f, "router wire error: {e}"),
            RouterError::Handshake(msg) => write!(f, "shard handshake failed: {msg}"),
            RouterError::NoLiveShards => write!(f, "no live shards"),
            RouterError::Busy => write!(f, "shard in-flight window full"),
            RouterError::Rejected { code, message } => {
                write!(f, "shard rejected request ({code}): {message}")
            }
            RouterError::UnknownTicket(t) => write!(f, "unknown ticket {t}"),
            RouterError::WaitTimeout(t) => write!(f, "timed out waiting on ticket {t}"),
        }
    }
}

impl std::error::Error for RouterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RouterError::Io(e) => Some(e),
            RouterError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for RouterError {
    fn from(e: io::Error) -> Self {
        RouterError::Io(e)
    }
}

impl From<WireError> for RouterError {
    fn from(e: WireError) -> Self {
        RouterError::Wire(e)
    }
}

/// A cluster-wide stats snapshot: each shard's own counters plus the
/// merged view ([`RuntimeStats::absorb`] across shards).
#[derive(Debug, Clone)]
pub struct ClusterStats {
    /// `(shard id, that shard's snapshot)`, ascending by shard.
    pub per_shard: Vec<(u32, RuntimeStats)>,
    /// All shards folded together.
    pub merged: RuntimeStats,
}

/// One in-flight submission (kept so a shard death can replay it).
#[derive(Debug, Clone)]
struct Pending {
    shard: u32,
    kernel: Kernel,
    options: JobOptions,
}

/// A non-blocking connection to one shard.
#[derive(Debug)]
struct ShardLink {
    stream: TcpStream,
    version: u16,
    buffer: FrameBuffer,
}

impl ShardLink {
    /// Blocking connect + version handshake, then the stream switches to
    /// non-blocking for the router's pump loops.
    fn connect(addr: SocketAddr) -> Result<Self, RouterError> {
        let mut stream = TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT)?;
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(Some(CONNECT_TIMEOUT))?;
        let hello = encode_request_v(
            &Request::Hello {
                min_version: MIN_SUPPORTED_VERSION,
                max_version: PROTOCOL_VERSION,
            },
            PROTOCOL_VERSION,
        )?;
        write_frame(&mut stream, &hello)?;
        let ack = read_frame(&mut stream)?;
        let version = match decode_response_v(&ack, PROTOCOL_VERSION)? {
            Response::HelloAck { version } => version,
            Response::Error { code, message, .. } => {
                return Err(RouterError::Handshake(format!("{code}: {message}")))
            }
            other => {
                return Err(RouterError::Handshake(format!(
                    "handshake answered with {other:?}"
                )))
            }
        };
        stream.set_read_timeout(None)?;
        stream.set_nonblocking(true)?;
        Ok(ShardLink {
            stream,
            version,
            buffer: FrameBuffer::new(),
        })
    }

    /// Encodes and sends one request, retrying `WouldBlock` briefly.
    fn send(&mut self, request: &Request) -> Result<(), RouterError> {
        let payload = encode_request_v(request, self.version)?;
        let mut framed = Vec::with_capacity(payload.len() + 8);
        write_frame(&mut framed, &payload)?;
        // lint:allow(wall-clock, reason = "send-stall deadline; never feeds a result")
        let deadline = Instant::now() + SEND_TIMEOUT;
        let mut off = 0;
        while off < framed.len() {
            let rest = framed.get(off..).unwrap_or(&[]);
            match (&self.stream).write(rest) {
                Ok(0) => {
                    return Err(RouterError::Io(io::Error::new(
                        ErrorKind::WriteZero,
                        "shard link wrote zero bytes",
                    )))
                }
                Ok(n) => off += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    // lint:allow(wall-clock, reason = "send-stall deadline; never feeds a result")
                    if Instant::now() >= deadline {
                        return Err(RouterError::Io(io::Error::new(
                            ErrorKind::TimedOut,
                            "shard link send stalled",
                        )));
                    }
                    std::thread::sleep(Duration::from_micros(500));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(RouterError::Io(e)),
            }
        }
        Ok(())
    }

    /// Pulls one complete response if the link has one buffered or
    /// immediately readable. `Ok(None)` means "nothing yet"; any `Err`
    /// means the link is dead or corrupt and must be torn down.
    fn try_recv(&mut self) -> Result<Option<Response>, WireError> {
        loop {
            if let Some(payload) = self.buffer.next_frame()? {
                return Ok(Some(decode_response_v(&payload, self.version)?));
            }
            let mut stream = &self.stream;
            match self.buffer.fill_from(&mut stream)? {
                crate::frame::Fill::Bytes(_) => {}
                crate::frame::Fill::WouldBlock => return Ok(None),
                crate::frame::Fill::Eof => {
                    return Err(WireError::Io(io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "shard closed the connection",
                    )))
                }
            }
        }
    }
}

/// The cluster router. Single-threaded by design: every method takes
/// `&mut self`, so there are no locks to order and no poisoning to
/// recover — callers wanting concurrency put a router behind their own
/// mutex or run one per thread.
#[derive(Debug)]
pub struct Router {
    addrs: Vec<SocketAddr>,
    links: BTreeMap<u32, ShardLink>,
    ring: HashRing,
    health: HealthBoard,
    window: usize,
    wait_timeout: Duration,
    next_ticket: u64,
    rr: u64,
    inflight: BTreeMap<u64, Pending>,
    shard_inflight: BTreeMap<u32, usize>,
    done: BTreeMap<u64, WireOutcome>,
    failed: BTreeMap<u64, (ErrorCode, String)>,
    stats_stash: BTreeMap<u64, RuntimeStats>,
    gossip_stash: BTreeMap<u64, Vec<wire::GossipEntry>>,
    cancel_stash: BTreeMap<u64, bool>,
    /// Tickets re-routed after shard deaths (a router-side counter, the
    /// cluster analogue of the runtime's `reroutes`).
    reroutes: u64,
}

impl Router {
    /// Connects to every shard and performs the handshakes. Shard `i` in
    /// `addrs` becomes shard id `i` on the ring. Fails if *no* shard is
    /// reachable; individual unreachable shards start out quarantined.
    pub fn connect(addrs: &[SocketAddr], config: RouterConfig) -> Result<Self, RouterError> {
        if addrs.is_empty() {
            return Err(RouterError::NoLiveShards);
        }
        let shard_ids: Vec<u32> = (0..addrs.len() as u32).collect();
        let mut ring = HashRing::with_replicas(config.replicas);
        for &s in &shard_ids {
            ring.add_shard(s);
        }
        let mut health = HealthBoard::new(config.quarantine, config.seed, shard_ids.clone());
        let mut links = BTreeMap::new();
        for (&shard, &addr) in shard_ids.iter().zip(addrs) {
            match ShardLink::connect(addr) {
                Ok(link) => {
                    links.insert(shard, link);
                }
                Err(_) => {
                    // Walk straight to quarantine: the shard was dead on
                    // arrival, probes will pick it up if it comes back.
                    for _ in 0..config.quarantine.threshold.max(1) {
                        health.record_failure(shard);
                    }
                }
            }
        }
        if links.is_empty() {
            return Err(RouterError::NoLiveShards);
        }
        Ok(Router {
            addrs: addrs.to_vec(),
            links,
            ring,
            health,
            window: config.window.max(1),
            wait_timeout: config.wait_timeout,
            next_ticket: 1, // ticket 0 is the wire's connection-error id
            rr: 0,
            inflight: BTreeMap::new(),
            shard_inflight: BTreeMap::new(),
            done: BTreeMap::new(),
            failed: BTreeMap::new(),
            stats_stash: BTreeMap::new(),
            gossip_stash: BTreeMap::new(),
            cancel_stash: BTreeMap::new(),
            reroutes: 0,
        })
    }

    /// The health board (read-only view for callers and tests).
    #[must_use]
    pub fn health(&self) -> &HealthBoard {
        &self.health
    }

    /// Shards currently connected, ascending.
    #[must_use]
    pub fn connected(&self) -> Vec<u32> {
        self.links.keys().copied().collect()
    }

    /// How many tickets are re-routed so far after shard deaths.
    #[must_use]
    pub fn reroutes(&self) -> u64 {
        self.reroutes
    }

    /// Where a submission would go right now, without sending anything.
    /// `None` when no shard is connected and routable.
    #[must_use]
    pub fn route_for(&self, kernel: &Kernel, options: &JobOptions) -> Option<u32> {
        let keyed = options.seed.is_some() && options.policy != Some(DispatchPolicy::DeadlineAware);
        if keyed {
            let hash = routing_hash(kernel);
            self.ring.route_filtered(hash, |s| self.is_dispatchable(s))
        } else {
            // Round-robin preview: the shard the next unkeyed submission
            // would take (submit advances the cursor).
            let candidates = self.dispatchable();
            let n = candidates.len() as u64;
            if n == 0 {
                return None;
            }
            candidates.get((self.rr % n) as usize).copied()
        }
    }

    /// Submits a kernel; returns its ticket. The shard choice is
    /// canonical-key consistent hashing (see the module docs), the window
    /// bound is enforced with one drain attempt before [`RouterError::Busy`].
    pub fn submit(&mut self, kernel: Kernel, options: JobOptions) -> Result<u64, RouterError> {
        let shard = self
            .route_for(&kernel, &options)
            .ok_or(RouterError::NoLiveShards)?;
        if self.shard_load(shard) >= self.window {
            self.drain_shard(shard)?;
            if self.shard_load(shard) >= self.window {
                return Err(RouterError::Busy);
            }
        }
        self.dispatch(shard, kernel, options)
    }

    /// Like [`Router::submit`], but pumps the target shard until its
    /// window has room instead of failing with `Busy`.
    pub fn submit_blocking(
        &mut self,
        kernel: Kernel,
        options: JobOptions,
    ) -> Result<u64, RouterError> {
        loop {
            match self.submit(kernel.clone(), options) {
                Err(RouterError::Busy) => {
                    let shard = self
                        .route_for(&kernel, &options)
                        .ok_or(RouterError::NoLiveShards)?;
                    self.pump_shard(shard, PUMP_SLICE)?;
                }
                other => return other,
            }
        }
    }

    /// Blocks until `ticket`'s outcome arrives (or the configured wait
    /// timeout passes), pumping the owning shard and re-routing through
    /// any shard deaths along the way.
    pub fn wait(&mut self, ticket: u64) -> Result<WireOutcome, RouterError> {
        // lint:allow(wall-clock, reason = "wait-deadline accounting; never feeds a result")
        let deadline = Instant::now() + self.wait_timeout;
        loop {
            if let Some(outcome) = self.done.remove(&ticket) {
                return Ok(outcome);
            }
            if let Some((code, message)) = self.failed.remove(&ticket) {
                return Err(RouterError::Rejected { code, message });
            }
            let shard = match self.inflight.get(&ticket) {
                Some(p) => p.shard,
                None => return Err(RouterError::UnknownTicket(ticket)),
            };
            // lint:allow(wall-clock, reason = "wait-deadline accounting; never feeds a result")
            if Instant::now() >= deadline {
                return Err(RouterError::WaitTimeout(ticket));
            }
            self.pump_shard(shard, PUMP_SLICE)?;
        }
    }

    /// Requests cancellation of an in-flight ticket; `Ok(true)` if the
    /// cancel landed before the job finished.
    pub fn cancel(&mut self, ticket: u64) -> Result<bool, RouterError> {
        let shard = match self.inflight.get(&ticket) {
            Some(p) => p.shard,
            None => return Ok(false), // already settled
        };
        let sent = self.send_to(shard, &Request::Cancel { request_id: ticket });
        if sent.is_err() {
            // The shard died; the re-route already replayed the job.
            return Ok(false);
        }
        // lint:allow(wall-clock, reason = "wait-deadline accounting; never feeds a result")
        let deadline = Instant::now() + self.wait_timeout;
        loop {
            if let Some(cancelled) = self.cancel_stash.remove(&ticket) {
                return Ok(cancelled);
            }
            if self.done.contains_key(&ticket) || self.failed.contains_key(&ticket) {
                return Ok(false);
            }
            // lint:allow(wall-clock, reason = "wait-deadline accounting; never feeds a result")
            if Instant::now() >= deadline {
                return Err(RouterError::WaitTimeout(ticket));
            }
            self.pump_shard(shard, PUMP_SLICE)?;
        }
    }

    /// One heartbeat: advances the health clock and probes quarantined
    /// shards whose deterministic phase is due (a probe is a reconnect
    /// plus handshake; success lifts the quarantine).
    ///
    /// Shards that lost their link without reaching the quarantine
    /// threshold are probed every tick: they are still nominally
    /// routable, so the sooner the link is back the better.
    pub fn heartbeat(&mut self) {
        let mut due = self.health.tick();
        for shard in 0..self.addrs.len() as u32 {
            if !self.links.contains_key(&shard)
                && self.health.is_routable(shard)
                && !due.contains(&shard)
            {
                due.push(shard);
            }
        }
        for shard in due {
            let Some(&addr) = self.addrs.get(shard as usize) else {
                continue;
            };
            match ShardLink::connect(addr) {
                Ok(link) => {
                    self.links.insert(shard, link);
                    self.health.record_success(shard);
                }
                Err(_) => self.health.record_failure(shard),
            }
        }
    }

    /// One gossip round: sends this router's health view to every
    /// connected v5 shard and merges their acks (higher epoch wins).
    /// Pre-v5 shards are skipped — gossip is additive, not load-bearing.
    pub fn gossip_round(&mut self) -> Result<(), RouterError> {
        let entries = self.health.to_gossip();
        let shards: Vec<u32> = self
            .links
            .iter()
            .filter(|(_, l)| l.version >= 5)
            .map(|(&s, _)| s)
            .collect();
        for shard in shards {
            let ticket = self.alloc_ticket();
            let request = Request::Gossip {
                request_id: ticket,
                origin: u64::MAX,
                entries: entries.clone(),
            };
            if self.send_to(shard, &request).is_err() {
                continue; // shard down; re-route already handled it
            }
            // lint:allow(wall-clock, reason = "gossip-round deadline; never feeds a result")
            let deadline = Instant::now() + SEND_TIMEOUT;
            loop {
                if let Some(acked) = self.gossip_stash.remove(&ticket) {
                    for entry in &acked {
                        self.health.merge_remote(entry);
                    }
                    break;
                }
                // lint:allow(wall-clock, reason = "gossip-round deadline; never feeds a result")
                if Instant::now() >= deadline || !self.links.contains_key(&shard) {
                    break;
                }
                self.pump_shard(shard, PUMP_SLICE)?;
            }
        }
        Ok(())
    }

    /// Fetches every connected shard's stats and the merged cluster view.
    pub fn stats(&mut self) -> Result<ClusterStats, RouterError> {
        let shards: Vec<u32> = self.links.keys().copied().collect();
        let mut per_shard = Vec::new();
        let mut merged = RuntimeStats::default();
        for shard in shards {
            let ticket = self.alloc_ticket();
            if self
                .send_to(shard, &Request::GetStats { request_id: ticket })
                .is_err()
            {
                continue;
            }
            // lint:allow(wall-clock, reason = "stats-poll deadline; never feeds a result")
            let deadline = Instant::now() + SEND_TIMEOUT;
            loop {
                if let Some(stats) = self.stats_stash.remove(&ticket) {
                    merged.absorb(&stats);
                    per_shard.push((shard, stats));
                    break;
                }
                // lint:allow(wall-clock, reason = "stats-poll deadline; never feeds a result")
                if Instant::now() >= deadline || !self.links.contains_key(&shard) {
                    break;
                }
                self.pump_shard(shard, PUMP_SLICE)?;
            }
        }
        Ok(ClusterStats { per_shard, merged })
    }

    /// In-flight submissions right now (all shards).
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    // ---- internals ------------------------------------------------------

    fn alloc_ticket(&mut self) -> u64 {
        let t = self.next_ticket;
        self.next_ticket += 1;
        t
    }

    /// Connected and not quarantined.
    fn is_dispatchable(&self, shard: u32) -> bool {
        self.links.contains_key(&shard) && self.health.is_routable(shard)
    }

    fn dispatchable(&self) -> Vec<u32> {
        self.links
            .keys()
            .copied()
            .filter(|&s| self.health.is_routable(s))
            .collect()
    }

    fn shard_load(&self, shard: u32) -> usize {
        self.shard_inflight.get(&shard).copied().unwrap_or(0)
    }

    fn dispatch(
        &mut self,
        shard: u32,
        kernel: Kernel,
        options: JobOptions,
    ) -> Result<u64, RouterError> {
        let ticket = self.alloc_ticket();
        self.inflight.insert(
            ticket,
            Pending {
                shard,
                kernel: kernel.clone(),
                options,
            },
        );
        *self.shard_inflight.entry(shard).or_insert(0) += 1;
        self.rr += 1;
        let request = submit_request(ticket, &kernel, options);
        match self.send_to(shard, &request) {
            Ok(()) => Ok(ticket),
            Err(_) if self.inflight.contains_key(&ticket) => {
                // send_to tore the shard down and the re-route replayed
                // this ticket elsewhere; it is still live.
                Ok(ticket)
            }
            Err(_) => {
                // Re-route found no live shard; surface the stashed
                // failure through the normal wait path.
                Ok(ticket)
            }
        }
    }

    /// Sends on a shard's link; a dead link triggers the shard-down path
    /// (health demotion plus re-route of its in-flight tickets).
    fn send_to(&mut self, shard: u32, request: &Request) -> Result<(), RouterError> {
        let Some(link) = self.links.get_mut(&shard) else {
            return Err(RouterError::NoLiveShards);
        };
        match link.send(request) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.on_shard_down(shard);
                Err(e)
            }
        }
    }

    /// Drains buffered responses from one shard without waiting.
    fn drain_shard(&mut self, shard: u32) -> Result<bool, RouterError> {
        let mut progressed = false;
        loop {
            let step = match self.links.get_mut(&shard) {
                None => return Ok(progressed),
                Some(link) => link.try_recv(),
            };
            match step {
                Ok(Some(response)) => {
                    progressed = true;
                    self.handle_response(shard, response);
                }
                Ok(None) => return Ok(progressed),
                Err(_) => {
                    self.on_shard_down(shard);
                    return Ok(progressed);
                }
            }
        }
    }

    /// Drains one shard, parking up to `slice` for readability first if
    /// nothing is buffered.
    fn pump_shard(&mut self, shard: u32, slice: Duration) -> Result<bool, RouterError> {
        if self.drain_shard(shard)? {
            return Ok(true);
        }
        let readable = match self.links.get(&shard) {
            None => return Ok(false),
            Some(link) => wait_readable(&link.stream, slice),
        };
        match readable {
            Ok(true) => self.drain_shard(shard),
            Ok(false) => Ok(false),
            Err(_) => {
                self.on_shard_down(shard);
                Ok(false)
            }
        }
    }

    fn handle_response(&mut self, shard: u32, response: Response) {
        match response {
            Response::JobResult {
                request_id,
                outcome,
            } => {
                if let Some(pending) = self.inflight.remove(&request_id) {
                    self.dec_load(pending.shard);
                    self.done.insert(request_id, outcome);
                    self.health.record_success(shard);
                }
            }
            Response::Error {
                request_id,
                code,
                message,
            } => {
                if request_id == 0 {
                    // Connection-level error: the shard is telling us the
                    // link is done (shutting down, malformed stream).
                    self.on_shard_down(shard);
                } else if code == ErrorCode::ShuttingDown && self.inflight.contains_key(&request_id)
                {
                    // The shard is draining and refused the submission; it
                    // will refuse everything else too. Tear it down so the
                    // re-route replays this ticket (and its siblings) on a
                    // live shard — a draining shard is not a job failure.
                    self.on_shard_down(shard);
                } else if let Some(pending) = self.inflight.remove(&request_id) {
                    self.dec_load(pending.shard);
                    self.failed.insert(request_id, (code, message));
                }
            }
            Response::Stats { request_id, stats } => {
                self.stats_stash.insert(request_id, stats);
            }
            Response::GossipAck {
                request_id,
                entries,
            } => {
                self.gossip_stash.insert(request_id, entries);
            }
            Response::CancelResult {
                request_id,
                cancelled,
            } => {
                self.cancel_stash.insert(request_id, cancelled);
            }
            Response::Pong { .. } | Response::HelloAck { .. } => {}
        }
    }

    fn dec_load(&mut self, shard: u32) {
        if let Some(load) = self.shard_inflight.get_mut(&shard) {
            *load = load.saturating_sub(1);
        }
    }

    /// Tears down a dead shard: drop the link, demote its health, and
    /// replay every in-flight ticket it carried onto the next live shard
    /// on the ring (same tickets, so callers' waits keep working).
    fn on_shard_down(&mut self, shard: u32) {
        self.links.remove(&shard);
        self.health.record_failure(shard);
        self.shard_inflight.insert(shard, 0);
        let mut orphans: Vec<u64> = self
            .inflight
            .iter()
            .filter(|(_, p)| p.shard == shard)
            .map(|(&t, _)| t)
            .collect();
        while let Some(ticket) = orphans.pop() {
            let Some(pending) = self.inflight.get(&ticket).cloned() else {
                continue;
            };
            let target = self.failover_target(&pending);
            let Some(target) = target else {
                self.inflight.remove(&ticket);
                self.failed.insert(
                    ticket,
                    (
                        ErrorCode::Internal,
                        "no live shards to re-route the job to".to_owned(),
                    ),
                );
                continue;
            };
            if let Some(p) = self.inflight.get_mut(&ticket) {
                p.shard = target;
            }
            *self.shard_inflight.entry(target).or_insert(0) += 1;
            self.reroutes += 1;
            let request = submit_request(ticket, &pending.kernel, pending.options);
            let send = match self.links.get_mut(&target) {
                Some(link) => link.send(&request),
                None => Err(RouterError::NoLiveShards),
            };
            if send.is_err() {
                // The failover target died too: demote it and sweep its
                // tickets (including this one) into the worklist.
                self.links.remove(&target);
                self.health.record_failure(target);
                self.shard_inflight.insert(target, 0);
                for (&t, p) in &self.inflight {
                    if p.shard == target && !orphans.contains(&t) {
                        orphans.push(t);
                    }
                }
            }
        }
    }

    /// The next shard for a replayed ticket: keyed jobs walk the ring
    /// past dead shards, unkeyed jobs take the least-loaded live shard.
    fn failover_target(&self, pending: &Pending) -> Option<u32> {
        let keyed = pending.options.seed.is_some()
            && pending.options.policy != Some(DispatchPolicy::DeadlineAware);
        if keyed {
            let hash = routing_hash(&pending.kernel);
            self.ring.route_filtered(hash, |s| self.is_dispatchable(s))
        } else {
            self.dispatchable()
                .into_iter()
                .min_by_key(|&s| self.shard_load(s))
        }
    }
}

/// Builds the wire `Submit` for a ticket (used for both first dispatch
/// and failover replays — identical bytes either way, which is what
/// keeps re-routed results identical too).
fn submit_request(ticket: u64, kernel: &Kernel, options: JobOptions) -> Request {
    Request::Submit {
        request_id: ticket,
        timeout_ms: options
            .timeout
            .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX)),
        seed: options.seed,
        policy: options.policy,
        kernel: kernel.clone(),
    }
}
