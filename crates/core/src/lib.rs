//! # `rebooting` — three post-von-Neumann computing models, executable
//!
//! A from-scratch Rust reproduction of *"Rebooting Our Computing Models"*
//! (Cadareanu et al., DATE 2019): the paper's three beyond-CMOS computing
//! paradigms, each built as a complete simulated system.
//!
//! | Paper section | Paradigm | Workspace crates |
//! |---------------|----------|------------------|
//! | §II | Quantum computing as an accelerator | [`quantum`], [`accel`] |
//! | §III | Weakly coupled VO₂ oscillators | [`device`], [`osc`], [`vision`] |
//! | §IV | Digital memcomputing machines | [`mem`] |
//!
//! This crate re-exports the workspace and provides a [`prelude`].
//!
//! # Example
//!
//! One line from each paradigm:
//!
//! ```
//! use rebooting::prelude::*;
//!
//! // §II: a Bell pair on the quantum accelerator stack.
//! let mut circuit = Circuit::new(2)?;
//! circuit.h(0)?.cx(0, 1)?;
//! let state = circuit.run(StateVector::zero(2))?;
//! assert!((state.probability(0b11)? - 0.5).abs() < 1e-12);
//!
//! // §III: the oscillator fabric's input range.
//! let params = OscillatorParams::default();
//! let (lo, hi) = params.oscillating_vgs_range(100)?;
//! assert!(hi.0 > lo.0);
//!
//! // §IV: a memcomputing solve of a tiny SAT instance.
//! let formula = mem::dimacs::parse("p cnf 2 2\n1 -2 0\n2 0\n")?;
//! let outcome = DmmSolver::new(DmmParams::default()).solve(&formula, 1)?;
//! assert!(outcome.solution.is_some());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// Deliberate style choices for numerical simulation code: `!(x > 0.0)`
// rejects NaN alongside non-positive values, and indexed loops mirror the
// mathematics they implement (state-vector strides, lattice walks).
#![allow(
    clippy::neg_cmp_op_on_partial_ord,
    clippy::needless_range_loop,
    clippy::manual_is_multiple_of,
    clippy::field_reassign_with_default
)]
pub use accel;
pub use device;
pub use mem;
pub use numerics;
pub use osc;
pub use quantum;
pub use runtime;
pub use vision;

/// The most commonly used types across all three paradigms.
pub mod prelude {
    pub use accel::accelerator::{Accelerator, CpuBackend};
    pub use accel::host::{DispatchPolicy, HostRuntime};
    pub use accel::kernel::{Kernel, KernelResult};
    pub use device::units::{Farads, Hertz, Joules, Ohms, Seconds, Volts, Watts};
    pub use mem::assignment::Assignment;
    pub use mem::cnf::{Clause, Formula, Literal};
    pub use mem::dmm::{DmmParams, DmmSolver};
    pub use mem::walksat::{WalkSat, WalkSatParams};
    pub use numerics::Complex;
    pub use osc::norms::{NormRegime, OscillatorDistance};
    pub use osc::pair::{CoupledPair, PairConfig};
    pub use osc::relaxation::{OscillatorParams, SingleOscillator};
    pub use quantum::circuit::Circuit;
    pub use quantum::gate::Gate;
    pub use quantum::state::StateVector;
    pub use runtime::{JobOptions, JobOutcome, Runtime, RuntimeConfig, RuntimeStats};
    pub use vision::fast::{FastDetector, FastParams};
    pub use vision::image::GrayImage;
    pub use vision::synth::SceneBuilder;
}

/// Version of the reproduction, mirroring the crate version.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

/// The paper this workspace reproduces.
pub const PAPER: &str =
    "Cadareanu et al., \"Rebooting Our Computing Models\", DATE 2019, pp. 1469-1476";

#[cfg(test)]
mod tests {
    #[test]
    fn version_nonempty() {
        assert!(!super::VERSION.is_empty());
        assert!(super::PAPER.contains("DATE 2019"));
    }

    #[test]
    fn prelude_usable() {
        use super::prelude::*;
        let c = Circuit::new(1).unwrap();
        assert_eq!(c.n_qubits(), 1);
        let v = Volts(1.0) + Volts(2.0);
        assert_eq!(v, Volts(3.0));
    }
}
