//! Offline stand-in for the `criterion.rs` benchmark harness.
//!
//! The workspace builds with no network access, so the real crates.io
//! `criterion` cannot be a dependency. This crate implements the small API
//! surface the `bench` crate uses — [`Criterion`], [`Bencher`],
//! [`black_box`], [`BatchSize`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — with plain wall-clock timing and a
//! one-line-per-benchmark report. It is intentionally simple: no warm-up
//! modelling, no statistics beyond min/mean, no HTML reports. Swap the
//! workspace dependency back to crates.io `criterion` for publication-grade
//! measurements.
//!
//! # Example
//!
//! ```
//! use criterion::{black_box, Criterion};
//!
//! let mut c = Criterion::default().sample_size(10);
//! c.bench_function("sum", |b| {
//!     b.iter(|| black_box((0..100u64).sum::<u64>()))
//! });
//! ```

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from deleting benchmark
/// bodies whose results are otherwise unused.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The shim times each routine
/// invocation individually, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input for every routine call.
    PerIteration,
}

/// Times one benchmark body over the configured number of samples.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Collected per-sample durations, read back by [`Criterion`].
    timings: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            timings: Vec::with_capacity(samples),
        }
    }

    /// Runs `routine` once per sample, timing each call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed call to warm caches and lazy statics.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.timings.push(start.elapsed());
        }
    }

    /// Runs `setup` untimed before each timed `routine` call.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.timings.push(start.elapsed());
        }
    }
}

/// The benchmark driver: configuration plus the reporting loop.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark and prints a `name  mean  min` report line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        let report = summarize(&bencher.timings);
        println!("bench: {name:<48} {report}");
        self
    }
}

fn summarize(timings: &[Duration]) -> String {
    if timings.is_empty() {
        return "no samples".into();
    }
    let total: Duration = timings.iter().sum();
    let mean = total / timings.len() as u32;
    let min = timings.iter().min().copied().unwrap_or_default();
    format!(
        "mean {:>12} min {:>12} ({} samples)",
        format_duration(mean),
        format_duration(min),
        timings.len()
    )
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group as a function running each target in order.
///
/// Supports both criterion forms:
/// `criterion_group!(benches, f, g)` and
/// `criterion_group! { name = benches; config = ...; targets = f, g }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default().sample_size(5);
        let mut ran = 0u32;
        c.bench_function("trivial", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        // 5 timed + 1 warm-up.
        assert_eq!(ran, 6);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut b = Bencher::new(4);
        let mut setups = 0u32;
        b.iter_batched(
            || {
                setups += 1;
                setups
            },
            |x| x * 2,
            BatchSize::LargeInput,
        );
        assert_eq!(setups, 5);
        assert_eq!(b.timings.len(), 4);
    }

    #[test]
    fn durations_format_by_scale() {
        assert!(format_duration(Duration::from_nanos(10)).contains("ns"));
        assert!(format_duration(Duration::from_micros(10)).contains("µs"));
        assert!(format_duration(Duration::from_millis(10)).contains("ms"));
        assert!(format_duration(Duration::from_secs(2)).contains(" s"));
    }

    criterion_group! {
        name = macro_group;
        config = Criterion::default().sample_size(2);
        targets = noop_bench
    }

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_macro_expands_to_runnable_fn() {
        macro_group();
    }
}
