//! Per-operation CMOS energy and power model.
//!
//! The paper's §III-B quantifies its oscillator advantage against "the
//! corresponding CMOS implementation at the 32 nm process node" (3 mW vs
//! 0.936 mW). That comparison needs an energy model of a conventional
//! digital implementation; this module provides a first-order
//! activity × energy-per-op model with representative 32 nm constants and
//! simple Dennard-style scaling to other nodes.
//!
//! The absolute constants are of the textbook order of magnitude (Horowitz,
//! ISSCC 2014 "Computing's energy problem" gives ~0.03 pJ for an 8-bit add
//! at 45 nm); what the reproduction relies on is *relative* energy between
//! the digital datapath and the oscillator block, which is robust to the
//! exact constants chosen.
//!
//! # Example
//!
//! ```
//! use device::cmos::{CmosEnergyModel, Op, OpCounts, ProcessNode};
//!
//! let model = CmosEnergyModel::new(ProcessNode::Nm32);
//! let mut counts = OpCounts::new();
//! counts.add(Op::Add8, 16);       // 16 subtractions per FAST pixel test
//! counts.add(Op::Compare8, 32);
//! let energy = model.energy(&counts);
//! assert!(energy.0 > 0.0);
//! ```

use crate::units::{Joules, Seconds, Watts};
use std::collections::BTreeMap;

/// Technology node for energy scaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProcessNode {
    /// 65 nm planar.
    Nm65,
    /// 45 nm planar.
    Nm45,
    /// 32 nm planar — the node named in the paper's comparison.
    Nm32,
    /// 22 nm.
    Nm22,
}

impl ProcessNode {
    /// Feature size in nanometres.
    #[must_use]
    pub fn nanometres(self) -> f64 {
        match self {
            ProcessNode::Nm65 => 65.0,
            ProcessNode::Nm45 => 45.0,
            ProcessNode::Nm32 => 32.0,
            ProcessNode::Nm22 => 22.0,
        }
    }

    /// Energy scale factor relative to the 45 nm reference node.
    ///
    /// First-order: switching energy `C·V²` scales roughly with feature
    /// size squared in the Dennard regime.
    #[must_use]
    pub fn energy_scale(self) -> f64 {
        let l = self.nanometres() / 45.0;
        l * l
    }
}

impl std::fmt::Display for ProcessNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} nm", self.nanometres())
    }
}

/// Digital operation classes with distinct energy costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Op {
    /// 8-bit integer add/subtract.
    Add8,
    /// 32-bit integer add/subtract.
    Add32,
    /// 8-bit magnitude comparison.
    Compare8,
    /// 8-bit absolute difference (subtract + conditional negate).
    AbsDiff8,
    /// 8-bit multiply.
    Mul8,
    /// 32-bit multiply.
    Mul32,
    /// Register-file read/write (32 bit).
    RegAccess,
    /// Small (8 KiB-class) SRAM access (32-bit word).
    SramAccess,
    /// Static 2-input logic gate evaluation (NAND-equivalent).
    LogicGate,
    /// Flip-flop clock event.
    FlipFlop,
}

impl Op {
    /// All operation classes, in a stable order.
    pub const ALL: [Op; 10] = [
        Op::Add8,
        Op::Add32,
        Op::Compare8,
        Op::AbsDiff8,
        Op::Mul8,
        Op::Mul32,
        Op::RegAccess,
        Op::SramAccess,
        Op::LogicGate,
        Op::FlipFlop,
    ];

    /// Reference energy per operation at 45 nm, in joules.
    #[must_use]
    pub fn reference_energy(self) -> f64 {
        match self {
            Op::Add8 => 0.03e-12,
            Op::Add32 => 0.1e-12,
            Op::Compare8 => 0.025e-12,
            Op::AbsDiff8 => 0.05e-12,
            Op::Mul8 => 0.2e-12,
            Op::Mul32 => 3.1e-12,
            Op::RegAccess => 0.1e-12,
            Op::SramAccess => 5.0e-12,
            Op::LogicGate => 0.003e-12,
            Op::FlipFlop => 0.01e-12,
        }
    }
}

/// A multiset of operations, the "activity trace" of a digital block.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpCounts(BTreeMap<Op, u64>);

impl OpCounts {
    /// Creates an empty count set.
    #[must_use]
    pub fn new() -> Self {
        OpCounts(BTreeMap::new())
    }

    /// Adds `n` occurrences of `op`.
    pub fn add(&mut self, op: Op, n: u64) {
        *self.0.entry(op).or_insert(0) += n;
    }

    /// Count for one operation class.
    #[must_use]
    pub fn count(&self, op: Op) -> u64 {
        self.0.get(&op).copied().unwrap_or(0)
    }

    /// Total operations of all classes.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.0.values().sum()
    }

    /// Iterates `(op, count)` pairs in stable order.
    pub fn iter(&self) -> impl Iterator<Item = (Op, u64)> + '_ {
        self.0.iter().map(|(&op, &n)| (op, n))
    }

    /// Merges another count set into this one.
    pub fn merge(&mut self, other: &OpCounts) {
        for (op, n) in other.iter() {
            self.add(op, n);
        }
    }

    /// Scales every count by `factor` (e.g. per-pixel counts → per-frame).
    #[must_use]
    pub fn scaled(&self, factor: u64) -> OpCounts {
        let mut out = OpCounts::new();
        for (op, n) in self.iter() {
            out.add(op, n * factor);
        }
        out
    }
}

impl Extend<(Op, u64)> for OpCounts {
    fn extend<I: IntoIterator<Item = (Op, u64)>>(&mut self, iter: I) {
        for (op, n) in iter {
            self.add(op, n);
        }
    }
}

impl FromIterator<(Op, u64)> for OpCounts {
    fn from_iter<I: IntoIterator<Item = (Op, u64)>>(iter: I) -> Self {
        let mut counts = OpCounts::new();
        counts.extend(iter);
        counts
    }
}

/// Energy/power model for a given technology node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CmosEnergyModel {
    node: ProcessNode,
    /// Fraction of dynamic power added as static (leakage) overhead.
    pub leakage_fraction: f64,
}

impl CmosEnergyModel {
    /// Creates the model at `node` with a default 20 % leakage overhead
    /// (typical for 32 nm-class logic).
    #[must_use]
    pub fn new(node: ProcessNode) -> Self {
        CmosEnergyModel {
            node,
            leakage_fraction: 0.2,
        }
    }

    /// The technology node.
    #[must_use]
    pub fn node(&self) -> ProcessNode {
        self.node
    }

    /// Energy of a single operation at this node.
    #[must_use]
    pub fn energy_of(&self, op: Op) -> Joules {
        Joules(op.reference_energy() * self.node.energy_scale())
    }

    /// Total dynamic energy of an activity trace.
    #[must_use]
    pub fn energy(&self, counts: &OpCounts) -> Joules {
        let dynamic: f64 = counts
            .iter()
            .map(|(op, n)| self.energy_of(op).0 * n as f64)
            .sum();
        Joules(dynamic)
    }

    /// Average power when the activity trace `counts` repeats every
    /// `period` (e.g. one video frame), including the leakage overhead.
    ///
    /// # Panics
    ///
    /// Debug-panics when `period` is non-positive.
    #[must_use]
    pub fn average_power(&self, counts: &OpCounts, period: Seconds) -> Watts {
        debug_assert!(period.0 > 0.0);
        let dynamic = self.energy(counts).0 / period.0;
        Watts(dynamic * (1.0 + self.leakage_fraction))
    }
}

/// A clocked, pipelined hardware accelerator built from a [`CmosEnergyModel`].
///
/// A synchronous datapath pays for more than its switched operations: the
/// clock tree and every pipeline register toggle on *every* cycle. This
/// wrapper models a dedicated engine that retires one counted operation per
/// cycle — so the equivalent clock frequency follows from the activity trace
/// and the deadline — and charges the per-cycle sequential overhead on top
/// of the operation energy. This is the "corresponding CMOS implementation"
/// side of the paper's §III-B power comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelinedDatapath {
    /// Combinational/arithmetic energy model.
    pub model: CmosEnergyModel,
    /// Pipeline + control flip-flops clocked every cycle.
    pub pipeline_flipflops: u64,
    /// Clock-tree buffer load, in NAND-equivalent gates toggling per cycle.
    pub clock_tree_gates: u64,
}

impl PipelinedDatapath {
    /// A representative small vision engine (FAST-class) at the given node:
    /// ~2000 pipeline/control flip-flops and ~1000 gate-equivalents of clock
    /// tree.
    #[must_use]
    pub fn vision_engine(node: ProcessNode) -> Self {
        PipelinedDatapath {
            model: CmosEnergyModel::new(node),
            pipeline_flipflops: 2000,
            clock_tree_gates: 1000,
        }
    }

    /// The clock frequency needed to retire `counts.total()` operations
    /// (one per cycle) within `period`.
    #[must_use]
    pub fn required_clock(&self, counts: &OpCounts, period: Seconds) -> f64 {
        debug_assert!(period.0 > 0.0);
        counts.total() as f64 / period.0
    }

    /// Average power of the engine completing the activity trace every
    /// `period`: operation energy plus per-cycle sequential overhead, plus
    /// the energy model's leakage fraction.
    ///
    /// # Panics
    ///
    /// Debug-panics when `period` is non-positive.
    #[must_use]
    pub fn average_power(&self, counts: &OpCounts, period: Seconds) -> Watts {
        let f_clk = self.required_clock(counts, period);
        let per_cycle = self.pipeline_flipflops as f64 * self.model.energy_of(Op::FlipFlop).0
            + self.clock_tree_gates as f64 * self.model.energy_of(Op::LogicGate).0;
        let overhead = f_clk * per_cycle;
        let ops = self.model.energy(counts).0 / period.0;
        Watts((ops + overhead) * (1.0 + self.model.leakage_fraction))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_scaling_monotone() {
        assert!(ProcessNode::Nm22.energy_scale() < ProcessNode::Nm32.energy_scale());
        assert!(ProcessNode::Nm32.energy_scale() < ProcessNode::Nm45.energy_scale());
        assert!(ProcessNode::Nm45.energy_scale() < ProcessNode::Nm65.energy_scale());
        assert!((ProcessNode::Nm45.energy_scale() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn op_counts_accumulate() {
        let mut c = OpCounts::new();
        c.add(Op::Add8, 3);
        c.add(Op::Add8, 2);
        c.add(Op::Mul8, 1);
        assert_eq!(c.count(Op::Add8), 5);
        assert_eq!(c.count(Op::Mul8), 1);
        assert_eq!(c.count(Op::SramAccess), 0);
        assert_eq!(c.total(), 6);
    }

    #[test]
    fn op_counts_merge_and_scale() {
        let mut a = OpCounts::new();
        a.add(Op::Add8, 2);
        let mut b = OpCounts::new();
        b.add(Op::Add8, 3);
        b.add(Op::Compare8, 1);
        a.merge(&b);
        assert_eq!(a.count(Op::Add8), 5);
        let scaled = a.scaled(10);
        assert_eq!(scaled.count(Op::Add8), 50);
        assert_eq!(scaled.count(Op::Compare8), 10);
    }

    #[test]
    fn op_counts_from_iterator() {
        let c: OpCounts = [(Op::Mul8, 4), (Op::Add8, 2)].into_iter().collect();
        assert_eq!(c.total(), 6);
    }

    #[test]
    fn energy_linear_in_counts() {
        let model = CmosEnergyModel::new(ProcessNode::Nm32);
        let mut one = OpCounts::new();
        one.add(Op::Add32, 1);
        let mut many = OpCounts::new();
        many.add(Op::Add32, 1000);
        let e1 = model.energy(&one);
        let e1000 = model.energy(&many);
        assert!((e1000.0 / e1.0 - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn mul_costs_more_than_add() {
        let model = CmosEnergyModel::new(ProcessNode::Nm32);
        assert!(model.energy_of(Op::Mul8).0 > model.energy_of(Op::Add8).0);
        assert!(model.energy_of(Op::Mul32).0 > model.energy_of(Op::Add32).0);
    }

    #[test]
    fn sram_dominates_logic() {
        let model = CmosEnergyModel::new(ProcessNode::Nm32);
        assert!(model.energy_of(Op::SramAccess).0 > 10.0 * model.energy_of(Op::Add8).0);
    }

    #[test]
    fn average_power_includes_leakage() {
        let model = CmosEnergyModel::new(ProcessNode::Nm32);
        let mut counts = OpCounts::new();
        counts.add(Op::Add32, 1_000_000);
        let p = model.average_power(&counts, Seconds(1e-3));
        let dynamic_only = model.energy(&counts).0 / 1e-3;
        assert!((p.0 / dynamic_only - 1.2).abs() < 1e-12);
    }

    #[test]
    fn energy_at_smaller_node_is_lower() {
        let big = CmosEnergyModel::new(ProcessNode::Nm45);
        let small = CmosEnergyModel::new(ProcessNode::Nm22);
        assert!(small.energy_of(Op::Add8).0 < big.energy_of(Op::Add8).0);
    }

    #[test]
    fn node_display() {
        assert_eq!(ProcessNode::Nm32.to_string(), "32 nm");
    }

    #[test]
    fn pipelined_datapath_exceeds_bare_ops_power() {
        let engine = PipelinedDatapath::vision_engine(ProcessNode::Nm32);
        let mut counts = OpCounts::new();
        counts.add(Op::Compare8, 100_000);
        let period = Seconds(1e-3);
        let bare = engine.model.average_power(&counts, period);
        let full = engine.average_power(&counts, period);
        assert!(
            full.0 > bare.0,
            "overhead missing: {} vs {}",
            full.0,
            bare.0
        );
    }

    #[test]
    fn pipelined_datapath_clock_follows_throughput() {
        let engine = PipelinedDatapath::vision_engine(ProcessNode::Nm32);
        let mut counts = OpCounts::new();
        counts.add(Op::Add8, 1_000_000);
        assert_eq!(engine.required_clock(&counts, Seconds(1.0)), 1e6);
        assert_eq!(engine.required_clock(&counts, Seconds(0.5)), 2e6);
    }

    #[test]
    fn pipelined_datapath_power_scales_with_clock() {
        let engine = PipelinedDatapath::vision_engine(ProcessNode::Nm32);
        let mut counts = OpCounts::new();
        counts.add(Op::Add8, 1_000_000);
        let slow = engine.average_power(&counts, Seconds(1.0));
        let fast = engine.average_power(&counts, Seconds(0.1));
        assert!((fast.0 / slow.0 - 10.0).abs() < 1e-9);
    }
}
