//! Compact device and energy models for the *Rebooting Our Computing Models*
//! reproduction.
//!
//! The paper's §III builds its oscillator computing fabric from three
//! physical ingredients, each modelled here:
//!
//! * [`vo2`] — the vanadium-dioxide insulator-to-metal-transition (IMT)
//!   device: a two-state resistor with a hysteretic switching window, which
//!   produces relaxation oscillations when loaded by a series resistance.
//! * [`mosfet`] — a square-law NMOS transistor used as the tunable series
//!   resistance of the 1T1R oscillator cell (the gate voltage `V_gs` is the
//!   *input encoding* of the oscillator computing model).
//! * [`passive`] — resistors, capacitors, and the RC coupling network that
//!   links two oscillators.
//!
//! Two more modules support the paper's comparisons:
//!
//! * [`cmos`] — a per-operation energy/power model of a conventional CMOS
//!   implementation at a 32 nm-like node, used for the paper's
//!   "0.936 mW vs 3 mW" corner-detection comparison.
//! * [`noise`] — seeded Gaussian/uniform noise sources for the robustness
//!   experiments of §IV.
//!
//! Physical quantities use the newtypes in [`units`] so a conductance can
//! never be passed where a capacitance is expected.
//!
//! # Example
//!
//! ```
//! use device::units::Volts;
//! use device::vo2::{Vo2Device, Vo2Params};
//!
//! let mut dev = Vo2Device::new(Vo2Params::default());
//! // Below the insulator→metal threshold the device stays insulating.
//! dev.update(Volts(0.1));
//! assert!(!dev.is_metallic());
//! // Above it, the device switches metallic…
//! dev.update(Volts(5.0));
//! assert!(dev.is_metallic());
//! // …and stays metallic until the voltage falls below the hold voltage
//! // (hysteresis).
//! dev.update(Volts(0.7));
//! assert!(dev.is_metallic());
//! dev.update(Volts(0.2));
//! assert!(!dev.is_metallic());
//! ```

// Deliberate style choices for numerical simulation code: `!(x > 0.0)`
// rejects NaN alongside non-positive values, and indexed loops mirror the
// mathematics they implement (state-vector strides, lattice walks).
#![allow(
    clippy::neg_cmp_op_on_partial_ord,
    clippy::needless_range_loop,
    clippy::manual_is_multiple_of,
    clippy::field_reassign_with_default
)]
pub mod cmos;
pub mod mosfet;
pub mod noise;
pub mod passive;
pub mod units;
pub mod vo2;

/// Crate-wide error type for device-model construction and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceError {
    /// A physical parameter was out of its admissible range.
    InvalidParameter {
        /// Which parameter.
        name: &'static str,
        /// Why it was rejected.
        reason: &'static str,
    },
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = DeviceError::InvalidParameter {
            name: "r_on",
            reason: "must be positive",
        };
        assert!(e.to_string().contains("r_on"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DeviceError>();
    }
}
