//! Square-law MOSFET model.
//!
//! In the paper's 1T1R oscillator cell (§III-A) the series resistor is
//! replaced by an NMOS transistor so the oscillation frequency can be tuned
//! through the gate voltage `V_gs`: the transistor's channel resistance sets
//! the capacitor charge/discharge rate. Input values of the oscillator
//! computing model are *encoded as gate voltages* — so this model is the
//! input DAC of the whole §III computing scheme.
//!
//! The model is the long-channel square law with triode/saturation regions;
//! that is all the oscillator fabric needs (the transistor operates deep in
//! triode where it behaves as a voltage-controlled resistor).
//!
//! # Example
//!
//! ```
//! use device::mosfet::{Mosfet, MosfetParams};
//! use device::units::Volts;
//!
//! let fet = Mosfet::new(MosfetParams::default())?;
//! let r1 = fet.effective_resistance(Volts(1.0));
//! let r2 = fet.effective_resistance(Volts(1.5));
//! assert!(r2.0 < r1.0, "higher overdrive → lower channel resistance");
//! # Ok::<(), device::DeviceError>(())
//! ```

use crate::units::{Amps, Ohms, Volts};
use crate::DeviceError;

/// Long-channel square-law parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosfetParams {
    /// Transconductance factor `k = μ·Cox·W/L` in A/V².
    pub k: f64,
    /// Threshold voltage.
    pub v_th: Volts,
    /// Channel-length-modulation coefficient λ (1/V); 0 disables it.
    pub lambda: f64,
}

impl Default for MosfetParams {
    fn default() -> Self {
        MosfetParams {
            k: 200e-6,
            v_th: Volts(0.4),
            lambda: 0.0,
        }
    }
}

impl MosfetParams {
    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] when `k <= 0` or
    /// `lambda < 0`.
    pub fn validate(&self) -> Result<(), DeviceError> {
        if !(self.k > 0.0) {
            return Err(DeviceError::InvalidParameter {
                name: "k",
                reason: "transconductance factor must be positive",
            });
        }
        if self.lambda < 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "lambda",
                reason: "channel-length modulation must be non-negative",
            });
        }
        Ok(())
    }
}

/// Operating region of the transistor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// `V_gs <= V_th`: no channel.
    Cutoff,
    /// `V_ds < V_gs − V_th`: resistive channel.
    Triode,
    /// `V_ds >= V_gs − V_th`: current source.
    Saturation,
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Region::Cutoff => "cutoff",
            Region::Triode => "triode",
            Region::Saturation => "saturation",
        };
        f.write_str(s)
    }
}

/// An NMOS transistor evaluated with the square law.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mosfet {
    params: MosfetParams,
}

impl Mosfet {
    /// Creates a transistor.
    ///
    /// # Errors
    ///
    /// Returns the validation error from [`MosfetParams::validate`].
    pub fn new(params: MosfetParams) -> Result<Self, DeviceError> {
        params.validate()?;
        Ok(Mosfet { params })
    }

    /// The device parameters.
    #[must_use]
    pub fn params(&self) -> &MosfetParams {
        &self.params
    }

    /// The operating region for the given terminal voltages.
    #[must_use]
    pub fn region(&self, v_gs: Volts, v_ds: Volts) -> Region {
        let vov = v_gs.0 - self.params.v_th.0;
        if vov <= 0.0 {
            Region::Cutoff
        } else if v_ds.0 < vov {
            Region::Triode
        } else {
            Region::Saturation
        }
    }

    /// Drain current `I_d(V_gs, V_ds)`.
    ///
    /// Negative `V_ds` is evaluated by symmetry (source/drain swap).
    #[must_use]
    pub fn drain_current(&self, v_gs: Volts, v_ds: Volts) -> Amps {
        if v_ds.0 < 0.0 {
            return Amps(-self.drain_current(v_gs, Volts(-v_ds.0)).0);
        }
        let k = self.params.k;
        let vov = v_gs.0 - self.params.v_th.0;
        match self.region(v_gs, v_ds) {
            Region::Cutoff => Amps(0.0),
            Region::Triode => Amps(k * (vov * v_ds.0 - 0.5 * v_ds.0 * v_ds.0)),
            Region::Saturation => Amps(0.5 * k * vov * vov * (1.0 + self.params.lambda * v_ds.0)),
        }
    }

    /// Small-signal channel resistance around `V_ds ≈ 0` (deep triode):
    /// `R_ch = 1 / (k · (V_gs − V_th))`.
    ///
    /// This is the voltage-controlled series resistance of the oscillator
    /// cell. In cutoff the resistance is effectively infinite; this returns
    /// `Ohms(f64::INFINITY)` there so callers can propagate it safely.
    #[must_use]
    pub fn effective_resistance(&self, v_gs: Volts) -> Ohms {
        let vov = v_gs.0 - self.params.v_th.0;
        if vov <= 0.0 {
            return Ohms(f64::INFINITY);
        }
        Ohms(1.0 / (self.params.k * vov))
    }

    /// The gate voltage that produces a target deep-triode resistance:
    /// inverse of [`Mosfet::effective_resistance`].
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] for a non-positive target.
    pub fn gate_voltage_for_resistance(&self, r: Ohms) -> Result<Volts, DeviceError> {
        if !(r.0 > 0.0) {
            return Err(DeviceError::InvalidParameter {
                name: "r",
                reason: "target resistance must be positive",
            });
        }
        Ok(Volts(self.params.v_th.0 + 1.0 / (self.params.k * r.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fet() -> Mosfet {
        Mosfet::new(MosfetParams::default()).unwrap()
    }

    #[test]
    fn regions() {
        let f = fet();
        assert_eq!(f.region(Volts(0.2), Volts(1.0)), Region::Cutoff);
        assert_eq!(f.region(Volts(1.0), Volts(0.1)), Region::Triode);
        assert_eq!(f.region(Volts(1.0), Volts(1.0)), Region::Saturation);
    }

    #[test]
    fn cutoff_no_current() {
        let f = fet();
        assert_eq!(f.drain_current(Volts(0.1), Volts(1.0)), Amps(0.0));
    }

    #[test]
    fn current_continuous_at_pinchoff() {
        let f = fet();
        let v_gs = Volts(1.0);
        let vov = 0.6;
        let below = f.drain_current(v_gs, Volts(vov - 1e-9));
        let above = f.drain_current(v_gs, Volts(vov + 1e-9));
        assert!((below.0 - above.0).abs() < 1e-9);
    }

    #[test]
    fn saturation_current_square_law() {
        let f = fet();
        let i = f.drain_current(Volts(1.4), Volts(2.0));
        // 0.5 · 200µ · 1² = 100 µA
        assert!((i.0 - 100e-6).abs() < 1e-12);
    }

    #[test]
    fn triode_resistance_decreases_with_vgs() {
        let f = fet();
        let r1 = f.effective_resistance(Volts(0.8));
        let r2 = f.effective_resistance(Volts(1.2));
        assert!(r2.0 < r1.0);
    }

    #[test]
    fn cutoff_resistance_infinite() {
        let f = fet();
        assert!(f.effective_resistance(Volts(0.3)).0.is_infinite());
    }

    #[test]
    fn resistance_inversion_roundtrip() {
        let f = fet();
        let target = Ohms(25e3);
        let v_gs = f.gate_voltage_for_resistance(target).unwrap();
        let r = f.effective_resistance(v_gs);
        assert!((r.0 - target.0).abs() / target.0 < 1e-12);
    }

    #[test]
    fn negative_vds_antisymmetric() {
        let f = fet();
        let fwd = f.drain_current(Volts(1.0), Volts(0.2));
        let rev = f.drain_current(Volts(1.0), Volts(-0.2));
        assert!((fwd.0 + rev.0).abs() < 1e-15);
    }

    #[test]
    fn lambda_raises_saturation_current() {
        let mut p = MosfetParams::default();
        p.lambda = 0.1;
        let f = Mosfet::new(p).unwrap();
        let base = fet().drain_current(Volts(1.4), Volts(2.0));
        let with_lambda = f.drain_current(Volts(1.4), Volts(2.0));
        assert!(with_lambda.0 > base.0);
    }

    #[test]
    fn invalid_params_rejected() {
        let mut p = MosfetParams::default();
        p.k = 0.0;
        assert!(Mosfet::new(p).is_err());
        let mut p = MosfetParams::default();
        p.lambda = -0.1;
        assert!(Mosfet::new(p).is_err());
    }

    #[test]
    fn gate_voltage_rejects_nonpositive_resistance() {
        assert!(fet().gate_voltage_for_resistance(Ohms(0.0)).is_err());
    }

    #[test]
    fn region_display() {
        assert_eq!(Region::Triode.to_string(), "triode");
    }
}
