//! Seeded noise sources.
//!
//! Two experiments need controlled stochastic perturbation:
//!
//! * §IV's robustness claim ("adding noise to Eqs. 1 and 2" leaves the DMM
//!   solution search intact, ref. \[59\]) — Gaussian noise injected into the
//!   ODE right-hand side of the memcomputing solver;
//! * oscillator-fabric device mismatch: per-device parameter spread and
//!   voltage jitter.
//!
//! All sources are deterministic given a seed, per the workspace's
//! reproducibility policy.
//!
//! # Example
//!
//! ```
//! use device::noise::{GaussianNoise, NoiseSource};
//!
//! let mut noise = GaussianNoise::new(0.1, 42);
//! let a = noise.sample();
//! let mut again = GaussianNoise::new(0.1, 42);
//! assert_eq!(a, again.sample());
//! ```

use numerics::rng::Rng;
use numerics::rng::StdRng;
use numerics::rng::{rng_from_seed, sample_normal};

/// A stream of scalar noise samples.
///
/// Object-safe so heterogeneous noise configurations can be stored behind
/// `Box<dyn NoiseSource>`.
pub trait NoiseSource {
    /// Draws the next sample.
    fn sample(&mut self) -> f64;

    /// The RMS amplitude of the source (σ for Gaussian, `a/√3` for
    /// uniform-on-`[-a, a]`).
    fn rms(&self) -> f64;
}

/// Zero-mean Gaussian white noise with standard deviation `sigma`.
#[derive(Debug, Clone)]
pub struct GaussianNoise {
    sigma: f64,
    rng: StdRng,
}

impl GaussianNoise {
    /// Creates a source with standard deviation `sigma` (≥ 0) and a seed.
    ///
    /// # Panics
    ///
    /// Panics when `sigma` is negative or non-finite.
    #[must_use]
    pub fn new(sigma: f64, seed: u64) -> Self {
        assert!(sigma >= 0.0 && sigma.is_finite(), "sigma must be >= 0");
        GaussianNoise {
            sigma,
            rng: rng_from_seed(seed),
        }
    }

    /// The standard deviation.
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl NoiseSource for GaussianNoise {
    fn sample(&mut self) -> f64 {
        if self.sigma == 0.0 {
            return 0.0;
        }
        self.sigma * sample_normal(&mut self.rng)
    }

    fn rms(&self) -> f64 {
        self.sigma
    }
}

/// Zero-mean uniform noise on `[-amplitude, amplitude]`.
#[derive(Debug, Clone)]
pub struct UniformNoise {
    amplitude: f64,
    rng: StdRng,
}

impl UniformNoise {
    /// Creates a source with half-width `amplitude` (≥ 0) and a seed.
    ///
    /// # Panics
    ///
    /// Panics when `amplitude` is negative or non-finite.
    #[must_use]
    pub fn new(amplitude: f64, seed: u64) -> Self {
        assert!(
            amplitude >= 0.0 && amplitude.is_finite(),
            "amplitude must be >= 0"
        );
        UniformNoise {
            amplitude,
            rng: rng_from_seed(seed),
        }
    }
}

impl NoiseSource for UniformNoise {
    fn sample(&mut self) -> f64 {
        if self.amplitude == 0.0 {
            return 0.0;
        }
        self.rng.gen_range(-self.amplitude..=self.amplitude)
    }

    fn rms(&self) -> f64 {
        self.amplitude / 3f64.sqrt()
    }
}

/// The always-zero noise source (for noise-free baselines without changing
/// code paths).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoNoise;

impl NoiseSource for NoNoise {
    fn sample(&mut self) -> f64 {
        0.0
    }

    fn rms(&self) -> f64 {
        0.0
    }
}

/// Applies multiplicative parameter mismatch: returns `nominal · (1 + δ)`
/// with `δ ~ N(0, spread²)`, as used for device-to-device variation studies.
pub fn with_mismatch<R: Rng>(rng: &mut R, nominal: f64, spread: f64) -> f64 {
    nominal * (1.0 + spread * sample_normal(rng))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_deterministic() {
        let mut a = GaussianNoise::new(1.0, 7);
        let mut b = GaussianNoise::new(1.0, 7);
        for _ in 0..10 {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut src = GaussianNoise::new(0.5, 3);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| src.sample()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02);
        assert!((var.sqrt() - 0.5).abs() < 0.02);
    }

    #[test]
    fn zero_sigma_is_silent() {
        let mut src = GaussianNoise::new(0.0, 1);
        for _ in 0..10 {
            assert_eq!(src.sample(), 0.0);
        }
    }

    #[test]
    fn uniform_bounded() {
        let mut src = UniformNoise::new(0.3, 5);
        for _ in 0..1000 {
            let s = src.sample();
            assert!((-0.3..=0.3).contains(&s));
        }
    }

    #[test]
    fn uniform_rms() {
        let src = UniformNoise::new(3f64.sqrt(), 1);
        assert!((src.rms() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_noise_is_zero() {
        let mut src = NoNoise;
        assert_eq!(src.sample(), 0.0);
        assert_eq!(src.rms(), 0.0);
    }

    #[test]
    fn trait_object_usable() {
        let mut sources: Vec<Box<dyn NoiseSource>> = vec![
            Box::new(GaussianNoise::new(0.1, 1)),
            Box::new(UniformNoise::new(0.1, 2)),
            Box::new(NoNoise),
        ];
        for s in &mut sources {
            let _ = s.sample();
        }
    }

    #[test]
    fn mismatch_centered_on_nominal() {
        let mut rng = rng_from_seed(11);
        let n = 10_000;
        let mean = (0..n)
            .map(|_| with_mismatch(&mut rng, 100.0, 0.05))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 100.0).abs() < 0.5);
    }

    #[test]
    #[should_panic(expected = "sigma must be >= 0")]
    fn gaussian_rejects_negative_sigma() {
        let _ = GaussianNoise::new(-1.0, 0);
    }
}
