//! Passive elements and the RC coupling network.
//!
//! The paper couples two VO₂ oscillators "through simple resistive and
//! capacitive elements" (§III-A): a series resistor `R_C` and capacitor
//! `C_C` between the two oscillation nodes. The coupling strength is set by
//! `R_C` — *decreasing* `R_C` strengthens the coupling, which is how Fig. 5
//! sweeps the realized `l_k` norm exponent.
//!
//! # Example
//!
//! ```
//! use device::passive::CouplingNetwork;
//! use device::units::{Farads, Ohms};
//!
//! let weak = CouplingNetwork::new(Ohms(200e3), Farads(10e-15))?;
//! let strong = CouplingNetwork::new(Ohms(20e3), Farads(10e-15))?;
//! assert!(strong.strength() > weak.strength());
//! # Ok::<(), device::DeviceError>(())
//! ```

use crate::units::{Farads, Ohms, Seconds, Siemens};
use crate::DeviceError;

/// An ideal linear resistor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Resistor {
    resistance: Ohms,
}

impl Resistor {
    /// Creates a resistor.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] for a non-positive value.
    pub fn new(resistance: Ohms) -> Result<Self, DeviceError> {
        if !(resistance.0 > 0.0) {
            return Err(DeviceError::InvalidParameter {
                name: "resistance",
                reason: "must be positive",
            });
        }
        Ok(Resistor { resistance })
    }

    /// The resistance.
    #[must_use]
    pub fn resistance(&self) -> Ohms {
        self.resistance
    }

    /// The conductance.
    #[must_use]
    pub fn conductance(&self) -> Siemens {
        self.resistance.to_siemens()
    }
}

/// An ideal linear capacitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Capacitor {
    capacitance: Farads,
}

impl Capacitor {
    /// Creates a capacitor.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] for a non-positive value.
    pub fn new(capacitance: Farads) -> Result<Self, DeviceError> {
        if !(capacitance.0 > 0.0) {
            return Err(DeviceError::InvalidParameter {
                name: "capacitance",
                reason: "must be positive",
            });
        }
        Ok(Capacitor { capacitance })
    }

    /// The capacitance.
    #[must_use]
    pub fn capacitance(&self) -> Farads {
        self.capacitance
    }
}

/// The series-RC coupling element between two oscillator nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CouplingNetwork {
    r_c: Ohms,
    c_c: Farads,
}

impl CouplingNetwork {
    /// Creates a coupling network with series resistance `r_c` and
    /// capacitance `c_c`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] when either element is
    /// non-positive.
    pub fn new(r_c: Ohms, c_c: Farads) -> Result<Self, DeviceError> {
        if !(r_c.0 > 0.0) {
            return Err(DeviceError::InvalidParameter {
                name: "r_c",
                reason: "coupling resistance must be positive",
            });
        }
        if !(c_c.0 > 0.0) {
            return Err(DeviceError::InvalidParameter {
                name: "c_c",
                reason: "coupling capacitance must be positive",
            });
        }
        Ok(CouplingNetwork { r_c, c_c })
    }

    /// Coupling resistance `R_C`.
    #[must_use]
    pub fn r_c(&self) -> Ohms {
        self.r_c
    }

    /// Coupling capacitance `C_C`.
    #[must_use]
    pub fn c_c(&self) -> Farads {
        self.c_c
    }

    /// The RC time constant of the coupling branch.
    #[must_use]
    pub fn time_constant(&self) -> Seconds {
        Seconds(self.r_c.0 * self.c_c.0)
    }

    /// A scalar coupling-strength figure of merit: the branch conductance
    /// `1/R_C` in siemens. The paper's "increasing coupling strengths (that
    /// is, decreasing R_C)" maps to increasing values of this.
    #[must_use]
    pub fn strength(&self) -> f64 {
        1.0 / self.r_c.0
    }

    /// Returns a copy with a different coupling resistance (the Fig. 5 sweep
    /// knob).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] for a non-positive value.
    pub fn with_r_c(&self, r_c: Ohms) -> Result<Self, DeviceError> {
        CouplingNetwork::new(r_c, self.c_c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resistor_conductance() {
        let r = Resistor::new(Ohms(50.0)).unwrap();
        assert_eq!(r.conductance(), Siemens(0.02));
        assert_eq!(r.resistance(), Ohms(50.0));
    }

    #[test]
    fn resistor_rejects_nonpositive() {
        assert!(Resistor::new(Ohms(0.0)).is_err());
        assert!(Resistor::new(Ohms(-5.0)).is_err());
    }

    #[test]
    fn capacitor_rejects_nonpositive() {
        assert!(Capacitor::new(Farads(0.0)).is_err());
        assert!(Capacitor::new(Farads(1e-15)).is_ok());
    }

    #[test]
    fn coupling_time_constant() {
        let c = CouplingNetwork::new(Ohms(1e3), Farads(1e-9)).unwrap();
        assert!((c.time_constant().0 - 1e-6).abs() < 1e-18);
    }

    #[test]
    fn coupling_strength_inverse_in_rc() {
        let weak = CouplingNetwork::new(Ohms(100e3), Farads(1e-15)).unwrap();
        let strong = weak.with_r_c(Ohms(10e3)).unwrap();
        assert!(strong.strength() > weak.strength());
        assert!((strong.strength() / weak.strength() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn coupling_rejects_bad_elements() {
        assert!(CouplingNetwork::new(Ohms(0.0), Farads(1e-12)).is_err());
        assert!(CouplingNetwork::new(Ohms(1e3), Farads(0.0)).is_err());
    }
}
