//! Physical-quantity newtypes.
//!
//! Electrical simulation code passes around many bare `f64`s whose units are
//! easy to confuse; these zero-cost newtypes make the compiler catch
//! volt/ohm/farad mix-ups at the API boundary ([C-NEWTYPE]). Internal inner
//! loops work on raw `f64` for speed; the newtypes appear on public
//! constructors and results.
//!
//! # Example
//!
//! ```
//! use device::units::{Ohms, Volts, Amps};
//!
//! let r = Ohms(2.0e3);
//! let v = Volts(1.0);
//! let i: Amps = v / r;
//! assert!((i.0 - 5.0e-4).abs() < 1e-12);
//! ```
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// The underlying raw value.
            #[must_use]
            pub const fn value(self) -> f64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $suffix)
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl Neg for $name {
            type Output = $name;
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }
    };
}

quantity!(
    /// Electric potential in volts.
    Volts,
    "V"
);
quantity!(
    /// Electric current in amperes.
    Amps,
    "A"
);
quantity!(
    /// Resistance in ohms.
    Ohms,
    "Ω"
);
quantity!(
    /// Conductance in siemens.
    Siemens,
    "S"
);
quantity!(
    /// Capacitance in farads.
    Farads,
    "F"
);
quantity!(
    /// Frequency in hertz.
    Hertz,
    "Hz"
);
quantity!(
    /// Time in seconds.
    Seconds,
    "s"
);
quantity!(
    /// Power in watts.
    Watts,
    "W"
);
quantity!(
    /// Energy in joules.
    Joules,
    "J"
);

// Cross-quantity physics relations (Ohm's law & friends).

impl Div<Ohms> for Volts {
    type Output = Amps;
    fn div(self, rhs: Ohms) -> Amps {
        Amps(self.0 / rhs.0)
    }
}

impl Mul<Amps> for Ohms {
    type Output = Volts;
    fn mul(self, rhs: Amps) -> Volts {
        Volts(self.0 * rhs.0)
    }
}

impl Mul<Ohms> for Amps {
    type Output = Volts;
    fn mul(self, rhs: Ohms) -> Volts {
        Volts(self.0 * rhs.0)
    }
}

impl Mul<Amps> for Volts {
    type Output = Watts;
    fn mul(self, rhs: Amps) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

impl Mul<Volts> for Amps {
    type Output = Watts;
    fn mul(self, rhs: Volts) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

impl Ohms {
    /// The reciprocal conductance.
    ///
    /// # Panics
    ///
    /// Debug-panics on a zero resistance.
    #[must_use]
    pub fn to_siemens(self) -> Siemens {
        debug_assert!(self.0 != 0.0);
        Siemens(1.0 / self.0)
    }
}

impl Siemens {
    /// The reciprocal resistance.
    ///
    /// # Panics
    ///
    /// Debug-panics on a zero conductance.
    #[must_use]
    pub fn to_ohms(self) -> Ohms {
        debug_assert!(self.0 != 0.0);
        Ohms(1.0 / self.0)
    }
}

impl Hertz {
    /// The corresponding period.
    ///
    /// # Panics
    ///
    /// Debug-panics on a zero frequency.
    #[must_use]
    pub fn to_period(self) -> Seconds {
        debug_assert!(self.0 != 0.0);
        Seconds(1.0 / self.0)
    }
}

impl Seconds {
    /// The corresponding frequency.
    ///
    /// # Panics
    ///
    /// Debug-panics on a zero period.
    #[must_use]
    pub fn to_frequency(self) -> Hertz {
        debug_assert!(self.0 != 0.0);
        Hertz(1.0 / self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ohms_law() {
        let i = Volts(10.0) / Ohms(5.0);
        assert_eq!(i, Amps(2.0));
        assert_eq!(Ohms(5.0) * Amps(2.0), Volts(10.0));
    }

    #[test]
    fn power_and_energy() {
        let p = Volts(2.0) * Amps(3.0);
        assert_eq!(p, Watts(6.0));
        let e = p * Seconds(10.0);
        assert_eq!(e, Joules(60.0));
        assert_eq!(e / Seconds(10.0), p);
    }

    #[test]
    fn conductance_roundtrip() {
        let g = Ohms(4.0).to_siemens();
        assert_eq!(g, Siemens(0.25));
        assert_eq!(g.to_ohms(), Ohms(4.0));
    }

    #[test]
    fn frequency_period_roundtrip() {
        let t = Hertz(50.0).to_period();
        assert_eq!(t, Seconds(0.02));
        assert_eq!(t.to_frequency(), Hertz(50.0));
    }

    #[test]
    fn arithmetic_on_quantities() {
        assert_eq!(Volts(1.0) + Volts(2.0), Volts(3.0));
        assert_eq!(Volts(5.0) - Volts(2.0), Volts(3.0));
        assert_eq!(-Volts(1.5), Volts(-1.5));
        assert_eq!(Volts(2.0) * 3.0, Volts(6.0));
        assert_eq!(3.0 * Volts(2.0), Volts(6.0));
        assert_eq!(Volts(6.0) / 3.0, Volts(2.0));
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(Volts(1.5).to_string(), "1.5 V");
        assert_eq!(Watts(0.003).to_string(), "0.003 W");
    }

    #[test]
    fn ordering() {
        assert!(Volts(1.0) < Volts(2.0));
    }
}
