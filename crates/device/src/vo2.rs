//! Vanadium-dioxide (VO₂) insulator-to-metal-transition device model.
//!
//! VO₂ undergoes a volatile, sharp insulator-to-metal phase transition (IMT)
//! under electrical bias (paper §III-A). The compact model used here is the
//! standard one from the coupled-oscillator literature (Shukla et al., IEDM
//! 2014; Parihar et al., Sci. Rep. 2017):
//!
//! * two resistance states, insulating `R_ins` and metallic `R_met`
//!   (`R_ins ≫ R_met`);
//! * hysteretic switching: the device turns metallic when the voltage across
//!   it rises above `v_imt`, and returns to insulating only when the voltage
//!   falls below `v_mit < v_imt`;
//! * a finite phase-transition time constant `tau_switch` that smooths the
//!   conductance between the two states (the metallic fraction relaxes
//!   exponentially toward its target), keeping the ODE right-hand side
//!   Lipschitz.
//!
//! When such a device is loaded by a series resistance chosen so the load
//! line crosses the unstable hysteretic region, the circuit has no stable
//! operating point and relaxation-oscillates — that is the oscillator
//! primitive of the paper's computing model (built in the `osc` crate).
//!
//! # Example
//!
//! ```
//! use device::units::Volts;
//! use device::vo2::{Vo2Device, Vo2Params};
//!
//! let params = Vo2Params::default();
//! let mut dev = Vo2Device::new(params);
//! dev.update(Volts(2.0));                // above v_imt → metallic
//! assert!(dev.is_metallic());
//! let g_met = dev.conductance_at(f64::INFINITY); // fully relaxed
//! assert!((g_met.0 - 1.0 / params.r_metallic.0).abs() < 1e-12);
//! ```

use crate::units::{Ohms, Seconds, Siemens, Volts};
use crate::DeviceError;

/// Parameters of the hysteretic VO₂ compact model.
///
/// The defaults are representative of the VO₂ devices in the coupled-
/// oscillator literature: a ~10:1 resistance ratio and a switching window
/// around 1 V, giving oscillation frequencies in the hundreds of kHz with
/// ~100 fF node capacitance and ~10–100 kΩ series resistances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vo2Params {
    /// Insulating-state resistance.
    pub r_insulating: Ohms,
    /// Metallic-state resistance.
    pub r_metallic: Ohms,
    /// Insulator→metal switching threshold (device voltage rising).
    pub v_imt: Volts,
    /// Metal→insulator hold threshold (device voltage falling).
    pub v_mit: Volts,
    /// Phase-transition time constant for conductance relaxation.
    pub tau_switch: Seconds,
}

impl Default for Vo2Params {
    fn default() -> Self {
        Vo2Params {
            r_insulating: Ohms(1e6),
            r_metallic: Ohms(50e3),
            v_imt: Volts(1.1),
            v_mit: Volts(0.5),
            tau_switch: Seconds(20e-9),
        }
    }
}

impl Vo2Params {
    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] when resistances are not
    /// positive, `r_metallic >= r_insulating`, the thresholds are disordered
    /// (`v_mit >= v_imt`), or `tau_switch` is negative.
    pub fn validate(&self) -> Result<(), DeviceError> {
        if !(self.r_insulating.0 > 0.0) {
            return Err(DeviceError::InvalidParameter {
                name: "r_insulating",
                reason: "must be positive",
            });
        }
        if !(self.r_metallic.0 > 0.0) {
            return Err(DeviceError::InvalidParameter {
                name: "r_metallic",
                reason: "must be positive",
            });
        }
        if self.r_metallic.0 >= self.r_insulating.0 {
            return Err(DeviceError::InvalidParameter {
                name: "r_metallic",
                reason: "must be smaller than r_insulating",
            });
        }
        if !(self.v_imt.0 > self.v_mit.0) {
            return Err(DeviceError::InvalidParameter {
                name: "v_mit",
                reason: "hold threshold must be below the IMT threshold",
            });
        }
        if self.tau_switch.0 < 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "tau_switch",
                reason: "must be non-negative",
            });
        }
        Ok(())
    }

    /// Width of the hysteresis window `v_imt − v_mit`.
    #[must_use]
    pub fn hysteresis_window(&self) -> Volts {
        self.v_imt - self.v_mit
    }
}

/// A stateful VO₂ device instance.
///
/// The discrete phase (`metallic`) follows the hysteresis comparators; the
/// continuous `metallic_fraction ∈ [0,1]` relaxes toward the phase target
/// with time constant `tau_switch`, and the conductance is the linear mix of
/// the two state conductances weighted by that fraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vo2Device {
    params: Vo2Params,
    metallic: bool,
    metallic_fraction: f64,
}

impl Vo2Device {
    /// Creates a device in the insulating state.
    ///
    /// # Panics
    ///
    /// Panics if `params` fails [`Vo2Params::validate`]; use
    /// [`Vo2Device::try_new`] for a fallible constructor.
    #[must_use]
    pub fn new(params: Vo2Params) -> Self {
        params.validate().expect("invalid Vo2Params");
        Vo2Device {
            params,
            metallic: false,
            metallic_fraction: 0.0,
        }
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns the validation error from [`Vo2Params::validate`].
    pub fn try_new(params: Vo2Params) -> Result<Self, DeviceError> {
        params.validate()?;
        Ok(Vo2Device {
            params,
            metallic: false,
            metallic_fraction: 0.0,
        })
    }

    /// The device parameters.
    #[must_use]
    pub fn params(&self) -> &Vo2Params {
        &self.params
    }

    /// Whether the discrete phase is currently metallic.
    #[must_use]
    pub fn is_metallic(&self) -> bool {
        self.metallic
    }

    /// The continuous metallic fraction in `[0, 1]`.
    #[must_use]
    pub fn metallic_fraction(&self) -> f64 {
        self.metallic_fraction
    }

    /// Advances the discrete hysteresis comparator for a device voltage `v`.
    ///
    /// Returns `true` when the phase changed.
    pub fn update(&mut self, v: Volts) -> bool {
        let before = self.metallic;
        if self.metallic {
            if v.0 < self.params.v_mit.0 {
                self.metallic = false;
            }
        } else if v.0 > self.params.v_imt.0 {
            self.metallic = true;
        }
        before != self.metallic
    }

    /// Relaxes the metallic fraction toward the current phase target over a
    /// time step `dt`, then returns the resulting conductance.
    ///
    /// With `tau_switch == 0` the fraction snaps instantly.
    pub fn relax(&mut self, dt: Seconds) -> Siemens {
        let target = if self.metallic { 1.0 } else { 0.0 };
        let tau = self.params.tau_switch.0;
        if tau <= 0.0 || dt.0 <= 0.0 {
            self.metallic_fraction = target;
        } else {
            let alpha = (-dt.0 / tau).exp();
            self.metallic_fraction = target + (self.metallic_fraction - target) * alpha;
        }
        self.conductance()
    }

    /// Conductance at the current metallic fraction.
    #[must_use]
    pub fn conductance(&self) -> Siemens {
        self.conductance_at_fraction(self.metallic_fraction)
    }

    /// Conductance the device *would* have after relaxing for `t` seconds
    /// toward the current phase (`t = ∞` gives the fully switched value).
    #[must_use]
    pub fn conductance_at(&self, t: f64) -> Siemens {
        let target = if self.metallic { 1.0 } else { 0.0 };
        let tau = self.params.tau_switch.0;
        let frac = if tau <= 0.0 || t.is_infinite() {
            target
        } else {
            target + (self.metallic_fraction - target) * (-t / tau).exp()
        };
        self.conductance_at_fraction(frac)
    }

    fn conductance_at_fraction(&self, frac: f64) -> Siemens {
        let g_ins = 1.0 / self.params.r_insulating.0;
        let g_met = 1.0 / self.params.r_metallic.0;
        Siemens(g_ins + (g_met - g_ins) * frac.clamp(0.0, 1.0))
    }

    /// Quasi-static current for a device voltage `v`, updating the hysteresis
    /// state first (convenience for plotting the hysteretic I–V curve).
    pub fn current(&mut self, v: Volts, dt: Seconds) -> crate::units::Amps {
        self.update(v);
        let g = self.relax(dt);
        crate::units::Amps(g.0 * v.0)
    }

    /// Resets to the insulating state with zero metallic fraction.
    pub fn reset(&mut self) {
        self.metallic = false;
        self.metallic_fraction = 0.0;
    }
}

/// Checks whether a supply/series-resistance choice places the load line in
/// the unstable region of the hysteresis, which is the condition for
/// self-sustained relaxation oscillation (paper §III-A).
///
/// Concretely: the insulating-state steady voltage must exceed `v_imt` (the
/// device keeps switching on) and the metallic-state steady voltage must fall
/// below `v_mit` (it keeps switching off).
#[must_use]
pub fn oscillation_condition(params: &Vo2Params, vdd: Volts, r_series: Ohms) -> bool {
    let div = |r_dev: f64| vdd.0 * r_dev / (r_dev + r_series.0);
    let v_ins = div(params.r_insulating.0);
    let v_met = div(params.r_metallic.0);
    v_ins > params.v_imt.0 && v_met < params.v_mit.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_valid() {
        assert!(Vo2Params::default().validate().is_ok());
    }

    #[test]
    fn invalid_params_rejected() {
        let mut p = Vo2Params::default();
        p.r_metallic = Ohms(-1.0);
        assert!(p.validate().is_err());

        let mut p = Vo2Params::default();
        p.r_metallic = p.r_insulating;
        assert!(p.validate().is_err());

        let mut p = Vo2Params::default();
        p.v_mit = Volts(2.0);
        assert!(p.validate().is_err());
    }

    #[test]
    fn hysteresis_loop() {
        let mut dev = Vo2Device::new(Vo2Params::default());
        assert!(!dev.is_metallic());
        // Rising below threshold: stays insulating.
        assert!(!dev.update(Volts(1.0)));
        assert!(!dev.is_metallic());
        // Crossing v_imt: switches.
        assert!(dev.update(Volts(1.2)));
        assert!(dev.is_metallic());
        // Falling but above v_mit: stays metallic (hysteresis).
        assert!(!dev.update(Volts(0.8)));
        assert!(dev.is_metallic());
        // Below v_mit: back to insulating.
        assert!(dev.update(Volts(0.4)));
        assert!(!dev.is_metallic());
    }

    #[test]
    fn relaxation_converges_to_state_conductance() {
        let params = Vo2Params::default();
        let mut dev = Vo2Device::new(params);
        dev.update(Volts(2.0));
        // Relax for many time constants.
        for _ in 0..1000 {
            dev.relax(Seconds(params.tau_switch.0));
        }
        let g = dev.conductance();
        assert!((g.0 - 1.0 / params.r_metallic.0).abs() / g.0 < 1e-6);
    }

    #[test]
    fn relaxation_is_gradual() {
        let params = Vo2Params::default();
        let mut dev = Vo2Device::new(params);
        dev.update(Volts(2.0));
        dev.relax(Seconds(params.tau_switch.0 * 0.1));
        let f = dev.metallic_fraction();
        assert!(f > 0.0 && f < 0.2, "fraction {f}");
    }

    #[test]
    fn zero_tau_snaps() {
        let mut p = Vo2Params::default();
        p.tau_switch = Seconds(0.0);
        let mut dev = Vo2Device::new(p);
        dev.update(Volts(2.0));
        dev.relax(Seconds(1e-12));
        assert_eq!(dev.metallic_fraction(), 1.0);
    }

    #[test]
    fn conductance_bounds() {
        let params = Vo2Params::default();
        let mut dev = Vo2Device::new(params);
        let g_ins = 1.0 / params.r_insulating.0;
        let g_met = 1.0 / params.r_metallic.0;
        assert!((dev.conductance().0 - g_ins).abs() < 1e-15);
        dev.update(Volts(5.0));
        let g_inf = dev.conductance_at(f64::INFINITY);
        assert!((g_inf.0 - g_met).abs() < 1e-15);
    }

    #[test]
    fn oscillation_condition_window() {
        let p = Vo2Params::default();
        let vdd = Volts(3.0);
        // A mid-range series resistance oscillates…
        assert!(oscillation_condition(&p, vdd, Ohms(300e3)));
        // …a tiny one latches metallic (v_met too high)…
        assert!(!oscillation_condition(&p, vdd, Ohms(1e3)));
        // …a huge one latches insulating (v_ins too low).
        assert!(!oscillation_condition(&p, vdd, Ohms(100e6)));
    }

    #[test]
    fn current_follows_ohms_law_per_state() {
        let params = Vo2Params::default();
        let mut dev = Vo2Device::new(params);
        let i = dev.current(Volts(0.3), Seconds(1e-3));
        // Insulating, fully relaxed after a long dt.
        assert!((i.0 - 0.3 / params.r_insulating.0).abs() < 1e-12);
    }

    #[test]
    fn reset_restores_insulating() {
        let mut dev = Vo2Device::new(Vo2Params::default());
        dev.update(Volts(5.0));
        dev.relax(Seconds(1.0));
        dev.reset();
        assert!(!dev.is_metallic());
        assert_eq!(dev.metallic_fraction(), 0.0);
    }

    #[test]
    fn hysteresis_window_width() {
        let p = Vo2Params::default();
        assert!((p.hysteresis_window().0 - 0.6).abs() < 1e-12);
    }
}
