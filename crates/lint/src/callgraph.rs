//! A workspace-wide syntactic call graph over the serving crates.
//!
//! The graph is built from token shapes alone — no type information —
//! so resolution is by *name*, hedged three ways to keep false paths
//! out of the loop-reachability analysis:
//!
//! * **Method calls stay in their crate.** `x.submit(...)` resolves to
//!   functions named `submit` in the caller's own crate only; cross-crate
//!   edges come from free/path calls (`lock_or_recover(...)`,
//!   `ShardLink::connect(...)`), which name their target unambiguously
//!   enough in this workspace.
//! * **Ubiquitous names are never resolved.** `new`, `clone`, `insert`,
//!   `get` and friends (see [`STOPLIST`]) are overwhelmingly std methods;
//!   an edge guessed from one of them would be noise. This trades a
//!   false *negative* (a trivially named workspace fn is not traversed)
//!   for zero false positives on hot std idioms.
//! * **Deferred closures are not part of the caller.** Arguments to
//!   `spawn` / `execute` / `on_finish` (see [`DEFER_SINKS`]) run on
//!   another thread later, so nothing inside them is attributed to the
//!   calling function's own execution path. [`deferred_ranges`] exposes
//!   the skipped spans so rules scanning bodies for operations apply the
//!   same convention.

use crate::lexer::TokKind;
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Method/function names too generic to resolve by name: almost always
/// std-library calls, and an edge guessed from one would poison the
/// reachability analysis with false paths.
pub const STOPLIST: &[&str] = &[
    "new",
    "default",
    "clone",
    "fmt",
    "from",
    "into",
    "drop",
    "len",
    "is_empty",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "take",
    "clear",
    "extend",
    "retain",
    "min",
    "max",
    "clamp",
    "map",
    "and_then",
    "ok",
    "err",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "as_ref",
    "as_mut",
    "as_str",
    "as_slice",
    "to_string",
    "to_vec",
    "to_owned",
    "sort",
    "sort_by",
    "sort_unstable",
    "position",
    "find",
    "any",
    "all",
    "filter",
    "count",
    "sum",
    "collect",
    "keys",
    "values",
    "shutdown",
    "write",
    "read",
    "peek",
    "send",
    "recv",
    "lock",
    "try_lock",
    "join",
    "wait",
];

/// Calls whose arguments execute on another thread, later: a closure
/// handed to one of these is *not* part of the caller's own path.
pub const DEFER_SINKS: &[&str] = &["spawn", "execute", "on_finish"];

/// Keywords that can syntactically precede `(` without being calls.
const KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "loop", "return", "fn", "move", "in", "as", "let", "else",
    "break", "continue", "unsafe", "impl", "where", "pub", "crate", "super", "self", "Self",
];

/// One function node: indices back into the file slice the graph was
/// built from, plus enough identity for diagnostics.
#[derive(Debug)]
pub struct FnNode {
    /// Index into the `files` slice handed to [`CallGraph::build`].
    pub file: usize,
    /// Index into that file's `fns`.
    pub item: usize,
    pub name: String,
    pub crate_name: String,
}

/// The call graph: nodes plus name-resolved adjacency.
#[derive(Debug)]
pub struct CallGraph {
    pub nodes: Vec<FnNode>,
    /// `edges[n]` = callee node indices of node `n`.
    pub edges: Vec<BTreeSet<usize>>,
}

impl CallGraph {
    /// Builds the graph over every non-test function with a body.
    /// `lock_or_recover` is excluded — the rules model it as a blocking
    /// primitive at the call site, not a function to traverse into.
    #[must_use]
    pub fn build(files: &[&SourceFile]) -> CallGraph {
        let mut nodes = Vec::new();
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (ii, item) in file.fns.iter().enumerate() {
                if item.in_test || item.body.is_none() || item.name == "lock_or_recover" {
                    continue;
                }
                by_name
                    .entry(item.name.as_str())
                    .or_default()
                    .push(nodes.len());
                nodes.push(FnNode {
                    file: fi,
                    item: ii,
                    name: item.name.clone(),
                    crate_name: file.crate_name.clone(),
                });
            }
        }

        let mut edges = vec![BTreeSet::new(); nodes.len()];
        for n in 0..nodes.len() {
            let file = files[nodes[n].file];
            let (open, close) = file.fns[nodes[n].item].body.unwrap_or((0, 0));
            let skipped = deferred_ranges(file, open, close);
            let toks = &file.toks;
            let mut k = open;
            while k <= close {
                if let Some(&(_, end)) = skipped.iter().find(|&&(s, e)| k >= s && k <= e) {
                    k = end + 1;
                    continue;
                }
                let t = &toks[k];
                let is_call = t.kind == TokKind::Ident
                    && toks.get(k + 1).is_some_and(|x| x.text == "(")
                    && !KEYWORDS.contains(&t.text.as_str())
                    && !STOPLIST.contains(&t.text.as_str())
                    && !(k > 0 && toks[k - 1].text == "fn");
                if is_call {
                    let method = k > 0 && toks[k - 1].text == ".";
                    if let Some(cands) = by_name.get(t.text.as_str()) {
                        for &c in cands {
                            if method && nodes[c].crate_name != nodes[n].crate_name {
                                continue;
                            }
                            edges[n].insert(c);
                        }
                    }
                }
                k += 1;
            }
        }
        CallGraph { nodes, edges }
    }

    /// BFS from `roots`. Returns `node → parent` for every reachable
    /// node; a root is its own parent.
    #[must_use]
    pub fn reachable(&self, roots: &[usize]) -> BTreeMap<usize, usize> {
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &r in roots {
            if parent.insert(r, r).is_none() {
                queue.push_back(r);
            }
        }
        while let Some(n) = queue.pop_front() {
            for &m in &self.edges[n] {
                if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(m) {
                    e.insert(n);
                    queue.push_back(m);
                }
            }
        }
        parent
    }

    /// The call chain `root → … → node`, as fn names, from a
    /// [`CallGraph::reachable`] parent map.
    #[must_use]
    pub fn path_to(&self, parent: &BTreeMap<usize, usize>, node: usize) -> Vec<String> {
        let mut chain = vec![self.nodes[node].name.clone()];
        let mut cur = node;
        while let Some(&p) = parent.get(&cur) {
            if p == cur {
                break;
            }
            chain.push(self.nodes[p].name.clone());
            cur = p;
        }
        chain.reverse();
        chain
    }
}

/// Token spans inside `open..=close` that are argument lists of
/// deferred-execution sinks (`spawn(...)`, `execute(...)`,
/// `on_finish(...)`): code in them runs off the caller's thread.
#[must_use]
pub fn deferred_ranges(file: &SourceFile, open: usize, close: usize) -> Vec<(usize, usize)> {
    let toks = &file.toks;
    let mut out = Vec::new();
    let mut k = open;
    while k <= close {
        let t = &toks[k];
        if t.kind == TokKind::Ident
            && DEFER_SINKS.contains(&t.text.as_str())
            && toks.get(k + 1).is_some_and(|x| x.text == "(")
            && !(k > 0 && toks[k - 1].text == "fn")
        {
            let mut depth = 0i32;
            let mut j = k + 1;
            while j <= close {
                match toks[j].text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            out.push((k + 1, j.min(close)));
            k = j + 1;
            continue;
        }
        k += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn parse(crate_name: &str, src: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from(format!("{crate_name}.rs")), crate_name, src)
    }

    fn names_reachable(files: &[&SourceFile], root_name: &str) -> BTreeSet<String> {
        let g = CallGraph::build(files);
        let roots: Vec<usize> = g
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.name == root_name)
            .map(|(i, _)| i)
            .collect();
        g.reachable(&roots)
            .keys()
            .map(|&n| g.nodes[n].name.clone())
            .collect()
    }

    #[test]
    fn free_calls_resolve_across_crates() {
        let a = parse("a", "fn root() { helper(); }");
        let b = parse("b", "fn helper() { leaf(); } fn leaf() {}");
        let reach = names_reachable(&[&a, &b], "root");
        assert!(
            reach.contains("helper") && reach.contains("leaf"),
            "{reach:?}"
        );
    }

    #[test]
    fn method_calls_stay_in_their_crate() {
        let a = parse("a", "fn root(&self) { self.work(); }");
        let b = parse("b", "fn work(&self) { bad(); } fn bad() {}");
        let reach = names_reachable(&[&a, &b], "root");
        assert!(!reach.contains("work"), "{reach:?}");
        // The same method name in the caller's own crate does resolve.
        let same_crate = parse("a", "fn work(&self) {}");
        let reach = names_reachable(&[&a, &same_crate], "root");
        assert!(reach.contains("work"), "{reach:?}");
    }

    #[test]
    fn stoplisted_names_produce_no_edges() {
        let a = parse("a", "fn root(&self) { self.insert(1); insert(2); }");
        let b = parse("a", "fn insert(&self) { bad(); } fn bad() {}");
        let reach = names_reachable(&[&a, &b], "root");
        assert!(
            !reach.contains("insert") && !reach.contains("bad"),
            "{reach:?}"
        );
    }

    #[test]
    fn deferred_closures_are_not_the_callers_path() {
        let a = parse(
            "a",
            "fn root(&self) { self.pool.execute(move || { off_loop(); }); on_loop(); }\n\
             fn off_loop() {}\n\
             fn on_loop() {}",
        );
        let reach = names_reachable(&[&a], "root");
        assert!(reach.contains("on_loop"), "{reach:?}");
        assert!(!reach.contains("off_loop"), "{reach:?}");
    }

    #[test]
    fn test_functions_are_not_nodes() {
        let a = parse(
            "a",
            "fn root() { helper(); }\nfn helper() {}\n#[cfg(test)]\nmod tests { fn root() { gone(); } fn gone() {} }",
        );
        let g = CallGraph::build(&[&a]);
        assert_eq!(g.nodes.len(), 2, "{:?}", g.nodes);
    }

    #[test]
    fn path_reconstruction_walks_parents() {
        let a = parse(
            "a",
            "fn root() { mid(); } fn mid() { leaf(); } fn leaf() {}",
        );
        let g = CallGraph::build(&[&a]);
        let root = g.nodes.iter().position(|n| n.name == "root").unwrap();
        let leaf = g.nodes.iter().position(|n| n.name == "leaf").unwrap();
        let parent = g.reachable(&[root]);
        assert_eq!(g.path_to(&parent, leaf), vec!["root", "mid", "leaf"]);
    }
}
