//! Intra-function value-flow: tracks wire-derived sizes from their
//! `ByteReader` read to any allocation they size.
//!
//! The model is deliberately small — straight-line taint over the token
//! stream of one function body:
//!
//! * **Sources.** A `let`-binding (or re-assignment) whose right-hand
//!   side calls a raw `ByteReader` integer read (`get_u16`, `get_u32`,
//!   `get_u64`, `get_usize`, `get_i64`, `get_opt_u64`) or decodes bytes
//!   directly (`from_be_bytes`, `from_le_bytes`) is tainted.
//!   `get_count` / `get_str` are *not* sources: they validate against a
//!   cap and the remaining payload before returning, which is exactly
//!   the sanction this analysis enforces.
//! * **Propagation.** `let y = …x…;` with tainted `x` taints `y`.
//! * **Sanitizers.** A tainted name is cleared once the function
//!   compares it (`<`, `>`, `<=`, `>=` — token order approximates
//!   dominance, which holds for the straight-line decode code this rule
//!   targets) or clamps it (`.min(…)`, `.clamp(…)`).
//! * **Sinks.** `Vec::with_capacity(x)` / `String::with_capacity(x)`,
//!   `.reserve(x)` / `.reserve_exact(x)`, and `vec![v; x]` with a
//!   tainted `x` are reported.
//!
//! The analysis is intraprocedural: a size returned by one function and
//! allocated in another is not tracked. The workspace convention that
//! makes that sound is `ByteReader::get_count` — the one sanctioned way
//! to pass a wire count to an allocation.

use crate::lexer::TokKind;
use crate::source::SourceFile;
use std::collections::BTreeMap;

/// Raw `ByteReader` integer reads: attacker-controlled values.
const SOURCES: &[&str] = &[
    "get_u16",
    "get_u32",
    "get_u64",
    "get_usize",
    "get_i64",
    "get_opt_u64",
];

/// Byte-decoding constructors that are sources even without a reader.
const RAW_SOURCES: &[&str] = &["from_be_bytes", "from_le_bytes"];

/// One tainted value reaching an allocation sink.
#[derive(Debug)]
pub struct TaintSink {
    /// Position of the allocation call.
    pub line: u32,
    pub col: u32,
    /// The tainted identifier sizing the allocation.
    pub ident: String,
    /// What the sink was (`Vec::with_capacity`, `reserve`, `vec![_; _]`).
    pub sink: String,
    /// Line of the wire read that produced the value.
    pub source_line: u32,
}

/// Scans one function body (token range `open..=close`, braces
/// included) and returns every tainted allocation.
#[must_use]
pub fn scan_fn(file: &SourceFile, open: usize, close: usize) -> Vec<TaintSink> {
    let toks = &file.toks;
    let mut tainted: BTreeMap<String, u32> = BTreeMap::new();
    let mut out = Vec::new();

    let mut k = open;
    while k <= close {
        let t = &toks[k];
        if t.kind != TokKind::Ident {
            k += 1;
            continue;
        }
        let next_is = |off: usize, s: &str| toks.get(k + off).is_some_and(|x| x.text == s);

        // Source: a raw wire read bound to a name.
        let is_reader_source =
            SOURCES.contains(&t.text.as_str()) && k > 0 && toks[k - 1].text == ".";
        let is_raw_source = RAW_SOURCES.contains(&t.text.as_str());
        if (is_reader_source || is_raw_source) && next_is(1, "(") {
            if let Some(name) = binding_of(toks, open, k) {
                tainted.insert(name, t.line);
            }
            k += 1;
            continue;
        }

        // Sink: an allocation sized by a tainted name.
        if t.text == "with_capacity" && next_is(1, "(") {
            report_tainted_args(file, k + 1, close, &tainted, "with_capacity", &mut out);
        } else if (t.text == "reserve" || t.text == "reserve_exact")
            && k > 0
            && toks[k - 1].text == "."
            && next_is(1, "(")
        {
            report_tainted_args(file, k + 1, close, &tainted, "reserve", &mut out);
        } else if t.text == "vec" && next_is(1, "!") && next_is(2, "[") {
            // `vec![elem; len]` — only the length position allocates by
            // count; scan tokens after the top-level `;`.
            if let Some(semi) = macro_len_position(toks, k + 2, close) {
                report_tainted_range(file, semi, k + 2, close, &tainted, "vec![_; _]", &mut out);
            }
        }

        // Sanitizer: comparing or clamping a tainted name clears it.
        if tainted.contains_key(&t.text) {
            let compared = toks
                .get(k + 1)
                .is_some_and(|x| x.text == "<" || x.text == ">")
                || (k > 0 && (toks[k - 1].text == "<" || toks[k - 1].text == ">"));
            let clamped = next_is(1, ".")
                && toks
                    .get(k + 2)
                    .is_some_and(|x| x.text == "min" || x.text == "clamp");
            if compared || clamped {
                tainted.remove(&t.text);
                k += 1;
                continue;
            }
            // Propagation: `let y = …x…;` taints `y` too.
            if let Some(src) = tainted.get(&t.text).copied() {
                if let Some(name) = binding_of(toks, open, k) {
                    if name != t.text {
                        tainted.insert(name, src);
                    }
                }
            }
        }
        k += 1;
    }
    out
}

/// The name the statement containing token `k` binds (`let name = …` /
/// `name = …`), if `k` sits on the right-hand side of the `=`.
fn binding_of(toks: &[crate::lexer::Tok], body_open: usize, k: usize) -> Option<String> {
    let mut j = k;
    while j > body_open {
        match toks[j - 1].text.as_str() {
            ";" | "{" | "}" => break,
            _ => j -= 1,
        }
    }
    let first = &toks[j];
    if first.text == "let" {
        let mut n = j + 1;
        if toks.get(n).is_some_and(|t| t.text == "mut") {
            n += 1;
        }
        let name = toks.get(n).filter(|t| t.kind == TokKind::Ident)?;
        // Only a plain `let name = …` counts; `k` must be past the `=`.
        let eq = toks.get(n + 1).filter(|t| t.text == "=")?;
        let _ = eq;
        return (k > n + 1).then(|| name.text.clone());
    }
    if first.kind == TokKind::Ident
        && toks.get(j + 1).is_some_and(|t| t.text == "=")
        && toks.get(j + 2).is_none_or(|t| t.text != "=")
        && k > j + 1
    {
        return Some(first.text.clone());
    }
    None
}

/// Index of the top-level `;` inside the `[`…`]` of `vec![elem; len]`.
fn macro_len_position(
    toks: &[crate::lexer::Tok],
    open_bracket: usize,
    close: usize,
) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks
        .iter()
        .enumerate()
        .skip(open_bracket)
        .take(close + 1 - open_bracket)
    {
        match t.text.as_str() {
            "[" | "(" | "{" => depth += 1,
            "]" | ")" | "}" => {
                depth -= 1;
                if depth == 0 {
                    return None;
                }
            }
            ";" if depth == 1 => return Some(j),
            _ => {}
        }
    }
    None
}

/// Reports every tainted identifier inside the delimited group opening
/// at `open_delim` (used for call argument lists).
fn report_tainted_args(
    file: &SourceFile,
    open_delim: usize,
    close: usize,
    tainted: &BTreeMap<String, u32>,
    sink: &str,
    out: &mut Vec<TaintSink>,
) {
    report_tainted_range(file, open_delim, open_delim, close, tainted, sink, out);
}

/// Reports tainted identifiers between `start` and the token matching
/// the delimiter at `group_open`. An ident immediately clamped in place
/// (`n.min(64)`) is not reported.
fn report_tainted_range(
    file: &SourceFile,
    start: usize,
    group_open: usize,
    close: usize,
    tainted: &BTreeMap<String, u32>,
    sink: &str,
    out: &mut Vec<TaintSink>,
) {
    let toks = &file.toks;
    let (open_s, close_s) = match toks[group_open].text.as_str() {
        "[" => ("[", "]"),
        _ => ("(", ")"),
    };
    let mut depth = 0i32;
    let mut j = group_open;
    while j <= close {
        let t = &toks[j];
        if t.text == open_s {
            depth += 1;
        } else if t.text == close_s {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        if j >= start && t.kind == TokKind::Ident {
            if let Some(&source_line) = tainted.get(&t.text) {
                let clamped = toks.get(j + 1).is_some_and(|x| x.text == ".")
                    && toks
                        .get(j + 2)
                        .is_some_and(|x| x.text == "min" || x.text == "clamp");
                if !clamped {
                    out.push(TaintSink {
                        line: t.line,
                        col: t.col,
                        ident: t.text.clone(),
                        sink: sink.to_string(),
                        source_line,
                    });
                }
            }
        }
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn sinks(src: &str) -> Vec<TaintSink> {
        let f = SourceFile::parse(PathBuf::from("t.rs"), "t", src);
        let mut out = Vec::new();
        for item in &f.fns {
            if let Some((open, close)) = item.body {
                out.extend(scan_fn(&f, open, close));
            }
        }
        out
    }

    #[test]
    fn raw_read_into_with_capacity_is_tainted() {
        let s = sinks(
            "fn d(r: &mut ByteReader) -> R { let n = r.get_u32()? as usize; \
             let v = Vec::with_capacity(n); fill(v) }",
        );
        assert_eq!(s.len(), 1, "{s:?}");
        assert_eq!(s[0].ident, "n");
        assert_eq!(s[0].sink, "with_capacity");
    }

    #[test]
    fn get_count_is_a_sanctioned_source() {
        let s = sinks(
            "fn d(r: &mut ByteReader) -> R { let n = r.get_count(MAX, 2, \"xs\")?; \
             let v = Vec::with_capacity(n); fill(v) }",
        );
        assert!(s.is_empty(), "{s:?}");
    }

    #[test]
    fn dominating_comparison_sanitizes() {
        let s = sinks(
            "fn d(b: [u8; 4]) -> V { let len = u32::from_be_bytes(b); \
             if len > MAX_FRAME_LEN { return V::err(); } \
             let v = vec![0u8; len as usize]; V::ok(v) }",
        );
        assert!(s.is_empty(), "{s:?}");
    }

    #[test]
    fn unguarded_vec_macro_is_tainted() {
        let s = sinks(
            "fn d(b: [u8; 4]) -> V { let len = u32::from_be_bytes(b); \
             let v = vec![0u8; len as usize]; V::ok(v) }",
        );
        assert_eq!(s.len(), 1, "{s:?}");
        assert_eq!(s[0].sink, "vec![_; _]");
        assert_eq!(s[0].ident, "len");
    }

    #[test]
    fn clamp_in_place_sanitizes() {
        let s = sinks(
            "fn d(r: &mut ByteReader) -> R { let n = r.get_u16()? as usize; \
             let v = Vec::with_capacity(n.min(64)); fill(v) }",
        );
        assert!(s.is_empty(), "{s:?}");
    }

    #[test]
    fn taint_propagates_through_let() {
        let s = sinks(
            "fn d(r: &mut ByteReader) -> R { let n = r.get_u64()?; \
             let total = n as usize * 8; r.buf.reserve(total); R::ok() }",
        );
        assert_eq!(s.len(), 1, "{s:?}");
        assert_eq!(s[0].ident, "total");
        assert_eq!(s[0].sink, "reserve");
    }

    #[test]
    fn vec_macro_element_position_is_not_a_sink() {
        let s = sinks(
            "fn d(r: &mut ByteReader) -> R { let n = r.get_u32()?; \
             let v = vec![n; 4]; R::ok(v) }",
        );
        assert!(s.is_empty(), "{s:?}");
    }
}
