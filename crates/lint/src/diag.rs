//! Diagnostics: the finding type, rustc-style rendering, and the JSON
//! report (hand-rolled writer — the workspace is dependency-free).

use std::fmt::Write as _;
use std::path::Path;

/// Severity of a finding. Only `Error` affects the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Error,
    Warning,
}

/// One finding, anchored to a file position.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub severity: Severity,
    /// Rule id, e.g. `determinism::wall-clock` or `panic::unwrap`.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
    /// One-line remediation hint.
    pub help: String,
}

impl Diagnostic {
    pub fn error(
        rule: &'static str,
        file: &Path,
        line: u32,
        col: u32,
        message: impl Into<String>,
        help: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity: Severity::Error,
            rule,
            file: file.display().to_string(),
            line,
            col,
            message: message.into(),
            help: help.into(),
        }
    }

    pub fn warning(
        rule: &'static str,
        file: &Path,
        line: u32,
        col: u32,
        message: impl Into<String>,
        help: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            rule,
            file: file.display().to_string(),
            line,
            col,
            message: message.into(),
            help: help.into(),
        }
    }

    /// Renders the finding in rustc's two-line style:
    ///
    /// ```text
    /// error[panic::unwrap]: `unwrap()` on the serving surface
    ///   --> crates/server/src/connection.rs:196:34
    ///   = help: return a typed ServerError instead
    /// ```
    #[must_use]
    pub fn render(&self) -> String {
        let level = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        let mut out = String::new();
        let _ = writeln!(out, "{level}[{}]: {}", self.rule, self.message);
        let _ = writeln!(out, "  --> {}:{}:{}", self.file, self.line, self.col);
        if !self.help.is_empty() {
            let _ = writeln!(out, "  = help: {}", self.help);
        }
        out
    }
}

/// Sorts findings into a stable display order: file, line, column, rule.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serialises the findings as a JSON report.
#[must_use]
pub fn to_json(diags: &[Diagnostic], files_scanned: usize) -> String {
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    let mut out = String::new();
    out.push_str("{\n  \"tool\": \"rebootlint\",\n");
    let _ = writeln!(out, "  \"files_scanned\": {files_scanned},");
    let _ = writeln!(out, "  \"errors\": {errors},");
    let _ = writeln!(out, "  \"warnings\": {warnings},");
    out.push_str("  \"diagnostics\": [\n");
    for (i, d) in diags.iter().enumerate() {
        let sev = match d.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        let _ = write!(
            out,
            "    {{\"severity\": \"{sev}\", \"rule\": \"{}\", \"file\": \"{}\", \
             \"line\": {}, \"col\": {}, \"message\": \"{}\", \"help\": \"{}\"}}",
            json_escape(d.rule),
            json_escape(&d.file),
            d.line,
            d.col,
            json_escape(&d.message),
            json_escape(&d.help),
        );
        out.push_str(if i + 1 < diags.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn render_matches_rustc_shape() {
        let d = Diagnostic::error(
            "panic::unwrap",
            &PathBuf::from("crates/server/src/x.rs"),
            12,
            3,
            "`unwrap()` in non-test library code",
            "return a typed error",
        );
        let s = d.render();
        assert!(s.starts_with("error[panic::unwrap]: "));
        assert!(s.contains("--> crates/server/src/x.rs:12:3"));
        assert!(s.contains("= help: return a typed error"));
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let d = Diagnostic::error(
            "wire::frozen",
            &PathBuf::from("a\\b.rs"),
            1,
            1,
            "edited \"frozen\" fn",
            "",
        );
        let j = to_json(&[d], 3);
        assert!(j.contains("\"files_scanned\": 3"));
        assert!(j.contains("\"errors\": 1"));
        assert!(j.contains("a\\\\b.rs"));
        assert!(j.contains("\\\"frozen\\\""));
    }

    #[test]
    fn sort_is_by_position() {
        let mk = |file: &str, line| Diagnostic::error("r", &PathBuf::from(file), line, 1, "m", "");
        let mut v = vec![mk("b.rs", 1), mk("a.rs", 9), mk("a.rs", 2)];
        sort(&mut v);
        assert_eq!(
            v.iter()
                .map(|d| (d.file.clone(), d.line))
                .collect::<Vec<_>>(),
            vec![("a.rs".into(), 2), ("a.rs".into(), 9), ("b.rs".into(), 1)]
        );
    }
}
