//! A hand-rolled Rust lexer: just enough token structure for invariant
//! scanning, with line/column tracking and comment capture.
//!
//! The lexer is total — any byte sequence produces a token stream — and
//! deliberately simpler than rustc's: it distinguishes identifiers,
//! literals, lifetimes and punctuation, merges `::` into one token, and
//! records every comment (the `// lint:allow(...)` escape hatch lives in
//! comments). It does not attempt full float-suffix or numeric-literal
//! fidelity; rule matching only needs identifier and shape information.

/// What a token is, at the granularity the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unwrap`, `HashMap`, `r#async`).
    Ident,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Numeric literal (`0x83`, `1_000`, `1.5e-3`).
    Num,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Punctuation. Single characters, except `::` which is one token.
    Punct,
}

/// One lexed token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

/// One comment (line `//…` or block `/*…*/`), with the line it starts on.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
}

/// A lexed source file: the token stream plus all comments.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into tokens and comments. Never fails: unrecognised bytes
/// become single-character punctuation tokens.
pub fn lex(src: &str) -> Lexed {
    let mut c = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();

    while let Some(b) = c.peek(0) {
        let (line, col) = (c.line, c.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek(1) == Some(b'/') => {
                let start = c.pos;
                while c.peek(0).is_some_and(|b| b != b'\n') {
                    c.bump();
                }
                out.comments.push(Comment {
                    text: String::from_utf8_lossy(&c.src[start..c.pos]).into_owned(),
                    line,
                });
            }
            b'/' if c.peek(1) == Some(b'*') => {
                let start = c.pos;
                c.bump();
                c.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match (c.peek(0), c.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            c.bump();
                            c.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            c.bump();
                            c.bump();
                        }
                        (Some(_), _) => {
                            c.bump();
                        }
                        (None, _) => break,
                    }
                }
                out.comments.push(Comment {
                    text: String::from_utf8_lossy(&c.src[start..c.pos]).into_owned(),
                    line,
                });
            }
            b'r' | b'b' if starts_raw_string(&c) => {
                let start = c.pos;
                lex_raw_string(&mut c);
                push(&mut out, TokKind::Str, &c, start, line, col);
            }
            b'b' if c.peek(1) == Some(b'\'') => {
                let start = c.pos;
                c.bump();
                lex_char(&mut c);
                push(&mut out, TokKind::Char, &c, start, line, col);
            }
            b'b' if c.peek(1) == Some(b'"') => {
                let start = c.pos;
                c.bump();
                lex_string(&mut c);
                push(&mut out, TokKind::Str, &c, start, line, col);
            }
            b'"' => {
                let start = c.pos;
                lex_string(&mut c);
                push(&mut out, TokKind::Str, &c, start, line, col);
            }
            b'\'' => {
                let start = c.pos;
                if is_char_literal(&c) {
                    lex_char(&mut c);
                    push(&mut out, TokKind::Char, &c, start, line, col);
                } else {
                    c.bump();
                    while c.peek(0).is_some_and(is_ident_continue) {
                        c.bump();
                    }
                    push(&mut out, TokKind::Lifetime, &c, start, line, col);
                }
            }
            b'r' if c.peek(1) == Some(b'#') && c.peek(2).is_some_and(is_ident_start) => {
                let start = c.pos;
                c.bump();
                c.bump();
                while c.peek(0).is_some_and(is_ident_continue) {
                    c.bump();
                }
                push(&mut out, TokKind::Ident, &c, start, line, col);
            }
            _ if is_ident_start(b) => {
                let start = c.pos;
                while c.peek(0).is_some_and(is_ident_continue) {
                    c.bump();
                }
                push(&mut out, TokKind::Ident, &c, start, line, col);
            }
            _ if b.is_ascii_digit() => {
                let start = c.pos;
                lex_number(&mut c);
                push(&mut out, TokKind::Num, &c, start, line, col);
            }
            b':' if c.peek(1) == Some(b':') => {
                let start = c.pos;
                c.bump();
                c.bump();
                push(&mut out, TokKind::Punct, &c, start, line, col);
            }
            _ => {
                let start = c.pos;
                c.bump();
                push(&mut out, TokKind::Punct, &c, start, line, col);
            }
        }
    }
    out
}

fn push(out: &mut Lexed, kind: TokKind, c: &Cursor<'_>, start: usize, line: u32, col: u32) {
    out.toks.push(Tok {
        kind,
        text: String::from_utf8_lossy(&c.src[start..c.pos]).into_owned(),
        line,
        col,
    });
}

/// `r"…"`, `r#"…"#`, `br"…"`, `br##"…"##`?
fn starts_raw_string(c: &Cursor<'_>) -> bool {
    let mut i = 1;
    if c.peek(0) == Some(b'b') {
        if c.peek(1) != Some(b'r') {
            return false;
        }
        i = 2;
    }
    while c.peek(i) == Some(b'#') {
        i += 1;
    }
    // `r#ident` (raw identifier) has an identifier character, not a quote,
    // after the hashes.
    c.peek(i) == Some(b'"')
}

fn lex_raw_string(c: &mut Cursor<'_>) {
    if c.peek(0) == Some(b'b') {
        c.bump();
    }
    c.bump(); // r
    let mut hashes = 0usize;
    while c.peek(0) == Some(b'#') {
        c.bump();
        hashes += 1;
    }
    c.bump(); // opening quote
    loop {
        match c.bump() {
            None => break,
            Some(b'"') => {
                let mut matched = 0usize;
                while matched < hashes && c.peek(0) == Some(b'#') {
                    c.bump();
                    matched += 1;
                }
                if matched == hashes {
                    break;
                }
            }
            Some(_) => {}
        }
    }
}

fn lex_string(c: &mut Cursor<'_>) {
    c.bump(); // opening quote
    loop {
        match c.bump() {
            None | Some(b'"') => break,
            Some(b'\\') => {
                c.bump();
            }
            Some(_) => {}
        }
    }
}

/// After a `'`, decide char literal vs lifetime.
fn is_char_literal(c: &Cursor<'_>) -> bool {
    match c.peek(1) {
        Some(b'\\') => true,
        Some(b) if is_ident_continue(b) => c.peek(2) == Some(b'\''),
        Some(_) => true, // e.g. '(' — punctuation chars are never lifetimes
        None => false,
    }
}

fn lex_char(c: &mut Cursor<'_>) {
    c.bump(); // opening quote
    loop {
        match c.bump() {
            None | Some(b'\'') => break,
            Some(b'\\') => {
                c.bump();
            }
            Some(_) => {}
        }
    }
}

fn lex_number(c: &mut Cursor<'_>) {
    while c.peek(0).is_some_and(is_ident_continue) {
        let consumed = c.bump();
        // Exponent sign: `1e-3`, `2.5E+10`.
        if matches!(consumed, Some(b'e' | b'E'))
            && matches!(c.peek(0), Some(b'+' | b'-'))
            && c.peek(1).is_some_and(|b| b.is_ascii_digit())
        {
            c.bump();
        }
    }
    // Fractional part: `1.5` but not the range `1..n` or a method `1.max(2)`.
    if c.peek(0) == Some(b'.') && c.peek(1).is_some_and(|b| b.is_ascii_digit()) {
        c.bump();
        while c.peek(0).is_some_and(is_ident_continue) {
            let consumed = c.bump();
            if matches!(consumed, Some(b'e' | b'E'))
                && matches!(c.peek(0), Some(b'+' | b'-'))
                && c.peek(1).is_some_and(|b| b.is_ascii_digit())
            {
                c.bump();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .toks
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_paths() {
        let toks = kinds("Instant::now()");
        assert_eq!(toks[0], (TokKind::Ident, "Instant".into()));
        assert_eq!(toks[1], (TokKind::Punct, "::".into()));
        assert_eq!(toks[2], (TokKind::Ident, "now".into()));
    }

    #[test]
    fn comments_are_captured_not_tokenised() {
        let lexed = lex("a // lint:allow(panic, reason = \"x\")\nb /* block */ c");
        assert_eq!(lexed.toks.len(), 3);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("lint:allow"));
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "unwrap() // not a comment";"#);
        assert!(toks.iter().any(|(k, _)| *k == TokKind::Str));
        assert!(!toks.iter().any(|(_, t)| t == "unwrap"));
        assert_eq!(lex(r#""a\"b" x"#).toks.len(), 2);
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let toks = kinds(r##"r#"panic!() inside"# r#fn b"bytes" br"raw""##);
        assert_eq!(toks[0].0, TokKind::Str);
        assert_eq!(toks[1], (TokKind::Ident, "r#fn".into()));
        assert_eq!(toks[2].0, TokKind::Str);
        assert_eq!(toks[3].0, TokKind::Str);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("&'a str 'x' '\\n' b'z'");
        assert_eq!(toks[1].0, TokKind::Lifetime);
        assert_eq!(toks[3].0, TokKind::Char);
        assert_eq!(toks[4].0, TokKind::Char);
        assert_eq!(toks[5].0, TokKind::Char);
    }

    #[test]
    fn numbers_stay_whole() {
        let toks = kinds("0x83 1_000 1.5e-3 1..n a.0");
        assert_eq!(toks[0], (TokKind::Num, "0x83".into()));
        assert_eq!(toks[1], (TokKind::Num, "1_000".into()));
        assert_eq!(toks[2], (TokKind::Num, "1.5e-3".into()));
        assert_eq!(toks[3], (TokKind::Num, "1".into()));
        assert_eq!(toks[4], (TokKind::Punct, ".".into()));
    }

    #[test]
    fn positions_are_one_based() {
        let lexed = lex("a\n  b");
        assert_eq!((lexed.toks[0].line, lexed.toks[0].col), (1, 1));
        assert_eq!((lexed.toks[1].line, lexed.toks[1].col), (2, 3));
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* a /* b */ c */ x");
        assert_eq!(lexed.toks.len(), 1);
        assert_eq!(lexed.toks[0].text, "x");
    }
}
