//! `rebootlint` — an offline, dependency-free invariant checker for this
//! workspace.
//!
//! The repo's core contract is that chaos runs, planner routing, and
//! cross-wire results replay byte-for-byte — served from a
//! single-threaded readiness loop fed hostile input. The runtime tests
//! enforce the contract after the fact; this crate enforces its
//! *ingredients* at the source level, with eight rule families:
//!
//! | family | rule ids | scope |
//! |---|---|---|
//! | determinism | `determinism::{wall-clock, system-time, thread-rng, hash-iter}` | `accel`, `wire`, `mem`, `osc`, `quantum`, `numerics`, `runtime` |
//! | panic-hygiene | `panic::{unwrap, expect, panic, todo, unimplemented, index}` | `wire`, `server`, `accel::host` |
//! | wire-freeze | `wire::{frozen, tag-dup, version-freeze}` | `crates/wire` + the registry |
//! | family-tag-freeze | `family::{frozen, tag-dup}` | `accel::family::FAMILY_TAGS` + the registry |
//! | lock-order | `locks::cycle` | `runtime`, `server`, `cluster` |
//! | event-loop | `eventloop::blocking` | `cluster`, `server` (minus the blocking client tier) |
//! | alloc-bounds | `alloc::unbounded` | `wire`, `cluster`, `server`, `admission` |
//! | channel-discipline | `channel::send-under-lock` + edges into `locks::cycle` | `runtime`, `server`, `cluster` |
//!
//! The first five work on flat token scans; the last three sit on the
//! syntactic analysis pipeline (lexer → function items →
//! [`callgraph`] → [`dataflow`]).
//!
//! Legitimate violations are annotated in place:
//!
//! ```text
//! // lint:allow(wall-clock, reason = "latency stamping; never feeds a result")
//! let now = Instant::now();
//! ```
//!
//! An allow without a reason is itself an error, and so is an allow that
//! suppresses nothing — stale suppressions hide exactly the regressions
//! the lint exists to catch.

pub mod callgraph;
pub mod dataflow;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod source;

use diag::{Diagnostic, Severity};
use rules::locks::LockGraph;
use source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose results must replay byte-for-byte: wall-clock, ambient
/// entropy and epoch reads are forbidden (annotated escapes aside).
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "accel",
    "wire",
    "mem",
    "osc",
    "quantum",
    "numerics",
    "runtime",
    "admission",
    "cluster",
];

/// The strictly pure subset where even hash-order iteration is forbidden.
/// `runtime`/`server`/`cluster` legitimately keep hash maps for keyed
/// lookup.
pub const HASH_ITER_CRATES: &[&str] = &[
    "accel",
    "wire",
    "mem",
    "osc",
    "quantum",
    "numerics",
    "admission",
];

/// Hostile-input and serving surfaces: library code must not panic.
pub const PANIC_CRATES: &[&str] = &["wire", "server", "admission", "cluster"];

/// Crates whose `Mutex`/`Condvar` acquisitions feed the lock-order graph.
/// Channel endpoints in these crates join the same graph, so
/// lock↔channel cycles fail like lock↔lock cycles.
pub const LOCK_CRATES: &[&str] = &["runtime", "server", "cluster"];

/// Crates served from the single-threaded readiness loop: nothing
/// reachable from the dispatch path (`fn event_loop`, `poll.rs`) may
/// block without an audited annotation.
pub const EVENTLOOP_CRATES: &[&str] = &["cluster", "server"];

/// Files excluded from the event-loop call graph: the synchronous
/// client is the designed blocking tier, and its trivially named methods
/// (`submit`, `wait`, `stats`) would otherwise alias loop-side calls.
pub const EVENTLOOP_EXEMPT_FILES: &[&str] = &["client.rs"];

/// Crates whose decode paths must bound wire-derived allocation sizes.
pub const ALLOC_CRATES: &[&str] = &["wire", "cluster", "server", "admission"];

/// Workspace-relative path of the wire-freeze registry.
pub const WIRE_REGISTRY: &str = "crates/lint/wire_freeze.registry";

/// Workspace-relative path of the kernel-family tag registry.
pub const FAMILY_REGISTRY: &str = "crates/lint/family_tags.registry";

const MISSING_REASON: &str = "allow::missing-reason";
const UNUSED_ALLOW: &str = "allow::unused";

/// The outcome of a lint run.
#[derive(Debug)]
pub struct Report {
    pub diags: Vec<Diagnostic>,
    pub files_scanned: usize,
}

impl Report {
    #[must_use]
    pub fn errors(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    #[must_use]
    pub fn warnings(&self) -> usize {
        self.diags.len() - self.errors()
    }
}

fn scanned_crates() -> BTreeSet<&'static str> {
    DETERMINISTIC_CRATES
        .iter()
        .chain(HASH_ITER_CRATES)
        .chain(PANIC_CRATES)
        .chain(LOCK_CRATES)
        .chain(EVENTLOOP_CRATES)
        .chain(ALLOC_CRATES)
        .chain(["accel", "wire"].iter())
        .copied()
        .collect()
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Loads every `crates/<crate>/src/**/*.rs` for the crates any rule
/// applies to. Paths inside the returned files are workspace-relative.
pub fn load_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for crate_name in scanned_crates() {
        let src_dir = root.join("crates").join(crate_name).join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut paths = Vec::new();
        walk_rs(&src_dir, &mut paths)?;
        for path in paths {
            let text = fs::read_to_string(&path)?;
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            files.push(SourceFile::parse(rel, crate_name, &text));
        }
    }
    Ok(files)
}

/// Runs every rule over pre-parsed sources. `wire_registry` and
/// `family_registry` are the texts of the two freeze registries ("" when
/// absent — every frozen item then fails as unblessed).
#[must_use]
pub fn check_sources(files: &[SourceFile], wire_registry: &str, family_registry: &str) -> Report {
    let mut raw = Vec::new();

    for file in files {
        let c = file.crate_name.as_str();
        if DETERMINISTIC_CRATES.contains(&c) {
            rules::determinism::check(file, HASH_ITER_CRATES.contains(&c), &mut raw);
        }
        let panic_surface = PANIC_CRATES.contains(&c)
            || (c == "accel" && file.path.file_name().is_some_and(|n| n == "host.rs"));
        if panic_surface {
            rules::panics::check(file, &mut raw);
        }
        if ALLOC_CRATES.contains(&c) {
            rules::alloc::check(file, &mut raw);
        }
    }

    let mut graph = LockGraph::default();
    for file in files {
        if LOCK_CRATES.contains(&file.crate_name.as_str()) {
            rules::locks::collect(file, &mut graph);
            rules::channel::collect(file, &mut graph, &mut raw);
        }
    }
    rules::locks::check_cycles(&graph, &mut raw);

    let loop_files: Vec<&SourceFile> = files
        .iter()
        .filter(|f| EVENTLOOP_CRATES.contains(&f.crate_name.as_str()))
        .filter(|f| {
            !f.path
                .file_name()
                .is_some_and(|n| EVENTLOOP_EXEMPT_FILES.iter().any(|e| n == *e))
        })
        .collect();
    rules::eventloop::check(&loop_files, &mut raw);

    let wire_files: BTreeMap<String, &SourceFile> = files
        .iter()
        .filter(|f| f.crate_name == "wire")
        .filter_map(|f| {
            f.path
                .file_stem()
                .map(|s| (s.to_string_lossy().into_owned(), f))
        })
        .collect();
    if !wire_files.is_empty() {
        rules::freeze::check(
            &wire_files,
            wire_registry,
            Path::new(WIRE_REGISTRY),
            &mut raw,
        );
    }

    if let Some(family_file) = find_family_file(files) {
        rules::families::check(
            family_file,
            family_registry,
            Path::new(FAMILY_REGISTRY),
            &mut raw,
        );
    }

    apply_allows(files, raw)
}

/// Filters raw findings through the `lint:allow` escape hatches, demands
/// reasons, and flags stale allows.
fn apply_allows(files: &[SourceFile], raw: Vec<Diagnostic>) -> Report {
    let by_path: BTreeMap<String, &SourceFile> = files
        .iter()
        .map(|f| (f.path.display().to_string(), f))
        .collect();
    let mut used: BTreeMap<(String, usize), bool> = BTreeMap::new();
    let mut kept = Vec::new();

    for d in raw {
        let suppressed = by_path
            .get(&d.file)
            .and_then(|f| f.allow_for(d.rule, d.line).map(|idx| (d.file.clone(), idx)));
        match suppressed {
            Some(key) => {
                used.insert(key, true);
            }
            None => kept.push(d),
        }
    }

    for (path, file) in &by_path {
        for (idx, allow) in file.allows.iter().enumerate() {
            let was_used = used.contains_key(&(path.clone(), idx));
            if was_used && allow.reason.is_none() {
                kept.push(Diagnostic::error(
                    MISSING_REASON,
                    &file.path,
                    allow.line,
                    allow.col,
                    format!("`lint:allow({})` has no reason", allow.rule),
                    "write `// lint:allow(rule, reason = \"why this site is sound\")`",
                ));
            } else if !was_used {
                kept.push(Diagnostic::error(
                    UNUSED_ALLOW,
                    &file.path,
                    allow.line,
                    allow.col,
                    format!("`lint:allow({})` suppresses nothing", allow.rule),
                    "delete the stale annotation — a suppression outliving its \
                     violation hides the next regression at this site",
                ));
            }
        }
    }

    diag::sort(&mut kept);
    Report {
        diags: kept,
        files_scanned: files.len(),
    }
}

/// The source holding the kernel-family tag table.
fn find_family_file(files: &[SourceFile]) -> Option<&SourceFile> {
    files
        .iter()
        .find(|f| f.crate_name == "accel" && f.path.file_name().is_some_and(|n| n == "family.rs"))
}

/// Full workspace check: loads sources and both freeze registries from
/// `root` and runs every rule.
pub fn check_workspace(root: &Path) -> io::Result<Report> {
    let files = load_workspace(root)?;
    let wire = fs::read_to_string(root.join(WIRE_REGISTRY)).unwrap_or_default();
    let family = fs::read_to_string(root.join(FAMILY_REGISTRY)).unwrap_or_default();
    Ok(check_sources(&files, &wire, &family))
}

/// Checks explicit files (fixtures, ad-hoc runs) with the determinism,
/// panic-hygiene, lock-order, event-loop, alloc-bounds and
/// channel-discipline rules — everything except the freeze rules, which
/// only make sense against the real workspace trees.
pub fn check_files(paths: &[PathBuf]) -> io::Result<Report> {
    let mut files = Vec::new();
    for path in paths {
        let text = fs::read_to_string(path)?;
        files.push(SourceFile::parse(path.clone(), "fixture", &text));
    }
    let mut raw = Vec::new();
    let mut graph = LockGraph::default();
    for file in &files {
        rules::determinism::check(file, true, &mut raw);
        rules::panics::check(file, &mut raw);
        rules::alloc::check(file, &mut raw);
        rules::locks::collect(file, &mut graph);
        rules::channel::collect(file, &mut graph, &mut raw);
    }
    rules::locks::check_cycles(&graph, &mut raw);
    let refs: Vec<&SourceFile> = files.iter().collect();
    rules::eventloop::check(&refs, &mut raw);
    Ok(apply_allows(&files, raw))
}

/// Regenerates the wire-freeze registry from the current sources and
/// writes it to `root/`[`WIRE_REGISTRY`]. Returns the rendered registry.
pub fn bless_wire(root: &Path) -> io::Result<String> {
    let files = load_workspace(root)?;
    let wire_files: BTreeMap<String, &SourceFile> = files
        .iter()
        .filter(|f| f.crate_name == "wire")
        .filter_map(|f| {
            f.path
                .file_stem()
                .map(|s| (s.to_string_lossy().into_owned(), f))
        })
        .collect();
    let rendered = rules::freeze::bless(&wire_files);
    fs::write(root.join(WIRE_REGISTRY), &rendered)?;
    Ok(rendered)
}

/// Regenerates the family-tag registry from the current
/// `accel::family::FAMILY_TAGS` table and writes it to
/// `root/`[`FAMILY_REGISTRY`]. Returns the rendered registry.
pub fn bless_families(root: &Path) -> io::Result<String> {
    let files = load_workspace(root)?;
    let Some(family_file) = find_family_file(&files) else {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            "crates/accel/src/family.rs not found — nothing to bless",
        ));
    };
    let rendered = rules::families::bless(family_file);
    fs::write(root.join(FAMILY_REGISTRY), &rendered)?;
    Ok(rendered)
}

/// Ascends from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src_file(name: &str, crate_name: &str, src: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from(name), crate_name, src)
    }

    #[test]
    fn allows_suppress_and_track_usage() {
        let f = src_file(
            "crates/runtime/src/x.rs",
            "runtime",
            "fn f() {\n    // lint:allow(wall-clock, reason = \"latency only\")\n    let t = Instant::now();\n}\n",
        );
        let report = check_sources(std::slice::from_ref(&f), "", "");
        assert!(
            report
                .diags
                .iter()
                .all(|d| d.rule != "determinism::wall-clock"),
            "{:?}",
            report.diags
        );
    }

    #[test]
    fn allow_without_reason_is_an_error() {
        let f = src_file(
            "crates/runtime/src/x.rs",
            "runtime",
            "fn f() {\n    // lint:allow(wall-clock)\n    let t = Instant::now();\n}\n",
        );
        let report = check_sources(std::slice::from_ref(&f), "", "");
        assert!(report
            .diags
            .iter()
            .any(|d| d.rule == "allow::missing-reason"));
    }

    #[test]
    fn stale_allow_is_an_error() {
        let f = src_file(
            "crates/runtime/src/x.rs",
            "runtime",
            "// lint:allow(wall-clock, reason = \"nothing here\")\nfn f() {}\n",
        );
        let report = check_sources(std::slice::from_ref(&f), "", "");
        assert!(report.diags.iter().any(|d| d.rule == "allow::unused"));
        assert_eq!(report.errors(), 1, "{:?}", report.diags);
    }

    #[test]
    fn rules_are_scoped_per_crate() {
        // unwrap in runtime is fine (panic rules target wire/server);
        // Instant::now in server is fine (determinism targets the
        // deterministic crates).
        let runtime = src_file(
            "crates/runtime/src/x.rs",
            "runtime",
            "fn f(x: Option<u8>) -> u8 { x.unwrap() }",
        );
        let server = src_file(
            "crates/server/src/y.rs",
            "server",
            "fn g() { let t = Instant::now(); go(t); }",
        );
        let report = check_sources(&[runtime, server], "", "");
        assert_eq!(report.errors(), 0, "{:?}", report.diags);
    }
}
