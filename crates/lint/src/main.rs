//! `rebootlint` CLI.
//!
//! ```text
//! cargo run -p lint                      # check the whole workspace
//! cargo run -p lint -- --json report.json
//! cargo run -p lint -- --bless-wire     # re-record the wire-freeze registry
//! cargo run -p lint -- --bless-families # re-record the family-tag registry
//! cargo run -p lint -- --files a.rs ... # run the file-local rules on fixtures
//! ```
//!
//! Exit status: 0 when no errors (warnings allowed), 1 on any error,
//! 2 on usage or I/O problems.

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: Option<PathBuf>,
    json: Option<String>,
    bless_wire: bool,
    bless_families: bool,
    files: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        json: None,
        bless_wire: false,
        bless_families: false,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root needs a directory")?;
                args.root = Some(PathBuf::from(v));
            }
            "--json" => {
                args.json = Some(it.next().unwrap_or_else(|| "-".to_string()));
            }
            "--bless-wire" => args.bless_wire = true,
            "--bless-families" => args.bless_families = true,
            "--files" => {
                args.files.extend(it.by_ref().map(PathBuf::from));
            }
            "--help" | "-h" => {
                return Err("usage: rebootlint [--root DIR] [--json [FILE|-]] \
                            [--bless-wire] [--bless-families] [--files FILE...]"
                    .to_string())
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let report = if args.files.is_empty() {
        let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        let root = args
            .root
            .clone()
            .or_else(|| lint::find_workspace_root(&cwd));
        let Some(root) = root else {
            eprintln!("rebootlint: no workspace root found (looked for a Cargo.toml with [workspace]); pass --root");
            return ExitCode::from(2);
        };
        if args.bless_wire || args.bless_families {
            let mut blessings = Vec::new();
            if args.bless_wire {
                blessings.push((lint::bless_wire(&root), lint::WIRE_REGISTRY));
            }
            if args.bless_families {
                blessings.push((lint::bless_families(&root), lint::FAMILY_REGISTRY));
            }
            for (result, registry) in blessings {
                match result {
                    Ok(rendered) => {
                        let entries = rendered
                            .lines()
                            .filter(|l| !l.trim_start().starts_with('#') && !l.trim().is_empty())
                            .count();
                        println!("rebootlint: blessed {registry} ({entries} entries)");
                    }
                    Err(e) => {
                        eprintln!("rebootlint: bless failed: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            return ExitCode::SUCCESS;
        }
        match lint::check_workspace(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("rebootlint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        match lint::check_files(&args.files) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("rebootlint: {e}");
                return ExitCode::from(2);
            }
        }
    };

    for d in &report.diags {
        print!("{}", d.render());
    }
    let summary = format!(
        "rebootlint: checked {} files: {} errors, {} warnings",
        report.files_scanned,
        report.errors(),
        report.warnings()
    );
    println!("{summary}");

    if let Some(dest) = &args.json {
        let json = lint::diag::to_json(&report.diags, report.files_scanned);
        if dest == "-" {
            print!("{json}");
        } else if let Err(e) = std::fs::write(dest, json) {
            eprintln!("rebootlint: writing {dest}: {e}");
            return ExitCode::from(2);
        }
    }

    if report.errors() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
