//! No attacker-sized allocation in decode paths.
//!
//! PR 2's codec review established the contract in a comment: a length
//! or count read off the wire must be validated against a cap before it
//! sizes an allocation. This rule enforces it with the intra-function
//! taint analysis in [`crate::dataflow`]: a raw `ByteReader` integer
//! read (or `from_be_bytes`/`from_le_bytes` decode) that flows into
//! `Vec::with_capacity`, `.reserve`/`.reserve_exact`, or the length
//! position of `vec![_; _]` without a dominating comparison (`<`/`>`)
//! or in-place clamp (`.min`/`.clamp`) is an error.
//!
//! `ByteReader::get_count` and `get_str` are the sanctioned
//! cross-function escape: they validate against both an explicit cap and
//! the bytes actually remaining, so values they return are clean.

use crate::dataflow;
use crate::diag::Diagnostic;
use crate::source::SourceFile;

pub const UNBOUNDED: &str = "alloc::unbounded";

/// Runs the taint analysis over every non-test function of `file`.
pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for item in &file.fns {
        if item.in_test {
            continue;
        }
        let Some((open, close)) = item.body else {
            continue;
        };
        for sink in dataflow::scan_fn(file, open, close) {
            out.push(Diagnostic::error(
                UNBOUNDED,
                &file.path,
                sink.line,
                sink.col,
                format!(
                    "`{}` sized by `{}`, a wire-derived value (read at line {}) \
                     never compared against a cap",
                    sink.sink, sink.ident, sink.source_line
                ),
                "bound it first (compare against a cap, `.min(cap)`, or read it \
                 via `ByteReader::get_count`)",
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse(PathBuf::from("codec.rs"), "wire", src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn unguarded_capacity_is_an_error_with_source_line() {
        let out = run(
            "fn decode(r: &mut ByteReader) -> R {\n    let n = r.get_u32()? as usize;\n    let v = Vec::with_capacity(n);\n    fill(v)\n}",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, UNBOUNDED);
        assert_eq!(out[0].line, 3);
        assert!(out[0].message.contains("read at line 2"), "{out:?}");
    }

    #[test]
    fn guarded_capacity_is_clean() {
        let out = run(
            "fn decode(r: &mut ByteReader) -> R {\n    let n = r.get_u32()? as usize;\n    if n > MAX { return R::err(); }\n    let v = Vec::with_capacity(n);\n    fill(v)\n}",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn test_functions_are_exempt() {
        let out = run(
            "#[cfg(test)]\nmod tests {\n    fn decode(r: &mut ByteReader) -> R {\n        let n = r.get_u32()? as usize;\n        let v = Vec::with_capacity(n);\n        fill(v)\n    }\n}",
        );
        assert!(out.is_empty(), "{out:?}");
    }
}
