//! Channel discipline for the concurrent crates.
//!
//! A bounded channel is a lock in disguise: `SyncSender::send` parks the
//! caller until the consumer drains capacity, so sending while holding a
//! mutex couples the lock to the consumer's progress — the classic
//! producer-holds-lock / consumer-needs-lock deadlock. Two enforcement
//! layers:
//!
//! * **`channel::send-under-lock`** — a bounded send while any mutex
//!   guard is held is an immediate error, whatever the consumer does.
//! * **Graph edges.** Channel endpoints join the lock-order graph as
//!   `chan:<stem>::<name>` nodes: a bounded send under guard `A` adds
//!   `A → chan:C`; a recv (blocking on either channel flavour) under
//!   guard `A` adds `chan:C → A`. A lock↔channel cycle then fails
//!   [`super::locks::CYCLE`] exactly like a lock↔lock inversion.
//!
//! Endpoints are classified per file, by name: tuple bindings from
//! `mpsc::sync_channel` (bounded) or `mpsc::channel` (unbounded), and
//! `SyncSender<…>` / `Receiver<…>` type annotations on fields, params
//! and lets. Both ends of a tuple binding map to one channel node named
//! after the send end (`chan:<stem>::<tx>`); annotated endpoints share a
//! per-file node (`chan:<stem>`). Endpoints that reach the analysis
//! through an opaque binding (say, a guard returned by
//! `lock_or_recover`) are skipped rather than guessed.

use super::locks::{walk_guards, EdgeSite, LockGraph};
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::source::SourceFile;
use std::collections::BTreeMap;

pub const SEND_UNDER_LOCK: &str = "channel::send-under-lock";

/// Channel-endpoint classification for one file: identifier → channel
/// node id (`chan:<stem>::<name>`).
#[derive(Debug, Default)]
pub struct ChannelMap {
    /// Endpoints whose `send` can block (bounded channels only).
    pub bounded_send: BTreeMap<String, String>,
    /// Endpoints whose `recv` blocks (every channel flavour).
    pub recv: BTreeMap<String, String>,
}

impl ChannelMap {
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bounded_send.is_empty() && self.recv.is_empty()
    }
}

/// Classifies every channel endpoint named in `file`.
#[must_use]
pub fn channel_map(file: &SourceFile) -> ChannelMap {
    let stem = stem_of(file);
    let toks = &file.toks;
    let mut map = ChannelMap::default();

    for (k, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            // `let (tx, rx) = mpsc::sync_channel(..)` / `mpsc::channel()`.
            "sync_channel" | "channel" => {
                let Some((tx, rx)) = tuple_binding(toks, k) else {
                    continue;
                };
                let chan = format!("chan:{stem}::{tx}");
                if t.text == "sync_channel" {
                    map.bounded_send.insert(tx, chan.clone());
                }
                map.recv.insert(rx, chan);
            }
            // `name: SyncSender<..>` / `name: Receiver<..>` annotations.
            // Annotated endpoints can't be paired by construction site,
            // so they share one per-file channel node (`chan:<stem>`):
            // coarse, but it is what lets a send under lock A and a recv
            // under lock A in the same module close into a cycle.
            "SyncSender" => {
                if let Some(name) = annotated_binding(toks, k) {
                    map.bounded_send.insert(name, format!("chan:{stem}"));
                }
            }
            "Receiver" => {
                if let Some(name) = annotated_binding(toks, k) {
                    map.recv.insert(name, format!("chan:{stem}"));
                }
            }
            _ => {}
        }
    }
    map
}

/// Scans one file's non-test functions: flags bounded sends under a
/// guard and feeds lock↔channel ordering edges into `graph`.
pub fn collect(file: &SourceFile, graph: &mut LockGraph, out: &mut Vec<Diagnostic>) {
    let chans = channel_map(file);
    if chans.is_empty() {
        return;
    }
    let stem = stem_of(file);
    for item in &file.fns {
        if item.in_test {
            continue;
        }
        let Some((open, close)) = item.body else {
            continue;
        };
        let func = item.name.clone();
        let toks = &file.toks;
        walk_guards(
            file,
            &stem,
            open,
            close,
            &mut |_, _, _| {},
            &mut |k, held| {
                if held.is_empty() {
                    return;
                }
                let t = &toks[k];
                let method = t.kind == TokKind::Ident
                    && k >= 2
                    && toks[k - 1].text == "."
                    && toks[k - 2].kind == TokKind::Ident
                    && toks.get(k + 1).is_some_and(|n| n.text == "(");
                if !method {
                    return;
                }
                let recv_name = toks[k - 2].text.as_str();
                let site = || EdgeSite {
                    file: file.path.display().to_string(),
                    line: t.line,
                    col: t.col,
                    func: func.clone(),
                };
                match t.text.as_str() {
                    "send" | "try_send" if t.text == "send" => {
                        if let Some(chan) = chans.bounded_send.get(recv_name) {
                            let holding = held
                                .iter()
                                .map(|h| format!("`{}`", h.id))
                                .collect::<Vec<_>>()
                                .join(", ");
                            out.push(Diagnostic::error(
                                SEND_UNDER_LOCK,
                                &file.path,
                                t.line,
                                t.col,
                                format!("bounded channel send on `{chan}` while holding {holding}"),
                                "a full channel parks this thread while the guard blocks \
                                 the consumer; drop the guard before sending",
                            ));
                            for h in held {
                                graph.add_edge(&h.id, chan, site());
                            }
                        }
                    }
                    "recv" | "recv_timeout" => {
                        if let Some(chan) = chans.recv.get(recv_name) {
                            for h in held {
                                graph.add_edge(chan, &h.id, site());
                            }
                        }
                    }
                    _ => {}
                }
            },
        );
    }
}

fn stem_of(file: &SourceFile) -> String {
    file.path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default()
}

/// Matches `let ( a , b ) =` looking back from a channel constructor.
fn tuple_binding(toks: &[crate::lexer::Tok], k: usize) -> Option<(String, String)> {
    let mut j = k;
    while j > 0 {
        match toks[j - 1].text.as_str() {
            ";" | "{" | "}" => break,
            _ => j -= 1,
        }
    }
    if toks.get(j)?.text != "let" || toks.get(j + 1)?.text != "(" {
        return None;
    }
    let a = toks.get(j + 2).filter(|t| t.kind == TokKind::Ident)?;
    if toks.get(j + 3)?.text != "," {
        return None;
    }
    let b = toks.get(j + 4).filter(|t| t.kind == TokKind::Ident)?;
    if toks.get(j + 5)?.text != ")" {
        return None;
    }
    Some((a.text.clone(), b.text.clone()))
}

/// For a type name at `k`, the identifier it annotates: walks back over
/// type-ish tokens to the nearest `:` and takes the ident before it
/// (same shape as the determinism rule's hash-container detection).
fn annotated_binding(toks: &[crate::lexer::Tok], k: usize) -> Option<String> {
    let mut j = k;
    let mut budget = 12;
    while j > 0 && budget > 0 {
        j -= 1;
        budget -= 1;
        let text = toks[j].text.as_str();
        match toks[j].kind {
            TokKind::Punct if text == ":" => {
                return toks
                    .get(j.checked_sub(1)?)
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone());
            }
            TokKind::Punct if matches!(text, "<" | ">" | "&" | "::" | ",") => {}
            TokKind::Ident | TokKind::Lifetime | TokKind::Num => {}
            _ => break,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(src: &str) -> (LockGraph, Vec<Diagnostic>) {
        let f = SourceFile::parse(PathBuf::from("m.rs"), "t", src);
        let mut g = LockGraph::default();
        let mut out = Vec::new();
        collect(&f, &mut g, &mut out);
        (g, out)
    }

    #[test]
    fn bounded_send_under_lock_is_an_error() {
        let src = "
            fn produce(&self) {
                let (tx, rx) = mpsc::sync_channel(8);
                let guard = self.state.lock().unwrap();
                tx.send(1);
                drop(guard);
                consume(rx);
            }";
        let (g, out) = run(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, SEND_UNDER_LOCK);
        assert!(out[0].message.contains("chan:m::tx"));
        assert!(out[0].message.contains("m::state"));
        assert!(g
            .edges
            .get("m::state")
            .is_some_and(|m| m.contains_key("chan:m::tx")));
    }

    #[test]
    fn unbounded_send_under_lock_is_silent() {
        let src = "
            fn produce(&self) {
                let (tx, rx) = mpsc::channel();
                let guard = self.state.lock().unwrap();
                tx.send(1);
                drop(guard);
                consume(rx);
            }";
        let (g, out) = run(src);
        assert!(out.is_empty(), "{out:?}");
        assert!(!g.edges.contains_key("m::state"));
    }

    #[test]
    fn send_after_drop_is_clean() {
        let src = "
            fn produce(&self) {
                let (tx, rx) = mpsc::sync_channel(8);
                let guard = self.state.lock().unwrap();
                drop(guard);
                tx.send(1);
                consume(rx);
            }";
        let (_, out) = run(src);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn recv_under_lock_adds_a_reverse_edge_only() {
        let src = "
            fn consume(rx: Receiver<u8>, state: &Mutex<u8>) {
                let guard = state.lock().unwrap();
                let v = rx.recv();
                go(guard, v);
            }";
        let (g, out) = run(src);
        assert!(out.is_empty(), "{out:?}");
        assert!(g
            .edges
            .get("chan:m")
            .is_some_and(|m| m.contains_key("m::state")));
    }

    #[test]
    fn lock_channel_cycle_is_reported_like_a_lock_cycle() {
        let src = "
            fn produce(&self) {
                let guard = self.state.lock().unwrap();
                self.tx.send(1);
                drop(guard);
            }
            fn consume(&self) {
                let guard = self.state.lock().unwrap();
                let v = self.rx.recv();
                go(guard, v);
            }
            struct Plumbing { tx: SyncSender<u8>, rx: Receiver<u8>, state: Mutex<u8> }";
        let f = SourceFile::parse(PathBuf::from("m.rs"), "t", src);
        let mut g = LockGraph::default();
        let mut out = Vec::new();
        collect(&f, &mut g, &mut out);
        super::super::locks::check_cycles(&g, &mut out);
        assert!(
            out.iter().any(|d| d.rule == super::super::locks::CYCLE
                && d.message.contains("chan:m")
                && d.message.contains("m::state")),
            "{out:?}"
        );
    }
}
