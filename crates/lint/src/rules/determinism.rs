//! Determinism lints: the serving stack's replay guarantees (chaos runs,
//! cross-wire results, planner routing) hold only if no wall-clock time,
//! ambient entropy, or hash-iteration order leaks into result-bearing
//! code. These rules forbid the ingredients at the source level.
//!
//! * `determinism::wall-clock` — `Instant::now()`;
//! * `determinism::system-time` — any `SystemTime` / `UNIX_EPOCH` use;
//! * `determinism::thread-rng` — OS-entropy RNG constructors;
//! * `determinism::hash-iter` — iterating a `HashMap`/`HashSet`, whose
//!   order varies run to run (the deterministic crates should use sorted
//!   structures or `numerics::rng`-seeded shuffles instead).

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::source::SourceFile;
use std::collections::BTreeSet;

pub const WALL_CLOCK: &str = "determinism::wall-clock";
pub const SYSTEM_TIME: &str = "determinism::system-time";
pub const THREAD_RNG: &str = "determinism::thread-rng";
pub const HASH_ITER: &str = "determinism::hash-iter";

const ENTROPY_IDENTS: &[&str] = &["thread_rng", "from_entropy", "getrandom", "RandomState"];

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Scans one file. `check_hash_iter` is enabled for the pure deterministic
/// crates only — the serving crates legitimately keep hash maps for keyed
/// lookup and shutdown drains.
pub fn check(file: &SourceFile, check_hash_iter: bool, out: &mut Vec<Diagnostic>) {
    let toks = &file.toks;
    let hash_bindings = if check_hash_iter {
        hash_container_bindings(file)
    } else {
        BTreeSet::new()
    };

    for i in 0..toks.len() {
        if file.is_test[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        let t = &toks[i];
        match t.text.as_str() {
            "Instant"
                if toks.get(i + 1).is_some_and(|n| n.text == "::")
                    && toks.get(i + 2).is_some_and(|n| n.text == "now") =>
            {
                out.push(Diagnostic::error(
                    WALL_CLOCK,
                    &file.path,
                    t.line,
                    t.col,
                    "`Instant::now()` in a deterministic crate",
                    "derive timing from the job seed or annotate \
                     `// lint:allow(wall-clock, reason = \"...\")` if the value \
                     never feeds a result",
                ));
            }
            "SystemTime" | "UNIX_EPOCH" => {
                out.push(Diagnostic::error(
                    SYSTEM_TIME,
                    &file.path,
                    t.line,
                    t.col,
                    format!("`{}` in a deterministic crate", t.text),
                    "wall-clock epochs are nondeterministic; thread an explicit \
                     timestamp in from the caller",
                ));
            }
            name if ENTROPY_IDENTS.contains(&name) => {
                out.push(Diagnostic::error(
                    THREAD_RNG,
                    &file.path,
                    t.line,
                    t.col,
                    format!("`{name}` draws OS entropy"),
                    "use a seeded `numerics::rng` stream so runs replay",
                ));
            }
            name if check_hash_iter && hash_bindings.contains(name) => {
                if let Some(d) = hash_iteration_at(file, i) {
                    out.push(d);
                }
            }
            _ => {}
        }
    }
}

/// Names bound to `HashMap`/`HashSet` in this file: `let x = HashMap::new()`,
/// `let x: HashMap<..>`, struct fields and params `x: HashMap<..>`.
fn hash_container_bindings(file: &SourceFile) -> BTreeSet<String> {
    let toks = &file.toks;
    let mut names = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        // `NAME = HashMap::new()` — look straight back over `=`.
        if i >= 2 && toks[i - 1].text == "=" && toks[i - 2].kind == TokKind::Ident {
            names.insert(toks[i - 2].text.clone());
            continue;
        }
        // `NAME : ... HashMap ...` — walk back over type-ish tokens to the
        // nearest `:`; the identifier before it is the binding.
        let mut j = i;
        let mut budget = 12;
        while j > 0 && budget > 0 {
            j -= 1;
            budget -= 1;
            let text = toks[j].text.as_str();
            match toks[j].kind {
                TokKind::Punct if text == ":" => {
                    if j >= 1 && toks[j - 1].kind == TokKind::Ident {
                        names.insert(toks[j - 1].text.clone());
                    }
                    break;
                }
                TokKind::Punct if matches!(text, "<" | ">" | "&" | "'" | "::" | ",") => {}
                TokKind::Ident | TokKind::Lifetime | TokKind::Num => {}
                _ => break,
            }
        }
    }
    names
}

/// Is token `i` (a known hash-container name) being iterated here?
fn hash_iteration_at(file: &SourceFile, i: usize) -> Option<Diagnostic> {
    let toks = &file.toks;
    let t = &toks[i];
    // `name.iter()` / `.keys()` / `.drain()` ...
    if toks.get(i + 1).is_some_and(|n| n.text == ".")
        && toks
            .get(i + 2)
            .is_some_and(|n| ITER_METHODS.contains(&n.text.as_str()))
        && toks.get(i + 3).is_some_and(|n| n.text == "(")
    {
        let method = &toks[i + 2].text;
        return Some(Diagnostic::error(
            HASH_ITER,
            &file.path,
            t.line,
            t.col,
            format!("`{}.{}()` iterates in hash order", t.text, method),
            "hash order varies between runs; use a BTreeMap/BTreeSet or sort \
             the entries before iterating",
        ));
    }
    // `for pat in &name {` / `for pat in name {`
    let mut j = i;
    while j > 0 {
        let prev = &toks[j - 1];
        if matches!(prev.text.as_str(), "&" | "mut") {
            j -= 1;
        } else {
            break;
        }
    }
    if j >= 1 && toks[j - 1].text == "in" && toks.get(i + 1).is_some_and(|n| n.text == "{") {
        return Some(Diagnostic::error(
            HASH_ITER,
            &file.path,
            t.line,
            t.col,
            format!("`for _ in {}` iterates in hash order", t.text),
            "hash order varies between runs; use a BTreeMap/BTreeSet or sort \
             the entries before iterating",
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(src: &str, hash_iter: bool) -> Vec<Diagnostic> {
        let f = SourceFile::parse(PathBuf::from("t.rs"), "t", src);
        let mut out = Vec::new();
        check(&f, hash_iter, &mut out);
        out
    }

    #[test]
    fn flags_instant_now_but_not_the_type() {
        let d = run("fn f() { let t = Instant::now(); }", false);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, WALL_CLOCK);
        assert!(run("fn f(t: Instant) -> Instant { t }", false).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let d = run(
            "#[cfg(test)]\nmod tests { fn f() { Instant::now(); } }",
            false,
        );
        assert!(d.is_empty());
    }

    #[test]
    fn flags_entropy_sources() {
        assert_eq!(
            run("fn f() { let r = thread_rng(); }", false)[0].rule,
            THREAD_RNG
        );
        assert_eq!(
            run("fn f() { SystemTime::now(); }", false)[0].rule,
            SYSTEM_TIME
        );
    }

    #[test]
    fn flags_hash_iteration_not_lookup() {
        let src = "fn f() { let mut m = HashMap::new(); m.insert(1, 2); \
                   for (k, v) in &m { use_it(k, v); } }";
        let d = run(src, true);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, HASH_ITER);
        let lookup = "fn f(m: HashMap<u32, u32>) -> Option<&u32> { m.get(&1) }";
        assert!(run(lookup, true).is_empty());
    }

    #[test]
    fn hash_iter_methods_flagged() {
        let src = "struct S { seen: HashMap<u32, u32> }\n\
                   fn f(s: &S) { for k in s.seen.keys() { go(k); } }";
        let d = run(src, true);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("seen.keys()"));
    }
}
