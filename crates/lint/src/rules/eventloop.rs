//! No blocking operation on the event-loop dispatch path.
//!
//! The cluster/server tier serves every connection from one readiness
//! loop (`Server::event_loop`, fed by `cluster::poll`): a single blocked
//! thread stalls the whole shard. This rule builds the workspace call
//! graph over the loop crates ([`crate::callgraph::CallGraph`]), takes
//! every `fn event_loop` and every function in a `poll.rs` file as a
//! root, and walks the reachable set looking for operations that can
//! park the thread:
//!
//! * `Mutex::lock` / `lock_or_recover` (lock acquisition can wait on a
//!   contended guard),
//! * `thread::sleep`,
//! * `Condvar`/`JobHandle` waits (`.wait`, `.wait_timeout`, `.wait_while`),
//! * blocking channel ops (`.recv`, `.recv_timeout`, and `.send` on a
//!   *bounded* endpoint — classified by [`super::channel::channel_map`]),
//! * thread joins (`.join()`),
//! * blocking stream I/O (`.read_exact`, `.read_to_end`,
//!   `TcpStream::connect`, `set_nonblocking(false)`).
//!
//! Closures handed to deferred-execution sinks (`spawn` / `execute` /
//! `on_finish`) run off-loop and are skipped, matching the call graph's
//! own convention. Legitimate on-loop blocking — the bounded park slice
//! in `poll::park`, short lock holds on loop-local state — carries an
//! audited `// lint:allow(eventloop, reason = "...")`.

use super::channel::channel_map;
use crate::callgraph::{deferred_ranges, CallGraph};
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::source::SourceFile;

pub const BLOCKING: &str = "eventloop::blocking";

/// Files whose functions are event-loop roots, by stem.
const ROOT_FILE_STEMS: &[&str] = &["poll"];

/// Functions that are event-loop roots wherever they live.
const ROOT_FNS: &[&str] = &["event_loop"];

/// Runs the rule over `files` (pre-filtered to the event-loop crates;
/// the synchronous client tier is excluded by the caller — blocking is
/// its design).
pub fn check(files: &[&SourceFile], out: &mut Vec<Diagnostic>) {
    let graph = CallGraph::build(files);
    let roots: Vec<usize> = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| {
            ROOT_FNS.contains(&n.name.as_str())
                || files[n.file]
                    .path
                    .file_stem()
                    .is_some_and(|s| ROOT_FILE_STEMS.contains(&s.to_string_lossy().as_ref()))
        })
        .map(|(i, _)| i)
        .collect();
    if roots.is_empty() {
        return;
    }

    let parent = graph.reachable(&roots);
    for &n in parent.keys() {
        let node = &graph.nodes[n];
        let file = files[node.file];
        let item = &file.fns[node.item];
        let Some((open, close)) = item.body else {
            continue;
        };
        let chain = graph.path_to(&parent, n).join(" -> ");
        scan_ops(file, open, close, &chain, out);
    }
}

/// Scans one reachable function body for blocking operations, skipping
/// deferred-closure spans.
fn scan_ops(file: &SourceFile, open: usize, close: usize, chain: &str, out: &mut Vec<Diagnostic>) {
    let chans = channel_map(file);
    let skipped = deferred_ranges(file, open, close);
    let toks = &file.toks;
    let mut k = open;
    while k <= close {
        if let Some(&(_, end)) = skipped.iter().find(|&&(s, e)| k >= s && k <= e) {
            k = end + 1;
            continue;
        }
        if let Some(desc) = blocking_op(file, &chans, k) {
            let t = &toks[k];
            out.push(Diagnostic::error(
                BLOCKING,
                &file.path,
                t.line,
                t.col,
                format!("{desc} on the event-loop path ({chain})"),
                "move the blocking work off-loop (pool.execute / completion watcher) \
                 or annotate `// lint:allow(eventloop, reason = \"...\")`",
            ));
        }
        k += 1;
    }
}

/// Classifies the token at `k` as a blocking operation, if it is one.
fn blocking_op(
    file: &SourceFile,
    chans: &super::channel::ChannelMap,
    k: usize,
) -> Option<&'static str> {
    let toks = &file.toks;
    let t = &toks[k];
    if t.kind != TokKind::Ident {
        return None;
    }
    let next_is = |off: usize, s: &str| toks.get(k + off).is_some_and(|x| x.text == s);
    let prev = |off: usize| k.checked_sub(off).map(|j| toks[j].text.as_str());
    let called = next_is(1, "(");
    let method = called && prev(1) == Some(".");

    match t.text.as_str() {
        "sleep" if called && prev(1) == Some("::") && prev(2) == Some("thread") => {
            Some("blocking call `thread::sleep`")
        }
        "lock" if method => Some("lock acquisition `Mutex::lock`"),
        "lock_or_recover" if called && prev(1) != Some("fn") => {
            Some("lock acquisition `lock_or_recover`")
        }
        "wait" | "wait_timeout" | "wait_while" if method => {
            Some("blocking wait (`Condvar`/`JobHandle`)")
        }
        "recv" | "recv_timeout" if method => Some("blocking channel recv"),
        "send" if method => {
            let receiver = prev(2)?;
            chans
                .bounded_send
                .contains_key(receiver)
                .then_some("bounded channel send (parks when full)")
        }
        // Bare `.join()` only: `path.join(seg)` / `parts.join(",")` take
        // arguments, a thread join never does.
        "join" if method && next_is(2, ")") => Some("blocking `JoinHandle::join`"),
        "read_exact" | "read_to_end" if method => Some("blocking stream read"),
        "set_nonblocking" if called && next_is(2, "false") => {
            Some("switch to blocking I/O (`set_nonblocking(false)`)")
        }
        "connect" | "connect_timeout"
            if called && prev(1) == Some("::") && prev(2) == Some("TcpStream") =>
        {
            Some("blocking `TcpStream::connect`")
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let parsed: Vec<SourceFile> = files
            .iter()
            .map(|(name, src)| SourceFile::parse(PathBuf::from(*name), "cluster", src))
            .collect();
        let refs: Vec<&SourceFile> = parsed.iter().collect();
        let mut out = Vec::new();
        check(&refs, &mut out);
        out
    }

    #[test]
    fn sleep_in_event_loop_is_flagged() {
        let out = run(&[(
            "server.rs",
            "fn event_loop(&self) { std::thread::sleep(ms); }",
        )]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, BLOCKING);
        assert!(out[0].message.contains("thread::sleep"), "{out:?}");
        assert!(out[0].message.contains("event_loop"), "{out:?}");
    }

    #[test]
    fn blocking_reached_through_a_callee_names_the_path() {
        let out = run(&[(
            "server.rs",
            "fn event_loop(&self) { self.drain_work(); }\n\
             fn drain_work(&self) { let g = lock_or_recover(&self.inbox); go(g); }",
        )]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(
            out[0].message.contains("event_loop -> drain_work"),
            "{out:?}"
        );
    }

    #[test]
    fn functions_off_the_loop_path_may_block() {
        let out = run(&[(
            "server.rs",
            "fn event_loop(&self) { tick(); }\n\
             fn tick() {}\n\
             fn background(&self) { std::thread::sleep(ms); }",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn deferred_closures_may_block() {
        let out = run(&[(
            "server.rs",
            "fn event_loop(&self) { pool.execute(move || { std::thread::sleep(ms); }); }",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn poll_file_fns_are_roots() {
        let out = run(&[("poll.rs", "fn scan(&mut self) { handle.wait(); }")]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("blocking wait"), "{out:?}");
    }

    #[test]
    fn path_join_is_not_a_thread_join() {
        let out = run(&[(
            "server.rs",
            "fn event_loop(&self) { let p = dir.join(name); let h = self.done; h.join(); go(p); }",
        )]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("JoinHandle"), "{out:?}");
    }

    #[test]
    fn bounded_send_blocks_unbounded_does_not() {
        let out = run(&[(
            "server.rs",
            "fn event_loop(&self) { let (btx, brx) = mpsc::sync_channel(4); \
             let (utx, urx) = mpsc::channel(); \
             btx.send(1); utx.send(2); park(brx, urx); }",
        )]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("bounded channel send"), "{out:?}");
    }
}
