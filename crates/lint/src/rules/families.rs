//! Family-tag-freeze: the kernel-family registry table in
//! `crates/accel/src/family.rs` (`accel::family::FAMILY_TAGS`) is wire
//! surface — each `(tag, name)` row is a family's canonical-key domain
//! byte and its protocol-v6 generic-frame tag. Rows are append-only and
//! duplicate-free: renaming, retagging, or deleting a shipped row would
//! silently re-key admission caches and re-route family frames. This
//! rule records the table in a registry file and fails the lint on any
//! mutation that is not a blessed append
//! (`cargo run -p lint -- --bless-families`).

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::source::SourceFile;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

pub const FROZEN: &str = "family::frozen";
pub const TAG_DUP: &str = "family::tag-dup";

const BLESS_HELP: &str =
    "new families are appended with a fresh tag and blessed with `cargo run -p lint -- \
     --bless-families`; shipped rows can never change — they name canonical cache keys \
     and v6 wire frames";

/// One `(tag, name)` row of the live `FAMILY_TAGS` table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilyRow {
    pub tag: u64,
    pub name: String,
    pub line: u32,
    pub col: u32,
}

/// The string literal token keeps its surrounding quotes; the registry
/// stores the bare name.
fn strip_quotes(text: &str) -> String {
    text.strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .unwrap_or(text)
        .to_string()
}

/// Parses the `FAMILY_TAGS` table out of the token stream: every
/// `(<int>, "<name>")` tuple between `const FAMILY_TAGS` and its closing
/// `;`. The element type `(u16, &str)` contains no literals, so only the
/// data rows match. `None` when the table does not exist.
#[must_use]
pub fn family_rows(file: &SourceFile) -> Option<Vec<FamilyRow>> {
    let toks = &file.toks;
    let start = (0..toks.len()).find(|&i| {
        !file.is_test[i]
            && toks[i].text == "const"
            && toks.get(i + 1).is_some_and(|t| t.text == "FAMILY_TAGS")
    })?;
    let mut rows = Vec::new();
    let mut i = start;
    while i < toks.len() && toks[i].text != ";" {
        if toks[i].text == "("
            && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Num)
            && toks.get(i + 2).is_some_and(|t| t.text == ",")
            && toks.get(i + 3).is_some_and(|t| t.kind == TokKind::Str)
            && toks.get(i + 4).is_some_and(|t| t.text == ")")
        {
            if let Some(tag) = super::freeze::parse_int(&toks[i + 1].text) {
                rows.push(FamilyRow {
                    tag,
                    name: strip_quotes(&toks[i + 3].text),
                    line: toks[i + 1].line,
                    col: toks[i + 1].col,
                });
            }
            i += 5;
        } else {
            i += 1;
        }
    }
    Some(rows)
}

/// Renders the registry for the current source: the blessed state.
#[must_use]
pub fn bless(file: &SourceFile) -> String {
    let mut out = String::from(
        "# rebootlint family-tag registry.\n\
         # The shipped (tag, name) rows of accel::family::FAMILY_TAGS —\n\
         # canonical-key domain bytes doubling as v6 generic-frame tags.\n\
         # Rows are append-only; bless a new family with:\n\
         #     cargo run -p lint -- --bless-families\n",
    );
    for row in family_rows(file).unwrap_or_default() {
        let _ = writeln!(out, "family {} {}", row.tag, row.name);
    }
    out
}

fn parse_registry(text: &str) -> Vec<(u64, String)> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        if let (Some("family"), Some(tag), Some(name)) = (parts.next(), parts.next(), parts.next())
        {
            if let Some(tag) = super::freeze::parse_int(tag) {
                rows.push((tag, name.to_string()));
            }
        }
    }
    rows
}

/// Checks the live `FAMILY_TAGS` table in `file` against the registry
/// text: duplicate-free, and append-only relative to the blessed rows.
pub fn check(
    file: &SourceFile,
    registry_text: &str,
    registry_path: &Path,
    out: &mut Vec<Diagnostic>,
) {
    let Some(rows) = family_rows(file) else {
        out.push(Diagnostic::error(
            FROZEN,
            &file.path,
            1,
            1,
            "the FAMILY_TAGS table is missing from the family registry source",
            BLESS_HELP,
        ));
        return;
    };
    let blessed = parse_registry(registry_text);

    // 1. Duplicate tags or names among the live rows.
    let mut by_tag: BTreeMap<u64, &FamilyRow> = BTreeMap::new();
    let mut by_name: BTreeMap<&str, &FamilyRow> = BTreeMap::new();
    for row in &rows {
        if let Some(first) = by_tag.insert(row.tag, row) {
            out.push(Diagnostic::error(
                TAG_DUP,
                &file.path,
                row.line,
                row.col,
                format!(
                    "family `{}` reuses tag {} already taken by `{}`",
                    row.name, row.tag, first.name
                ),
                "every family keeps a unique wire tag / canonical-key domain byte forever",
            ));
        }
        if let Some(first) = by_name.insert(row.name.as_str(), row) {
            out.push(Diagnostic::error(
                TAG_DUP,
                &file.path,
                row.line,
                row.col,
                format!(
                    "family name `{}` appears twice (tags {} and {})",
                    row.name, first.tag, row.tag
                ),
                "family names key the registry and must be unique",
            ));
        }
    }

    // 2. Append-only: every blessed row must survive verbatim.
    for (tag, name) in &blessed {
        match rows.iter().find(|r| r.tag == *tag) {
            Some(row) if row.name == *name => {}
            Some(row) => {
                out.push(Diagnostic::error(
                    FROZEN,
                    &file.path,
                    row.line,
                    row.col,
                    format!(
                        "frozen family tag {tag} was renamed from `{name}` to `{}`",
                        row.name
                    ),
                    BLESS_HELP,
                ));
            }
            None => {
                let msg = match rows.iter().find(|r| r.name == *name) {
                    Some(row) => {
                        format!("frozen family `{name}` moved from tag {tag} to {}", row.tag)
                    }
                    None => format!(
                        "frozen family `{name}` (tag {tag}) was removed — the table is append-only"
                    ),
                };
                out.push(Diagnostic::error(
                    FROZEN,
                    registry_path,
                    1,
                    1,
                    msg,
                    BLESS_HELP,
                ));
            }
        }
    }

    // 3. Every live row must be blessed. Renames and retags were already
    // reported above; only flag genuinely new rows here.
    for row in &rows {
        let recorded = blessed.iter().any(|(t, n)| *t == row.tag && *n == row.name);
        let collides = blessed.iter().any(|(t, n)| *t == row.tag || *n == row.name);
        if !recorded && !collides {
            out.push(Diagnostic::error(
                FROZEN,
                &file.path,
                row.line,
                row.col,
                format!(
                    "family `{}` (tag {}) is not recorded in the family-tag registry",
                    row.name, row.tag
                ),
                BLESS_HELP,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    const TABLE: &str = "pub const FAMILY_TAGS: &[(u16, &str)] = &[\n\
                         \x20   (1, \"factor\"),\n\
                         \x20   (2, \"search\"),\n\
                         ];\n";

    fn family_file(src: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from("crates/accel/src/family.rs"), "accel", src)
    }

    fn run(src: &str, registry: &str) -> Vec<Diagnostic> {
        let file = family_file(src);
        let mut out = Vec::new();
        check(&file, registry, &PathBuf::from("reg"), &mut out);
        out
    }

    #[test]
    fn parses_rows_and_round_trips_through_bless() {
        let file = family_file(TABLE);
        let rows = family_rows(&file).expect("table must parse");
        assert_eq!(
            rows.iter()
                .map(|r| (r.tag, r.name.as_str()))
                .collect::<Vec<_>>(),
            vec![(1, "factor"), (2, "search")]
        );
        let blessed = bless(&file);
        assert!(blessed.contains("family 1 factor"));
        assert!(blessed.contains("family 2 search"));
        assert!(
            run(TABLE, &blessed).is_empty(),
            "{:?}",
            run(TABLE, &blessed)
        );
    }

    #[test]
    fn appending_a_row_is_flagged_until_blessed() {
        let blessed = bless(&family_file(TABLE));
        let appended = TABLE.replace("];", "    (3, \"coloring\"),\n];");
        let out = run(&appended, &blessed);
        assert!(
            out.iter().any(|d| d.rule == FROZEN
                && d.message.contains("coloring")
                && d.message.contains("not recorded")),
            "{out:#?}"
        );
        let reblessed = bless(&family_file(&appended));
        assert!(run(&appended, &reblessed).is_empty());
    }

    #[test]
    fn renames_retags_and_removals_are_errors() {
        let blessed = bless(&family_file(TABLE));

        let renamed = TABLE.replace("\"factor\"", "\"primes\"");
        assert!(run(&renamed, &blessed)
            .iter()
            .any(|d| d.rule == FROZEN && d.message.contains("renamed from `factor` to `primes`")));

        let retagged = TABLE.replace("(1, \"factor\")", "(9, \"factor\")");
        assert!(run(&retagged, &blessed)
            .iter()
            .any(|d| d.rule == FROZEN && d.message.contains("moved from tag 1 to 9")));

        let removed = TABLE.replace("    (1, \"factor\"),\n", "");
        assert!(run(&removed, &blessed)
            .iter()
            .any(|d| d.rule == FROZEN && d.message.contains("`factor` (tag 1) was removed")));
    }

    #[test]
    fn duplicate_tags_and_names_are_errors() {
        let blessed = bless(&family_file(TABLE));
        let dup_tag = TABLE.replace("(2, \"search\")", "(1, \"search\")");
        assert!(run(&dup_tag, &blessed)
            .iter()
            .any(|d| d.rule == TAG_DUP && d.message.contains("reuses tag 1")));

        let dup_name = TABLE.replace("(2, \"search\")", "(2, \"factor\")");
        assert!(run(&dup_name, &blessed)
            .iter()
            .any(|d| d.rule == TAG_DUP && d.message.contains("appears twice")));
    }

    #[test]
    fn missing_table_is_an_error() {
        let out = run("pub fn nothing_here() {}", "");
        assert!(out
            .iter()
            .any(|d| d.rule == FROZEN && d.message.contains("missing")));
    }
}
