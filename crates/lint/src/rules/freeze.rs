//! Wire-freeze: the v1/v2/v3 encode/decode paths in `crates/wire` are
//! interface contracts (like a QISA layer) — once shipped, their byte
//! layouts must never drift silently. This rule records a token-level
//! source hash for every frozen function, plus the message tag table and
//! the protocol version constants, in a registry file. Any edit fails the
//! lint until the registry is consciously re-blessed with
//! `cargo run -p lint -- --bless-wire`.
//!
//! Hashes are computed over the token stream, so comments and formatting
//! can change freely; code changes cannot.

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::source::SourceFile;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

pub const FROZEN: &str = "wire::frozen";
pub const TAG_DUP: &str = "wire::tag-dup";
pub const VERSION_FREEZE: &str = "wire::version-freeze";

/// The frozen surface, by file stem. Every function named here is part of
/// a shipped byte layout (or the negotiation logic that selects one).
pub const FROZEN_FNS: &[(&str, &[&str])] = &[
    (
        "codec",
        &[
            "put_u8",
            "put_u16",
            "put_u32",
            "put_u64",
            "put_i64",
            "put_f64",
            "put_opt_u64",
            "put_str",
            "put_bytes",
            "get_u8",
            "get_u16",
            "get_u32",
            "get_u64",
            "get_i64",
            "get_f64",
            "get_usize",
            "get_opt_u64",
            "get_count",
            "get_str",
            "get_bytes",
        ],
    ),
    ("frame", &["write_frame", "read_frame"]),
    (
        "message",
        &[
            "encode_request_v",
            "decode_request_v",
            "encode_response_v",
            "decode_response_v",
            "negotiate",
            "put_gossip_entries",
            "get_gossip_entries",
            "require_gossip_version",
            "require_family_version",
        ],
    ),
    (
        "payload",
        &[
            "put_kernel",
            "get_kernel",
            "put_kernel_result",
            "get_kernel_result",
            "put_cost",
            "get_cost",
            "put_policy",
            "get_policy",
            "put_formula",
            "get_formula",
            "put_outcome",
            "get_outcome",
            "put_stats",
            "get_stats",
            "put_seq_len",
            "put_family_body",
            "get_family_body",
        ],
    ),
];

fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Token-level hash of every non-test `fn <name>` in `file`, in source
/// order. `None` when the function does not exist.
#[must_use]
pub fn fn_hash(file: &SourceFile, name: &str) -> Option<u64> {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut found = false;
    for item in file.fns.iter().filter(|f| !f.in_test && f.name == name) {
        found = true;
        let end = match item.body {
            Some((_, close)) => close,
            None => item.kw,
        };
        for tok in &file.toks[item.kw..=end] {
            hash = fnv1a(tok.text.as_bytes(), hash);
            hash = fnv1a(&[0x1f], hash);
        }
    }
    found.then_some(hash)
}

/// Parses integer literals in any Rust base, ignoring `_` separators and
/// type suffixes.
pub(crate) fn parse_int(text: &str) -> Option<u64> {
    let clean: String = text.chars().filter(|c| *c != '_').collect();
    let (digits, radix) = match clean.as_str() {
        s if s.starts_with("0x") || s.starts_with("0X") => (&s[2..], 16),
        s if s.starts_with("0b") || s.starts_with("0B") => (&s[2..], 2),
        s if s.starts_with("0o") || s.starts_with("0O") => (&s[2..], 8),
        s => (s, 10),
    };
    // Integer type suffixes (`42u8`, `5i64`) start with `u` or `i`, which
    // are not digits in any Rust base.
    let mut digits = digits.to_string();
    if let Some(pos) = digits.find(['u', 'i']) {
        digits.truncate(pos);
    }
    u64::from_str_radix(&digits, radix).ok()
}

/// Extracts `const NAME: <ty> = <int>;` items whose name passes `keep`.
fn const_ints(file: &SourceFile, keep: impl Fn(&str) -> bool) -> Vec<(String, u64, u32, u32)> {
    let toks = &file.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if file.is_test[i] || toks[i].text != "const" {
            continue;
        }
        let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        if !keep(&name.text) {
            continue;
        }
        // const NAME : TY = <num> ;
        if toks.get(i + 2).is_some_and(|t| t.text == ":")
            && toks.get(i + 4).is_some_and(|t| t.text == "=")
            && toks.get(i + 5).is_some_and(|t| t.kind == TokKind::Num)
        {
            if let Some(v) = parse_int(&toks[i + 5].text) {
                out.push((name.text.clone(), v, name.line, name.col));
            }
        }
    }
    out
}

/// Message tag constants (`const TAG_*`) from `message.rs`.
#[must_use]
pub fn tag_consts(file: &SourceFile) -> Vec<(String, u64, u32, u32)> {
    const_ints(file, |n| n.starts_with("TAG_"))
}

/// Protocol version constants from `lib.rs`.
#[must_use]
pub fn version_consts(file: &SourceFile) -> Vec<(String, u64, u32, u32)> {
    const_ints(file, |n| {
        n == "PROTOCOL_VERSION" || n == "MIN_SUPPORTED_VERSION"
    })
}

/// Renders the registry for the current sources: the blessed state.
#[must_use]
pub fn bless(files: &BTreeMap<String, &SourceFile>) -> String {
    let mut out = String::from(
        "# rebootlint wire-freeze registry.\n\
         # Token-level hashes of the frozen v1/v2/v3 encode/decode paths in\n\
         # crates/wire, plus the tag table and protocol version constants.\n\
         # Re-bless after an intentional layout change with:\n\
         #     cargo run -p lint -- --bless-wire\n",
    );
    for file in files.values() {
        for (name, value, _, _) in version_consts(file) {
            let _ = writeln!(out, "version {name} {value}");
        }
    }
    for file in files.values() {
        for (name, value, _, _) in tag_consts(file) {
            let _ = writeln!(out, "tag {name} {value:#04x}");
        }
    }
    for (stem, fns) in FROZEN_FNS {
        if let Some(file) = files.get(*stem) {
            for name in *fns {
                if let Some(h) = fn_hash(file, name) {
                    let _ = writeln!(out, "fn {stem}::{name} {h:016x}");
                }
            }
        }
    }
    out
}

#[derive(Debug, Default)]
struct Registry {
    versions: BTreeMap<String, u64>,
    tags: BTreeMap<String, u64>,
    fns: BTreeMap<String, u64>,
}

fn parse_registry(text: &str) -> Registry {
    let mut reg = Registry::default();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next(), parts.next()) {
            (Some("version"), Some(name), Some(v)) => {
                if let Some(v) = parse_int(v) {
                    reg.versions.insert(name.to_string(), v);
                }
            }
            (Some("tag"), Some(name), Some(v)) => {
                if let Some(v) = parse_int(v) {
                    reg.tags.insert(name.to_string(), v);
                }
            }
            (Some("fn"), Some(name), Some(h)) => {
                if let Ok(h) = u64::from_str_radix(h, 16) {
                    reg.fns.insert(name.to_string(), h);
                }
            }
            _ => {}
        }
    }
    reg
}

const BLESS_HELP: &str =
    "if the layout change is intentional, re-bless with `cargo run -p lint -- --bless-wire` \
     (and bump PROTOCOL_VERSION for behavioural changes); frozen versions must keep decoding \
     old bytes identically";

/// Checks the wire sources against the registry text.
///
/// `files` maps the file stem (`codec`, `frame`, `message`, `payload`,
/// `lib`) to its parsed source.
pub fn check(
    files: &BTreeMap<String, &SourceFile>,
    registry_text: &str,
    registry_path: &Path,
    out: &mut Vec<Diagnostic>,
) {
    let reg = parse_registry(registry_text);

    // 1. Frozen function hashes.
    for (stem, fns) in FROZEN_FNS {
        let Some(file) = files.get(*stem) else {
            out.push(Diagnostic::error(
                FROZEN,
                registry_path,
                1,
                1,
                format!("frozen wire file `{stem}.rs` is missing from crates/wire/src"),
                BLESS_HELP,
            ));
            continue;
        };
        for name in *fns {
            let key = format!("{stem}::{name}");
            let current = fn_hash(file, name);
            let blessed = reg.fns.get(&key).copied();
            match (current, blessed) {
                (Some(c), Some(b)) if c == b => {}
                (Some(_), Some(_)) => {
                    let line = file
                        .fns
                        .iter()
                        .find(|f| !f.in_test && f.name == *name)
                        .map_or(1, |f| f.line);
                    out.push(Diagnostic::error(
                        FROZEN,
                        &file.path,
                        line,
                        1,
                        format!("frozen wire layout function `{key}` was edited without re-blessing the registry"),
                        BLESS_HELP,
                    ));
                }
                (Some(_), None) => {
                    let line = file
                        .fns
                        .iter()
                        .find(|f| !f.in_test && f.name == *name)
                        .map_or(1, |f| f.line);
                    out.push(Diagnostic::error(
                        FROZEN,
                        &file.path,
                        line,
                        1,
                        format!(
                            "wire layout function `{key}` is not recorded in the freeze registry"
                        ),
                        BLESS_HELP,
                    ));
                }
                (None, _) => {
                    out.push(Diagnostic::error(
                        FROZEN,
                        &file.path,
                        1,
                        1,
                        format!("frozen wire layout function `{key}` no longer exists"),
                        BLESS_HELP,
                    ));
                }
            }
        }
    }
    for key in reg.fns.keys() {
        let known = FROZEN_FNS
            .iter()
            .any(|(stem, fns)| fns.iter().any(|name| format!("{stem}::{name}") == *key));
        if !known {
            out.push(Diagnostic::warning(
                FROZEN,
                registry_path,
                1,
                1,
                format!("stale registry entry `{key}` names no frozen function"),
                "re-bless to drop it",
            ));
        }
    }

    // 2. Tag table: registry equality plus uniqueness, parsed live.
    if let Some(message) = files.get("message") {
        let tags = tag_consts(message);
        let mut by_value: BTreeMap<u64, &str> = BTreeMap::new();
        for (name, value, line, col) in &tags {
            if let Some(first) = by_value.insert(*value, name) {
                out.push(Diagnostic::error(
                    TAG_DUP,
                    &message.path,
                    *line,
                    *col,
                    format!(
                        "message tag `{name}` reuses value {value:#04x} already taken by `{first}`"
                    ),
                    "every request/response tag must be unique across the protocol",
                ));
            }
            match reg.tags.get(name) {
                Some(b) if b == value => {}
                Some(b) => {
                    out.push(Diagnostic::error(
                        FROZEN,
                        &message.path,
                        *line,
                        *col,
                        format!("frozen tag `{name}` changed from {b:#04x} to {value:#04x}"),
                        BLESS_HELP,
                    ));
                }
                None => {
                    out.push(Diagnostic::error(
                        FROZEN,
                        &message.path,
                        *line,
                        *col,
                        format!(
                            "tag `{name}` ({value:#04x}) is not recorded in the freeze registry"
                        ),
                        BLESS_HELP,
                    ));
                }
            }
        }
        for name in reg.tags.keys() {
            if !tags.iter().any(|(n, ..)| n == name) {
                out.push(Diagnostic::error(
                    FROZEN,
                    &message.path,
                    1,
                    1,
                    format!("frozen tag `{name}` no longer exists in message.rs"),
                    BLESS_HELP,
                ));
            }
        }
    }

    // 3. Protocol version constants.
    if let Some(lib) = files.get("lib") {
        let versions = version_consts(lib);
        for (name, value, line, col) in &versions {
            match reg.versions.get(name) {
                Some(b) if b == value => {}
                Some(b) => {
                    out.push(Diagnostic::error(
                        VERSION_FREEZE,
                        &lib.path,
                        *line,
                        *col,
                        format!("`{name}` changed from {b} to {value} without re-blessing"),
                        BLESS_HELP,
                    ));
                }
                None => {
                    out.push(Diagnostic::error(
                        VERSION_FREEZE,
                        &lib.path,
                        *line,
                        *col,
                        format!("`{name}` is not recorded in the freeze registry"),
                        BLESS_HELP,
                    ));
                }
            }
        }
        let max = versions.iter().find(|(n, ..)| n == "PROTOCOL_VERSION");
        let min = versions.iter().find(|(n, ..)| n == "MIN_SUPPORTED_VERSION");
        if let (Some((_, max_v, line, col)), Some((_, min_v, ..))) = (max, min) {
            if min_v > max_v {
                out.push(Diagnostic::error(
                    VERSION_FREEZE,
                    &lib.path,
                    *line,
                    *col,
                    format!("MIN_SUPPORTED_VERSION ({min_v}) exceeds PROTOCOL_VERSION ({max_v})"),
                    "the supported version range must be non-empty",
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn wire_file(stem: &str, src: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from(format!("{stem}.rs")), "wire", src)
    }

    #[test]
    fn hash_ignores_comments_but_not_code() {
        let a = wire_file("codec", "fn get_u8(x: u8) -> u8 { x + 1 }");
        let b = wire_file(
            "codec",
            "// changed comment\nfn get_u8(x: u8)   -> u8 { x + 1 }",
        );
        let c = wire_file("codec", "fn get_u8(x: u8) -> u8 { x + 2 }");
        assert_eq!(fn_hash(&a, "get_u8"), fn_hash(&b, "get_u8"));
        assert_ne!(fn_hash(&a, "get_u8"), fn_hash(&c, "get_u8"));
        assert_eq!(fn_hash(&a, "missing"), None);
    }

    #[test]
    fn edit_without_bless_is_caught() {
        let lib = wire_file(
            "lib",
            "pub const PROTOCOL_VERSION: u16 = 3;\npub const MIN_SUPPORTED_VERSION: u16 = 1;",
        );
        let msg = wire_file("message", "const TAG_HELLO: u8 = 0x01;\nfn encode_request_v() {}\nfn decode_request_v() {}\nfn encode_response_v() {}\nfn decode_response_v() {}\nfn negotiate() {}\nfn put_gossip_entries() {}\nfn get_gossip_entries() {}\nfn require_gossip_version() {}\nfn require_family_version() {}");
        let mut files = BTreeMap::new();
        files.insert("lib".to_string(), &lib);
        files.insert("message".to_string(), &msg);
        let blessed = bless(&files);

        let mut out = Vec::new();
        check(&files, &blessed, &PathBuf::from("reg"), &mut out);
        let fn_errors: Vec<_> = out
            .iter()
            .filter(|d| d.file.ends_with("message.rs"))
            .collect();
        assert!(
            fn_errors.is_empty(),
            "clean sources must pass: {fn_errors:?}"
        );

        let edited = wire_file("message", "const TAG_HELLO: u8 = 0x01;\nfn encode_request_v() { changed(); }\nfn decode_request_v() {}\nfn encode_response_v() {}\nfn decode_response_v() {}\nfn negotiate() {}\nfn put_gossip_entries() {}\nfn get_gossip_entries() {}\nfn require_gossip_version() {}\nfn require_family_version() {}");
        let mut files2 = BTreeMap::new();
        files2.insert("lib".to_string(), &lib);
        files2.insert("message".to_string(), &edited);
        let mut out2 = Vec::new();
        check(&files2, &blessed, &PathBuf::from("reg"), &mut out2);
        assert!(out2
            .iter()
            .any(|d| d.rule == FROZEN && d.message.contains("message::encode_request_v")));
    }

    #[test]
    fn duplicate_tags_and_version_bumps_are_errors() {
        let msg = wire_file(
            "message",
            "const TAG_A: u8 = 0x01;\nconst TAG_B: u8 = 0x01;",
        );
        let lib = wire_file(
            "lib",
            "pub const PROTOCOL_VERSION: u16 = 4;\npub const MIN_SUPPORTED_VERSION: u16 = 1;",
        );
        let mut files = BTreeMap::new();
        files.insert("message".to_string(), &msg);
        files.insert("lib".to_string(), &lib);
        let registry = "version PROTOCOL_VERSION 3\nversion MIN_SUPPORTED_VERSION 1\ntag TAG_A 0x01\ntag TAG_B 0x01\n";
        let mut out = Vec::new();
        check(&files, registry, &PathBuf::from("reg"), &mut out);
        assert!(out.iter().any(|d| d.rule == TAG_DUP));
        assert!(out
            .iter()
            .any(|d| d.rule == VERSION_FREEZE && d.message.contains("3 to 4")));
    }

    #[test]
    fn int_parsing_covers_rust_bases() {
        assert_eq!(parse_int("0x83"), Some(0x83));
        assert_eq!(parse_int("1_000"), Some(1000));
        assert_eq!(parse_int("0b101"), Some(5));
        assert_eq!(parse_int("42u8"), Some(42));
    }
}
