//! Lock-order analysis for the concurrent crates (`runtime`, `server`).
//!
//! Per non-test function, every `*.lock()` acquisition is recorded
//! together with the set of guards still held at that point (guards are
//! tracked through `let` bindings, temporaries, re-assignments, block
//! scopes and explicit `drop(guard)` calls). Acquiring `B` while holding
//! `A` adds the edge `A → B` to a workspace-wide acquisition graph; a
//! cycle in that graph is a potential deadlock — the class of bug that
//! produced the PR-3 stats-after-publish race — and fails the lint.
//!
//! Locks are identified as `<file stem>::<field name>` (the identifier
//! immediately before `.lock()`), which distinguishes the several `inner`
//! mutexes in different modules while unifying `self.pending` with a
//! cloned local `pending`. The analysis is intraprocedural: it sees
//! direct acquisitions, not those hidden behind method calls.

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

pub const CYCLE: &str = "locks::cycle";

/// Where an edge was observed: `holding` was held when `acquired` was
/// locked, at `file:line` inside `func`.
#[derive(Debug, Clone)]
pub struct EdgeSite {
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub func: String,
}

/// The workspace-wide acquisition graph. Nodes are mutexes
/// (`<file stem>::<field>`) and — since the channel-discipline rule
/// joined them in — bounded-channel endpoints (`chan:<stem>::<name>`);
/// a cycle through any mix of the two is a potential deadlock.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// `from → to → first site where the edge was seen`.
    pub edges: BTreeMap<String, BTreeMap<String, EdgeSite>>,
}

impl LockGraph {
    /// Records `from → to`, keeping the first site an edge was seen at.
    pub(crate) fn add_edge(&mut self, from: &str, to: &str, site: EdgeSite) {
        self.edges
            .entry(from.to_string())
            .or_default()
            .entry(to.to_string())
            .or_insert(site);
    }
}

/// A mutex guard currently alive at some point of a function walk.
#[derive(Debug)]
pub(crate) struct Held {
    pub(crate) id: String,
    /// `Some(name)` when the guard is reachable through a binding that
    /// `drop(name)` can release.
    binding: Option<String>,
    /// Temporaries die at the end of their statement; bindings at the end
    /// of their block.
    temp: bool,
    depth: i32,
}

/// Scans one file's non-test functions, adding edges to `graph`.
pub fn collect(file: &SourceFile, graph: &mut LockGraph) {
    let stem = file
        .path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    for item in &file.fns {
        if item.in_test {
            continue;
        }
        let Some((open, close)) = item.body else {
            continue;
        };
        scan_body(file, &stem, &item.name, open, close, graph);
    }
}

fn scan_body(
    file: &SourceFile,
    stem: &str,
    func: &str,
    open: usize,
    close: usize,
    graph: &mut LockGraph,
) {
    walk_guards(
        file,
        stem,
        open,
        close,
        &mut |k, id, held| record_acquisition(file, func, k, id, held, graph),
        &mut |_, _| {},
    );
}

/// The guard-tracking walk over one function body, generalized so other
/// rules (channel discipline) can observe the held-guard set. Guards are
/// tracked through `let` bindings, temporaries, re-assignments, block
/// scopes and explicit `drop(guard)` calls. `on_acquire(k, lock_id,
/// held_before)` fires at each acquisition token; `on_tok(k, held)` at
/// every other token, with the guards alive at that point.
pub(crate) fn walk_guards(
    file: &SourceFile,
    stem: &str,
    open: usize,
    close: usize,
    on_acquire: &mut dyn FnMut(usize, &str, &[Held]),
    on_tok: &mut dyn FnMut(usize, &[Held]),
) {
    let toks = &file.toks;
    let mut depth = 0i32;
    let mut held: Vec<Held> = Vec::new();

    let mut k = open;
    while k <= close {
        let t = &toks[k];
        match t.text.as_str() {
            "{" => {
                // Temporaries in an `if`/`while`/`match` head die before
                // the block they guard runs.
                held.retain(|h| !(h.temp && h.depth == depth));
                depth += 1;
            }
            "}" => {
                held.retain(|h| h.depth != depth);
                depth -= 1;
            }
            ";" => {
                held.retain(|h| !(h.temp && h.depth == depth));
            }
            "drop"
                if t.kind == TokKind::Ident
                    && toks.get(k + 1).is_some_and(|n| n.text == "(")
                    && toks.get(k + 3).is_some_and(|n| n.text == ")") =>
            {
                if let Some(name) = toks.get(k + 2).filter(|n| n.kind == TokKind::Ident) {
                    held.retain(|h| h.binding.as_deref() != Some(name.text.as_str()));
                }
            }
            "lock" | "try_lock"
                if t.kind == TokKind::Ident
                    && k > 0
                    && toks[k - 1].text == "."
                    && toks.get(k + 1).is_some_and(|n| n.text == "(") =>
            {
                let Some(field) = toks
                    .get(k.wrapping_sub(2))
                    .filter(|p| p.kind == TokKind::Ident)
                else {
                    k += 1;
                    continue;
                };
                let id = format!("{stem}::{}", field.text);
                on_acquire(k, &id, &held);
                let (temp, binding) = statement_binding(toks, open, k);
                held.push(Held {
                    id,
                    binding,
                    temp,
                    depth,
                });
            }
            // Poison-tolerant wrapper: `lock_or_recover(&self.pending)`
            // acquires the mutex named by the last identifier of its
            // argument path.
            "lock_or_recover"
                if t.kind == TokKind::Ident
                    && toks.get(k + 1).is_some_and(|n| n.text == "(")
                    && !(k > 0 && toks[k - 1].text == "fn") =>
            {
                let Some(field) = call_arg_last_ident(toks, k + 1) else {
                    k += 1;
                    continue;
                };
                let id = format!("{stem}::{field}");
                on_acquire(k, &id, &held);
                let (temp, binding) = statement_binding(toks, open, k);
                held.push(Held {
                    id,
                    binding,
                    temp,
                    depth,
                });
            }
            _ => on_tok(k, &held),
        }
        k += 1;
    }
}

/// Records edges `held → id` (or a self-cycle edge when `id` is already
/// held) at the acquisition site `k`.
fn record_acquisition(
    file: &SourceFile,
    func: &str,
    k: usize,
    id: &str,
    held: &[Held],
    graph: &mut LockGraph,
) {
    let t = &file.toks[k];
    for h in held {
        // `h.id != id` is the normal ordering edge; equality is a
        // re-acquisition of a lock already held, recorded as a self-cycle.
        let from = h.id.clone();
        graph
            .edges
            .entry(from)
            .or_default()
            .entry(id.to_string())
            .or_insert_with(|| EdgeSite {
                file: file.path.display().to_string(),
                line: t.line,
                col: t.col,
                func: func.to_string(),
            });
    }
}

/// The last identifier inside the parenthesised argument list opening at
/// token `open_paren` — for `(&self.pending)` that is `pending`, the lock
/// field.
fn call_arg_last_ident(toks: &[crate::lexer::Tok], open_paren: usize) -> Option<String> {
    let mut depth = 0i32;
    let mut last = None;
    for t in toks.iter().skip(open_paren) {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return last;
                }
            }
            _ if t.kind == TokKind::Ident => last = Some(t.text.clone()),
            _ => {}
        }
    }
    None
}

/// Classifies the statement containing token `k`: does it bind its value
/// (`let g = ...;` or `g = ...;`, guard lives to end of block) or use it
/// as a temporary (guard dies at the `;`)?
pub(crate) fn statement_binding(
    toks: &[crate::lexer::Tok],
    body_open: usize,
    k: usize,
) -> (bool, Option<String>) {
    // Walk back to the start of the statement.
    let mut j = k;
    while j > body_open {
        match toks[j - 1].text.as_str() {
            ";" | "{" | "}" => break,
            _ => j -= 1,
        }
    }
    let first = &toks[j];
    if first.text == "let" {
        let mut n = j + 1;
        if toks.get(n).is_some_and(|t| t.text == "mut") {
            n += 1;
        }
        let name = toks
            .get(n)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone());
        return (false, name);
    }
    // Re-assignment to an existing binding keeps the guard alive.
    if first.kind == TokKind::Ident
        && toks.get(j + 1).is_some_and(|t| t.text == "=")
        && toks.get(j + 2).is_none_or(|t| t.text != "=")
    {
        return (false, Some(first.text.clone()));
    }
    (true, None)
}

/// Reports every distinct cycle in the acquisition graph.
pub fn check_cycles(graph: &LockGraph, out: &mut Vec<Diagnostic>) {
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in graph.edges.keys() {
        let mut path: Vec<String> = Vec::new();
        let mut on_path: BTreeSet<String> = BTreeSet::new();
        dfs(graph, start, &mut path, &mut on_path, &mut reported, out);
    }
}

fn dfs(
    graph: &LockGraph,
    node: &str,
    path: &mut Vec<String>,
    on_path: &mut BTreeSet<String>,
    reported: &mut BTreeSet<Vec<String>>,
    out: &mut Vec<Diagnostic>,
) {
    if on_path.contains(node) {
        let pos = path.iter().position(|n| n == node).unwrap_or(0);
        report_cycle(graph, &path[pos..], reported, out);
        return;
    }
    if path.len() > graph.edges.len() + 1 {
        return;
    }
    path.push(node.to_string());
    on_path.insert(node.to_string());
    if let Some(nexts) = graph.edges.get(node) {
        for next in nexts.keys() {
            dfs(graph, next, path, on_path, reported, out);
        }
    }
    path.pop();
    on_path.remove(node);
}

fn report_cycle(
    graph: &LockGraph,
    cycle: &[String],
    reported: &mut BTreeSet<Vec<String>>,
    out: &mut Vec<Diagnostic>,
) {
    if cycle.is_empty() {
        return;
    }
    // Canonicalise: rotate so the smallest node comes first.
    let min = cycle
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.cmp(b.1))
        .map_or(0, |(i, _)| i);
    let canon: Vec<String> = cycle[min..]
        .iter()
        .chain(cycle[..min].iter())
        .cloned()
        .collect();
    if !reported.insert(canon.clone()) {
        return;
    }
    let mut legs = Vec::new();
    let mut anchor: Option<EdgeSite> = None;
    for i in 0..canon.len() {
        let from = &canon[i];
        let to = &canon[(i + 1) % canon.len()];
        if let Some(site) = graph.edges.get(from).and_then(|m| m.get(to)) {
            legs.push(format!(
                "`{to}` acquired while holding `{from}` at {}:{} (fn {})",
                site.file, site.line, site.func
            ));
            if anchor.is_none() {
                anchor = Some(site.clone());
            }
        }
    }
    let Some(site) = anchor else { return };
    let chain = canon
        .iter()
        .chain(std::iter::once(&canon[0]))
        .cloned()
        .collect::<Vec<_>>()
        .join(" -> ");
    out.push(Diagnostic {
        severity: crate::diag::Severity::Error,
        rule: CYCLE,
        file: site.file.clone(),
        line: site.line,
        col: site.col,
        message: format!("lock-order cycle: {chain}; {}", legs.join("; ")),
        help: "acquire these locks in one global order (or drop the first guard \
               before taking the second)"
            .to_string(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn graph_of(src: &str) -> LockGraph {
        let f = SourceFile::parse(PathBuf::from("m.rs"), "t", src);
        let mut g = LockGraph::default();
        collect(&f, &mut g);
        g
    }

    fn cycles_of(src: &str) -> Vec<Diagnostic> {
        let g = graph_of(src);
        let mut out = Vec::new();
        check_cycles(&g, &mut out);
        out
    }

    #[test]
    fn two_mutex_inversion_is_a_cycle() {
        let src = "
            fn a(&self) {
                let g1 = self.first.lock().unwrap();
                let g2 = self.second.lock().unwrap();
                use_both(g1, g2);
            }
            fn b(&self) {
                let g2 = self.second.lock().unwrap();
                let g1 = self.first.lock().unwrap();
                use_both(g1, g2);
            }";
        let out = cycles_of(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("m::first"));
        assert!(out[0].message.contains("m::second"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "
            fn a(&self) { let g1 = self.first.lock().unwrap(); let g2 = self.second.lock().unwrap(); go(g1, g2); }
            fn b(&self) { let g1 = self.first.lock().unwrap(); let g2 = self.second.lock().unwrap(); go(g1, g2); }";
        assert!(cycles_of(src).is_empty());
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let src = "
            fn a(&self) {
                self.first.lock().unwrap().insert(1);
                let g = self.second.lock().unwrap();
                go(g);
            }
            fn b(&self) {
                self.second.lock().unwrap().insert(1);
                let g = self.first.lock().unwrap();
                go(g);
            }";
        assert!(cycles_of(src).is_empty());
    }

    #[test]
    fn condition_temporaries_die_before_the_block() {
        let src = "
            fn a(&self) {
                if self.pending.lock().unwrap().contains_key(&k) {
                    let g = self.pending.lock().unwrap();
                    go(g);
                }
            }";
        assert!(cycles_of(src).is_empty());
    }

    #[test]
    fn drop_releases_a_binding() {
        let src = "
            fn a(&self) {
                let g1 = self.first.lock().unwrap();
                drop(g1);
                let g2 = self.second.lock().unwrap();
                go(g2);
            }
            fn b(&self) {
                let g2 = self.second.lock().unwrap();
                let g1 = self.first.lock().unwrap();
                go(g1, g2);
            }";
        assert!(cycles_of(src).is_empty());
    }

    #[test]
    fn self_reacquisition_is_reported() {
        let src = "
            fn a(&self) {
                let g = self.inner.lock().unwrap();
                let h = self.inner.lock().unwrap();
                go(g, h);
            }";
        let out = cycles_of(src);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("m::inner"));
    }

    #[test]
    fn lock_or_recover_counts_as_an_acquisition() {
        let src = "
            fn a(&self) {
                let g1 = lock_or_recover(&self.first);
                let g2 = lock_or_recover(&self.second);
                use_both(g1, g2);
            }
            fn b(&self) {
                let g2 = lock_or_recover(&self.second);
                let g1 = self.first.lock().unwrap();
                use_both(g1, g2);
            }";
        let out = cycles_of(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("m::first"));
        assert!(out[0].message.contains("m::second"));
    }

    #[test]
    fn lock_or_recover_definition_is_not_an_acquisition() {
        let src = "
            fn lock_or_recover(m: &Mutex<u8>) -> MutexGuard<'_, u8> {
                m.lock().unwrap_or_else(PoisonError::into_inner)
            }";
        assert!(graph_of(src).edges.is_empty());
    }

    #[test]
    fn edges_do_not_cross_functions_spuriously() {
        let src = "
            fn a(&self) { let g = self.first.lock().unwrap(); go(g); }
            fn b(&self) { let g = self.second.lock().unwrap(); go(g); }";
        assert!(graph_of(src).edges.is_empty());
    }
}
