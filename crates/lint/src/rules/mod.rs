//! The four rule families of `rebootlint`.

pub mod determinism;
pub mod freeze;
pub mod locks;
pub mod panics;
