//! The eight rule families of `rebootlint`.

pub mod alloc;
pub mod channel;
pub mod determinism;
pub mod eventloop;
pub mod families;
pub mod freeze;
pub mod locks;
pub mod panics;
