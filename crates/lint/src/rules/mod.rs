//! The five rule families of `rebootlint`.

pub mod determinism;
pub mod families;
pub mod freeze;
pub mod locks;
pub mod panics;
