//! Panic-hygiene lints for hostile-input and serving surfaces: library
//! code that faces the network (`wire`, `server`) or routes jobs
//! (`accel::host`) must return typed errors, never abort the thread.
//!
//! * `panic::unwrap`, `panic::expect` — `.unwrap()` / `.expect(...)`;
//! * `panic::panic`, `panic::todo`, `panic::unimplemented` — the macros;
//! * `panic::index` — slice/array indexing `x[i]`, which panics out of
//!   bounds (use `.get(i)` and handle the `None`).
//!
//! `#[cfg(test)]` regions are exempt — tests *should* unwrap.

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::source::SourceFile;

pub const UNWRAP: &str = "panic::unwrap";
pub const EXPECT: &str = "panic::expect";
pub const PANIC: &str = "panic::panic";
pub const TODO: &str = "panic::todo";
pub const UNIMPLEMENTED: &str = "panic::unimplemented";
pub const INDEX: &str = "panic::index";

/// Keywords that can directly precede a `[` starting an array literal or
/// slice pattern rather than an index expression.
const NON_INDEX_KEYWORDS: &[&str] = &[
    "return", "break", "continue", "in", "if", "else", "match", "loop", "while", "let", "mut",
    "ref", "move", "as", "where", "dyn", "use", "pub", "const", "static", "enum", "struct", "fn",
    "impl", "trait", "mod", "type", "unsafe", "async", "await", "yield", "box",
];

pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &file.toks;
    for i in 0..toks.len() {
        if file.is_test[i] {
            continue;
        }
        let t = &toks[i];
        match t.kind {
            TokKind::Ident => {
                let next_is = |s: &str| toks.get(i + 1).is_some_and(|n| n.text == s);
                let method_call = i > 0 && toks[i - 1].text == "." && next_is("(");
                match t.text.as_str() {
                    "unwrap" if method_call => {
                        out.push(Diagnostic::error(
                            UNWRAP,
                            &file.path,
                            t.line,
                            t.col,
                            "`unwrap()` in non-test library code of a serving surface",
                            "propagate a typed error (`?`), recover explicitly, or \
                             annotate `// lint:allow(panic::unwrap, reason = \"...\")`",
                        ));
                    }
                    "expect" if method_call => {
                        out.push(Diagnostic::error(
                            EXPECT,
                            &file.path,
                            t.line,
                            t.col,
                            "`expect()` in non-test library code of a serving surface",
                            "propagate a typed error (`?`), recover explicitly, or \
                             annotate `// lint:allow(panic::expect, reason = \"...\")`",
                        ));
                    }
                    "panic" if next_is("!") => {
                        out.push(Diagnostic::error(
                            PANIC,
                            &file.path,
                            t.line,
                            t.col,
                            "`panic!` in non-test library code of a serving surface",
                            "return a typed error; a panic here kills a worker or \
                             connection thread",
                        ));
                    }
                    "todo" if next_is("!") => {
                        out.push(Diagnostic::error(
                            TODO,
                            &file.path,
                            t.line,
                            t.col,
                            "`todo!` in non-test library code",
                            "implement the path or return a typed unsupported error",
                        ));
                    }
                    "unimplemented" if next_is("!") => {
                        out.push(Diagnostic::error(
                            UNIMPLEMENTED,
                            &file.path,
                            t.line,
                            t.col,
                            "`unimplemented!` in non-test library code",
                            "implement the path or return a typed unsupported error",
                        ));
                    }
                    _ => {}
                }
            }
            TokKind::Punct if t.text == "[" => {
                if let Some(d) = index_expression_at(file, i) {
                    out.push(d);
                }
            }
            _ => {}
        }
    }
}

/// Flags `expr[...]` indexing: a `[` directly preceded by an identifier,
/// `)`, or `]` in expression position. Array literals, slice patterns,
/// types and attributes all start their `[` after other token shapes.
fn index_expression_at(file: &SourceFile, i: usize) -> Option<Diagnostic> {
    let toks = &file.toks;
    let prev = toks.get(i.checked_sub(1)?)?;
    let indexes = match prev.kind {
        TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
        TokKind::Punct => matches!(prev.text.as_str(), ")" | "]" | "?"),
        _ => false,
    };
    // `[]` never indexes, and `#[...]` / `#![...]` are attributes.
    if !indexes || toks.get(i + 1).is_some_and(|n| n.text == "]") {
        return None;
    }
    Some(Diagnostic::error(
        INDEX,
        &file.path,
        toks[i].line,
        toks[i].col,
        format!("indexing `{}[...]` can panic out of bounds", prev.text),
        "use `.get(..)` and handle the miss, or annotate \
         `// lint:allow(panic::index, reason = \"...\")` for a proven bound",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse(PathBuf::from("t.rs"), "t", src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn flags_unwrap_and_expect_but_not_variants() {
        let d = run("fn f(x: Option<u8>) -> u8 { x.unwrap() }");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, UNWRAP);
        assert!(run("fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }").is_empty());
        assert!(run("fn f(x: Option<u8>) -> u8 { x.unwrap_or_else(|| 0) }").is_empty());
        assert_eq!(
            run("fn f(x: Option<u8>) { x.expect(\"boom\"); }")[0].rule,
            EXPECT
        );
    }

    #[test]
    fn flags_macros_but_not_paths() {
        assert_eq!(run("fn f() { panic!(\"boom\") }")[0].rule, PANIC);
        assert_eq!(run("fn f() { todo!() }")[0].rule, TODO);
        assert_eq!(run("fn f() { unimplemented!() }")[0].rule, UNIMPLEMENTED);
        assert!(run("fn f(p: Box<dyn Any>) { std::panic::resume_unwind(p) }").is_empty());
    }

    #[test]
    fn index_expressions_flagged_literals_and_types_not() {
        assert_eq!(run("fn f(v: &[u8]) -> u8 { v[0] }")[0].rule, INDEX);
        assert_eq!(run("fn f(v: &[u8]) -> &[u8] { &v[1..] }")[0].rule, INDEX);
        assert!(run("fn f() -> [u8; 2] { [1, 2] }").is_empty());
        assert!(run("fn f(x: [u8; 4]) { let [_a, _b, _c, _d] = x; }").is_empty());
        assert!(run("#[derive(Debug)] struct S;").is_empty());
        assert!(run("fn f() { let v = vec![1, 2]; drop(v); }").is_empty());
    }

    #[test]
    fn chained_index_after_call_flagged() {
        assert_eq!(run("fn f() -> u8 { g()[0] }")[0].rule, INDEX);
    }

    #[test]
    fn tests_are_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn f() { x().unwrap(); v[0]; panic!(); } }";
        assert!(run(src).is_empty());
    }
}
