//! Per-file analysis model: the token stream, `#[cfg(test)]` region mask,
//! function items, and parsed `// lint:allow(...)` escape hatches.

use crate::lexer::{lex, Comment, Tok, TokKind};
use std::path::PathBuf;

/// One `// lint:allow(rule, reason = "...")` escape hatch.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Line the comment starts on. The allow suppresses matching
    /// diagnostics on this line and the next one, so it works both as a
    /// trailing comment and on its own line above the annotated site.
    pub line: u32,
    pub col: u32,
    /// Rule selector: a full id (`determinism::wall-clock`), a family
    /// (`determinism`), or a leaf (`wall-clock`).
    pub rule: String,
    pub reason: Option<String>,
}

/// A `fn` item: name, position, and the token range of its body.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub kw: usize,
    /// Token range of the body including both braces; `None` for
    /// body-less trait method declarations.
    pub body: Option<(usize, usize)>,
    /// Whether the item sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// A lexed and structurally annotated source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path (used verbatim in diagnostics).
    pub path: PathBuf,
    /// The crate this file belongs to (`wire`, `server`, ...).
    pub crate_name: String,
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
    /// Parallel to `toks`: true for tokens inside `#[cfg(test)]` items.
    pub is_test: Vec<bool>,
    pub fns: Vec<FnItem>,
    pub allows: Vec<Allow>,
}

impl SourceFile {
    /// Lexes and annotates `src`.
    #[must_use]
    pub fn parse(path: PathBuf, crate_name: &str, src: &str) -> Self {
        let lexed = lex(src);
        let is_test = test_mask(&lexed.toks);
        let fns = scan_fns(&lexed.toks, &is_test);
        let allows = lexed.comments.iter().filter_map(parse_allow).collect();
        SourceFile {
            path,
            crate_name: crate_name.to_string(),
            toks: lexed.toks,
            comments: lexed.comments,
            is_test,
            fns,
            allows,
        }
    }

    /// Finds an allow whose selector matches `rule` and whose window
    /// covers `line`. Returns the allow's index for usage tracking.
    #[must_use]
    pub fn allow_for(&self, rule: &str, line: u32) -> Option<usize> {
        self.allows
            .iter()
            .position(|a| (a.line == line || a.line + 1 == line) && selector_matches(&a.rule, rule))
    }
}

/// Does an allow selector cover a full rule id?
#[must_use]
pub fn selector_matches(selector: &str, rule: &str) -> bool {
    if selector == rule {
        return true;
    }
    match rule.split_once("::") {
        Some((family, leaf)) => selector == family || selector == leaf,
        None => false,
    }
}

/// Parses `lint:allow(rule)` / `lint:allow(rule, reason = "...")` out of a
/// comment. A malformed reason clause is kept as `reason: None` so the
/// engine can demand one.
fn parse_allow(comment: &Comment) -> Option<Allow> {
    let at = comment.text.find("lint:allow(")?;
    let rest = &comment.text[at + "lint:allow(".len()..];
    let end = rest.find([',', ')'])?;
    let rule = rest[..end].trim().to_string();
    if rule.is_empty() {
        return None;
    }
    let reason = rest[end..].strip_prefix(',').and_then(|clause| {
        let clause = clause.trim_start();
        let clause = clause.strip_prefix("reason")?.trim_start();
        let clause = clause.strip_prefix('=')?.trim_start();
        let body = clause.strip_prefix('"')?;
        let close = body.rfind('"')?;
        let text = body[..close].trim();
        (!text.is_empty()).then(|| text.to_string())
    });
    Some(Allow {
        line: comment.line,
        col: u32::try_from(at).unwrap_or(0) + 1,
        rule,
        reason,
    })
}

/// Marks every token that belongs to a `#[cfg(test)]`- or `#[test]`-gated
/// item (including everything inside `mod tests { ... }` blocks carrying
/// the attribute).
fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "#" && i + 1 < toks.len() && toks[i + 1].text == "[" {
            let attr_end = match matching(toks, i + 1, "[", "]") {
                Some(e) => e,
                None => break,
            };
            if attr_gates_test(&toks[i + 2..attr_end]) {
                let item_end = item_extent(toks, attr_end + 1);
                for flag in mask.iter_mut().take(item_end + 1).skip(i) {
                    *flag = true;
                }
                i = item_end + 1;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Is this attribute body a test gate? `cfg(test)`, `cfg(any(test, ...))`
/// and the bare `test` attribute are; `cfg(not(test))` is not.
fn attr_gates_test(body: &[Tok]) -> bool {
    for (j, t) in body.iter().enumerate() {
        if t.kind == TokKind::Ident && t.text == "test" {
            let negated = j >= 2 && body[j - 1].text == "(" && body[j - 2].text == "not";
            if !negated {
                return true;
            }
        }
    }
    false
}

/// Given the token index right after a gating attribute, returns the index
/// of the last token of the gated item: through any further attributes,
/// then either a braced body or a terminating `;`.
fn item_extent(toks: &[Tok], mut i: usize) -> usize {
    // Skip stacked attributes (`#[cfg(test)] #[allow(...)] mod tests`).
    while i + 1 < toks.len() && toks[i].text == "#" && toks[i + 1].text == "[" {
        match matching(toks, i + 1, "[", "]") {
            Some(e) => i = e + 1,
            None => return toks.len().saturating_sub(1),
        }
    }
    let mut depth_paren = 0i32;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "(" | "[" => depth_paren += 1,
            ")" | "]" => depth_paren -= 1,
            "{" => {
                return matching(toks, i, "{", "}").unwrap_or(toks.len().saturating_sub(1));
            }
            ";" if depth_paren == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Index of the delimiter closing the one at `open`, scanning only that
/// delimiter kind (sufficient for well-formed code).
fn matching(toks: &[Tok], open: usize, open_s: &str, close_s: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            if t.text == open_s {
                depth += 1;
            } else if t.text == close_s {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
        }
    }
    None
}

/// Collects every `fn` item with its body range.
fn scan_fns(toks: &[Tok], is_test: &[bool]) -> Vec<FnItem> {
    let mut fns = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident
            && toks[i].text == "fn"
            && i + 1 < toks.len()
            && toks[i + 1].kind == TokKind::Ident
        {
            let name = toks[i + 1].text.clone();
            let line = toks[i].line;
            // Find the body `{` at bracket depth 0, or a `;` (no body).
            let mut depth = 0i32;
            let mut j = i + 2;
            let mut body = None;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        body = matching(toks, j, "{", "}").map(|e| (j, e));
                        break;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            fns.push(FnItem {
                name,
                line,
                kw: i,
                body,
                in_test: is_test[i],
            });
        }
        i += 1;
    }
    fns
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from("t.rs"), "t", src)
    }

    #[test]
    fn cfg_test_regions_are_masked() {
        let f = file(
            "fn live() { a(); }\n\
             #[cfg(test)]\nmod tests {\n    fn gated() { b(); }\n}\n\
             fn also_live() {}\n",
        );
        let live: Vec<_> = f.fns.iter().map(|x| (x.name.clone(), x.in_test)).collect();
        assert_eq!(
            live,
            vec![
                ("live".to_string(), false),
                ("gated".to_string(), true),
                ("also_live".to_string(), false)
            ]
        );
    }

    #[test]
    fn cfg_not_test_is_live() {
        let f = file("#[cfg(not(test))]\nfn live() {}\n#[test]\nfn gated() {}\n");
        assert!(!f.fns[0].in_test);
        assert!(f.fns[1].in_test);
    }

    #[test]
    fn fn_bodies_span_their_braces() {
        let f = file("fn f(x: [u8; 4]) -> u8 { if x[0] > 0 { 1 } else { 0 } }");
        let (open, close) = f.fns[0].body.unwrap();
        assert_eq!(f.toks[open].text, "{");
        assert_eq!(close, f.toks.len() - 1);
    }

    #[test]
    fn allow_parsing() {
        let f = file(
            "// lint:allow(wall-clock, reason = \"latency stamping only\")\n\
             let t = now();\n\
             // lint:allow(panic)\n\
             x.unwrap();\n",
        );
        assert_eq!(f.allows.len(), 2);
        assert_eq!(f.allows[0].rule, "wall-clock");
        assert_eq!(f.allows[0].reason.as_deref(), Some("latency stamping only"));
        assert_eq!(f.allows[1].rule, "panic");
        assert!(f.allows[1].reason.is_none());
    }

    #[test]
    fn allow_window_covers_same_and_next_line() {
        let f = file("// lint:allow(wall-clock, reason = \"x\")\nlet t = now();\n");
        assert!(f.allow_for("determinism::wall-clock", 2).is_some());
        assert!(f.allow_for("determinism::wall-clock", 3).is_none());
        assert!(f.allow_for("panic::unwrap", 2).is_none());
    }

    #[test]
    fn selector_granularity() {
        assert!(selector_matches(
            "determinism::wall-clock",
            "determinism::wall-clock"
        ));
        assert!(selector_matches("determinism", "determinism::wall-clock"));
        assert!(selector_matches("wall-clock", "determinism::wall-clock"));
        assert!(!selector_matches("panic", "determinism::wall-clock"));
    }
}
