//! End-to-end checks of the rule families over the fixture files: each
//! positive fixture must produce exactly the expected `rule @ line`
//! diagnostics, and each negative fixture must be silent.

use lint::check_files;
use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// `(rule, line)` pairs for one fixture, in diagnostic order.
fn findings(name: &str) -> Vec<(String, u32)> {
    let report = check_files(&[fixture(name)]).expect("fixture must be readable");
    report
        .diags
        .iter()
        .map(|d| (d.rule.to_string(), d.line))
        .collect()
}

#[test]
fn determinism_violations_fire_at_the_right_lines() {
    assert_eq!(
        findings("determinism_bad.rs"),
        vec![
            ("determinism::wall-clock".to_string(), 4),
            ("determinism::system-time".to_string(), 9),
            ("determinism::system-time".to_string(), 10),
            ("determinism::thread-rng".to_string(), 14),
            ("determinism::hash-iter".to_string(), 20),
        ]
    );
}

#[test]
fn admission_tier_mistakes_fire_at_the_right_lines() {
    // The admission crate sits in every rule family: deterministic (cache
    // keys and recency must replay), hash-iter-free (eviction order), and
    // panic-free (a cache lookup is a hostile-input surface).
    assert_eq!(
        findings("admission_bad.rs"),
        vec![
            ("determinism::wall-clock".to_string(), 6),
            ("determinism::hash-iter".to_string(), 12),
            ("panic::unwrap".to_string(), 19),
            ("panic::index".to_string(), 23),
        ]
    );
}

#[test]
fn cluster_tier_mistakes_fire_at_the_right_lines() {
    // The cluster crate sits in every rule family: deterministic
    // (heartbeat ticks and ring placement must replay), panic-free (the
    // router faces hostile shard responses), and lock-ordered (gossip
    // and stats registries).
    let report = check_files(&[fixture("cluster_bad.rs")]).expect("fixture must be readable");
    let point_findings: Vec<_> = report
        .diags
        .iter()
        .filter(|d| d.rule != "locks::cycle")
        .map(|d| (d.rule.to_string(), d.line))
        .collect();
    assert_eq!(
        point_findings,
        vec![
            ("determinism::wall-clock".to_string(), 6),
            ("panic::index".to_string(), 11),
            ("panic::unwrap".to_string(), 15),
        ]
    );
    let cycles: Vec<_> = report
        .diags
        .iter()
        .filter(|d| d.rule == "locks::cycle")
        .collect();
    assert_eq!(cycles.len(), 1, "{:?}", report.diags);
    assert!(cycles[0].message.contains("cluster_bad::gossip"));
    assert!(cycles[0].message.contains("cluster_bad::stats"));
}

#[test]
fn annotated_escapes_silence_the_determinism_rules() {
    assert_eq!(findings("determinism_allow.rs"), vec![]);
}

#[test]
fn panic_violations_fire_at_the_right_lines() {
    assert_eq!(
        findings("panic_bad.rs"),
        vec![
            ("panic::index".to_string(), 4),
            ("panic::unwrap".to_string(), 8),
            ("panic::expect".to_string(), 12),
            ("panic::panic".to_string(), 16),
            ("panic::todo".to_string(), 20),
            ("panic::unimplemented".to_string(), 24),
        ]
    );
}

#[test]
fn hygienic_code_and_test_modules_are_silent() {
    assert_eq!(findings("panic_ok.rs"), vec![]);
}

#[test]
fn two_mutex_inversion_is_reported_as_a_cycle() {
    let report = check_files(&[fixture("lock_cycle.rs")]).expect("fixture must be readable");
    let cycles: Vec<_> = report
        .diags
        .iter()
        .filter(|d| d.rule == "locks::cycle")
        .collect();
    assert_eq!(cycles.len(), 1, "{:?}", report.diags);
    assert!(cycles[0].message.contains("lock_cycle::first"));
    assert!(cycles[0].message.contains("lock_cycle::second"));
    // The inversion is the only problem with the fixture.
    assert_eq!(report.diags.len(), 1, "{:?}", report.diags);
}

#[test]
fn consistent_lock_order_is_silent() {
    assert_eq!(findings("lock_clean.rs"), vec![]);
}

#[test]
fn blocking_on_the_loop_path_fires_at_the_right_lines() {
    // Line 7 is direct (`thread::sleep` in `event_loop`); line 13 is
    // reached through the call graph (`event_loop -> drain_one`). The
    // identical lock in `background` (line 18) is off-path and silent.
    assert_eq!(
        findings("eventloop_bad.rs"),
        vec![
            ("eventloop::blocking".to_string(), 7),
            ("eventloop::blocking".to_string(), 13),
        ]
    );
}

#[test]
fn annotated_and_deferred_loop_blocking_is_silent() {
    assert_eq!(findings("eventloop_allow.rs"), vec![]);
}

#[test]
fn unbounded_decode_allocations_fire_at_the_right_lines() {
    assert_eq!(
        findings("alloc_bad.rs"),
        vec![
            ("alloc::unbounded".to_string(), 6),
            ("alloc::unbounded".to_string(), 14),
            ("alloc::unbounded".to_string(), 20),
        ]
    );
}

#[test]
fn capped_decode_allocations_are_silent() {
    assert_eq!(findings("alloc_ok.rs"), vec![]);
}

#[test]
fn send_under_lock_fires_and_closes_a_channel_cycle() {
    let report = check_files(&[fixture("channel_bad.rs")]).expect("fixture must be readable");
    let point_findings: Vec<_> = report
        .diags
        .iter()
        .filter(|d| d.rule != "locks::cycle")
        .map(|d| (d.rule.to_string(), d.line))
        .collect();
    assert_eq!(
        point_findings,
        vec![("channel::send-under-lock".to_string(), 13)]
    );
    let cycles: Vec<_> = report
        .diags
        .iter()
        .filter(|d| d.rule == "locks::cycle")
        .collect();
    assert_eq!(cycles.len(), 1, "{:?}", report.diags);
    assert!(cycles[0].message.contains("chan:channel_bad"));
    assert!(cycles[0].message.contains("channel_bad::state"));
}

#[test]
fn disciplined_channel_shapes_are_silent() {
    assert_eq!(findings("channel_ok.rs"), vec![]);
}

#[test]
fn stale_allow_is_an_error_with_a_position() {
    let report = check_files(&[fixture("allow_stale.rs")]).expect("fixture must be readable");
    assert_eq!(
        findings("allow_stale.rs"),
        vec![("allow::unused".to_string(), 4)]
    );
    assert_eq!(report.errors(), 1, "{:?}", report.diags);
}

#[test]
fn cross_file_edges_also_form_cycles() {
    // The graph is workspace-wide: fn a in one file and fn b in another
    // still collide. Checked here by handing both lock fixtures to one
    // run — the clean file adds parallel edges, the cycle stays.
    let report = check_files(&[fixture("lock_clean.rs"), fixture("lock_cycle.rs")])
        .expect("fixtures must be readable");
    assert!(
        report.diags.iter().any(|d| d.rule == "locks::cycle"),
        "{:?}",
        report.diags
    );
}
