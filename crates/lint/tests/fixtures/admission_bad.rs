//! Fixture: the mistakes an admission tier invites — wall-clock cache
//! recency, hash-order eviction scans, and panicking cache lookups.
//! Every marked line fires.

pub fn recency_stamp() -> u64 {
    let now = Instant::now();
    nanos_since_start(now)
}

pub fn evict_scan(entries: HashMap<u64, u64>) -> u64 {
    let mut coldest = 0;
    for (key, _tick) in &entries {
        coldest = *key;
    }
    coldest
}

pub fn cached_result(cache: &Cache, key: u64) -> Outcome {
    cache.get(&key).unwrap().clone()
}

pub fn canonical_slot(clauses: &[Clause], idx: usize) -> Clause {
    clauses[idx].clone()
}
