//! Fixture: wire-derived lengths flowing into allocations without a
//! dominating cap check — one per sink kind.

pub fn decode_frame(r: &mut ByteReader) -> Result<Frame, WireError> {
    let len = r.get_u32()? as usize;
    let mut payload = Vec::with_capacity(len);
    r.take_into(&mut payload)?;
    Ok(Frame { payload })
}

pub fn decode_batch(r: &mut ByteReader) -> Result<Batch, WireError> {
    let count = r.get_u16()? as usize;
    let mut out = Vec::new();
    out.reserve(count);
    Ok(Batch { out })
}

pub fn decode_blob(r: &mut ByteReader) -> Result<Vec<u8>, WireError> {
    let n = r.get_u64()? as usize;
    Ok(vec![0u8; n])
}
