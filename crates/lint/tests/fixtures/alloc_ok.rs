//! Fixture: the sanctioned ways to size an allocation from the wire —
//! a dominating comparison, `ByteReader::get_count`, or an in-place
//! clamp.

pub fn decode_frame(r: &mut ByteReader) -> Result<Frame, WireError> {
    let len = r.get_u32()? as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::TooLong);
    }
    let mut payload = Vec::with_capacity(len);
    r.take_into(&mut payload)?;
    Ok(Frame { payload })
}

pub fn decode_batch(r: &mut ByteReader) -> Result<Batch, WireError> {
    let count = r.get_count(MAX_BATCH, 2, "jobs")?;
    let mut out = Vec::with_capacity(count);
    fill(r, &mut out)?;
    Ok(Batch { out })
}

pub fn decode_blob(r: &mut ByteReader) -> Result<Vec<u8>, WireError> {
    let n = r.get_u64()? as usize;
    Ok(vec![0u8; n.min(MAX_BLOB)])
}
