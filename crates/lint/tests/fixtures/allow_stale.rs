//! Fixture: a suppression with nothing left to suppress — stale allows
//! are errors, not warnings.

// lint:allow(wall-clock, reason = "stamping that a refactor has since removed")
pub fn tick(counter: &mut u64) {
    *counter += 1;
}
