//! Fixture: a bounded-channel send under a mutex guard, and the
//! lock↔channel cycle it closes with the consumer.

pub struct Plumbing {
    jobs: SyncSender<Job>,
    done: Receiver<Job>,
    state: Mutex<State>,
}

impl Plumbing {
    pub fn produce(&self, job: Job) {
        let guard = lock_or_recover(&self.state);
        self.jobs.send(job);
        drop(guard);
    }

    pub fn consume(&self) {
        let guard = lock_or_recover(&self.state);
        let job = self.done.recv();
        apply(guard, job);
    }
}
