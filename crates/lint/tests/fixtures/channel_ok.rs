//! Fixture: disciplined channel shapes — the guard drops before a
//! bounded send, and an unbounded send never blocks, lock held or not.

pub struct Plumbing {
    jobs: SyncSender<Job>,
    state: Mutex<State>,
}

impl Plumbing {
    pub fn produce(&self, job: Job) {
        let guard = lock_or_recover(&self.state);
        stage(guard, &job);
        drop(guard);
        self.jobs.send(job);
    }

    pub fn notify(&self, event: Event) {
        let (tx, rx) = mpsc::channel();
        let guard = lock_or_recover(&self.state);
        tx.send(event);
        drop(guard);
        forward(rx);
    }
}
