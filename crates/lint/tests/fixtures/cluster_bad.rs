//! Fixture: the mistakes a cluster tier invites — wall-clock heartbeat
//! epochs, panicking ring and shard-link lookups, and a gossip/stats
//! lock inversion. Every marked line fires.

pub fn heartbeat_epoch() -> u64 {
    let tick = Instant::now();
    nanos_since_start(tick)
}

pub fn ring_owner(points: &[(u64, u32)], idx: usize) -> u32 {
    points[idx].1
}

pub fn shard_link(links: &HashMap<u32, Link>, shard: u32) -> Link {
    links.get(&shard).unwrap().clone()
}

pub fn merge_then_stats(board: &Board) {
    let gossip = board.gossip.lock();
    let stats = board.stats.lock();
    drop(stats);
    drop(gossip);
}

pub fn stats_then_merge(board: &Board) {
    let stats = board.stats.lock();
    let gossip = board.gossip.lock();
    drop(gossip);
    drop(stats);
}
