//! Fixture: annotated escape hatches — the lint must stay silent.

pub fn stamp() -> u64 {
    // lint:allow(wall-clock, reason = "latency stamping only; never feeds a result")
    let t = Instant::now();
    elapsed_nanos(t)
}

pub fn entropy() -> u64 {
    // lint:allow(determinism::thread-rng, reason = "full rule-id selectors work too")
    let mut rng = thread_rng();
    rng.gen()
}
