//! Fixture: deterministic-crate violations — every marked line fires.

pub fn stamp() -> u64 {
    let t = Instant::now();
    elapsed_nanos(t)
}

pub fn epoch() -> u64 {
    let e = SystemTime::now();
    since(e, UNIX_EPOCH)
}

pub fn entropy() -> u64 {
    let mut rng = thread_rng();
    rng.gen()
}

pub fn sum_values(map: HashMap<u32, u32>) -> u32 {
    let mut total = 0;
    for (_k, v) in &map {
        total += v;
    }
    total
}
