//! Fixture: the same blocking shapes as `eventloop_bad.rs`, annotated
//! with audited reasons — and actually exercised, so none of the allows
//! is stale. Off-loop work handed to a deferred sink needs no
//! annotation at all.

pub fn event_loop(queue: &WorkQueue) {
    loop {
        // lint:allow(eventloop, reason = "bounded park slice; any waker interrupts it")
        std::thread::sleep(POLL_SLICE);
        scan(queue);
        queue.pool.execute(move || flush_archive(queue));
    }
}

fn scan(queue: &WorkQueue) {
    // lint:allow(eventloop, reason = "bounded hold: swaps the inbox out, nothing else under the guard")
    let guard = lock_or_recover(&queue.inbox);
    serve(guard);
}

fn flush_archive(queue: &WorkQueue) {
    let guard = lock_or_recover(&queue.archive);
    persist(guard);
}
