//! Fixture: blocking operations reachable from the event-loop dispatch
//! path — directly and through a callee — plus an off-path function
//! that may block freely.

pub fn event_loop(queue: &WorkQueue) {
    loop {
        std::thread::sleep(POLL_SLICE);
        drain_one(queue);
    }
}

fn drain_one(queue: &WorkQueue) {
    let guard = lock_or_recover(&queue.inbox);
    serve(guard);
}

fn background(queue: &WorkQueue) {
    let guard = lock_or_recover(&queue.inbox);
    serve(guard);
}
