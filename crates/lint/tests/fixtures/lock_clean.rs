//! Fixture: the same two mutexes taken in one global order everywhere —
//! no cycle, no diagnostic.

pub struct Pair {
    first: Mutex<u32>,
    second: Mutex<u32>,
}

impl Pair {
    pub fn sum(&self) -> u32 {
        let a = lock_or_recover(&self.first);
        let b = lock_or_recover(&self.second);
        *a + *b
    }

    pub fn swap(&self) {
        let mut a = lock_or_recover(&self.first);
        let mut b = lock_or_recover(&self.second);
        core::mem::swap(&mut *a, &mut *b);
    }

    pub fn reset(&self) {
        *lock_or_recover(&self.first) = 0;
        *lock_or_recover(&self.second) = 0;
    }
}
