//! Fixture: a two-mutex acquisition-order inversion — the classic
//! deadlock shape the lock-order rule exists to catch.

pub struct Pair {
    first: Mutex<u32>,
    second: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let a = self.first.lock().unwrap_or_else(PoisonError::into_inner);
        let b = self.second.lock().unwrap_or_else(PoisonError::into_inner);
        *a + *b
    }

    pub fn backward(&self) -> u32 {
        let b = lock_or_recover(&self.second);
        let a = lock_or_recover(&self.first);
        *a + *b
    }
}
