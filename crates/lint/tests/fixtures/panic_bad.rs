//! Fixture: panic-hygiene violations — one per function.

pub fn first(v: &[u8]) -> u8 {
    v[0]
}

pub fn must(x: Option<u8>) -> u8 {
    x.unwrap()
}

pub fn expected(x: Option<u8>) -> u8 {
    x.expect("always present")
}

pub fn boom() {
    panic!("fixture")
}

pub fn later() {
    todo!()
}

pub fn never() {
    unimplemented!()
}
