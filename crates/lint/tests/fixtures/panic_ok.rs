//! Fixture: hygienic library code plus an exempt test module.

pub fn first(v: &[u8]) -> Option<u8> {
    v.first().copied()
}

pub fn must(x: Option<u8>) -> Result<u8, &'static str> {
    x.ok_or("missing")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_index_and_panic() {
        let v = [1u8, 2];
        assert_eq!(super::first(&v).unwrap(), v[0]);
        panic!("even panic is fine in tests");
    }
}
