//! The self-check: the workspace this lint ships in must itself be
//! lint-clean, and the wire-freeze registry must actually bite when a
//! frozen function is edited without re-blessing.

use lint::rules::freeze;
use lint::source::SourceFile;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_is_lint_clean() {
    let report = lint::check_workspace(&workspace_root()).expect("workspace must be readable");
    assert_eq!(report.errors(), 0, "{:#?}", report.diags);
    assert_eq!(report.warnings(), 0, "{:#?}", report.diags);
    assert!(report.files_scanned > 40, "scan looks truncated");
}

#[test]
fn admission_crate_is_in_every_rule_family() {
    // The admission tier caches results and canonicalizes kernels on the
    // serving path; dropping it from any list would let nondeterminism or
    // panics creep into cache keys unnoticed.
    assert!(lint::DETERMINISTIC_CRATES.contains(&"admission"));
    assert!(lint::HASH_ITER_CRATES.contains(&"admission"));
    assert!(lint::PANIC_CRATES.contains(&"admission"));
}

#[test]
fn blessed_registry_matches_the_checked_in_one() {
    // `--bless-wire` output is a pure function of the sources; the file in
    // the repo must be exactly what blessing today would produce.
    let root = workspace_root();
    let files = lint::load_workspace(&root).expect("workspace must be readable");
    let wire = wire_map(&files);
    let fresh = freeze::bless(&wire);
    let checked_in = std::fs::read_to_string(root.join(lint::WIRE_REGISTRY))
        .expect("registry must exist — run `cargo run -p lint -- --bless-wire`");
    assert_eq!(fresh, checked_in, "registry is stale; re-bless");
}

#[test]
fn editing_a_frozen_wire_fn_without_reblessing_fails() {
    let root = workspace_root();
    let files = lint::load_workspace(&root).expect("workspace must be readable");
    let wire = wire_map(&files);
    let registry = freeze::bless(&wire);

    // Sanity: the freshly blessed registry accepts the clean sources.
    let mut clean = Vec::new();
    freeze::check(&wire, &registry, Path::new("registry"), &mut clean);
    assert!(clean.is_empty(), "{clean:#?}");

    // Tamper with a frozen decoder: flip get_u16 to little-endian. The
    // byte layout changes, the blessed hash must no longer match.
    let codec_path = root.join("crates/wire/src/codec.rs");
    let original = std::fs::read_to_string(&codec_path).expect("codec.rs must exist");
    let tampered_text = original.replace("u16::from_be_bytes", "u16::from_le_bytes");
    assert_ne!(
        original, tampered_text,
        "tamper target not found in codec.rs"
    );
    let tampered = SourceFile::parse(
        PathBuf::from("crates/wire/src/codec.rs"),
        "wire",
        &tampered_text,
    );
    let mut wire = wire;
    wire.insert("codec".to_string(), &tampered);

    let mut out = Vec::new();
    freeze::check(&wire, &registry, Path::new("registry"), &mut out);
    assert!(
        out.iter().any(|d| d.rule == "wire::frozen"
            && d.message.contains("codec::get_u16")
            && d.message.contains("edited without re-blessing")),
        "{out:#?}"
    );
}

fn wire_map(files: &[SourceFile]) -> BTreeMap<String, &SourceFile> {
    files
        .iter()
        .filter(|f| f.crate_name == "wire")
        .filter_map(|f| {
            f.path
                .file_stem()
                .map(|s| (s.to_string_lossy().into_owned(), f))
        })
        .collect()
}
