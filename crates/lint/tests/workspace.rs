//! The self-check: the workspace this lint ships in must itself be
//! lint-clean, and the wire-freeze registry must actually bite when a
//! frozen function is edited without re-blessing.

use lint::rules::{families, freeze};
use lint::source::SourceFile;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_is_lint_clean() {
    let report = lint::check_workspace(&workspace_root()).expect("workspace must be readable");
    assert_eq!(report.errors(), 0, "{:#?}", report.diags);
    assert_eq!(report.warnings(), 0, "{:#?}", report.diags);
    assert!(report.files_scanned > 40, "scan looks truncated");
}

#[test]
fn admission_crate_is_in_every_rule_family() {
    // The admission tier caches results and canonicalizes kernels on the
    // serving path; dropping it from any list would let nondeterminism or
    // panics creep into cache keys unnoticed.
    assert!(lint::DETERMINISTIC_CRATES.contains(&"admission"));
    assert!(lint::HASH_ITER_CRATES.contains(&"admission"));
    assert!(lint::PANIC_CRATES.contains(&"admission"));
    assert!(lint::ALLOC_CRATES.contains(&"admission"));
}

#[test]
fn serving_tier_is_in_the_analysis_rule_families() {
    // The readiness loop lives in cluster (poll) and server (dispatch);
    // both decode hostile input and share the lock graph. The client is
    // the designed blocking tier and stays out of the loop analysis.
    assert!(lint::EVENTLOOP_CRATES.contains(&"cluster"));
    assert!(lint::EVENTLOOP_CRATES.contains(&"server"));
    assert!(lint::EVENTLOOP_EXEMPT_FILES.contains(&"client.rs"));
    assert!(lint::ALLOC_CRATES.contains(&"wire"));
    assert!(lint::ALLOC_CRATES.contains(&"cluster"));
    assert!(lint::LOCK_CRATES.contains(&"cluster"));
}

#[test]
fn blocking_call_injected_into_the_dispatch_path_fails() {
    // Tamper with the real event loop: park the thread between poll
    // rounds. The rule must name the op, the path, and the line.
    let server_path = workspace_root().join("crates/server/src/server.rs");
    let original = std::fs::read_to_string(&server_path).expect("server.rs must exist");
    let tampered_text = original.replace(
        "events.clear();",
        "std::thread::sleep(POLL_TIMEOUT);\n        events.clear();",
    );
    assert_ne!(original, tampered_text, "tamper target not found");
    let injected_line = tampered_text
        .lines()
        .position(|l| l.trim() == "std::thread::sleep(POLL_TIMEOUT);")
        .expect("injected line must exist") as u32
        + 1;
    let tampered = SourceFile::parse(
        PathBuf::from("crates/server/src/server.rs"),
        "server",
        &tampered_text,
    );

    let mut out = Vec::new();
    lint::rules::eventloop::check(&[&tampered], &mut out);
    assert!(
        out.iter().any(|d| d.rule == "eventloop::blocking"
            && d.line == injected_line
            && d.message.contains("thread::sleep")
            && d.message.contains("event_loop")),
        "{out:#?}"
    );
}

#[test]
fn unguarded_decoder_allocation_fails() {
    // Tamper with a real decode path: swap the sanctioned get_count for
    // a raw u32 read feeding Vec::with_capacity two lines later.
    let payload_path = workspace_root().join("crates/wire/src/payload.rs");
    let original = std::fs::read_to_string(&payload_path).expect("payload.rs must exist");
    let tampered_text = original.replace(
        "r.get_count(MAX_SEQUENCE_LEN, 8, \"marked items\")?",
        "r.get_u32(\"marked items\")? as usize",
    );
    assert_ne!(original, tampered_text, "tamper target not found");
    let tampered = SourceFile::parse(
        PathBuf::from("crates/wire/src/payload.rs"),
        "wire",
        &tampered_text,
    );

    // Sanity: the shipped source is clean under the rule.
    let clean = SourceFile::parse(
        PathBuf::from("crates/wire/src/payload.rs"),
        "wire",
        &original,
    );
    let mut out = Vec::new();
    lint::rules::alloc::check(&clean, &mut out);
    assert!(out.is_empty(), "{out:#?}");

    lint::rules::alloc::check(&tampered, &mut out);
    assert!(
        out.iter()
            .any(|d| d.rule == "alloc::unbounded" && d.line > 0 && d.message.contains("`count`")),
        "{out:#?}"
    );
}

#[test]
fn send_under_lock_injected_into_the_pool_fails() {
    // Tamper with the worker pool: a bounded feeder that sends while
    // holding the receiver mutex — the producer-holds-lock deadlock.
    let pool_path = workspace_root().join("crates/cluster/src/pool.rs");
    let original = std::fs::read_to_string(&pool_path).expect("pool.rs must exist");
    let tampered_text = format!(
        "{original}\nimpl WorkerPool {{\n    fn feed(&self, task: Task) {{\n        \
         let (tx, rx) = mpsc::sync_channel(1);\n        \
         let guard = lock_or_recover(&self.receiver);\n        \
         let _ = tx.send(task);\n        \
         drop(guard);\n        \
         keep(rx);\n    }}\n}}\n"
    );
    let tampered = SourceFile::parse(
        PathBuf::from("crates/cluster/src/pool.rs"),
        "cluster",
        &tampered_text,
    );

    let mut graph = lint::rules::locks::LockGraph::default();
    let mut out = Vec::new();
    lint::rules::channel::collect(&tampered, &mut graph, &mut out);
    assert!(
        out.iter().any(|d| d.rule == "channel::send-under-lock"
            && d.file.ends_with("pool.rs")
            && d.line > 0
            && d.message.contains("chan:pool::tx")),
        "{out:#?}"
    );
}

#[test]
fn stale_allow_injected_into_a_clean_file_fails() {
    // Tamper with a clean file: an allow at the top that suppresses
    // nothing must surface as an error, not a warning.
    let pool_path = workspace_root().join("crates/cluster/src/pool.rs");
    let original = std::fs::read_to_string(&pool_path).expect("pool.rs must exist");
    let tampered_text =
        format!("// lint:allow(eventloop, reason = \"left behind by a refactor\")\n{original}");
    let tampered = SourceFile::parse(
        PathBuf::from("crates/cluster/src/pool.rs"),
        "cluster",
        &tampered_text,
    );
    let report = lint::check_sources(&[tampered], "", "");
    assert!(
        report
            .diags
            .iter()
            .any(|d| d.rule == "allow::unused" && d.line == 1),
        "{:#?}",
        report.diags
    );
    assert_eq!(report.errors(), 1, "{:#?}", report.diags);
}

#[test]
fn blessed_registry_matches_the_checked_in_one() {
    // `--bless-wire` output is a pure function of the sources; the file in
    // the repo must be exactly what blessing today would produce.
    let root = workspace_root();
    let files = lint::load_workspace(&root).expect("workspace must be readable");
    let wire = wire_map(&files);
    let fresh = freeze::bless(&wire);
    let checked_in = std::fs::read_to_string(root.join(lint::WIRE_REGISTRY))
        .expect("registry must exist — run `cargo run -p lint -- --bless-wire`");
    assert_eq!(fresh, checked_in, "registry is stale; re-bless");
}

#[test]
fn editing_a_frozen_wire_fn_without_reblessing_fails() {
    let root = workspace_root();
    let files = lint::load_workspace(&root).expect("workspace must be readable");
    let wire = wire_map(&files);
    let registry = freeze::bless(&wire);

    // Sanity: the freshly blessed registry accepts the clean sources.
    let mut clean = Vec::new();
    freeze::check(&wire, &registry, Path::new("registry"), &mut clean);
    assert!(clean.is_empty(), "{clean:#?}");

    // Tamper with a frozen decoder: flip get_u16 to little-endian. The
    // byte layout changes, the blessed hash must no longer match.
    let codec_path = root.join("crates/wire/src/codec.rs");
    let original = std::fs::read_to_string(&codec_path).expect("codec.rs must exist");
    let tampered_text = original.replace("u16::from_be_bytes", "u16::from_le_bytes");
    assert_ne!(
        original, tampered_text,
        "tamper target not found in codec.rs"
    );
    let tampered = SourceFile::parse(
        PathBuf::from("crates/wire/src/codec.rs"),
        "wire",
        &tampered_text,
    );
    let mut wire = wire;
    wire.insert("codec".to_string(), &tampered);

    let mut out = Vec::new();
    freeze::check(&wire, &registry, Path::new("registry"), &mut out);
    assert!(
        out.iter().any(|d| d.rule == "wire::frozen"
            && d.message.contains("codec::get_u16")
            && d.message.contains("edited without re-blessing")),
        "{out:#?}"
    );
}

#[test]
fn blessed_family_registry_matches_the_checked_in_one() {
    // `--bless-families` output is a pure function of the FAMILY_TAGS
    // table; the file in the repo must be exactly what blessing today
    // would produce.
    let root = workspace_root();
    let files = lint::load_workspace(&root).expect("workspace must be readable");
    let family = family_file(&files);
    let fresh = families::bless(family);
    let checked_in = std::fs::read_to_string(root.join(lint::FAMILY_REGISTRY))
        .expect("registry must exist — run `cargo run -p lint -- --bless-families`");
    assert_eq!(fresh, checked_in, "registry is stale; re-bless");
}

#[test]
fn mutating_a_shipped_family_tag_without_reblessing_fails() {
    let root = workspace_root();
    let files = lint::load_workspace(&root).expect("workspace must be readable");
    let family = family_file(&files);
    let registry = families::bless(family);

    // Sanity: the freshly blessed registry accepts the clean table.
    let mut clean = Vec::new();
    families::check(family, &registry, Path::new("registry"), &mut clean);
    assert!(clean.is_empty(), "{clean:#?}");

    // Tamper with a shipped row: rename the coloring family. Its canonical
    // keys and v6 frames would re-route; the blessed name must not match.
    let family_path = root.join("crates/accel/src/family.rs");
    let original = std::fs::read_to_string(&family_path).expect("family.rs must exist");
    let tampered_text = original.replace("(6, \"coloring\")", "(6, \"graph-coloring\")");
    assert_ne!(
        original, tampered_text,
        "tamper target not found in family.rs"
    );
    let tampered = SourceFile::parse(
        PathBuf::from("crates/accel/src/family.rs"),
        "accel",
        &tampered_text,
    );

    let mut out = Vec::new();
    families::check(&tampered, &registry, Path::new("registry"), &mut out);
    assert!(
        out.iter().any(|d| d.rule == "family::frozen"
            && d.message
                .contains("renamed from `coloring` to `graph-coloring`")),
        "{out:#?}"
    );

    // And an appended row is flagged until blessed — the append-only path
    // a new family actually takes.
    let appended_text =
        original.replace("(7, \"qubo\"),", "(7, \"qubo\"),\n    (8, \"annealing\"),");
    assert_ne!(original, appended_text, "append target not found");
    let appended = SourceFile::parse(
        PathBuf::from("crates/accel/src/family.rs"),
        "accel",
        &appended_text,
    );
    let mut out = Vec::new();
    families::check(&appended, &registry, Path::new("registry"), &mut out);
    assert!(
        out.iter().any(|d| d.rule == "family::frozen"
            && d.message.contains("`annealing` (tag 8) is not recorded")),
        "{out:#?}"
    );
}

fn family_file(files: &[SourceFile]) -> &SourceFile {
    files
        .iter()
        .find(|f| f.crate_name == "accel" && f.path.file_name().is_some_and(|n| n == "family.rs"))
        .expect("crates/accel/src/family.rs must be scanned")
}

fn wire_map(files: &[SourceFile]) -> BTreeMap<String, &SourceFile> {
    files
        .iter()
        .filter(|f| f.crate_name == "wire")
        .filter_map(|f| {
            f.path
                .file_stem()
                .map(|s| (s.to_string_lossy().into_owned(), f))
        })
        .collect()
}
