//! Trajectory diagnostics for DMM dynamics.
//!
//! Backs three of the paper's §IV claims with measurements:
//!
//! * **point dissipativity / boundedness** (Hale, ref. \[51\]) — trajectories
//!   remain in a bounded set: [`BoundednessReport`].
//! * **absence of periodic orbits** when a solution exists (refs. \[52, 53\])
//!   — [`recurrence_check`] scans checkpoint sequences for a revisited
//!   assignment that is *not* part of progress toward a solution.
//! * **dynamical long-range order** (refs. \[56, 58\]) — distant parts of the
//!   machine correlate during the transient: [`flip_size_distribution`]
//!   measures how many variables flip together between checkpoints
//!   (instanton jumps flip whole clusters; single-spin dynamics like
//!   simulated annealing flip one at a time).
//!
//! # Example
//!
//! ```
//! use mem::generators::planted_3sat;
//! use mem::dmm::{DmmParams, DmmSolver};
//! use mem::analysis::flip_size_distribution;
//!
//! let inst = planted_3sat(20, 4.0, 1)?;
//! let outcome = DmmSolver::new(DmmParams::default()).solve(&inst.formula, 3)?;
//! let flips = flip_size_distribution(&outcome.checkpoints);
//! assert!(!flips.is_empty() || outcome.checkpoints.len() < 2);
//! # Ok::<(), mem::MemError>(())
//! ```

use crate::assignment::Assignment;
use crate::dmm::DmmOutcome;

/// Boundedness diagnostics of a DMM run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundednessReport {
    /// Largest |v| seen (must stay ≤ 1 for a valid point-dissipative
    /// trajectory).
    pub max_abs_v: f64,
    /// Whether the trajectory respected the voltage bounds.
    pub bounded: bool,
}

/// Extracts boundedness diagnostics from an outcome.
#[must_use]
pub fn boundedness(outcome: &DmmOutcome) -> BoundednessReport {
    BoundednessReport {
        max_abs_v: outcome.max_abs_v,
        bounded: outcome.max_abs_v <= 1.0 + 1e-9,
    }
}

/// Result of a recurrence scan over checkpoint assignments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecurrenceReport {
    /// Number of checkpoints scanned.
    pub checkpoints: usize,
    /// Distinct assignments visited.
    pub distinct: usize,
    /// The longest *cycle* detected: a return to a previously seen
    /// assignment with at least one different assignment in between
    /// (consecutive repeats — the trajectory dwelling near a configuration —
    /// do not count).
    pub longest_cycle: usize,
}

impl RecurrenceReport {
    /// Whether a genuine revisit (possible periodic orbit) was observed.
    #[must_use]
    pub fn has_cycle(&self) -> bool {
        self.longest_cycle > 0
    }
}

/// Scans a checkpoint sequence for revisited assignments.
///
/// A solvable DMM should show `has_cycle() == false` in the digital
/// projection once dwelling is discounted — the refs. \[52, 53\] property.
#[must_use]
pub fn recurrence_check(checkpoints: &[Assignment]) -> RecurrenceReport {
    use std::collections::HashMap;
    let mut last_seen: HashMap<&Assignment, usize> = HashMap::new();
    let mut distinct = 0usize;
    let mut longest_cycle = 0usize;
    let mut prev: Option<&Assignment> = None;
    for (i, a) in checkpoints.iter().enumerate() {
        if prev == Some(a) {
            // Dwelling at the same configuration: refresh position only.
            last_seen.insert(a, i);
            continue;
        }
        if let Some(&j) = last_seen.get(a) {
            longest_cycle = longest_cycle.max(i - j);
        } else {
            distinct += 1;
        }
        last_seen.insert(a, i);
        prev = Some(a);
    }
    RecurrenceReport {
        checkpoints: checkpoints.len(),
        distinct,
        longest_cycle,
    }
}

/// Sizes of the variable clusters flipped between consecutive checkpoints
/// (zero-size steps — no digital change — are omitted).
#[must_use]
pub fn flip_size_distribution(checkpoints: &[Assignment]) -> Vec<usize> {
    checkpoints
        .windows(2)
        .map(|w| w[0].hamming(&w[1]))
        .filter(|&h| h > 0)
        .collect()
}

/// Summary of cluster-flip behaviour (the DLRO observable of ref. \[56\]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterFlipStats {
    /// Number of nonzero flip events.
    pub events: usize,
    /// Mean flipped-cluster size.
    pub mean_size: f64,
    /// Largest flipped cluster.
    pub max_size: usize,
    /// Fraction of events flipping more than one variable simultaneously —
    /// strictly zero for single-spin-flip dynamics like simulated
    /// annealing.
    pub collective_fraction: f64,
}

/// Computes cluster-flip statistics from checkpoints.
#[must_use]
pub fn cluster_flip_stats(checkpoints: &[Assignment]) -> ClusterFlipStats {
    let sizes = flip_size_distribution(checkpoints);
    if sizes.is_empty() {
        return ClusterFlipStats {
            events: 0,
            mean_size: 0.0,
            max_size: 0,
            collective_fraction: 0.0,
        };
    }
    let events = sizes.len();
    let sum: usize = sizes.iter().sum();
    let max_size = sizes.iter().copied().max().unwrap_or(0);
    let collective = sizes.iter().filter(|&&s| s > 1).count();
    ClusterFlipStats {
        events,
        mean_size: sum as f64 / events as f64,
        max_size,
        collective_fraction: collective as f64 / events as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dmm::{DmmParams, DmmSolver};
    use crate::generators::planted_3sat;

    fn asg(bits: &[bool]) -> Assignment {
        Assignment::from_bools(bits)
    }

    #[test]
    fn recurrence_detects_cycles() {
        let a = asg(&[false, false]);
        let b = asg(&[true, false]);
        let seq = vec![a.clone(), b.clone(), a.clone()];
        let rep = recurrence_check(&seq);
        assert!(rep.has_cycle());
        assert_eq!(rep.longest_cycle, 2);
        assert_eq!(rep.distinct, 2);
    }

    #[test]
    fn dwelling_is_not_a_cycle() {
        let a = asg(&[true]);
        let seq = vec![a.clone(), a.clone(), a.clone()];
        let rep = recurrence_check(&seq);
        assert!(!rep.has_cycle());
        assert_eq!(rep.distinct, 1);
    }

    #[test]
    fn monotone_progress_has_no_cycle() {
        let seq = vec![
            asg(&[false, false]),
            asg(&[true, false]),
            asg(&[true, true]),
        ];
        assert!(!recurrence_check(&seq).has_cycle());
    }

    #[test]
    fn flip_sizes_measured() {
        let seq = vec![
            asg(&[false, false, false]),
            asg(&[true, true, false]), // 2-cluster flip
            asg(&[true, true, false]), // dwell
            asg(&[true, true, true]),  // 1 flip
        ];
        assert_eq!(flip_size_distribution(&seq), vec![2, 1]);
        let stats = cluster_flip_stats(&seq);
        assert_eq!(stats.events, 2);
        assert_eq!(stats.max_size, 2);
        assert!((stats.mean_size - 1.5).abs() < 1e-12);
        assert!((stats.collective_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_sequences_safe() {
        assert_eq!(flip_size_distribution(&[]).len(), 0);
        let stats = cluster_flip_stats(&[]);
        assert_eq!(stats.events, 0);
        let rep = recurrence_check(&[]);
        assert_eq!(rep.distinct, 0);
    }

    #[test]
    fn solved_dmm_run_is_bounded_and_collective() {
        let inst = planted_3sat(25, 4.2, 9).unwrap();
        let outcome = DmmSolver::new(DmmParams::default())
            .solve(&inst.formula, 5)
            .unwrap();
        assert!(outcome.solution.is_some());
        let bounds = boundedness(&outcome);
        assert!(bounds.bounded, "max |v| = {}", bounds.max_abs_v);
        let stats = cluster_flip_stats(&outcome.checkpoints);
        // DMM transients flip whole clusters between checkpoints — the DLRO
        // signature (simulated annealing would show collective_fraction 0
        // at matched checkpoint granularity of one flip per step).
        assert!(
            stats.collective_fraction > 0.0 || stats.events <= 1,
            "{stats:?}"
        );
    }
}
