//! Boolean assignments.
//!
//! A thin, fast bit-vector of variable values shared by every solver, plus
//! the conversions the DMM needs (continuous voltages ↦ booleans by sign
//! thresholding — the "digital" readout that makes DMMs scalable).
//!
//! # Example
//!
//! ```
//! use mem::assignment::Assignment;
//!
//! let mut a = Assignment::new_false(3);
//! a.set(1, true);
//! assert!(!a.value(0) && a.value(1));
//! assert_eq!(a.to_bools(), vec![false, true, false]);
//! ```

use numerics::rng::Rng;

/// An assignment of boolean values to `n` variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Assignment {
    values: Vec<bool>,
}

impl Assignment {
    /// All-false assignment.
    #[must_use]
    pub fn new_false(n_vars: usize) -> Self {
        Assignment {
            values: vec![false; n_vars],
        }
    }

    /// Builds from a slice of booleans.
    #[must_use]
    pub fn from_bools(values: &[bool]) -> Self {
        Assignment {
            values: values.to_vec(),
        }
    }

    /// Uniformly random assignment.
    pub fn random<R: Rng>(n_vars: usize, rng: &mut R) -> Self {
        Assignment {
            values: (0..n_vars).map(|_| rng.gen()).collect(),
        }
    }

    /// Thresholds continuous DMM voltages: `v > 0 ↦ true`.
    #[must_use]
    pub fn from_voltages(voltages: &[f64]) -> Self {
        Assignment {
            values: voltages.iter().map(|&v| v > 0.0).collect(),
        }
    }

    /// Number of variables.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the assignment is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics when `var` is out of range.
    #[must_use]
    pub fn value(&self, var: usize) -> bool {
        self.values[var]
    }

    /// Sets the value of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics when `var` is out of range.
    pub fn set(&mut self, var: usize, value: bool) {
        self.values[var] = value;
    }

    /// Flips variable `var`.
    ///
    /// # Panics
    ///
    /// Panics when `var` is out of range.
    pub fn flip(&mut self, var: usize) {
        self.values[var] = !self.values[var];
    }

    /// The values as a boolean vector.
    #[must_use]
    pub fn to_bools(&self) -> Vec<bool> {
        self.values.clone()
    }

    /// The values as ±1 spins (`true ↦ +1`), the Ising-side convention.
    #[must_use]
    pub fn to_spins(&self) -> Vec<i8> {
        self.values
            .iter()
            .map(|&b| if b { 1 } else { -1 })
            .collect()
    }

    /// Hamming distance to another assignment.
    ///
    /// # Panics
    ///
    /// Panics when lengths differ.
    #[must_use]
    pub fn hamming(&self, other: &Assignment) -> usize {
        assert_eq!(self.values.len(), other.values.len());
        self.values
            .iter()
            .zip(&other.values)
            .filter(|(a, b)| a != b)
            .count()
    }

    /// The variables at which two assignments differ.
    ///
    /// # Panics
    ///
    /// Panics when lengths differ.
    #[must_use]
    pub fn diff_vars(&self, other: &Assignment) -> Vec<usize> {
        assert_eq!(self.values.len(), other.values.len());
        self.values
            .iter()
            .zip(&other.values)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect()
    }
}

impl std::fmt::Display for Assignment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for &v in &self.values {
            write!(f, "{}", u8::from(v))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numerics::rng::rng_from_seed;

    #[test]
    fn construction_and_mutation() {
        let mut a = Assignment::new_false(4);
        assert_eq!(a.len(), 4);
        a.set(2, true);
        a.flip(0);
        a.flip(0);
        assert_eq!(a.to_bools(), vec![false, false, true, false]);
    }

    #[test]
    fn from_voltages_thresholds_at_zero() {
        let a = Assignment::from_voltages(&[0.9, -0.3, 0.0, 0.001]);
        assert_eq!(a.to_bools(), vec![true, false, false, true]);
    }

    #[test]
    fn spins_convention() {
        let a = Assignment::from_bools(&[true, false]);
        assert_eq!(a.to_spins(), vec![1, -1]);
    }

    #[test]
    fn hamming_and_diff() {
        let a = Assignment::from_bools(&[true, false, true]);
        let b = Assignment::from_bools(&[true, true, false]);
        assert_eq!(a.hamming(&b), 2);
        assert_eq!(a.diff_vars(&b), vec![1, 2]);
        assert_eq!(a.hamming(&a), 0);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = Assignment::random(16, &mut rng_from_seed(3));
        let b = Assignment::random(16, &mut rng_from_seed(3));
        assert_eq!(a, b);
    }

    #[test]
    fn display_bits() {
        let a = Assignment::from_bools(&[true, false, true]);
        assert_eq!(a.to_string(), "101");
    }
}
