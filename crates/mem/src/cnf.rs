//! Boolean formulas in conjunctive normal form.
//!
//! [`Literal`] packs a variable index and polarity; [`Clause`] is a
//! disjunction of literals; [`Formula`] is the conjunction. The DMM solver,
//! the classical baselines, and the generators all operate on these types.
//!
//! # Example
//!
//! ```
//! use mem::cnf::{Clause, Formula, Literal};
//! use mem::assignment::Assignment;
//!
//! // (x0 ∨ ¬x1) ∧ (x1)
//! let formula = Formula::new(2, vec![
//!     Clause::new(vec![Literal::positive(0), Literal::negative(1)])?,
//!     Clause::new(vec![Literal::positive(1)])?,
//! ])?;
//! let assignment = Assignment::from_bools(&[true, true]);
//! assert!(formula.is_satisfied(&assignment));
//! # Ok::<(), mem::MemError>(())
//! ```

use crate::assignment::Assignment;
use crate::MemError;

/// A literal: a variable with a polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    var: usize,
    negated: bool,
}

impl Literal {
    /// The positive literal `x_var`.
    #[must_use]
    pub fn positive(var: usize) -> Self {
        Literal {
            var,
            negated: false,
        }
    }

    /// The negative literal `¬x_var`.
    #[must_use]
    pub fn negative(var: usize) -> Self {
        Literal { var, negated: true }
    }

    /// Builds from DIMACS convention: `3` = `x2` (1-based), `-3` = `¬x2`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Formula`] for `0`.
    pub fn from_dimacs(code: i64) -> Result<Self, MemError> {
        if code == 0 {
            return Err(MemError::Formula {
                reason: "dimacs literal 0 is the clause terminator".into(),
            });
        }
        Ok(Literal {
            var: code.unsigned_abs() as usize - 1,
            negated: code < 0,
        })
    }

    /// The DIMACS encoding of this literal.
    #[must_use]
    pub fn to_dimacs(self) -> i64 {
        let v = self.var as i64 + 1;
        if self.negated {
            -v
        } else {
            v
        }
    }

    /// The variable index (0-based).
    #[must_use]
    pub fn var(self) -> usize {
        self.var
    }

    /// Whether the literal is negated.
    #[must_use]
    pub fn is_negated(self) -> bool {
        self.negated
    }

    /// The literal's polarity as ±1 (the `q` coefficient of the SOLG
    /// dynamics).
    #[must_use]
    pub fn polarity(self) -> f64 {
        if self.negated {
            -1.0
        } else {
            1.0
        }
    }

    /// The opposite literal.
    #[must_use]
    pub fn negate(self) -> Literal {
        Literal {
            var: self.var,
            negated: !self.negated,
        }
    }

    /// Evaluates under a boolean value of its variable.
    #[must_use]
    pub fn eval(self, value: bool) -> bool {
        value != self.negated
    }
}

impl std::fmt::Display for Literal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.negated {
            write!(f, "¬x{}", self.var)
        } else {
            write!(f, "x{}", self.var)
        }
    }
}

/// A disjunction of literals.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Clause {
    literals: Vec<Literal>,
}

impl Clause {
    /// Creates a clause, rejecting empty ones (trivially unsatisfiable) and
    /// duplicate variables (tautologies/duplicates confuse the dynamics).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Formula`] for an empty clause or repeated
    /// variable.
    pub fn new(literals: Vec<Literal>) -> Result<Self, MemError> {
        if literals.is_empty() {
            return Err(MemError::Formula {
                reason: "empty clause".into(),
            });
        }
        let mut vars: Vec<usize> = literals.iter().map(|l| l.var()).collect();
        vars.sort_unstable();
        if vars.windows(2).any(|w| w[0] == w[1]) {
            return Err(MemError::Formula {
                reason: "clause repeats a variable".into(),
            });
        }
        Ok(Clause { literals })
    }

    /// The literals.
    #[must_use]
    pub fn literals(&self) -> &[Literal] {
        &self.literals
    }

    /// Clause width.
    #[must_use]
    pub fn len(&self) -> usize {
        self.literals.len()
    }

    /// Always `false` (empty clauses are unconstructible).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.literals.is_empty()
    }

    /// Evaluates under an assignment.
    #[must_use]
    pub fn is_satisfied(&self, assignment: &Assignment) -> bool {
        self.literals
            .iter()
            .any(|l| l.eval(assignment.value(l.var())))
    }
}

impl std::fmt::Display for Clause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, l) in self.literals.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ")")
    }
}

/// A CNF formula: a conjunction of clauses over `n_vars` variables.
#[derive(Debug, Clone, PartialEq)]
pub struct Formula {
    n_vars: usize,
    clauses: Vec<Clause>,
}

impl Formula {
    /// Creates a formula, validating that every literal's variable is in
    /// range.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Formula`] for out-of-range variables or
    /// `n_vars == 0`.
    pub fn new(n_vars: usize, clauses: Vec<Clause>) -> Result<Self, MemError> {
        if n_vars == 0 {
            return Err(MemError::Formula {
                reason: "formula needs at least one variable".into(),
            });
        }
        for clause in &clauses {
            for lit in clause.literals() {
                if lit.var() >= n_vars {
                    return Err(MemError::Formula {
                        reason: format!("literal {lit} out of range for {n_vars} variables"),
                    });
                }
            }
        }
        Ok(Formula { n_vars, clauses })
    }

    /// Number of variables.
    #[must_use]
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// The clauses.
    #[must_use]
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Number of clauses.
    #[must_use]
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Whether the formula has no clauses (trivially satisfiable).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Clause-to-variable ratio `M/N` (hardness knob for random 3-SAT; the
    /// phase transition sits near 4.27).
    #[must_use]
    pub fn clause_ratio(&self) -> f64 {
        self.clauses.len() as f64 / self.n_vars as f64
    }

    /// Evaluates under an assignment.
    #[must_use]
    pub fn is_satisfied(&self, assignment: &Assignment) -> bool {
        self.clauses.iter().all(|c| c.is_satisfied(assignment))
    }

    /// Number of clauses violated by an assignment.
    #[must_use]
    pub fn count_unsatisfied(&self, assignment: &Assignment) -> usize {
        self.clauses
            .iter()
            .filter(|c| !c.is_satisfied(assignment))
            .count()
    }

    /// Indices of clauses violated by an assignment.
    #[must_use]
    pub fn unsatisfied_clauses(&self, assignment: &Assignment) -> Vec<usize> {
        self.clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_satisfied(assignment))
            .map(|(i, _)| i)
            .collect()
    }

    /// For each variable, the clause indices containing it (the adjacency
    /// structure solvers precompute).
    #[must_use]
    pub fn occurrence_lists(&self) -> Vec<Vec<usize>> {
        let mut occ = vec![Vec::new(); self.n_vars];
        for (ci, clause) in self.clauses.iter().enumerate() {
            for lit in clause.literals() {
                occ[lit.var()].push(ci);
            }
        }
        occ
    }
}

impl std::fmt::Display for Formula {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_formula() -> Formula {
        // (x0 ∨ ¬x1 ∨ x2) ∧ (¬x0 ∨ x1)
        Formula::new(
            3,
            vec![
                Clause::new(vec![
                    Literal::positive(0),
                    Literal::negative(1),
                    Literal::positive(2),
                ])
                .unwrap(),
                Clause::new(vec![Literal::negative(0), Literal::positive(1)]).unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn literal_roundtrip_dimacs() {
        for code in [1i64, -1, 5, -42] {
            let l = Literal::from_dimacs(code).unwrap();
            assert_eq!(l.to_dimacs(), code);
        }
        assert!(Literal::from_dimacs(0).is_err());
    }

    #[test]
    fn literal_eval_and_polarity() {
        let pos = Literal::positive(0);
        let neg = Literal::negative(0);
        assert!(pos.eval(true) && !pos.eval(false));
        assert!(neg.eval(false) && !neg.eval(true));
        assert_eq!(pos.polarity(), 1.0);
        assert_eq!(neg.polarity(), -1.0);
        assert_eq!(pos.negate(), neg);
    }

    #[test]
    fn clause_validation() {
        assert!(Clause::new(vec![]).is_err());
        assert!(Clause::new(vec![Literal::positive(0), Literal::negative(0)]).is_err());
        assert!(Clause::new(vec![Literal::positive(0), Literal::positive(1)]).is_ok());
    }

    #[test]
    fn formula_validation() {
        assert!(Formula::new(0, vec![]).is_err());
        let c = Clause::new(vec![Literal::positive(5)]).unwrap();
        assert!(Formula::new(3, vec![c]).is_err());
    }

    #[test]
    fn satisfaction() {
        let f = simple_formula();
        let sat = Assignment::from_bools(&[true, true, false]);
        assert!(f.is_satisfied(&sat));
        assert_eq!(f.count_unsatisfied(&sat), 0);

        let unsat = Assignment::from_bools(&[true, false, false]);
        assert!(!f.is_satisfied(&unsat));
        assert_eq!(f.count_unsatisfied(&unsat), 1);
        assert_eq!(f.unsatisfied_clauses(&unsat), vec![1]);
    }

    #[test]
    fn occurrence_lists_cover_all_literals() {
        let f = simple_formula();
        let occ = f.occurrence_lists();
        assert_eq!(occ[0], vec![0, 1]);
        assert_eq!(occ[1], vec![0, 1]);
        assert_eq!(occ[2], vec![0]);
    }

    #[test]
    fn clause_ratio() {
        let f = simple_formula();
        assert!((f.clause_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_renders() {
        let f = simple_formula();
        let s = f.to_string();
        assert!(s.contains("¬x1"));
        assert!(s.contains("∧"));
    }

    #[test]
    fn empty_formula_trivially_sat() {
        let f = Formula::new(1, vec![]).unwrap();
        assert!(f.is_empty());
        assert!(f.is_satisfied(&Assignment::from_bools(&[false])));
    }
}
