//! Synthetic datasets for the RBM experiments.
//!
//! The environment ships no MNIST, so the mode-assisted-training experiment
//! (paper refs. [55, 57]) runs on **bars-and-stripes** — the standard small
//! generative benchmark with exactly enumerable likelihood — plus noisy
//! variants for robustness and a labeled version for the downstream
//! classification measurement.
//!
//! # Example
//!
//! ```
//! use mem::datasets::bars_and_stripes;
//!
//! let data = bars_and_stripes(3);
//! // 2·(2³ − 2) distinct non-uniform patterns of 9 pixels.
//! assert_eq!(data.len(), 12);
//! assert!(data.iter().all(|p| p.pixels.len() == 9));
//! ```

use numerics::rng::rng_from_seed;
use numerics::rng::Rng;

/// One labeled binary pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pattern {
    /// Row-major pixels of an `n × n` image.
    pub pixels: Vec<bool>,
    /// `true` for stripes (constant rows), `false` for bars (constant
    /// columns).
    pub is_stripe: bool,
}

/// The full bars-and-stripes set on an `n × n` grid: every row pattern
/// (stripes) and column pattern (bars), excluding the all-on/all-off images
/// (which are ambiguous).
#[must_use]
pub fn bars_and_stripes(n: usize) -> Vec<Pattern> {
    let mut out = Vec::new();
    for bits in 1..((1u32 << n) - 1) {
        // Stripes: row i is on iff bit i set.
        let mut stripe = vec![false; n * n];
        let mut bar = vec![false; n * n];
        for r in 0..n {
            for c in 0..n {
                if bits >> r & 1 == 1 {
                    stripe[r * n + c] = true;
                }
                if bits >> c & 1 == 1 {
                    bar[r * n + c] = true;
                }
            }
        }
        out.push(Pattern {
            pixels: stripe,
            is_stripe: true,
        });
        out.push(Pattern {
            pixels: bar,
            is_stripe: false,
        });
    }
    out
}

/// Adds independent pixel-flip noise to each pattern, producing `copies`
/// noisy variants per original (labels preserved).
#[must_use]
pub fn noisy_copies(
    patterns: &[Pattern],
    copies: usize,
    flip_prob: f64,
    seed: u64,
) -> Vec<Pattern> {
    let mut rng = rng_from_seed(seed);
    let mut out = Vec::with_capacity(patterns.len() * copies);
    for p in patterns {
        for _ in 0..copies {
            let pixels = p
                .pixels
                .iter()
                .map(|&b| if rng.gen::<f64>() < flip_prob { !b } else { b })
                .collect();
            out.push(Pattern {
                pixels,
                is_stripe: p.is_stripe,
            });
        }
    }
    out
}

/// One example of the shifter task: a random bit row, its cyclic shift,
/// and the shift direction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ShifterExample {
    /// Concatenation `[row…, shifted row…]` (length `2·width`).
    pub bits: Vec<bool>,
    /// `true` when the second row is the first shifted left (else right).
    pub shifted_left: bool,
}

/// Generates `count` examples of Hinton's shifter task: a random `width`-bit
/// row paired with its left- or right-cyclic shift. A classic small
/// benchmark whose structure (correlations between distant bits) defeats
/// purely local models — complementary to bars-and-stripes.
///
/// # Panics
///
/// Panics when `width < 2`.
#[must_use]
pub fn shifter(width: usize, count: usize, seed: u64) -> Vec<ShifterExample> {
    assert!(width >= 2, "shifter rows need at least 2 bits");
    let mut rng = rng_from_seed(seed);
    (0..count)
        .map(|_| {
            let row: Vec<bool> = (0..width).map(|_| rng.gen()).collect();
            let shifted_left: bool = rng.gen();
            let mut shifted = row.clone();
            if shifted_left {
                shifted.rotate_left(1);
            } else {
                shifted.rotate_right(1);
            }
            let mut bits = row;
            bits.extend(shifted);
            ShifterExample { bits, shifted_left }
        })
        .collect()
}

/// Appends a one-hot label pair to each pattern's pixels:
/// `[pixels…, is_bar, is_stripe]` — the joint visible layer used by the
/// classification RBM.
#[must_use]
pub fn with_label_units(patterns: &[Pattern]) -> Vec<Vec<bool>> {
    patterns
        .iter()
        .map(|p| {
            let mut v = p.pixels.clone();
            v.push(!p.is_stripe);
            v.push(p.is_stripe);
            v
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_size_and_shape() {
        let d = bars_and_stripes(2);
        assert_eq!(d.len(), 2 * (4 - 2));
        assert!(d.iter().all(|p| p.pixels.len() == 4));
        let d3 = bars_and_stripes(3);
        assert_eq!(d3.len(), 12);
    }

    #[test]
    fn stripes_have_constant_rows() {
        for p in bars_and_stripes(3).iter().filter(|p| p.is_stripe) {
            for r in 0..3 {
                let row: Vec<bool> = (0..3).map(|c| p.pixels[r * 3 + c]).collect();
                assert!(row.iter().all(|&x| x == row[0]), "{p:?}");
            }
        }
    }

    #[test]
    fn bars_have_constant_columns() {
        for p in bars_and_stripes(3).iter().filter(|p| !p.is_stripe) {
            for c in 0..3 {
                let col: Vec<bool> = (0..3).map(|r| p.pixels[r * 3 + c]).collect();
                assert!(col.iter().all(|&x| x == col[0]), "{p:?}");
            }
        }
    }

    #[test]
    fn no_uniform_patterns() {
        for p in bars_and_stripes(3) {
            let on = p.pixels.iter().filter(|&&b| b).count();
            assert!(on > 0 && on < 9, "uniform pattern leaked: {p:?}");
        }
    }

    #[test]
    fn all_patterns_distinct_within_class() {
        let d = bars_and_stripes(3);
        let stripes: std::collections::HashSet<_> = d
            .iter()
            .filter(|p| p.is_stripe)
            .map(|p| p.pixels.clone())
            .collect();
        assert_eq!(stripes.len(), 6);
    }

    #[test]
    fn noisy_copies_preserve_labels_and_count() {
        let d = bars_and_stripes(2);
        let noisy = noisy_copies(&d, 3, 0.1, 1);
        assert_eq!(noisy.len(), d.len() * 3);
        // Deterministic per seed.
        assert_eq!(noisy, noisy_copies(&d, 3, 0.1, 1));
        assert_ne!(noisy, noisy_copies(&d, 3, 0.1, 2));
    }

    #[test]
    fn zero_noise_copies_identical() {
        let d = bars_and_stripes(2);
        let copies = noisy_copies(&d, 1, 0.0, 5);
        assert_eq!(
            copies.iter().map(|p| &p.pixels).collect::<Vec<_>>(),
            d.iter().map(|p| &p.pixels).collect::<Vec<_>>()
        );
    }

    #[test]
    fn shifter_examples_are_valid_shifts() {
        let examples = shifter(6, 40, 3);
        assert_eq!(examples.len(), 40);
        for ex in &examples {
            assert_eq!(ex.bits.len(), 12);
            let row = &ex.bits[..6];
            let shifted = &ex.bits[6..];
            let mut expected = row.to_vec();
            if ex.shifted_left {
                expected.rotate_left(1);
            } else {
                expected.rotate_right(1);
            }
            assert_eq!(shifted, &expected[..]);
        }
    }

    #[test]
    fn shifter_deterministic_and_varied() {
        assert_eq!(shifter(4, 10, 1), shifter(4, 10, 1));
        assert_ne!(shifter(4, 10, 1), shifter(4, 10, 2));
        // Both directions should appear over enough samples.
        let examples = shifter(5, 64, 9);
        assert!(examples.iter().any(|e| e.shifted_left));
        assert!(examples.iter().any(|e| !e.shifted_left));
    }

    #[test]
    #[should_panic(expected = "at least 2 bits")]
    fn shifter_rejects_tiny_rows() {
        let _ = shifter(1, 3, 1);
    }

    #[test]
    fn label_units_one_hot() {
        let d = bars_and_stripes(2);
        for (v, p) in with_label_units(&d).iter().zip(&d) {
            assert_eq!(v.len(), p.pixels.len() + 2);
            let (bar, stripe) = (v[v.len() - 2], v[v.len() - 1]);
            assert!(bar ^ stripe, "label must be one-hot");
            assert_eq!(stripe, p.is_stripe);
        }
    }
}
