//! DIMACS CNF parsing and emission.
//!
//! The standard interchange format for SAT instances, so the solvers here
//! can exchange problems with external tooling.
//!
//! # Example
//!
//! ```
//! use mem::dimacs;
//!
//! let source = "c tiny instance\np cnf 2 2\n1 -2 0\n2 0\n";
//! let formula = dimacs::parse(source)?;
//! assert_eq!(formula.n_vars(), 2);
//! assert_eq!(formula.len(), 2);
//! let text = dimacs::emit(&formula);
//! assert_eq!(dimacs::parse(&text)?, formula);
//! # Ok::<(), mem::MemError>(())
//! ```

use crate::cnf::{Clause, Formula, Literal};
use crate::MemError;

/// Parses DIMACS CNF text.
///
/// # Errors
///
/// Returns [`MemError::Dimacs`] with the offending line for malformed
/// headers/literals, clause counts that disagree with the header, or
/// clauses that fail [`Clause::new`] validation.
pub fn parse(source: &str) -> Result<Formula, MemError> {
    let mut n_vars: Option<usize> = None;
    let mut declared_clauses = 0usize;
    let mut clauses: Vec<Clause> = Vec::new();
    let mut current: Vec<Literal> = Vec::new();

    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            if n_vars.is_some() {
                return Err(MemError::Dimacs {
                    line: line_no,
                    reason: "duplicate problem line".into(),
                });
            }
            let tokens: Vec<&str> = rest.split_whitespace().collect();
            if tokens.len() != 3 || tokens[0] != "cnf" {
                return Err(MemError::Dimacs {
                    line: line_no,
                    reason: format!("malformed problem line `{line}`"),
                });
            }
            let nv: usize = tokens[1].parse().map_err(|_| MemError::Dimacs {
                line: line_no,
                reason: format!("bad variable count `{}`", tokens[1]),
            })?;
            declared_clauses = tokens[2].parse().map_err(|_| MemError::Dimacs {
                line: line_no,
                reason: format!("bad clause count `{}`", tokens[2]),
            })?;
            n_vars = Some(nv);
            continue;
        }
        if n_vars.is_none() {
            return Err(MemError::Dimacs {
                line: line_no,
                reason: "clause before problem line".into(),
            });
        }
        for token in line.split_whitespace() {
            let code: i64 = token.parse().map_err(|_| MemError::Dimacs {
                line: line_no,
                reason: format!("bad literal `{token}`"),
            })?;
            if code == 0 {
                let lits = std::mem::take(&mut current);
                let clause = Clause::new(lits).map_err(|e| MemError::Dimacs {
                    line: line_no,
                    reason: e.to_string(),
                })?;
                clauses.push(clause);
            } else {
                current.push(Literal::from_dimacs(code).map_err(|e| MemError::Dimacs {
                    line: line_no,
                    reason: e.to_string(),
                })?);
            }
        }
    }
    if !current.is_empty() {
        return Err(MemError::Dimacs {
            line: 0,
            reason: "unterminated clause (missing trailing 0)".into(),
        });
    }
    let n = n_vars.ok_or(MemError::Dimacs {
        line: 0,
        reason: "missing problem line".into(),
    })?;
    if clauses.len() != declared_clauses {
        return Err(MemError::Dimacs {
            line: 0,
            reason: format!(
                "header declares {declared_clauses} clauses, found {}",
                clauses.len()
            ),
        });
    }
    Formula::new(n, clauses).map_err(|e| MemError::Dimacs {
        line: 0,
        reason: e.to_string(),
    })
}

/// Emits a formula as DIMACS CNF text.
#[must_use]
pub fn emit(formula: &Formula) -> String {
    let mut out = format!("p cnf {} {}\n", formula.n_vars(), formula.len());
    for clause in formula.clauses() {
        for lit in clause.literals() {
            out.push_str(&lit.to_dimacs().to_string());
            out.push(' ');
        }
        out.push_str("0\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_standard_form() {
        let f = parse("p cnf 3 2\n1 -2 3 0\n-1 2 0\n").unwrap();
        assert_eq!(f.n_vars(), 3);
        assert_eq!(f.len(), 2);
        assert_eq!(f.clauses()[0].len(), 3);
    }

    #[test]
    fn comments_ignored() {
        let f = parse("c hello\nc world\np cnf 1 1\n1 0\n").unwrap();
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn multi_clause_per_line() {
        let f = parse("p cnf 2 2\n1 0 2 0\n").unwrap();
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn clause_count_mismatch_detected() {
        assert!(parse("p cnf 2 3\n1 0\n2 0\n").is_err());
    }

    #[test]
    fn missing_header_detected() {
        assert!(parse("1 -2 0\n").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn unterminated_clause_detected() {
        assert!(parse("p cnf 2 1\n1 -2\n").is_err());
    }

    #[test]
    fn bad_tokens_report_line() {
        let err = parse("p cnf 2 1\n1 x 0\n").unwrap_err();
        match err {
            MemError::Dimacs { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn variable_range_enforced() {
        assert!(parse("p cnf 1 1\n2 0\n").is_err());
    }

    #[test]
    fn roundtrip() {
        let f = parse("p cnf 4 3\n1 -2 3 0\n-3 4 0\n-1 -4 0\n").unwrap();
        let text = emit(&f);
        assert_eq!(parse(&text).unwrap(), f);
    }

    #[test]
    fn duplicate_problem_line_rejected() {
        assert!(parse("p cnf 1 0\np cnf 2 0\n").is_err());
    }
}
