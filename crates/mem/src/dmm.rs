//! The digital-memcomputing SAT solver.
//!
//! [`DmmSolver`] assembles one [`crate::solg::ClauseDynamics`] per clause
//! and integrates the coupled system with clamped forward Euler (the
//! integration scheme the DMM literature itself uses — the dynamics are
//! engineered to be robust to integration error, which is the paper's
//! noise-robustness point). Properties delivered by the dynamics:
//!
//! * trajectories stay bounded (`v ∈ [−1,1]`, `x_s ∈ [ε, 1−ε]`,
//!   `x_l ∈ [1, x_l^max]` by projection — the point-dissipative property);
//! * when the formula is satisfiable, the only attractors are solutions
//!   (no periodic orbits or chaos coexist — checked empirically in
//!   [`crate::analysis`]);
//! * the voltage readout is *digital*: `v_i > 0 ↦ true`, so precision
//!   requirements do not grow with size (why DMMs scale, per the paper).
//!
//! Optional Gaussian noise on every state derivative reproduces the
//! robustness experiment of ref. \[59\].
//!
//! # Example
//!
//! ```
//! use mem::generators::planted_3sat;
//! use mem::dmm::{DmmParams, DmmSolver};
//!
//! let inst = planted_3sat(20, 4.0, 1)?;
//! let outcome = DmmSolver::new(DmmParams::default()).solve(&inst.formula, 3)?;
//! assert!(outcome.solution.is_some());
//! # Ok::<(), mem::MemError>(())
//! ```

use crate::assignment::Assignment;
use crate::cnf::Formula;
use crate::solg::ClauseDynamics;
use crate::MemError;
use numerics::rng::Rng;
use numerics::rng::{rng_from_seed, sample_normal};

/// DMM dynamical parameters (the standard values from the SAT-DMM
/// literature).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DmmParams {
    /// Long-memory growth rate α.
    pub alpha: f64,
    /// Short-memory rate β.
    pub beta: f64,
    /// Short-memory threshold γ.
    pub gamma: f64,
    /// Long-memory threshold δ.
    pub delta: f64,
    /// Long-memory mixing ζ in the rigidity term.
    pub zeta: f64,
    /// Short-memory clamping margin ε.
    pub epsilon: f64,
    /// Integration step.
    pub dt: f64,
    /// Maximum integration steps before giving up.
    pub max_steps: u64,
    /// Solution check cadence (steps).
    pub check_every: u64,
    /// Gaussian noise amplitude added to every derivative (`0` = clean).
    pub noise_sigma: f64,
}

impl Default for DmmParams {
    fn default() -> Self {
        DmmParams {
            alpha: 5.0,
            beta: 20.0,
            gamma: 0.25,
            delta: 0.05,
            zeta: 0.1,
            epsilon: 1e-3,
            dt: 0.08,
            max_steps: 200_000,
            check_every: 25,
            noise_sigma: 0.0,
        }
    }
}

impl DmmParams {
    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Parameter`] for non-positive rates/steps or an
    /// `epsilon` outside `(0, 0.5)`.
    pub fn validate(&self) -> Result<(), MemError> {
        if !(self.alpha > 0.0) || !(self.beta > 0.0) {
            return Err(MemError::Parameter {
                name: "alpha/beta",
                reason: "memory rates must be positive",
            });
        }
        if !(self.dt > 0.0) {
            return Err(MemError::Parameter {
                name: "dt",
                reason: "integration step must be positive",
            });
        }
        if !(self.epsilon > 0.0 && self.epsilon < 0.5) {
            return Err(MemError::Parameter {
                name: "epsilon",
                reason: "clamping margin must be in (0, 0.5)",
            });
        }
        if self.max_steps == 0 || self.check_every == 0 {
            return Err(MemError::Parameter {
                name: "max_steps/check_every",
                reason: "step counts must be positive",
            });
        }
        if self.noise_sigma < 0.0 {
            return Err(MemError::Parameter {
                name: "noise_sigma",
                reason: "noise amplitude must be non-negative",
            });
        }
        Ok(())
    }
}

/// Outcome of a DMM run.
#[derive(Debug, Clone, PartialEq)]
pub struct DmmOutcome {
    /// The satisfying assignment, when the dynamics reached one.
    pub solution: Option<Assignment>,
    /// Integration steps taken.
    pub steps: u64,
    /// Simulated physical time `steps · dt`.
    pub time: f64,
    /// Fewest violated clauses observed at any checkpoint.
    pub best_unsat: usize,
    /// Snapshots of the thresholded assignment at every checkpoint
    /// (including the final one); used for cluster-flip / DLRO analysis.
    pub checkpoints: Vec<Assignment>,
    /// Extreme |v| observed (boundedness diagnostic; must stay ≤ 1).
    pub max_abs_v: f64,
}

/// The DMM SAT solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DmmSolver {
    params: DmmParams,
}

impl DmmSolver {
    /// Creates a solver.
    #[must_use]
    pub fn new(params: DmmParams) -> Self {
        DmmSolver { params }
    }

    /// The parameters.
    #[must_use]
    pub fn params(&self) -> &DmmParams {
        &self.params
    }

    /// Integrates the SOLG dynamics until a satisfying assignment appears
    /// at a checkpoint or the step budget is exhausted.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Parameter`] for invalid parameters.
    pub fn solve(&self, formula: &Formula, seed: u64) -> Result<DmmOutcome, MemError> {
        self.params.validate()?;
        let p = &self.params;
        let n = formula.n_vars();
        let m = formula.len();
        let clauses: Vec<ClauseDynamics> =
            formula.clauses().iter().map(ClauseDynamics::new).collect();
        let xl_max = 1e4 * (m.max(1) as f64);

        let mut rng = rng_from_seed(seed);
        let mut v: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut x_s = vec![0.5f64; m];
        let mut x_l = vec![1.0f64; m];

        let mut dv = vec![0.0f64; n];
        // The trajectory's digital projection starts at t = 0.
        let mut checkpoints: Vec<Assignment> = vec![Assignment::from_voltages(&v)];
        let mut best_unsat = formula.len();
        let mut max_abs_v: f64 = 0.0;

        // Trivial case: no clauses.
        if m == 0 {
            let a = Assignment::from_voltages(&v);
            return Ok(DmmOutcome {
                solution: Some(a.clone()),
                steps: 0,
                time: 0.0,
                best_unsat: 0,
                checkpoints: vec![a],
                max_abs_v: 0.0,
            });
        }

        let mut steps = 0u64;
        while steps < p.max_steps {
            // One clamped-Euler step of the full system.
            for d in dv.iter_mut() {
                *d = 0.0;
            }
            for (mi, clause) in clauses.iter().enumerate() {
                let c = clause.unsatisfaction(&v);
                clause.accumulate_dv(&v, x_s[mi], x_l[mi], p.zeta, 1.0, &mut dv);
                // Memory dynamics.
                let dx_s = p.beta * x_s[mi] * (c - p.gamma);
                let dx_l = p.alpha * (c - p.delta);
                x_s[mi] = (x_s[mi] + p.dt * dx_s).clamp(p.epsilon, 1.0 - p.epsilon);
                x_l[mi] = (x_l[mi] + p.dt * dx_l).clamp(1.0, xl_max);
                if p.noise_sigma > 0.0 {
                    let sqrt_dt = p.dt.sqrt();
                    x_s[mi] = (x_s[mi] + p.noise_sigma * sqrt_dt * sample_normal(&mut rng))
                        .clamp(p.epsilon, 1.0 - p.epsilon);
                    x_l[mi] = (x_l[mi] + p.noise_sigma * sqrt_dt * sample_normal(&mut rng))
                        .clamp(1.0, xl_max);
                }
            }
            let sqrt_dt = p.dt.sqrt();
            for (vi, d) in v.iter_mut().zip(&dv) {
                let mut next = *vi + p.dt * d;
                if p.noise_sigma > 0.0 {
                    next += p.noise_sigma * sqrt_dt * sample_normal(&mut rng);
                }
                *vi = next.clamp(-1.0, 1.0);
                max_abs_v = max_abs_v.max(vi.abs());
            }
            steps += 1;

            if steps % p.check_every == 0 {
                let assignment = Assignment::from_voltages(&v);
                let unsat = formula.count_unsatisfied(&assignment);
                best_unsat = best_unsat.min(unsat);
                checkpoints.push(assignment.clone());
                if unsat == 0 {
                    return Ok(DmmOutcome {
                        solution: Some(assignment),
                        steps,
                        time: steps as f64 * p.dt,
                        best_unsat: 0,
                        checkpoints,
                        max_abs_v,
                    });
                }
            }
        }
        let final_assignment = Assignment::from_voltages(&v);
        let unsat = formula.count_unsatisfied(&final_assignment);
        best_unsat = best_unsat.min(unsat);
        checkpoints.push(final_assignment.clone());
        Ok(DmmOutcome {
            solution: if unsat == 0 {
                Some(final_assignment)
            } else {
                None
            },
            steps,
            time: steps as f64 * p.dt,
            best_unsat,
            checkpoints,
            max_abs_v,
        })
    }

    /// Median steps-to-solution over several seeds (`None` entries — runs
    /// that timed out — are reported as `max_steps`).
    ///
    /// # Errors
    ///
    /// Propagates [`DmmSolver::solve`] errors.
    pub fn median_steps(&self, formula: &Formula, seeds: &[u64]) -> Result<(f64, usize), MemError> {
        let mut costs = Vec::with_capacity(seeds.len());
        let mut solved = 0usize;
        for &seed in seeds {
            let outcome = self.solve(formula, seed)?;
            if outcome.solution.is_some() {
                solved += 1;
            }
            costs.push(outcome.steps as f64);
        }
        Ok((numerics::stats::median(&costs)?, solved))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimacs;
    use crate::generators::{planted_3sat, random_ksat};

    #[test]
    fn solves_tiny_formula() {
        let f = dimacs::parse("p cnf 3 3\n1 2 0\n-1 3 0\n-2 -3 0\n").unwrap();
        let outcome = DmmSolver::new(DmmParams::default()).solve(&f, 1).unwrap();
        let sol = outcome.solution.expect("satisfiable");
        assert!(f.is_satisfied(&sol));
        assert_eq!(outcome.best_unsat, 0);
    }

    #[test]
    fn solves_planted_instances_at_hard_ratio() {
        for seed in 0..3 {
            let inst = planted_3sat(30, 4.2, seed).unwrap();
            let outcome = DmmSolver::new(DmmParams::default())
                .solve(&inst.formula, seed + 10)
                .unwrap();
            let sol = outcome
                .solution
                .unwrap_or_else(|| panic!("seed {seed}: unsolved in {} steps", outcome.steps));
            assert!(inst.formula.is_satisfied(&sol));
        }
    }

    #[test]
    fn trajectories_stay_bounded() {
        let inst = planted_3sat(25, 4.0, 5).unwrap();
        let outcome = DmmSolver::new(DmmParams::default())
            .solve(&inst.formula, 2)
            .unwrap();
        assert!(outcome.max_abs_v <= 1.0 + 1e-12);
    }

    #[test]
    fn deterministic_per_seed() {
        let inst = planted_3sat(20, 4.0, 7).unwrap();
        let solver = DmmSolver::new(DmmParams::default());
        let a = solver.solve(&inst.formula, 3).unwrap();
        let b = solver.solve(&inst.formula, 3).unwrap();
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.solution, b.solution);
    }

    #[test]
    fn noise_does_not_break_solving() {
        // The ref.-[59] robustness property: moderate noise leaves the
        // solution search intact.
        let inst = planted_3sat(20, 4.0, 11).unwrap();
        let mut params = DmmParams::default();
        params.noise_sigma = 0.05;
        let outcome = DmmSolver::new(params).solve(&inst.formula, 4).unwrap();
        let sol = outcome.solution.expect("noisy run should still solve");
        assert!(inst.formula.is_satisfied(&sol));
    }

    #[test]
    fn unsat_instance_times_out_without_false_positive() {
        let f = dimacs::parse("p cnf 1 2\n1 0\n-1 0\n").unwrap();
        let mut params = DmmParams::default();
        params.max_steps = 2_000;
        let outcome = DmmSolver::new(params).solve(&f, 1).unwrap();
        assert!(outcome.solution.is_none());
        assert!(outcome.best_unsat >= 1);
        assert_eq!(outcome.steps, 2_000);
    }

    #[test]
    fn checkpoints_recorded() {
        let inst = planted_3sat(15, 3.5, 2).unwrap();
        let outcome = DmmSolver::new(DmmParams::default())
            .solve(&inst.formula, 6)
            .unwrap();
        assert!(!outcome.checkpoints.is_empty());
        // The last checkpoint is the returned solution when solved.
        if let Some(sol) = &outcome.solution {
            assert_eq!(outcome.checkpoints.last().unwrap(), sol);
        }
    }

    #[test]
    fn empty_formula_trivial() {
        let f = Formula::new(3, vec![]).unwrap();
        let outcome = DmmSolver::new(DmmParams::default()).solve(&f, 1).unwrap();
        assert!(outcome.solution.is_some());
        assert_eq!(outcome.steps, 0);
    }

    #[test]
    fn parameter_validation() {
        let mut p = DmmParams::default();
        p.dt = 0.0;
        assert!(DmmSolver::new(p)
            .solve(&random_ksat(5, 3, 2.0, 1).unwrap(), 1)
            .is_err());
        let mut p = DmmParams::default();
        p.epsilon = 0.7;
        assert!(p.validate().is_err());
        let mut p = DmmParams::default();
        p.noise_sigma = -1.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn median_steps_reports_solved_count() {
        let inst = planted_3sat(15, 3.8, 3).unwrap();
        let solver = DmmSolver::new(DmmParams::default());
        let (median, solved) = solver.median_steps(&inst.formula, &[1, 2, 3]).unwrap();
        assert!(median > 0.0);
        assert_eq!(solved, 3);
    }
}
