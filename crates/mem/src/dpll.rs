//! A complete DPLL solver.
//!
//! The systematic-search baseline: unit propagation, pure-literal
//! elimination, and most-occurrences branching, with decision counting so
//! scaling experiments can report the classical exponential cost the
//! paper's §IV contrasts against DMM dynamics.
//!
//! # Example
//!
//! ```
//! use mem::dimacs;
//! use mem::dpll::Dpll;
//!
//! let f = dimacs::parse("p cnf 2 2\n1 -2 0\n2 0\n")?;
//! let result = Dpll::new(1_000_000).solve(&f);
//! let solution = result.solution.expect("satisfiable");
//! assert!(f.is_satisfied(&solution));
//! # Ok::<(), mem::MemError>(())
//! ```

use crate::assignment::Assignment;
use crate::cnf::Formula;

/// Tri-state variable value during search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Value {
    Unset,
    True,
    False,
}

/// Result of a DPLL run.
#[derive(Debug, Clone, PartialEq)]
pub struct DpllResult {
    /// A satisfying assignment, when one exists (and was found within the
    /// budget).
    pub solution: Option<Assignment>,
    /// Whether the search completed (proved SAT or UNSAT) rather than
    /// hitting the decision budget.
    pub complete: bool,
    /// Branching decisions made.
    pub decisions: u64,
    /// Unit propagations performed.
    pub propagations: u64,
}

impl DpllResult {
    /// `true` when the search proved unsatisfiability.
    #[must_use]
    pub fn proved_unsat(&self) -> bool {
        self.complete && self.solution.is_none()
    }
}

/// The DPLL solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dpll {
    max_decisions: u64,
}

impl Dpll {
    /// Creates a solver with a decision budget.
    #[must_use]
    pub fn new(max_decisions: u64) -> Self {
        Dpll { max_decisions }
    }

    /// Solves a formula.
    #[must_use]
    pub fn solve(&self, formula: &Formula) -> DpllResult {
        let mut state = SearchState {
            formula,
            values: vec![Value::Unset; formula.n_vars()],
            decisions: 0,
            propagations: 0,
            budget: self.max_decisions,
            exhausted: false,
        };
        let sat = state.search();
        let solution = if sat {
            Some(Assignment::from_bools(
                &state
                    .values
                    .iter()
                    .map(|v| matches!(v, Value::True))
                    .collect::<Vec<_>>(),
            ))
        } else {
            None
        };
        DpllResult {
            solution,
            complete: !state.exhausted,
            decisions: state.decisions,
            propagations: state.propagations,
        }
    }
}

struct SearchState<'a> {
    formula: &'a Formula,
    values: Vec<Value>,
    decisions: u64,
    propagations: u64,
    budget: u64,
    exhausted: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClauseStatus {
    Satisfied,
    Conflict,
    Unit(usize, bool),
    Unresolved,
}

impl SearchState<'_> {
    fn clause_status(&self, ci: usize) -> ClauseStatus {
        let clause = &self.formula.clauses()[ci];
        let mut unassigned: Option<(usize, bool)> = None;
        let mut count_unassigned = 0;
        for lit in clause.literals() {
            match self.values[lit.var()] {
                Value::Unset => {
                    count_unassigned += 1;
                    unassigned = Some((lit.var(), !lit.is_negated()));
                }
                Value::True => {
                    if !lit.is_negated() {
                        return ClauseStatus::Satisfied;
                    }
                }
                Value::False => {
                    if lit.is_negated() {
                        return ClauseStatus::Satisfied;
                    }
                }
            }
        }
        match count_unassigned {
            0 => ClauseStatus::Conflict,
            1 => {
                let (var, val) = unassigned.expect("one unassigned literal");
                ClauseStatus::Unit(var, val)
            }
            _ => ClauseStatus::Unresolved,
        }
    }

    /// Unit propagation + pure literal elimination to fixpoint.
    /// Returns `(ok, trail)` where `trail` lists variables assigned here.
    fn propagate(&mut self) -> (bool, Vec<usize>) {
        let mut trail = Vec::new();
        loop {
            let mut changed = false;
            // Unit propagation.
            for ci in 0..self.formula.len() {
                match self.clause_status(ci) {
                    ClauseStatus::Conflict => {
                        return (false, trail);
                    }
                    ClauseStatus::Unit(var, val) => {
                        self.values[var] = if val { Value::True } else { Value::False };
                        self.propagations += 1;
                        trail.push(var);
                        changed = true;
                    }
                    _ => {}
                }
            }
            if changed {
                continue;
            }
            // Pure literal elimination over unresolved clauses.
            let n = self.formula.n_vars();
            let mut pos = vec![false; n];
            let mut neg = vec![false; n];
            for ci in 0..self.formula.len() {
                if self.clause_status(ci) != ClauseStatus::Unresolved {
                    continue;
                }
                for lit in self.formula.clauses()[ci].literals() {
                    if self.values[lit.var()] == Value::Unset {
                        if lit.is_negated() {
                            neg[lit.var()] = true;
                        } else {
                            pos[lit.var()] = true;
                        }
                    }
                }
            }
            for v in 0..n {
                if self.values[v] == Value::Unset && (pos[v] ^ neg[v]) {
                    self.values[v] = if pos[v] { Value::True } else { Value::False };
                    self.propagations += 1;
                    trail.push(v);
                    changed = true;
                }
            }
            if !changed {
                return (true, trail);
            }
        }
    }

    fn all_satisfied(&self) -> bool {
        (0..self.formula.len()).all(|ci| self.clause_status(ci) == ClauseStatus::Satisfied)
    }

    /// Most-occurrences-in-unresolved-clauses branching heuristic.
    fn pick_branch_var(&self) -> Option<usize> {
        let mut counts = vec![0usize; self.formula.n_vars()];
        for ci in 0..self.formula.len() {
            if self.clause_status(ci) != ClauseStatus::Unresolved {
                continue;
            }
            for lit in self.formula.clauses()[ci].literals() {
                if self.values[lit.var()] == Value::Unset {
                    counts[lit.var()] += 1;
                }
            }
        }
        counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .max_by_key(|(_, &c)| c)
            .map(|(v, _)| v)
    }

    fn undo(&mut self, trail: &[usize]) {
        for &v in trail {
            self.values[v] = Value::Unset;
        }
    }

    fn search(&mut self) -> bool {
        let (ok, trail) = self.propagate();
        if !ok {
            self.undo(&trail);
            return false;
        }
        if self.all_satisfied() {
            // Give any remaining unset variables a definite value.
            for v in &mut self.values {
                if *v == Value::Unset {
                    *v = Value::False;
                }
            }
            return true;
        }
        let Some(var) = self.pick_branch_var() else {
            // No unresolved clauses but not all satisfied: conflict.
            self.undo(&trail);
            return false;
        };
        if self.decisions >= self.budget {
            self.exhausted = true;
            self.undo(&trail);
            return false;
        }
        self.decisions += 1;
        for &value in &[Value::True, Value::False] {
            self.values[var] = value;
            if self.search() {
                return true;
            }
            self.values[var] = Value::Unset;
            if self.exhausted {
                break;
            }
        }
        self.undo(&trail);
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{Clause, Literal};
    use crate::dimacs;
    use crate::generators::{planted_3sat, random_ksat};

    #[test]
    fn solves_simple_sat() {
        let f = dimacs::parse("p cnf 3 3\n1 2 0\n-1 3 0\n-2 -3 0\n").unwrap();
        let r = Dpll::new(1000).solve(&f);
        assert!(r.complete);
        let sol = r.solution.expect("satisfiable");
        assert!(f.is_satisfied(&sol));
    }

    #[test]
    fn proves_unsat() {
        // (x0) ∧ (¬x0)
        let f = Formula::new(
            1,
            vec![
                Clause::new(vec![Literal::positive(0)]).unwrap(),
                Clause::new(vec![Literal::negative(0)]).unwrap(),
            ],
        )
        .unwrap();
        let r = Dpll::new(1000).solve(&f);
        assert!(r.proved_unsat());
    }

    #[test]
    fn proves_unsat_pigeonhole_2_1() {
        // 2 pigeons, 1 hole: p00 ∧ p10 ∧ (¬p00 ∨ ¬p10).
        let f = dimacs::parse("p cnf 2 3\n1 0\n2 0\n-1 -2 0\n").unwrap();
        let r = Dpll::new(1000).solve(&f);
        assert!(r.proved_unsat());
    }

    #[test]
    fn solves_planted_instances() {
        for seed in 0..3 {
            let inst = planted_3sat(20, 4.0, seed).unwrap();
            let r = Dpll::new(1_000_000).solve(&inst.formula);
            assert!(r.complete, "seed {seed}");
            let sol = r.solution.expect("planted is satisfiable");
            assert!(inst.formula.is_satisfied(&sol));
        }
    }

    #[test]
    fn unit_propagation_counted() {
        let f = dimacs::parse("p cnf 3 3\n1 0\n-1 2 0\n-2 3 0\n").unwrap();
        let r = Dpll::new(1000).solve(&f);
        assert!(r.solution.is_some());
        assert!(r.propagations >= 3, "propagations {}", r.propagations);
        assert_eq!(r.decisions, 0, "chain should solve by propagation alone");
    }

    #[test]
    fn budget_exhaustion_reported() {
        let f = random_ksat(40, 3, 4.3, 2).unwrap();
        let r = Dpll::new(1).solve(&f);
        if r.solution.is_none() {
            assert!(!r.complete, "must admit incompleteness at budget 1");
        }
    }

    #[test]
    fn agreement_with_walksat_on_satisfiable() {
        use crate::walksat::{WalkSat, WalkSatParams};
        for seed in 0..4 {
            let inst = planted_3sat(15, 3.8, 100 + seed).unwrap();
            let d = Dpll::new(1_000_000).solve(&inst.formula);
            let w = WalkSat::new(WalkSatParams::default()).solve(&inst.formula, seed);
            assert!(d.solution.is_some());
            assert!(w.solution.is_some());
        }
    }

    #[test]
    fn random_unsat_detected() {
        // Dense random 3-SAT far above the transition is almost surely
        // UNSAT; DPLL must terminate with a proof.
        let f = random_ksat(12, 3, 10.0, 5).unwrap();
        let r = Dpll::new(10_000_000).solve(&f);
        assert!(r.complete);
        if let Some(sol) = &r.solution {
            assert!(f.is_satisfied(sol));
        }
    }
}
