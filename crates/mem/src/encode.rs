//! Boolean circuits and their CNF encodings.
//!
//! §IV: "In order to solve a specific combinatorial optimization problem,
//! DMMs are then designed as follows. The problem is first written in
//! Boolean form … The corresponding Boolean circuit is not even unique, in
//! view of the freedom available in choosing different logic gates as the
//! basis of our Boolean logic."
//!
//! This module provides that front end: a [`BoolCircuit`] of AND/OR/XOR/NOT
//! gates over wires, the standard Tseitin transformation to CNF (one SOLG
//! per gate), and [`split_wide_clauses`] — the narrower-gate-basis rewrite
//! that re-expresses wide OR gates through chains of 3-input gates with
//! auxiliary wires.
//!
//! # Example
//!
//! ```
//! use mem::encode::{BoolCircuit, GateKind};
//!
//! // out = (in0 AND in1) XOR in2, constrained to be true.
//! let mut circuit = BoolCircuit::new(3);
//! let and = circuit.add_gate(GateKind::And, &[0, 1])?;
//! let out = circuit.add_gate(GateKind::Xor, &[and, 2])?;
//! let formula = circuit.to_cnf(&[(out, true)])?;
//! // in = (1, 0, 0): AND = 0, XOR = 0 → constraint violated.
//! // The formula is satisfiable exactly by inputs making `out` true.
//! assert!(formula.n_vars() >= 5);
//! # Ok::<(), mem::MemError>(())
//! ```

use crate::cnf::{Clause, Formula, Literal};
use crate::MemError;

/// The gate kinds of the Boolean-circuit front end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Logical AND of all inputs.
    And,
    /// Logical OR of all inputs.
    Or,
    /// Exclusive OR (exactly 2 inputs).
    Xor,
    /// Negation (exactly 1 input).
    Not,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct CircuitGate {
    kind: GateKind,
    inputs: Vec<usize>,
    output: usize,
}

/// A combinational Boolean circuit over wires.
///
/// Wires `0..n_inputs` are primary inputs; each added gate allocates a new
/// output wire. The circuit converts to CNF by the Tseitin transformation:
/// every gate contributes the clauses asserting `output ⇔ gate(inputs)` —
/// exactly the per-gate "logical proposition" an SOLG self-organizes into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoolCircuit {
    n_inputs: usize,
    n_wires: usize,
    gates: Vec<CircuitGate>,
}

impl BoolCircuit {
    /// Creates a circuit with `n_inputs` primary input wires.
    ///
    /// # Panics
    ///
    /// Panics when `n_inputs == 0`.
    #[must_use]
    pub fn new(n_inputs: usize) -> Self {
        assert!(n_inputs > 0, "circuit needs at least one input");
        BoolCircuit {
            n_inputs,
            n_wires: n_inputs,
            gates: Vec::new(),
        }
    }

    /// Number of primary inputs.
    #[must_use]
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Total wires (inputs + gate outputs).
    #[must_use]
    pub fn n_wires(&self) -> usize {
        self.n_wires
    }

    /// Number of gates.
    #[must_use]
    pub fn n_gates(&self) -> usize {
        self.gates.len()
    }

    /// Adds a gate over existing wires; returns its output wire.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Formula`] for out-of-range wires or an arity the
    /// gate kind does not support (NOT takes 1 input, XOR takes 2, AND/OR
    /// take ≥ 2).
    pub fn add_gate(&mut self, kind: GateKind, inputs: &[usize]) -> Result<usize, MemError> {
        for &w in inputs {
            if w >= self.n_wires {
                return Err(MemError::Formula {
                    reason: format!("wire {w} does not exist"),
                });
            }
        }
        let arity_ok = match kind {
            GateKind::Not => inputs.len() == 1,
            GateKind::Xor => inputs.len() == 2,
            GateKind::And | GateKind::Or => inputs.len() >= 2,
        };
        if !arity_ok {
            return Err(MemError::Formula {
                reason: format!("{kind:?} gate cannot take {} inputs", inputs.len()),
            });
        }
        let output = self.n_wires;
        self.n_wires += 1;
        self.gates.push(CircuitGate {
            kind,
            inputs: inputs.to_vec(),
            output,
        });
        Ok(output)
    }

    /// Evaluates the circuit on primary inputs, returning all wire values.
    ///
    /// # Panics
    ///
    /// Panics when `inputs.len() != n_inputs`.
    #[must_use]
    pub fn evaluate(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.n_inputs);
        let mut wires = vec![false; self.n_wires];
        wires[..self.n_inputs].copy_from_slice(inputs);
        for gate in &self.gates {
            let vals: Vec<bool> = gate.inputs.iter().map(|&w| wires[w]).collect();
            wires[gate.output] = match gate.kind {
                GateKind::And => vals.iter().all(|&v| v),
                GateKind::Or => vals.iter().any(|&v| v),
                GateKind::Xor => vals[0] ^ vals[1],
                GateKind::Not => !vals[0],
            };
        }
        wires
    }

    /// Tseitin-transforms the circuit to CNF, with optional output
    /// constraints pinning wires to values. One variable per wire; each
    /// gate contributes its defining clauses.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Formula`] for constraints on nonexistent wires.
    pub fn to_cnf(&self, constraints: &[(usize, bool)]) -> Result<Formula, MemError> {
        let mut clauses: Vec<Clause> = Vec::new();
        let pos = Literal::positive;
        let neg = Literal::negative;
        for gate in &self.gates {
            let o = gate.output;
            match gate.kind {
                GateKind::And => {
                    // o → each input; all inputs → o.
                    for &i in &gate.inputs {
                        clauses.push(Clause::new(vec![neg(o), pos(i)])?);
                    }
                    let mut lits: Vec<Literal> = gate.inputs.iter().map(|&i| neg(i)).collect();
                    lits.push(pos(o));
                    clauses.push(Clause::new(lits)?);
                }
                GateKind::Or => {
                    // each input → o; o → some input.
                    for &i in &gate.inputs {
                        clauses.push(Clause::new(vec![neg(i), pos(o)])?);
                    }
                    let mut lits: Vec<Literal> = gate.inputs.iter().map(|&i| pos(i)).collect();
                    lits.push(neg(o));
                    clauses.push(Clause::new(lits)?);
                }
                GateKind::Xor => {
                    let (a, b) = (gate.inputs[0], gate.inputs[1]);
                    clauses.push(Clause::new(vec![neg(o), pos(a), pos(b)])?);
                    clauses.push(Clause::new(vec![neg(o), neg(a), neg(b)])?);
                    clauses.push(Clause::new(vec![pos(o), neg(a), pos(b)])?);
                    clauses.push(Clause::new(vec![pos(o), pos(a), neg(b)])?);
                }
                GateKind::Not => {
                    let a = gate.inputs[0];
                    clauses.push(Clause::new(vec![neg(o), neg(a)])?);
                    clauses.push(Clause::new(vec![pos(o), pos(a)])?);
                }
            }
        }
        for &(wire, value) in constraints {
            if wire >= self.n_wires {
                return Err(MemError::Formula {
                    reason: format!("constraint on nonexistent wire {wire}"),
                });
            }
            clauses.push(Clause::new(vec![if value {
                pos(wire)
            } else {
                neg(wire)
            }])?);
        }
        Formula::new(self.n_wires, clauses)
    }
}

/// The clause-width rewrite behind ablation A1 — the standard conversion to
/// a narrower gate basis with fresh auxiliary variables:
/// `(l₁ ∨ … ∨ l_k) → (l₁ ∨ … ∨ l_{w−1} ∨ x) ∧ (¬x ∨ l_w ∨ … ∨ l_k)`,
/// applied repeatedly until every clause has at most `max_width` literals.
/// The result is equisatisfiable, with solutions agreeing on the original
/// variables.
///
/// # Errors
///
/// * [`MemError::Parameter`] when `max_width < 3` (3-CNF is the narrowest
///   basis that can express arbitrary clauses this way).
/// * Propagates formula-construction errors.
pub fn split_wide_clauses(formula: &Formula, max_width: usize) -> Result<Formula, MemError> {
    if max_width < 3 {
        return Err(MemError::Parameter {
            name: "max_width",
            reason: "clause splitting needs a target width of at least 3",
        });
    }
    let mut n_vars = formula.n_vars();
    let mut clauses: Vec<Clause> = Vec::new();
    for clause in formula.clauses() {
        let mut lits = clause.literals().to_vec();
        while lits.len() > max_width {
            let aux = n_vars;
            n_vars += 1;
            let mut head: Vec<Literal> = lits.drain(..max_width - 1).collect();
            head.push(Literal::positive(aux));
            clauses.push(Clause::new(head)?);
            lits.insert(0, Literal::negative(aux));
        }
        clauses.push(Clause::new(lits)?);
    }
    Formula::new(n_vars, clauses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::Assignment;
    use crate::dpll::Dpll;
    use crate::generators::planted_3sat;

    fn xor_and_circuit() -> (BoolCircuit, usize) {
        // out = (in0 AND in1) XOR in2
        let mut c = BoolCircuit::new(3);
        let and = c.add_gate(GateKind::And, &[0, 1]).unwrap();
        let out = c.add_gate(GateKind::Xor, &[and, 2]).unwrap();
        (c, out)
    }

    #[test]
    fn evaluation_matches_semantics() {
        let (c, out) = xor_and_circuit();
        for bits in 0..8u32 {
            let inputs: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let wires = c.evaluate(&inputs);
            let expected = (inputs[0] && inputs[1]) ^ inputs[2];
            assert_eq!(wires[out], expected, "inputs {inputs:?}");
        }
    }

    #[test]
    fn tseitin_cnf_agrees_with_evaluation_on_all_inputs() {
        let (c, out) = xor_and_circuit();
        let formula = c.to_cnf(&[]).unwrap();
        for bits in 0..8u32 {
            let inputs: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let wires = c.evaluate(&inputs);
            // The wire valuation must satisfy the Tseitin clauses.
            let assignment = Assignment::from_bools(&wires);
            assert!(formula.is_satisfied(&assignment), "inputs {inputs:?}");
            // Flipping the output wire must violate them.
            let mut bad = wires.clone();
            bad[out] = !bad[out];
            assert!(!formula.is_satisfied(&Assignment::from_bools(&bad)));
        }
    }

    #[test]
    fn constrained_cnf_solutions_respect_circuit() {
        let (c, out) = xor_and_circuit();
        let formula = c.to_cnf(&[(out, true)]).unwrap();
        let result = Dpll::new(100_000).solve(&formula);
        let solution = result.solution.expect("constraint is achievable");
        // Re-evaluate the circuit on the solved inputs.
        let inputs: Vec<bool> = (0..3).map(|i| solution.value(i)).collect();
        let wires = c.evaluate(&inputs);
        assert!(
            wires[out],
            "solver produced inputs that violate the constraint"
        );
    }

    #[test]
    fn unsatisfiable_constraint_detected() {
        // out = in0 AND (NOT in0) can never be true.
        let mut c = BoolCircuit::new(1);
        let not = c.add_gate(GateKind::Not, &[0]).unwrap();
        let and = c.add_gate(GateKind::And, &[0, not]).unwrap();
        let formula = c.to_cnf(&[(and, true)]).unwrap();
        assert!(Dpll::new(100_000).solve(&formula).proved_unsat());
    }

    #[test]
    fn gate_arity_validated() {
        let mut c = BoolCircuit::new(2);
        assert!(c.add_gate(GateKind::Not, &[0, 1]).is_err());
        assert!(c.add_gate(GateKind::Xor, &[0]).is_err());
        assert!(c.add_gate(GateKind::And, &[0]).is_err());
        assert!(c.add_gate(GateKind::And, &[0, 5]).is_err());
    }

    fn wide_formula() -> Formula {
        // Two width-6 clauses over 8 variables plus a unit.
        crate::dimacs::parse("p cnf 8 3\n1 2 3 4 5 6 0\n-3 -4 5 6 7 8 0\n-1 0\n").unwrap()
    }

    #[test]
    fn split_preserves_satisfiability_and_projection() {
        let wide = wide_formula();
        let split = split_wide_clauses(&wide, 3).unwrap();
        assert!(split.clauses().iter().all(|c| c.len() <= 3));
        assert!(split.n_vars() > wide.n_vars());
        let result = Dpll::new(10_000_000).solve(&split);
        let solution = result.solution.expect("split formula stays satisfiable");
        let restricted = Assignment::from_bools(&solution.to_bools()[..wide.n_vars()]);
        assert!(wide.is_satisfied(&restricted));
    }

    #[test]
    fn split_exhaustively_equisatisfiable_per_assignment() {
        // For each assignment of the original variables: it satisfies the
        // original formula iff some auxiliary completion satisfies the
        // split formula.
        let wide = crate::dimacs::parse("p cnf 5 2\n1 2 3 4 5 0\n-1 -2 -3 -4 -5 0\n").unwrap();
        let split = split_wide_clauses(&wide, 3).unwrap();
        let aux = split.n_vars() - wide.n_vars();
        for bits in 0..(1u32 << wide.n_vars()) {
            let x: Vec<bool> = (0..wide.n_vars()).map(|i| bits >> i & 1 == 1).collect();
            let original_sat = wide.is_satisfied(&Assignment::from_bools(&x));
            let mut extended_sat = false;
            for aux_bits in 0..(1u32 << aux) {
                let mut full = x.clone();
                for j in 0..aux {
                    full.push(aux_bits >> j & 1 == 1);
                }
                if split.is_satisfied(&Assignment::from_bools(&full)) {
                    extended_sat = true;
                    break;
                }
            }
            assert_eq!(original_sat, extended_sat, "bits {bits:05b}");
        }
    }

    #[test]
    fn split_rejects_narrow_target() {
        assert!(split_wide_clauses(&wide_formula(), 2).is_err());
    }

    #[test]
    fn split_on_planted_instances_stays_solvable() {
        let inst = planted_3sat(15, 4.0, 3).unwrap();
        // 3-SAT is already width 3: identity.
        let same = split_wide_clauses(&inst.formula, 3).unwrap();
        assert_eq!(same, inst.formula);
    }

    #[test]
    fn split_of_narrow_formula_is_identity() {
        let f = crate::dimacs::parse("p cnf 2 2\n1 -2 0\n2 0\n").unwrap();
        let split = split_wide_clauses(&f, 3).unwrap();
        assert_eq!(split, f);
    }
}
