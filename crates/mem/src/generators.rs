//! Instance generators.
//!
//! * [`random_ksat`] — uniform random k-SAT at a chosen clause ratio (the
//!   hardness knob; random 3-SAT is hardest near ratio ≈ 4.27).
//! * [`planted_3sat`] — 3-SAT with a known ("planted") satisfying
//!   assignment, used when experiments must guarantee satisfiability (noise
//!   robustness, scaling sweeps).
//! * [`frustrated_loop_ising`] — the spin-glass benchmark of the paper's
//!   ref. \[56\]: planted frustrated loops on an `L×L` lattice whose ground
//!   state and ground energy are known by construction.
//!
//! # Example
//!
//! ```
//! use mem::generators::planted_3sat;
//!
//! let instance = planted_3sat(30, 4.2, 7)?;
//! assert!(instance.formula.is_satisfied(&instance.planted));
//! # Ok::<(), mem::MemError>(())
//! ```

use crate::assignment::Assignment;
use crate::cnf::{Clause, Formula, Literal};
use crate::ising::IsingModel;
use crate::MemError;
use numerics::rng::Rng;
use numerics::rng::{rng_from_seed, sample_indices};

/// A generated satisfiable instance with its planted solution.
#[derive(Debug, Clone, PartialEq)]
pub struct PlantedInstance {
    /// The formula.
    pub formula: Formula,
    /// A satisfying assignment used during generation.
    pub planted: Assignment,
}

/// Uniform random k-SAT: `⌈ratio·n⌉` clauses of `k` distinct variables with
/// random polarities.
///
/// # Errors
///
/// Returns [`MemError::Parameter`] for `k == 0`, `k > n_vars`, or a
/// non-positive ratio.
pub fn random_ksat(n_vars: usize, k: usize, ratio: f64, seed: u64) -> Result<Formula, MemError> {
    if k == 0 || k > n_vars {
        return Err(MemError::Parameter {
            name: "k",
            reason: "clause width must satisfy 1 <= k <= n_vars",
        });
    }
    if !(ratio > 0.0) {
        return Err(MemError::Parameter {
            name: "ratio",
            reason: "clause ratio must be positive",
        });
    }
    let mut rng = rng_from_seed(seed);
    let n_clauses = (ratio * n_vars as f64).ceil() as usize;
    let mut clauses = Vec::with_capacity(n_clauses);
    for _ in 0..n_clauses {
        let vars = sample_indices(&mut rng, n_vars, k);
        let lits: Vec<Literal> = vars
            .into_iter()
            .map(|v| {
                if rng.gen() {
                    Literal::positive(v)
                } else {
                    Literal::negative(v)
                }
            })
            .collect();
        clauses.push(Clause::new(lits).expect("distinct sampled variables"));
    }
    Formula::new(n_vars, clauses)
}

/// Planted random 3-SAT: draws a hidden assignment, then samples clauses
/// uniformly among those satisfied by it (rejection sampling), giving a
/// guaranteed-satisfiable instance that is still hard near the transition
/// ratio.
///
/// # Errors
///
/// Returns [`MemError::Parameter`] for fewer than 3 variables or a
/// non-positive ratio.
pub fn planted_3sat(n_vars: usize, ratio: f64, seed: u64) -> Result<PlantedInstance, MemError> {
    if n_vars < 3 {
        return Err(MemError::Parameter {
            name: "n_vars",
            reason: "planted 3-SAT needs at least 3 variables",
        });
    }
    if !(ratio > 0.0) {
        return Err(MemError::Parameter {
            name: "ratio",
            reason: "clause ratio must be positive",
        });
    }
    let mut rng = rng_from_seed(seed);
    let planted = Assignment::random(n_vars, &mut rng);
    let n_clauses = (ratio * n_vars as f64).ceil() as usize;
    let mut clauses = Vec::with_capacity(n_clauses);
    while clauses.len() < n_clauses {
        let vars = sample_indices(&mut rng, n_vars, 3);
        let lits: Vec<Literal> = vars
            .iter()
            .map(|&v| {
                if rng.gen() {
                    Literal::positive(v)
                } else {
                    Literal::negative(v)
                }
            })
            .collect();
        // Keep only clauses the planted assignment satisfies.
        let satisfied = lits.iter().any(|l| l.eval(planted.value(l.var())));
        if satisfied {
            clauses.push(Clause::new(lits).expect("distinct sampled variables"));
        }
    }
    let formula = Formula::new(n_vars, clauses)?;
    Ok(PlantedInstance { formula, planted })
}

/// Planted k-XORSAT translated to CNF: each parity constraint
/// `x_{i1} ⊕ … ⊕ x_{ik} = b` (chosen consistent with a hidden assignment)
/// expands into the `2^{k−1}` clauses forbidding its violating
/// sign patterns. XORSAT instances are linear-algebra-easy but notoriously
/// hard for local search — the classic stress test separating solver
/// families in the memcomputing literature.
///
/// # Errors
///
/// Returns [`MemError::Parameter`] for `k` outside `2..=4` or `k > n_vars`.
pub fn planted_xorsat(
    n_vars: usize,
    n_constraints: usize,
    k: usize,
    seed: u64,
) -> Result<PlantedInstance, MemError> {
    if !(2..=4).contains(&k) || k > n_vars {
        return Err(MemError::Parameter {
            name: "k",
            reason: "xorsat width must be in 2..=4 and at most n_vars",
        });
    }
    let mut rng = rng_from_seed(seed);
    let planted = Assignment::random(n_vars, &mut rng);
    let mut clauses = Vec::new();
    for _ in 0..n_constraints {
        let vars = sample_indices(&mut rng, n_vars, k);
        // Parity of the planted assignment over these variables.
        let parity = vars.iter().fold(false, |acc, &v| acc ^ planted.value(v));
        // Forbid every sign pattern whose parity differs from `parity`:
        // clause = OR of literals that are false under the forbidden
        // pattern.
        for pattern in 0..(1u32 << k) {
            let pattern_parity = (pattern.count_ones() & 1) == 1;
            if pattern_parity == parity {
                continue; // consistent pattern stays allowed
            }
            let lits: Vec<Literal> = vars
                .iter()
                .enumerate()
                .map(|(j, &v)| {
                    if pattern >> j & 1 == 1 {
                        // Forbidden pattern sets v true → clause wants ¬v.
                        Literal::negative(v)
                    } else {
                        Literal::positive(v)
                    }
                })
                .collect();
            clauses.push(Clause::new(lits).expect("distinct sampled variables"));
        }
    }
    let formula = Formula::new(n_vars, clauses)?;
    debug_assert!(formula.is_satisfied(&planted));
    Ok(PlantedInstance { formula, planted })
}

/// A frustrated-loop spin-glass instance with its planted ground state and
/// ground energy.
#[derive(Debug, Clone, PartialEq)]
pub struct FrustratedLoopInstance {
    /// The Ising model (couplings only, no fields).
    pub model: IsingModel,
    /// A planted ground-state configuration (as ±1 spins encoded in an
    /// assignment).
    pub planted: Assignment,
    /// The planted ground-state energy.
    pub ground_energy: f64,
}

/// Generates a frustrated-loop instance on an `side × side` square lattice
/// (Hen et al.'s planted benchmark, the ref.-\[56\] workload):
/// `n_loops` random lattice loops are laid down; each loop contributes
/// ferromagnetic couplings (relative to a hidden gauge) except one bond,
/// which is frustrated. By construction the hidden gauge is a ground state
/// with energy `Σ_loops (2 − len(loop))` (in units of |J| = 1).
///
/// # Errors
///
/// Returns [`MemError::Parameter`] for `side < 2` or `n_loops == 0`.
pub fn frustrated_loop_ising(
    side: usize,
    n_loops: usize,
    seed: u64,
) -> Result<FrustratedLoopInstance, MemError> {
    if side < 2 {
        return Err(MemError::Parameter {
            name: "side",
            reason: "lattice side must be at least 2",
        });
    }
    if n_loops == 0 {
        return Err(MemError::Parameter {
            name: "n_loops",
            reason: "need at least one loop",
        });
    }
    let n = side * side;
    let mut rng = rng_from_seed(seed);
    // Hidden gauge: random ±1 configuration that will be a ground state.
    let gauge = Assignment::random(n, &mut rng);
    let spins = gauge.to_spins();

    let idx = |r: usize, c: usize| r * side + c;
    let mut couplings: std::collections::BTreeMap<(usize, usize), f64> =
        std::collections::BTreeMap::new();
    let mut ground_energy = 0.0;

    for _ in 0..n_loops {
        // Random rectangular loop on the lattice.
        let r0 = rng.gen_range(0..side - 1);
        let c0 = rng.gen_range(0..side - 1);
        let r1 = rng.gen_range(r0 + 1..side);
        let c1 = rng.gen_range(c0 + 1..side);
        // Collect the loop edges (perimeter of the rectangle).
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for c in c0..c1 {
            edges.push((idx(r0, c), idx(r0, c + 1)));
            edges.push((idx(r1, c), idx(r1, c + 1)));
        }
        for r in r0..r1 {
            edges.push((idx(r, c0), idx(r + 1, c0)));
            edges.push((idx(r, c1), idx(r + 1, c1)));
        }
        let frustrated = rng.gen_range(0..edges.len());
        for (e, &(a, b)) in edges.iter().enumerate() {
            // Energy convention: E = −Σ J_ij s_i s_j. A satisfied
            // (ferromagnetic-in-gauge) bond has J = s_a·s_b so that
            // J·s_a·s_b = +1; the frustrated bond flips the sign.
            let aligned = (spins[a] * spins[b]) as f64;
            let j = if e == frustrated { -aligned } else { aligned };
            let key = if a < b { (a, b) } else { (b, a) };
            *couplings.entry(key).or_insert(0.0) += j;
        }
        // Loop of length L contributes −(L−1) + 1 = 2 − L at the gauge.
        ground_energy += 2.0 - edges.len() as f64;
    }

    let model = IsingModel::new(
        n,
        couplings.into_iter().map(|((a, b), j)| (a, b, j)).collect(),
        vec![0.0; n],
    )?;
    // Overlapping loops can cancel couplings; recompute the exact energy of
    // the gauge, which remains a ground state by construction.
    let ground_energy_exact = model.energy_spins(&spins);
    debug_assert!(ground_energy_exact <= ground_energy + 1e-9);
    Ok(FrustratedLoopInstance {
        model,
        planted: gauge,
        ground_energy: ground_energy_exact,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_ksat_shape() {
        let f = random_ksat(20, 3, 4.0, 1).unwrap();
        assert_eq!(f.n_vars(), 20);
        assert_eq!(f.len(), 80);
        assert!(f.clauses().iter().all(|c| c.len() == 3));
    }

    #[test]
    fn random_ksat_deterministic() {
        assert_eq!(
            random_ksat(10, 3, 4.0, 9).unwrap(),
            random_ksat(10, 3, 4.0, 9).unwrap()
        );
        assert_ne!(
            random_ksat(10, 3, 4.0, 9).unwrap(),
            random_ksat(10, 3, 4.0, 10).unwrap()
        );
    }

    #[test]
    fn random_ksat_rejects_bad_params() {
        assert!(random_ksat(5, 0, 4.0, 1).is_err());
        assert!(random_ksat(5, 6, 4.0, 1).is_err());
        assert!(random_ksat(5, 3, 0.0, 1).is_err());
    }

    #[test]
    fn planted_instance_is_satisfiable() {
        for seed in 0..5 {
            let inst = planted_3sat(25, 4.2, seed).unwrap();
            assert!(inst.formula.is_satisfied(&inst.planted), "seed {seed}");
            assert_eq!(inst.formula.len(), (4.2f64 * 25.0).ceil() as usize);
        }
    }

    #[test]
    fn planted_rejects_tiny() {
        assert!(planted_3sat(2, 4.0, 1).is_err());
    }

    #[test]
    fn xorsat_planted_satisfies() {
        for k in [2usize, 3] {
            let inst = planted_xorsat(12, 8, k, 7).unwrap();
            assert!(inst.formula.is_satisfied(&inst.planted), "k = {k}");
            // Each constraint expands to 2^{k-1} clauses.
            assert_eq!(inst.formula.len(), 8 * (1 << (k - 1)));
        }
    }

    #[test]
    fn xorsat_constraints_encode_parity() {
        // Any assignment violating a parity constraint violates at least
        // one of its clauses; spot-check by flipping one planted variable
        // that occurs in some clause.
        let inst = planted_xorsat(8, 6, 3, 9).unwrap();
        let occ = inst.formula.occurrence_lists();
        let var = (0..8).find(|&v| !occ[v].is_empty()).expect("used var");
        let mut flipped = inst.planted.clone();
        flipped.flip(var);
        assert!(
            inst.formula.count_unsatisfied(&flipped) > 0,
            "flipping a constrained variable must violate a clause"
        );
    }

    #[test]
    fn xorsat_rejects_bad_width() {
        assert!(planted_xorsat(8, 4, 1, 1).is_err());
        assert!(planted_xorsat(8, 4, 5, 1).is_err());
        assert!(planted_xorsat(3, 4, 4, 1).is_err());
    }

    #[test]
    fn xorsat_deterministic() {
        assert_eq!(
            planted_xorsat(10, 6, 3, 42).unwrap(),
            planted_xorsat(10, 6, 3, 42).unwrap()
        );
    }

    #[test]
    fn xorsat_solvable_by_dmm_and_walksat() {
        use crate::dmm::{DmmParams, DmmSolver};
        use crate::walksat::{WalkSat, WalkSatParams};
        let inst = planted_xorsat(16, 12, 3, 5).unwrap();
        let dmm = DmmSolver::new(DmmParams::default())
            .solve(&inst.formula, 1)
            .unwrap();
        assert!(dmm.solution.is_some(), "dmm failed on xorsat");
        let ws = WalkSat::new(WalkSatParams::default()).solve(&inst.formula, 1);
        assert!(ws.solution.is_some(), "walksat failed on xorsat");
    }

    #[test]
    fn frustrated_loop_gauge_is_ground_state() {
        let inst = frustrated_loop_ising(5, 6, 3).unwrap();
        let gauge_energy = inst.model.energy(&inst.planted);
        assert!((gauge_energy - inst.ground_energy).abs() < 1e-9);
        // No configuration may go below; spot check with random ones.
        let mut rng = rng_from_seed(4);
        for _ in 0..200 {
            let trial = Assignment::random(inst.model.n_spins(), &mut rng);
            assert!(inst.model.energy(&trial) >= inst.ground_energy - 1e-9);
        }
    }

    #[test]
    fn frustrated_loop_couplings_on_lattice_edges_only() {
        let side = 4;
        let inst = frustrated_loop_ising(side, 4, 8).unwrap();
        for &(a, b, _) in inst.model.couplings() {
            let (ra, ca) = (a / side, a % side);
            let (rb, cb) = (b / side, b % side);
            let dist = ra.abs_diff(rb) + ca.abs_diff(cb);
            assert_eq!(dist, 1, "non-lattice edge ({a},{b})");
        }
    }

    #[test]
    fn frustrated_loop_rejects_bad_params() {
        assert!(frustrated_loop_ising(1, 3, 1).is_err());
        assert!(frustrated_loop_ising(4, 0, 1).is_err());
    }

    #[test]
    fn frustrated_loop_deterministic() {
        let a = frustrated_loop_ising(4, 3, 11).unwrap();
        let b = frustrated_loop_ising(4, 3, 11).unwrap();
        assert_eq!(a.planted, b.planted);
        assert_eq!(a.ground_energy, b.ground_energy);
    }
}
