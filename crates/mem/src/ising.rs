//! Ising spin glasses.
//!
//! Energy convention: `E(s) = −Σ_{(i,j)} J_ij s_i s_j − Σ_i h_i s_i` over
//! spins `s ∈ {−1, +1}`. Provides the model, a simulated-annealing
//! baseline, and the flip-size bookkeeping used to demonstrate the paper's
//! dynamical-long-range-order claim (collective cluster flips, ref. \[56\]).
//!
//! # Example
//!
//! ```
//! use mem::ising::{IsingModel, SimulatedAnnealing, AnnealSchedule};
//!
//! // Two ferromagnetically coupled spins: ground states are ±(1,1).
//! let model = IsingModel::new(2, vec![(0, 1, 1.0)], vec![0.0, 0.0])?;
//! let sa = SimulatedAnnealing::new(AnnealSchedule::default());
//! let result = sa.run(&model, 5);
//! assert!((result.best_energy - (-1.0)).abs() < 1e-12);
//! # Ok::<(), mem::MemError>(())
//! ```

use crate::assignment::Assignment;
use crate::MemError;
use numerics::rng::rng_from_seed;
use numerics::rng::Rng;

/// An Ising model: pairwise couplings and local fields.
#[derive(Debug, Clone, PartialEq)]
pub struct IsingModel {
    n_spins: usize,
    couplings: Vec<(usize, usize, f64)>,
    fields: Vec<f64>,
    /// Adjacency: for each spin, the (coupling index) list touching it.
    adjacency: Vec<Vec<usize>>,
}

impl IsingModel {
    /// Creates a model.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Formula`] for out-of-range spin indices,
    /// self-couplings, or a field vector of the wrong length.
    pub fn new(
        n_spins: usize,
        couplings: Vec<(usize, usize, f64)>,
        fields: Vec<f64>,
    ) -> Result<Self, MemError> {
        if n_spins == 0 {
            return Err(MemError::Formula {
                reason: "ising model needs at least one spin".into(),
            });
        }
        if fields.len() != n_spins {
            return Err(MemError::Formula {
                reason: format!(
                    "field vector has {} entries for {n_spins} spins",
                    fields.len()
                ),
            });
        }
        for &(a, b, _) in &couplings {
            if a >= n_spins || b >= n_spins {
                return Err(MemError::Formula {
                    reason: format!("coupling ({a},{b}) out of range"),
                });
            }
            if a == b {
                return Err(MemError::Formula {
                    reason: format!("self-coupling on spin {a}"),
                });
            }
        }
        let mut adjacency = vec![Vec::new(); n_spins];
        for (ci, &(a, b, _)) in couplings.iter().enumerate() {
            adjacency[a].push(ci);
            adjacency[b].push(ci);
        }
        Ok(IsingModel {
            n_spins,
            couplings,
            fields,
            adjacency,
        })
    }

    /// Number of spins.
    #[must_use]
    pub fn n_spins(&self) -> usize {
        self.n_spins
    }

    /// The couplings `(i, j, J_ij)`.
    #[must_use]
    pub fn couplings(&self) -> &[(usize, usize, f64)] {
        &self.couplings
    }

    /// The local fields.
    #[must_use]
    pub fn fields(&self) -> &[f64] {
        &self.fields
    }

    /// Energy of a ±1 spin configuration.
    ///
    /// # Panics
    ///
    /// Panics when `spins.len() != n_spins`.
    #[must_use]
    pub fn energy_spins(&self, spins: &[i8]) -> f64 {
        assert_eq!(spins.len(), self.n_spins);
        let mut e = 0.0;
        for &(a, b, j) in &self.couplings {
            e -= j * f64::from(spins[a]) * f64::from(spins[b]);
        }
        for (i, &h) in self.fields.iter().enumerate() {
            e -= h * f64::from(spins[i]);
        }
        e
    }

    /// Energy of a boolean assignment (`true ↦ +1`).
    #[must_use]
    pub fn energy(&self, assignment: &Assignment) -> f64 {
        self.energy_spins(&assignment.to_spins())
    }

    /// Energy change from flipping spin `i` in `spins`.
    #[must_use]
    pub fn flip_delta(&self, spins: &[i8], i: usize) -> f64 {
        let mut delta = 2.0 * self.fields[i] * f64::from(spins[i]);
        for &ci in &self.adjacency[i] {
            let (a, b, j) = self.couplings[ci];
            let other = if a == i { b } else { a };
            delta += 2.0 * j * f64::from(spins[i]) * f64::from(spins[other]);
        }
        delta
    }
}

/// Geometric annealing schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealSchedule {
    /// Starting temperature.
    pub t_start: f64,
    /// Final temperature.
    pub t_end: f64,
    /// Monte-Carlo sweeps (each sweep attempts `n_spins` flips).
    pub sweeps: usize,
}

impl Default for AnnealSchedule {
    fn default() -> Self {
        AnnealSchedule {
            t_start: 3.0,
            t_end: 0.05,
            sweeps: 400,
        }
    }
}

/// Result of a simulated-annealing run.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealResult {
    /// The best configuration found.
    pub best: Assignment,
    /// Its energy.
    pub best_energy: f64,
    /// Spin flips accepted in total.
    pub accepted_flips: u64,
    /// Sweeps executed.
    pub sweeps: usize,
}

/// The classical baseline: single-spin-flip Metropolis annealing.
///
/// Flips are single spins by construction — the point of contrast with the
/// DMM, whose trajectories flip whole clusters between checkpoints (the
/// paper's DLRO discussion).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulatedAnnealing {
    schedule: AnnealSchedule,
}

impl SimulatedAnnealing {
    /// Creates an annealer.
    #[must_use]
    pub fn new(schedule: AnnealSchedule) -> Self {
        SimulatedAnnealing { schedule }
    }

    /// The schedule.
    #[must_use]
    pub fn schedule(&self) -> &AnnealSchedule {
        &self.schedule
    }

    /// Runs annealing from a random start.
    #[must_use]
    pub fn run(&self, model: &IsingModel, seed: u64) -> AnnealResult {
        let mut rng = rng_from_seed(seed);
        let n = model.n_spins();
        let mut spins = Assignment::random(n, &mut rng).to_spins();
        let mut energy = model.energy_spins(&spins);
        let mut best = spins.clone();
        let mut best_energy = energy;
        let mut accepted = 0u64;

        let sweeps = self.schedule.sweeps.max(1);
        for sweep in 0..sweeps {
            // Geometric interpolation of the temperature.
            let frac = sweep as f64 / sweeps as f64;
            let t =
                self.schedule.t_start * (self.schedule.t_end / self.schedule.t_start).powf(frac);
            for _ in 0..n {
                let i = rng.gen_range(0..n);
                let delta = model.flip_delta(&spins, i);
                if delta <= 0.0 || rng.gen::<f64>() < (-delta / t.max(1e-12)).exp() {
                    spins[i] = -spins[i];
                    energy += delta;
                    accepted += 1;
                    if energy < best_energy {
                        best_energy = energy;
                        best = spins.clone();
                    }
                }
            }
        }
        AnnealResult {
            best: Assignment::from_bools(&best.iter().map(|&s| s > 0).collect::<Vec<_>>()),
            best_energy,
            accepted_flips: accepted,
            sweeps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ferro_chain(n: usize) -> IsingModel {
        let couplings = (1..n).map(|i| (i - 1, i, 1.0)).collect();
        IsingModel::new(n, couplings, vec![0.0; n]).unwrap()
    }

    #[test]
    fn energy_of_aligned_chain() {
        let m = ferro_chain(4);
        assert_eq!(m.energy_spins(&[1, 1, 1, 1]), -3.0);
        assert_eq!(m.energy_spins(&[-1, -1, -1, -1]), -3.0);
        assert_eq!(m.energy_spins(&[1, -1, 1, -1]), 3.0);
    }

    #[test]
    fn fields_break_symmetry() {
        let m = IsingModel::new(1, vec![], vec![2.0]).unwrap();
        assert_eq!(m.energy_spins(&[1]), -2.0);
        assert_eq!(m.energy_spins(&[-1]), 2.0);
    }

    #[test]
    fn flip_delta_consistent_with_energy() {
        let m = ferro_chain(5);
        let mut rng = rng_from_seed(1);
        for _ in 0..50 {
            let a = Assignment::random(5, &mut rng);
            let mut spins = a.to_spins();
            let i = rng.gen_range(0..5);
            let before = m.energy_spins(&spins);
            let delta = m.flip_delta(&spins, i);
            spins[i] = -spins[i];
            let after = m.energy_spins(&spins);
            assert!((after - before - delta).abs() < 1e-9);
        }
    }

    #[test]
    fn validation() {
        assert!(IsingModel::new(0, vec![], vec![]).is_err());
        assert!(IsingModel::new(2, vec![(0, 2, 1.0)], vec![0.0, 0.0]).is_err());
        assert!(IsingModel::new(2, vec![(1, 1, 1.0)], vec![0.0, 0.0]).is_err());
        assert!(IsingModel::new(2, vec![], vec![0.0]).is_err());
    }

    #[test]
    fn annealing_finds_ferro_ground_state() {
        let m = ferro_chain(10);
        let sa = SimulatedAnnealing::new(AnnealSchedule::default());
        let result = sa.run(&m, 2);
        assert!((result.best_energy - (-9.0)).abs() < 1e-12, "{result:?}");
    }

    #[test]
    fn annealing_deterministic_per_seed() {
        let m = ferro_chain(6);
        let sa = SimulatedAnnealing::new(AnnealSchedule::default());
        assert_eq!(sa.run(&m, 5).best_energy, sa.run(&m, 5).best_energy);
    }

    #[test]
    fn annealing_handles_frustration() {
        // Antiferromagnetic triangle: ground energy is −1 (one bond must be
        // violated).
        let m = IsingModel::new(
            3,
            vec![(0, 1, -1.0), (1, 2, -1.0), (0, 2, -1.0)],
            vec![0.0; 3],
        )
        .unwrap();
        let sa = SimulatedAnnealing::new(AnnealSchedule::default());
        let result = sa.run(&m, 3);
        assert!((result.best_energy - (-1.0)).abs() < 1e-12, "{result:?}");
    }
}
