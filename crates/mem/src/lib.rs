//! Digital memcomputing (paper §IV).
//!
//! Digital memcomputing machines (DMMs) replace the gates of a Boolean
//! circuit with *self-organizing logic gates* (SOLGs) whose continuous,
//! point-dissipative dynamics (paper Eqs. 1–2) flow to an equilibrium that
//! encodes the solution of the original problem — "computing in and with
//! memory". This crate implements the full §IV programme:
//!
//! * [`cnf`] / [`assignment`] / [`dimacs`] — Boolean-formula
//!   infrastructure (the "problem written in Boolean form").
//! * [`generators`] — random/planted k-SAT and frustrated-loop spin-glass
//!   instance generators.
//! * [`solg`] + [`dmm`] — the SOLG clause dynamics and the DMM solver:
//!   voltage variables `v ∈ [−1,1]`, short/long memory variables (the
//!   paper's `x`), clamped forward-Euler integration, and solution readout
//!   by thresholding.
//! * [`walksat`] / [`dpll`] — the "traditional algorithmic approaches"
//!   baselines (stochastic local search and a complete DPLL).
//! * [`maxsat`] — weighted MaxSAT via weighted SOLG dynamics + a GSAT-style
//!   baseline (the paper's ref. \[54\] comparison shape).
//! * [`ising`] — spin-glass energy, simulated annealing, and the DMM
//!   cluster-flip analysis behind the paper's dynamical-long-range-order
//!   claim (ref. \[56\]).
//! * [`qubo`] — QUBO ↔ Ising ↔ weighted-MaxSAT reductions.
//! * [`rbm`] + [`datasets`] — restricted Boltzmann machines with CD-k and
//!   *mode-assisted* (DMM mode-search) pre-training (refs. \[55, 57\]).
//! * [`analysis`] — trajectory diagnostics: boundedness, periodic-orbit
//!   recurrence checks (refs. \[52, 53\]), and cluster-flip statistics.
//!
//! # Example
//!
//! ```
//! use mem::generators::planted_3sat;
//! use mem::dmm::{DmmSolver, DmmParams};
//!
//! let instance = planted_3sat(20, 4.0, 42)?;
//! let solver = DmmSolver::new(DmmParams::default());
//! let outcome = solver.solve(&instance.formula, 7)?;
//! let solution = outcome.solution.expect("planted instance is satisfiable");
//! assert!(instance.formula.is_satisfied(&solution));
//! # Ok::<(), mem::MemError>(())
//! ```

// Deliberate style choices for numerical simulation code: `!(x > 0.0)`
// rejects NaN alongside non-positive values, and indexed loops mirror the
// mathematics they implement (state-vector strides, lattice walks).
#![allow(
    clippy::neg_cmp_op_on_partial_ord,
    clippy::needless_range_loop,
    clippy::manual_is_multiple_of,
    clippy::field_reassign_with_default
)]
pub mod analysis;
pub mod assignment;
pub mod cnf;
pub mod dimacs;
pub mod dmm;
pub mod dpll;
pub mod encode;
pub mod generators;
pub mod ising;
pub mod maxsat;
pub mod qubo;
pub mod rbm;
pub mod solg;
pub mod walksat;

/// Workspace-wide datasets for the RBM experiments.
pub mod datasets;

/// Crate-wide error type.
#[derive(Debug, Clone, PartialEq)]
pub enum MemError {
    /// A formula/assignment construction was invalid.
    Formula {
        /// Human-readable reason.
        reason: String,
    },
    /// DIMACS parsing failed.
    Dimacs {
        /// Line number (1-based, 0 when unknown).
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// A solver or generator parameter was invalid.
    Parameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A numerical routine failed.
    Numerics(numerics::NumericsError),
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::Formula { reason } => write!(f, "formula error: {reason}"),
            MemError::Dimacs { line, reason } => {
                write!(f, "dimacs error at line {line}: {reason}")
            }
            MemError::Parameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            MemError::Numerics(e) => write!(f, "numerics error: {e}"),
        }
    }
}

impl std::error::Error for MemError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MemError::Numerics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<numerics::NumericsError> for MemError {
    fn from(e: numerics::NumericsError) -> Self {
        MemError::Numerics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let errors = [
            MemError::Formula {
                reason: "empty clause".into(),
            },
            MemError::Dimacs {
                line: 3,
                reason: "bad literal".into(),
            },
            MemError::Parameter {
                name: "alpha",
                reason: "must be positive",
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MemError>();
    }
}
