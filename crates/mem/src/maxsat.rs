//! Weighted MaxSAT via weighted SOLG dynamics.
//!
//! The paper's ref. \[54\] shows DMM simulations "outperform specialized
//! software specifically designed to tackle maximum satisfiability
//! problems". Weighted MaxSAT also carries the QUBO/Ising reductions used
//! by the RBM mode-search ([`crate::qubo`], [`crate::rbm`]).
//!
//! The DMM side generalizes the SAT dynamics by scaling every clause's
//! drive with its weight; since a MaxSAT optimum may leave clauses violated
//! there is no terminating "satisfied" state — the solver runs a step
//! budget and reports the best (lowest weighted-violation) assignment its
//! trajectory visited. The classical baseline is a weighted GSAT with
//! random restarts.
//!
//! # Example
//!
//! ```
//! use mem::cnf::{Clause, Literal};
//! use mem::maxsat::{WeightedFormula, MaxSatDmm, MaxSatDmmParams};
//!
//! // Conflicting unit clauses with different weights: keep the heavy one.
//! let wf = WeightedFormula::new(1, vec![
//!     (Clause::new(vec![Literal::positive(0)])?, 5.0),
//!     (Clause::new(vec![Literal::negative(0)])?, 1.0),
//! ])?;
//! let out = MaxSatDmm::new(MaxSatDmmParams::default()).solve(&wf, 1)?;
//! assert!(out.best.value(0), "heavy clause should win");
//! assert!((out.best_cost - 1.0).abs() < 1e-12);
//! # Ok::<(), mem::MemError>(())
//! ```

use crate::assignment::Assignment;
use crate::cnf::{Clause, Formula};
use crate::dmm::DmmParams;
use crate::solg::ClauseDynamics;
use crate::MemError;
use numerics::rng::rng_from_seed;
use numerics::rng::Rng;

/// A CNF formula with positive clause weights.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedFormula {
    formula: Formula,
    weights: Vec<f64>,
}

impl WeightedFormula {
    /// Creates a weighted formula.
    ///
    /// # Errors
    ///
    /// * Propagates [`Formula::new`] validation.
    /// * [`MemError::Parameter`] for non-positive or non-finite weights.
    pub fn new(n_vars: usize, clauses: Vec<(Clause, f64)>) -> Result<Self, MemError> {
        for (_, w) in &clauses {
            if !(w.is_finite() && *w > 0.0) {
                return Err(MemError::Parameter {
                    name: "weight",
                    reason: "clause weights must be positive and finite",
                });
            }
        }
        let (cs, weights): (Vec<Clause>, Vec<f64>) = clauses.into_iter().unzip();
        Ok(WeightedFormula {
            formula: Formula::new(n_vars, cs)?,
            weights,
        })
    }

    /// Wraps an unweighted formula with unit weights.
    #[must_use]
    pub fn uniform(formula: Formula) -> Self {
        let weights = vec![1.0; formula.len()];
        WeightedFormula { formula, weights }
    }

    /// The underlying formula.
    #[must_use]
    pub fn formula(&self) -> &Formula {
        &self.formula
    }

    /// The clause weights.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Total weight of clauses violated by an assignment (the MaxSAT cost).
    #[must_use]
    pub fn violation_cost(&self, assignment: &Assignment) -> f64 {
        self.formula
            .clauses()
            .iter()
            .zip(&self.weights)
            .filter(|(c, _)| !c.is_satisfied(assignment))
            .map(|(_, w)| w)
            .sum()
    }
}

/// Parameters of the weighted-MaxSAT DMM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaxSatDmmParams {
    /// Underlying SOLG dynamics parameters.
    pub dynamics: DmmParams,
}

impl Default for MaxSatDmmParams {
    fn default() -> Self {
        let mut dynamics = DmmParams::default();
        dynamics.max_steps = 30_000;
        MaxSatDmmParams { dynamics }
    }
}

/// Result of a MaxSAT optimization run.
#[derive(Debug, Clone, PartialEq)]
pub struct MaxSatOutcome {
    /// The best assignment visited.
    pub best: Assignment,
    /// Its weighted violation cost.
    pub best_cost: f64,
    /// Steps integrated (DMM) or flips performed (baseline).
    pub work: u64,
}

/// The weighted-MaxSAT DMM solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaxSatDmm {
    params: MaxSatDmmParams,
}

impl MaxSatDmm {
    /// Creates a solver.
    #[must_use]
    pub fn new(params: MaxSatDmmParams) -> Self {
        MaxSatDmm { params }
    }

    /// Integrates the weighted SOLG dynamics for the step budget, tracking
    /// the best thresholded assignment visited.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Parameter`] for invalid dynamics parameters.
    pub fn solve(&self, wf: &WeightedFormula, seed: u64) -> Result<MaxSatOutcome, MemError> {
        let p = &self.params.dynamics;
        p.validate()?;
        let formula = wf.formula();
        let n = formula.n_vars();
        let m = formula.len();
        // Normalize weights so the dynamics' rates keep their usual scale.
        let w_max = wf
            .weights()
            .iter()
            .cloned()
            .fold(f64::MIN, f64::max)
            .max(1e-12);
        let weights: Vec<f64> = wf.weights().iter().map(|w| w / w_max).collect();
        let clauses: Vec<ClauseDynamics> =
            formula.clauses().iter().map(ClauseDynamics::new).collect();
        let xl_max = 1e4 * (m.max(1) as f64);

        let mut rng = rng_from_seed(seed);
        let mut v: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut x_s = vec![0.5f64; m];
        let mut x_l = vec![1.0f64; m];
        let mut dv = vec![0.0f64; n];

        let mut best = Assignment::from_voltages(&v);
        let mut best_cost = wf.violation_cost(&best);

        let mut steps = 0u64;
        while steps < p.max_steps && best_cost > 0.0 {
            for d in dv.iter_mut() {
                *d = 0.0;
            }
            for (mi, clause) in clauses.iter().enumerate() {
                let c = clause.unsatisfaction(&v);
                clause.accumulate_dv(&v, x_s[mi], x_l[mi], p.zeta, weights[mi], &mut dv);
                // Weighted memory dynamics: heavier clauses escalate faster.
                let dx_s = p.beta * x_s[mi] * (weights[mi] * c - p.gamma * weights[mi]);
                let dx_l = p.alpha * weights[mi] * (c - p.delta);
                x_s[mi] = (x_s[mi] + p.dt * dx_s).clamp(p.epsilon, 1.0 - p.epsilon);
                x_l[mi] = (x_l[mi] + p.dt * dx_l).clamp(1.0, xl_max);
            }
            for (vi, d) in v.iter_mut().zip(&dv) {
                *vi = (*vi + p.dt * d).clamp(-1.0, 1.0);
            }
            steps += 1;
            if steps % p.check_every == 0 {
                let a = Assignment::from_voltages(&v);
                let cost = wf.violation_cost(&a);
                if cost < best_cost {
                    best_cost = cost;
                    best = a;
                }
            }
        }
        Ok(MaxSatOutcome {
            best,
            best_cost,
            work: steps,
        })
    }
}

/// Weighted GSAT baseline: greedy weighted-cost descent with sideways moves
/// and restarts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedGsat {
    /// Maximum flips per restart.
    pub max_flips: u64,
    /// Restart count.
    pub max_tries: u32,
}

impl Default for WeightedGsat {
    fn default() -> Self {
        WeightedGsat {
            max_flips: 5_000,
            max_tries: 8,
        }
    }
}

impl WeightedGsat {
    /// Optimizes a weighted formula.
    #[must_use]
    pub fn solve(&self, wf: &WeightedFormula, seed: u64) -> MaxSatOutcome {
        let mut rng = rng_from_seed(seed);
        let n = wf.formula().n_vars();
        let mut best: Option<(Assignment, f64)> = None;
        let mut work = 0u64;
        for _ in 0..self.max_tries.max(1) {
            let mut a = Assignment::random(n, &mut rng);
            let mut cost = wf.violation_cost(&a);
            for _ in 0..self.max_flips {
                if cost == 0.0 {
                    break;
                }
                let mut best_var = None;
                let mut best_delta = f64::INFINITY;
                for v in 0..n {
                    a.flip(v);
                    let delta = wf.violation_cost(&a) - cost;
                    a.flip(v);
                    if delta < best_delta {
                        best_delta = delta;
                        best_var = Some(v);
                    }
                }
                let Some(v) = best_var else { break };
                if best_delta > 0.0 {
                    break; // strict local minimum → restart
                }
                a.flip(v);
                cost += best_delta;
                work += 1;
            }
            if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                best = Some((a, cost));
            }
            if matches!(best, Some((_, c)) if c == 0.0) {
                break;
            }
        }
        let (assignment, best_cost) = best.expect("at least one try ran");
        MaxSatOutcome {
            best: assignment,
            best_cost,
            work,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Literal;
    use crate::generators::planted_3sat;

    fn conflicting_units() -> WeightedFormula {
        WeightedFormula::new(
            2,
            vec![
                (Clause::new(vec![Literal::positive(0)]).unwrap(), 4.0),
                (Clause::new(vec![Literal::negative(0)]).unwrap(), 1.0),
                (Clause::new(vec![Literal::positive(1)]).unwrap(), 2.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn violation_cost_weighted() {
        let wf = conflicting_units();
        let good = Assignment::from_bools(&[true, true]);
        assert_eq!(wf.violation_cost(&good), 1.0);
        let bad = Assignment::from_bools(&[false, false]);
        assert_eq!(wf.violation_cost(&bad), 6.0);
    }

    #[test]
    fn dmm_prefers_heavy_clauses() {
        let wf = conflicting_units();
        let out = MaxSatDmm::new(MaxSatDmmParams::default())
            .solve(&wf, 2)
            .unwrap();
        assert!(out.best.value(0));
        assert!(out.best.value(1));
        assert!((out.best_cost - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gsat_baseline_matches_on_small_instances() {
        let wf = conflicting_units();
        let out = WeightedGsat::default().solve(&wf, 3);
        assert!((out.best_cost - 1.0).abs() < 1e-12);
    }

    #[test]
    fn satisfiable_instance_reaches_zero_cost() {
        let inst = planted_3sat(15, 3.5, 4).unwrap();
        let wf = WeightedFormula::uniform(inst.formula.clone());
        let out = MaxSatDmm::new(MaxSatDmmParams::default())
            .solve(&wf, 5)
            .unwrap();
        assert_eq!(out.best_cost, 0.0, "steps {}", out.work);
        assert!(inst.formula.is_satisfied(&out.best));
    }

    #[test]
    fn weights_must_be_positive() {
        assert!(WeightedFormula::new(
            1,
            vec![(Clause::new(vec![Literal::positive(0)]).unwrap(), 0.0)],
        )
        .is_err());
        assert!(WeightedFormula::new(
            1,
            vec![(Clause::new(vec![Literal::positive(0)]).unwrap(), f64::NAN)],
        )
        .is_err());
    }

    #[test]
    fn uniform_wrapper_unit_weights() {
        let inst = planted_3sat(10, 3.0, 1).unwrap();
        let wf = WeightedFormula::uniform(inst.formula.clone());
        assert!(wf.weights().iter().all(|&w| w == 1.0));
        assert_eq!(wf.weights().len(), inst.formula.len());
    }

    #[test]
    fn deterministic_per_seed() {
        let wf = conflicting_units();
        let solver = MaxSatDmm::new(MaxSatDmmParams::default());
        assert_eq!(solver.solve(&wf, 9).unwrap(), solver.solve(&wf, 9).unwrap());
    }
}
