//! Quadratic unconstrained binary optimization (QUBO) and its reductions.
//!
//! The bridge between the RBM mode-search ([`crate::rbm`]) and the DMM:
//! minimizing an RBM's joint energy over binary units is a QUBO, a QUBO is
//! an Ising problem, and both reduce *exactly* to weighted MaxSAT (solved
//! by [`crate::maxsat::MaxSatDmm`]). The reduction used for a negative
//! quadratic coefficient is the standard rewrite
//! `−w·x_i·x_j = −w·x_i + w·x_i·(1−x_j)`, which yields the soft clauses
//! `(x_i)` and `(¬x_i ∨ x_j)` of weight `w` plus a constant.
//!
//! # Example
//!
//! ```
//! use mem::qubo::Qubo;
//!
//! // minimize x0 + x1 − 3·x0·x1  → optimum (1,1) with value −1.
//! let mut q = Qubo::new(2)?;
//! q.add_linear(0, 1.0)?;
//! q.add_linear(1, 1.0)?;
//! q.add_quadratic(0, 1, -3.0)?;
//! let (best, value) = q.minimize_exhaustive()?;
//! assert_eq!(best, vec![true, true]);
//! assert_eq!(value, -1.0);
//! # Ok::<(), mem::MemError>(())
//! ```

use crate::assignment::Assignment;
use crate::cnf::{Clause, Literal};
use crate::maxsat::{MaxSatDmm, MaxSatDmmParams, WeightedFormula};
use crate::MemError;

/// A QUBO instance: minimize `Σ_i c_i x_i + Σ_{i<j} q_ij x_i x_j` over
/// `x ∈ {0,1}^n`.
#[derive(Debug, Clone, PartialEq)]
pub struct Qubo {
    n: usize,
    linear: Vec<f64>,
    quadratic: Vec<(usize, usize, f64)>,
}

impl Qubo {
    /// Creates an empty QUBO over `n` variables.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Parameter`] for `n == 0`.
    pub fn new(n: usize) -> Result<Self, MemError> {
        if n == 0 {
            return Err(MemError::Parameter {
                name: "n",
                reason: "QUBO needs at least one variable",
            });
        }
        Ok(Qubo {
            n,
            linear: vec![0.0; n],
            quadratic: Vec::new(),
        })
    }

    /// Number of variables.
    #[must_use]
    pub fn n_vars(&self) -> usize {
        self.n
    }

    /// Adds to a linear coefficient.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Parameter`] for an out-of-range index or
    /// non-finite coefficient.
    pub fn add_linear(&mut self, i: usize, c: f64) -> Result<(), MemError> {
        if i >= self.n {
            return Err(MemError::Parameter {
                name: "i",
                reason: "variable index out of range",
            });
        }
        if !c.is_finite() {
            return Err(MemError::Parameter {
                name: "c",
                reason: "coefficient must be finite",
            });
        }
        self.linear[i] += c;
        Ok(())
    }

    /// Adds to a quadratic coefficient (`i != j`; stored with `i < j`).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Parameter`] for bad indices or a non-finite
    /// coefficient.
    pub fn add_quadratic(&mut self, i: usize, j: usize, q: f64) -> Result<(), MemError> {
        if i >= self.n || j >= self.n || i == j {
            return Err(MemError::Parameter {
                name: "i/j",
                reason: "need two distinct in-range variables",
            });
        }
        if !q.is_finite() {
            return Err(MemError::Parameter {
                name: "q",
                reason: "coefficient must be finite",
            });
        }
        let key = (i.min(j), i.max(j));
        if let Some(entry) = self.quadratic.iter_mut().find(|(a, b, _)| (*a, *b) == key) {
            entry.2 += q;
        } else {
            self.quadratic.push((key.0, key.1, q));
        }
        Ok(())
    }

    /// The objective value of a binary configuration.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != n`.
    #[must_use]
    pub fn value(&self, x: &[bool]) -> f64 {
        assert_eq!(x.len(), self.n);
        let mut v = 0.0;
        for (i, &c) in self.linear.iter().enumerate() {
            if x[i] {
                v += c;
            }
        }
        for &(i, j, q) in &self.quadratic {
            if x[i] && x[j] {
                v += q;
            }
        }
        v
    }

    /// Exhaustive minimization (only for `n ≤ 24`).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Parameter`] when `n > 24`.
    pub fn minimize_exhaustive(&self) -> Result<(Vec<bool>, f64), MemError> {
        if self.n > 24 {
            return Err(MemError::Parameter {
                name: "n",
                reason: "exhaustive minimization limited to 24 variables",
            });
        }
        let mut best = vec![false; self.n];
        let mut best_value = f64::INFINITY;
        for bits in 0..(1u32 << self.n) {
            let x: Vec<bool> = (0..self.n).map(|i| bits >> i & 1 == 1).collect();
            let v = self.value(&x);
            if v < best_value {
                best_value = v;
                best = x;
            }
        }
        Ok((best, best_value))
    }

    /// Greedy 1-flip descent from a given start.
    #[must_use]
    pub fn minimize_greedy(&self, start: &[bool]) -> (Vec<bool>, f64) {
        let mut x = start.to_vec();
        let mut value = self.value(&x);
        loop {
            let mut improved = false;
            for i in 0..self.n {
                x[i] = !x[i];
                let v = self.value(&x);
                if v < value - 1e-15 {
                    value = v;
                    improved = true;
                } else {
                    x[i] = !x[i];
                }
            }
            if !improved {
                return (x, value);
            }
        }
    }

    /// The exact weighted-MaxSAT encoding: returns the formula plus the
    /// constant offset such that
    /// `value(x) = violation_cost(x) + offset` for every `x`.
    ///
    /// # Errors
    ///
    /// Propagates formula-construction errors.
    pub fn to_weighted_maxsat(&self) -> Result<(WeightedFormula, f64), MemError> {
        let mut clauses: Vec<(Clause, f64)> = Vec::new();
        let mut offset = 0.0;
        let add = |clause: Clause, w: f64, clauses: &mut Vec<(Clause, f64)>| {
            if w > 1e-15 {
                clauses.push((clause, w));
            }
        };
        for (i, &c) in self.linear.iter().enumerate() {
            if c > 0.0 {
                // Pay c when x_i = 1 → soft clause (¬x_i) of weight c.
                add(Clause::new(vec![Literal::negative(i)])?, c, &mut clauses);
            } else if c < 0.0 {
                // Gain |c| when x_i = 1 → pay |c| when x_i = 0, offset −|c|.
                add(Clause::new(vec![Literal::positive(i)])?, -c, &mut clauses);
                offset += c;
            }
        }
        for &(i, j, q) in &self.quadratic {
            if q > 0.0 {
                // Pay q when both set → (¬x_i ∨ ¬x_j) weight q.
                add(
                    Clause::new(vec![Literal::negative(i), Literal::negative(j)])?,
                    q,
                    &mut clauses,
                );
            } else if q < 0.0 {
                // −w·x_i·x_j = −w·x_i + w·x_i·(1−x_j), w = |q|:
                //   (x_i) weight w, (¬x_i ∨ x_j) weight w, offset −w.
                let w = -q;
                add(Clause::new(vec![Literal::positive(i)])?, w, &mut clauses);
                add(
                    Clause::new(vec![Literal::negative(i), Literal::positive(j)])?,
                    w,
                    &mut clauses,
                );
                offset -= w;
            }
        }
        Ok((WeightedFormula::new(self.n, clauses)?, offset))
    }

    /// Minimizes via the DMM weighted-MaxSAT solver, polished by a final
    /// greedy descent (the digital output stage).
    ///
    /// # Errors
    ///
    /// Propagates reduction and solver errors.
    pub fn minimize_dmm(
        &self,
        params: MaxSatDmmParams,
        seed: u64,
    ) -> Result<(Vec<bool>, f64), MemError> {
        let (wf, _offset) = self.to_weighted_maxsat()?;
        if wf.formula().is_empty() {
            // Objective is constant: all-false is optimal.
            return Ok((vec![false; self.n], self.value(&vec![false; self.n])));
        }
        let out = MaxSatDmm::new(params).solve(&wf, seed)?;
        let bits = out.best.to_bools();
        Ok(self.minimize_greedy(&bits))
    }

    /// Converts to an Ising model (`x_i = (1 + s_i)/2`), returning the model
    /// and the constant offset so that
    /// `value(x) = ising_energy(s) + offset`.
    ///
    /// # Errors
    ///
    /// Propagates Ising-model construction errors.
    pub fn to_ising(&self) -> Result<(crate::ising::IsingModel, f64), MemError> {
        // value = Σ c_i (1+s_i)/2 + Σ q_ij (1+s_i)(1+s_j)/4
        //       = const + Σ_i [c_i/2 + Σ_j q_ij/4]·s_i + Σ q_ij/4 · s_i s_j
        // Ising convention E = −Σ J s s − Σ h s ⇒ J_ij = −q_ij/4,
        // h_i = −c_i/2 − Σ_j q_ij/4.
        let mut h = vec![0.0; self.n];
        let mut offset = 0.0;
        for (i, &c) in self.linear.iter().enumerate() {
            h[i] -= c / 2.0;
            offset += c / 2.0;
        }
        let mut couplings = Vec::with_capacity(self.quadratic.len());
        for &(i, j, q) in &self.quadratic {
            couplings.push((i, j, -q / 4.0));
            h[i] -= q / 4.0;
            h[j] -= q / 4.0;
            offset += q / 4.0;
        }
        Ok((crate::ising::IsingModel::new(self.n, couplings, h)?, offset))
    }
}

/// Converts a boolean vector into an [`Assignment`] (convenience for the
/// MaxSAT interop).
#[must_use]
pub fn bits_to_assignment(bits: &[bool]) -> Assignment {
    Assignment::from_bools(bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use numerics::rng::rng_from_seed;
    use numerics::rng::Rng;

    fn random_qubo(n: usize, seed: u64) -> Qubo {
        let mut rng = rng_from_seed(seed);
        let mut q = Qubo::new(n).unwrap();
        for i in 0..n {
            q.add_linear(i, rng.gen_range(-1.0..1.0)).unwrap();
        }
        for i in 0..n {
            for j in i + 1..n {
                if rng.gen::<f64>() < 0.5 {
                    q.add_quadratic(i, j, rng.gen_range(-1.0..1.0)).unwrap();
                }
            }
        }
        q
    }

    #[test]
    fn value_evaluation() {
        let mut q = Qubo::new(3).unwrap();
        q.add_linear(0, 2.0).unwrap();
        q.add_quadratic(0, 1, -1.5).unwrap();
        assert_eq!(q.value(&[false, false, false]), 0.0);
        assert_eq!(q.value(&[true, false, false]), 2.0);
        assert_eq!(q.value(&[true, true, false]), 0.5);
    }

    #[test]
    fn quadratic_accumulates() {
        let mut q = Qubo::new(2).unwrap();
        q.add_quadratic(0, 1, 1.0).unwrap();
        q.add_quadratic(1, 0, 1.0).unwrap();
        assert_eq!(q.value(&[true, true]), 2.0);
    }

    #[test]
    fn validation() {
        let mut q = Qubo::new(2).unwrap();
        assert!(Qubo::new(0).is_err());
        assert!(q.add_linear(5, 1.0).is_err());
        assert!(q.add_quadratic(0, 0, 1.0).is_err());
        assert!(q.add_linear(0, f64::INFINITY).is_err());
    }

    #[test]
    fn maxsat_reduction_exact_on_all_configs() {
        for seed in 0..5 {
            let q = random_qubo(6, seed);
            let (wf, offset) = q.to_weighted_maxsat().unwrap();
            for bits in 0..(1u32 << 6) {
                let x: Vec<bool> = (0..6).map(|i| bits >> i & 1 == 1).collect();
                let direct = q.value(&x);
                let via = wf.violation_cost(&bits_to_assignment(&x)) + offset;
                assert!(
                    (direct - via).abs() < 1e-9,
                    "seed {seed} bits {bits:06b}: {direct} vs {via}"
                );
            }
        }
    }

    #[test]
    fn ising_reduction_exact_on_all_configs() {
        for seed in 0..5 {
            let q = random_qubo(5, 100 + seed);
            let (model, offset) = q.to_ising().unwrap();
            for bits in 0..(1u32 << 5) {
                let x: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
                let direct = q.value(&x);
                let via = model.energy(&bits_to_assignment(&x)) + offset;
                assert!(
                    (direct - via).abs() < 1e-9,
                    "seed {seed} bits {bits:05b}: {direct} vs {via}"
                );
            }
        }
    }

    #[test]
    fn exhaustive_matches_bruteforce_definition() {
        let q = random_qubo(8, 3);
        let (best, value) = q.minimize_exhaustive().unwrap();
        assert_eq!(q.value(&best), value);
        // No configuration beats it.
        for bits in 0..(1u32 << 8) {
            let x: Vec<bool> = (0..8).map(|i| bits >> i & 1 == 1).collect();
            assert!(q.value(&x) >= value - 1e-12);
        }
    }

    #[test]
    fn greedy_descent_never_worse_than_start() {
        let q = random_qubo(10, 4);
        let start = vec![false; 10];
        let (_, v) = q.minimize_greedy(&start);
        assert!(v <= q.value(&start) + 1e-12);
    }

    #[test]
    fn dmm_minimization_finds_optimum_on_small_qubos() {
        for seed in 0..3 {
            let q = random_qubo(6, 200 + seed);
            let (_, exact) = q.minimize_exhaustive().unwrap();
            let (_, found) = q.minimize_dmm(MaxSatDmmParams::default(), seed).unwrap();
            assert!(
                found <= exact + 1e-9,
                "seed {seed}: dmm {found} vs exact {exact}"
            );
        }
    }

    #[test]
    fn exhaustive_limit_enforced() {
        let q = Qubo::new(30).unwrap();
        assert!(q.minimize_exhaustive().is_err());
    }
}
