//! Restricted Boltzmann machines with mode-assisted (memcomputing)
//! pre-training.
//!
//! The paper's §IV reports that simulating DMMs "can accelerate (in number
//! of iterations) the pre-training of RBMs as much as … the D-Wave machine
//! … \[and\] perform far better … in terms of training quality" (refs. \[55,
//! 57\]), with a ">1 % accuracy (≈ 20 % error-rate reduction)" edge over
//! supervised baselines. The mechanism (Manukian, Traversa & Di Ventra,
//! *Neural Networks* 2019/2020): replace the Gibbs-chain negative sample of
//! contrastive divergence, with some probability, by the **mode** of the
//! RBM's joint distribution — a QUBO minimization handled by the
//! memcomputing machinery ([`crate::qubo`] → weighted MaxSAT → DMM).
//!
//! This module provides binary RBMs, CD-k training, mode-assisted training
//! with pluggable mode search, exact log-likelihood for small models, and a
//! free-energy classifier for the labeled bars-and-stripes task.
//!
//! # Example
//!
//! ```
//! use mem::rbm::{Rbm, TrainConfig, Trainer};
//! use mem::datasets::bars_and_stripes;
//!
//! let data: Vec<Vec<bool>> = bars_and_stripes(2).into_iter().map(|p| p.pixels).collect();
//! let mut rbm = Rbm::new(4, 4, 0.01, 7)?;
//! let config = TrainConfig { epochs: 50, ..TrainConfig::default() };
//! Trainer::cd(1).train(&mut rbm, &data, &config, 1)?;
//! let ll = rbm.exact_log_likelihood(&data)?;
//! assert!(ll.is_finite());
//! # Ok::<(), mem::MemError>(())
//! ```

use crate::maxsat::MaxSatDmmParams;
use crate::qubo::Qubo;
use crate::MemError;
use numerics::rng::Rng;
use numerics::rng::StdRng;
use numerics::rng::{rng_from_seed, sample_gaussian};

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// A binary–binary restricted Boltzmann machine.
///
/// Energy: `E(v, h) = −Σ_{ij} W_ij v_i h_j − Σ_i a_i v_i − Σ_j b_j h_j`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rbm {
    n_visible: usize,
    n_hidden: usize,
    /// Row-major `n_visible × n_hidden` weights.
    weights: Vec<f64>,
    visible_bias: Vec<f64>,
    hidden_bias: Vec<f64>,
}

impl Rbm {
    /// Creates an RBM with Gaussian-initialized weights (σ = `init_sigma`)
    /// and zero biases.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Parameter`] for zero-sized layers.
    pub fn new(
        n_visible: usize,
        n_hidden: usize,
        init_sigma: f64,
        seed: u64,
    ) -> Result<Self, MemError> {
        if n_visible == 0 || n_hidden == 0 {
            return Err(MemError::Parameter {
                name: "n_visible/n_hidden",
                reason: "layer sizes must be positive",
            });
        }
        let mut rng = rng_from_seed(seed);
        let weights = (0..n_visible * n_hidden)
            .map(|_| sample_gaussian(&mut rng, 0.0, init_sigma))
            .collect();
        Ok(Rbm {
            n_visible,
            n_hidden,
            weights,
            visible_bias: vec![0.0; n_visible],
            hidden_bias: vec![0.0; n_hidden],
        })
    }

    /// Visible-layer width.
    #[must_use]
    pub fn n_visible(&self) -> usize {
        self.n_visible
    }

    /// Hidden-layer width.
    #[must_use]
    pub fn n_hidden(&self) -> usize {
        self.n_hidden
    }

    fn w(&self, i: usize, j: usize) -> f64 {
        self.weights[i * self.n_hidden + j]
    }

    /// Joint energy of a `(v, h)` configuration.
    ///
    /// # Panics
    ///
    /// Panics on mismatched layer widths.
    #[must_use]
    pub fn energy(&self, v: &[bool], h: &[bool]) -> f64 {
        assert_eq!(v.len(), self.n_visible);
        assert_eq!(h.len(), self.n_hidden);
        let mut e = 0.0;
        for i in 0..self.n_visible {
            if !v[i] {
                continue;
            }
            e -= self.visible_bias[i];
            for j in 0..self.n_hidden {
                if h[j] {
                    e -= self.w(i, j);
                }
            }
        }
        for j in 0..self.n_hidden {
            if h[j] {
                e -= self.hidden_bias[j];
            }
        }
        e
    }

    /// Hidden activation probabilities given a visible vector.
    #[must_use]
    pub fn hidden_probs(&self, v: &[bool]) -> Vec<f64> {
        (0..self.n_hidden)
            .map(|j| {
                let mut act = self.hidden_bias[j];
                for i in 0..self.n_visible {
                    if v[i] {
                        act += self.w(i, j);
                    }
                }
                sigmoid(act)
            })
            .collect()
    }

    /// Visible activation probabilities given a hidden vector.
    #[must_use]
    pub fn visible_probs(&self, h: &[bool]) -> Vec<f64> {
        (0..self.n_visible)
            .map(|i| {
                let mut act = self.visible_bias[i];
                for j in 0..self.n_hidden {
                    if h[j] {
                        act += self.w(i, j);
                    }
                }
                sigmoid(act)
            })
            .collect()
    }

    fn sample(probs: &[f64], rng: &mut StdRng) -> Vec<bool> {
        probs.iter().map(|&p| rng.gen::<f64>() < p).collect()
    }

    /// One Gibbs step `v → h → v'`, returning `(h, v')`.
    pub fn gibbs_step(&self, v: &[bool], rng: &mut StdRng) -> (Vec<bool>, Vec<bool>) {
        let h = Self::sample(&self.hidden_probs(v), rng);
        let v_next = Self::sample(&self.visible_probs(&h), rng);
        (h, v_next)
    }

    /// Free energy `F(v) = −Σ a_i v_i − Σ_j ln(1 + e^{b_j + Σ_i W_ij v_i})`.
    #[must_use]
    pub fn free_energy(&self, v: &[bool]) -> f64 {
        let mut f = 0.0;
        for i in 0..self.n_visible {
            if v[i] {
                f -= self.visible_bias[i];
            }
        }
        for j in 0..self.n_hidden {
            let mut act = self.hidden_bias[j];
            for i in 0..self.n_visible {
                if v[i] {
                    act += self.w(i, j);
                }
            }
            // ln(1 + e^act), stably.
            f -= if act > 30.0 {
                act
            } else {
                (1.0 + act.exp()).ln()
            };
        }
        f
    }

    /// Exact average log-likelihood of a dataset (enumerates the visible
    /// space; `n_visible ≤ 20`).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Parameter`] when the visible layer is too wide
    /// to enumerate.
    pub fn exact_log_likelihood(&self, data: &[Vec<bool>]) -> Result<f64, MemError> {
        if self.n_visible > 20 {
            return Err(MemError::Parameter {
                name: "n_visible",
                reason: "exact likelihood limited to 20 visible units",
            });
        }
        // log Z via log-sum-exp over all visible configurations.
        let mut free_energies = Vec::with_capacity(1 << self.n_visible);
        for bits in 0..(1u32 << self.n_visible) {
            let v: Vec<bool> = (0..self.n_visible).map(|i| bits >> i & 1 == 1).collect();
            free_energies.push(-self.free_energy(&v));
        }
        let max = free_energies
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let log_z = max
            + free_energies
                .iter()
                .map(|&x| (x - max).exp())
                .sum::<f64>()
                .ln();
        let mut total = 0.0;
        for v in data {
            total += -self.free_energy(v) - log_z;
        }
        Ok(total / data.len().max(1) as f64)
    }

    /// Mean per-pixel reconstruction error after one Gibbs round trip.
    #[must_use]
    pub fn reconstruction_error(&self, data: &[Vec<bool>], seed: u64) -> f64 {
        let mut rng = rng_from_seed(seed);
        let mut wrong = 0usize;
        let mut total = 0usize;
        for v in data {
            let (_, v2) = self.gibbs_step(v, &mut rng);
            wrong += v.iter().zip(&v2).filter(|(a, b)| a != b).count();
            total += v.len();
        }
        wrong as f64 / total.max(1) as f64
    }

    /// The joint energy as a QUBO over `[v…, h…]` (bipartite quadratic
    /// terms), so the distribution's **mode** is the QUBO minimizer.
    ///
    /// # Errors
    ///
    /// Propagates QUBO construction errors.
    pub fn joint_qubo(&self) -> Result<Qubo, MemError> {
        let n = self.n_visible + self.n_hidden;
        let mut q = Qubo::new(n)?;
        for i in 0..self.n_visible {
            q.add_linear(i, -self.visible_bias[i])?;
            for j in 0..self.n_hidden {
                q.add_quadratic(i, self.n_visible + j, -self.w(i, j))?;
            }
        }
        for j in 0..self.n_hidden {
            q.add_linear(self.n_visible + j, -self.hidden_bias[j])?;
        }
        Ok(q)
    }

    /// Classifies a pixel vector with the free-energy rule on a labeled RBM
    /// whose last two visible units are the one-hot `[bar, stripe]` labels.
    /// Returns `true` for "stripe".
    ///
    /// # Panics
    ///
    /// Panics when `pixels.len() + 2 != n_visible`.
    #[must_use]
    pub fn classify(&self, pixels: &[bool]) -> bool {
        assert_eq!(pixels.len() + 2, self.n_visible);
        let mut with_bar = pixels.to_vec();
        with_bar.push(true);
        with_bar.push(false);
        let mut with_stripe = pixels.to_vec();
        with_stripe.push(false);
        with_stripe.push(true);
        self.free_energy(&with_stripe) < self.free_energy(&with_bar)
    }
}

/// How the negative phase of a gradient step is produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NegativePhase {
    /// Contrastive divergence with `k` Gibbs steps.
    ContrastiveDivergence(usize),
    /// Mode-assisted: with probability `p_mode(t)`, use the joint mode
    /// found by the given search; otherwise fall back to CD-1. The
    /// substitution probability is annealed quadratically from 0 to
    /// `p_mode_max` over the epochs — CD learns the gross structure first,
    /// then mode updates carve away spurious deep modes (the schedule shape
    /// of Manukian et al.).
    ModeAssisted {
        /// Final (maximum) probability of substituting the mode sample.
        p_mode_max: f64,
        /// How the mode is searched.
        search: ModeSearch,
    },
}

/// Mode-search backend for mode-assisted training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModeSearch {
    /// Exhaustive joint enumeration (small RBMs only).
    Exhaustive,
    /// The memcomputing route: QUBO → weighted MaxSAT → DMM, polished by
    /// greedy descent.
    Dmm,
    /// Greedy 1-flip descent from the data configuration (cheap ablation).
    Greedy,
}

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Epochs (full passes over the data).
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Weight-decay coefficient.
    pub weight_decay: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 100,
            learning_rate: 0.1,
            weight_decay: 1e-4,
        }
    }
}

/// A trainer bundling the negative-phase strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trainer {
    negative: NegativePhase,
}

impl Trainer {
    /// A CD-k trainer.
    #[must_use]
    pub fn cd(k: usize) -> Self {
        Trainer {
            negative: NegativePhase::ContrastiveDivergence(k.max(1)),
        }
    }

    /// A mode-assisted trainer with the annealed substitution schedule.
    #[must_use]
    pub fn mode_assisted(p_mode_max: f64, search: ModeSearch) -> Self {
        Trainer {
            negative: NegativePhase::ModeAssisted {
                p_mode_max: p_mode_max.clamp(0.0, 1.0),
                search,
            },
        }
    }

    /// The negative-phase strategy.
    #[must_use]
    pub fn negative_phase(&self) -> &NegativePhase {
        &self.negative
    }

    fn mode_sample(
        &self,
        rbm: &Rbm,
        search: ModeSearch,
        seed: u64,
    ) -> Result<(Vec<bool>, Vec<bool>), MemError> {
        let q = rbm.joint_qubo()?;
        let joint = match search {
            ModeSearch::Exhaustive => q.minimize_exhaustive()?.0,
            ModeSearch::Dmm => {
                let mut params = MaxSatDmmParams::default();
                params.dynamics.max_steps = 4_000;
                q.minimize_dmm(params, seed)?.0
            }
            ModeSearch::Greedy => {
                // Multi-start greedy descent: best of 8 random restarts.
                let mut rng = rng_from_seed(seed);
                let mut best: Option<(Vec<bool>, f64)> = None;
                for _ in 0..8 {
                    let start: Vec<bool> = (0..q.n_vars()).map(|_| rng.gen()).collect();
                    let (x, value) = q.minimize_greedy(&start);
                    if best.as_ref().is_none_or(|(_, bv)| value < *bv) {
                        best = Some((x, value));
                    }
                }
                best.expect("at least one restart").0
            }
        };
        let v = joint[..rbm.n_visible].to_vec();
        let h = joint[rbm.n_visible..].to_vec();
        Ok((v, h))
    }

    /// Trains in place, returning the per-epoch exact log-likelihood when
    /// the visible layer is small enough (empty vector otherwise).
    ///
    /// # Errors
    ///
    /// * [`MemError::Parameter`] for an empty dataset or width mismatch.
    /// * Propagates mode-search errors.
    pub fn train(
        &self,
        rbm: &mut Rbm,
        data: &[Vec<bool>],
        config: &TrainConfig,
        seed: u64,
    ) -> Result<Vec<f64>, MemError> {
        if data.is_empty() {
            return Err(MemError::Parameter {
                name: "data",
                reason: "training set must be non-empty",
            });
        }
        if data.iter().any(|v| v.len() != rbm.n_visible) {
            return Err(MemError::Parameter {
                name: "data",
                reason: "pattern width must match the visible layer",
            });
        }
        let mut rng = rng_from_seed(seed);
        let track_ll = rbm.n_visible <= 16;
        let mut history = Vec::new();
        let lr = config.learning_rate / data.len() as f64;

        for epoch in 0..config.epochs {
            let mut dw = vec![0.0; rbm.n_visible * rbm.n_hidden];
            let mut da = vec![0.0; rbm.n_visible];
            let mut db = vec![0.0; rbm.n_hidden];
            for v0 in data {
                let h0_probs = rbm.hidden_probs(v0);
                // Negative sample.
                let (vk, hk_probs) = match self.negative {
                    NegativePhase::ContrastiveDivergence(k) => {
                        let mut v = v0.clone();
                        for _ in 0..k {
                            let (_, v_next) = rbm.gibbs_step(&v, &mut rng);
                            v = v_next;
                        }
                        let hk = rbm.hidden_probs(&v);
                        (v, hk)
                    }
                    NegativePhase::ModeAssisted { p_mode_max, search } => {
                        // Quadratic anneal: 0 at epoch 0 → p_mode_max at the
                        // final epoch.
                        let progress = (epoch + 1) as f64 / config.epochs.max(1) as f64;
                        let p_mode = p_mode_max * progress * progress;
                        if rng.gen::<f64>() < p_mode {
                            let mode_seed = rng.gen();
                            let (v, _h) = self.mode_sample(rbm, search, mode_seed)?;
                            // Smooth hidden statistics at the mode visible
                            // configuration keep the update consistent with
                            // the CD estimator's conditional expectations.
                            let hk = rbm.hidden_probs(&v);
                            (v, hk)
                        } else {
                            let (_, v) = rbm.gibbs_step(v0, &mut rng);
                            let hk = rbm.hidden_probs(&v);
                            (v, hk)
                        }
                    }
                };
                // Gradient accumulation: ⟨v h⟩_data − ⟨v h⟩_model.
                for i in 0..rbm.n_visible {
                    let v0i = f64::from(u8::from(v0[i]));
                    let vki = f64::from(u8::from(vk[i]));
                    da[i] += v0i - vki;
                    for j in 0..rbm.n_hidden {
                        dw[i * rbm.n_hidden + j] += v0i * h0_probs[j] - vki * hk_probs[j];
                    }
                }
                for j in 0..rbm.n_hidden {
                    let h0j = h0_probs[j];
                    db[j] += h0j - hk_probs[j];
                }
            }
            for (w, g) in rbm.weights.iter_mut().zip(&dw) {
                *w += lr * g - config.weight_decay * *w;
            }
            for (a, g) in rbm.visible_bias.iter_mut().zip(&da) {
                *a += lr * g;
            }
            for (b, g) in rbm.hidden_bias.iter_mut().zip(&db) {
                *b += lr * g;
            }
            if track_ll {
                history.push(rbm.exact_log_likelihood(data)?);
            }
        }
        Ok(history)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{bars_and_stripes, with_label_units};

    fn bas_pixels(n: usize) -> Vec<Vec<bool>> {
        bars_and_stripes(n).into_iter().map(|p| p.pixels).collect()
    }

    #[test]
    fn construction_validates() {
        assert!(Rbm::new(0, 2, 0.01, 1).is_err());
        assert!(Rbm::new(2, 0, 0.01, 1).is_err());
        let rbm = Rbm::new(3, 2, 0.01, 1).unwrap();
        assert_eq!(rbm.n_visible(), 3);
        assert_eq!(rbm.n_hidden(), 2);
    }

    #[test]
    fn free_energy_consistent_with_joint_energy() {
        // e^{−F(v)} = Σ_h e^{−E(v,h)}.
        let rbm = Rbm::new(3, 2, 0.5, 2).unwrap();
        let v = vec![true, false, true];
        let mut z_v = 0.0;
        for bits in 0..4u32 {
            let h: Vec<bool> = (0..2).map(|j| bits >> j & 1 == 1).collect();
            z_v += (-rbm.energy(&v, &h)).exp();
        }
        assert!((z_v.ln() - (-rbm.free_energy(&v))).abs() < 1e-10);
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let rbm = Rbm::new(4, 3, 1.0, 3).unwrap();
        let v = vec![true, true, false, false];
        for p in rbm.hidden_probs(&v) {
            assert!((0.0..=1.0).contains(&p));
        }
        let h = vec![true, false, true];
        for p in rbm.visible_probs(&h) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn joint_qubo_matches_energy() {
        let rbm = Rbm::new(3, 2, 0.7, 4).unwrap();
        let q = rbm.joint_qubo().unwrap();
        for vb in 0..8u32 {
            for hb in 0..4u32 {
                let v: Vec<bool> = (0..3).map(|i| vb >> i & 1 == 1).collect();
                let h: Vec<bool> = (0..2).map(|j| hb >> j & 1 == 1).collect();
                let joint: Vec<bool> = v.iter().chain(h.iter()).copied().collect();
                assert!(
                    (rbm.energy(&v, &h) - q.value(&joint)).abs() < 1e-10,
                    "v={vb:03b} h={hb:02b}"
                );
            }
        }
    }

    #[test]
    fn cd_training_improves_likelihood() {
        let data = bas_pixels(2);
        let mut rbm = Rbm::new(4, 6, 0.05, 5).unwrap();
        let before = rbm.exact_log_likelihood(&data).unwrap();
        let config = TrainConfig {
            epochs: 500,
            learning_rate: 0.5,
            weight_decay: 0.0,
        };
        Trainer::cd(1).train(&mut rbm, &data, &config, 1).unwrap();
        let after = rbm.exact_log_likelihood(&data).unwrap();
        assert!(after > before + 0.5, "LL {before} → {after}");
    }

    #[test]
    fn mode_assisted_training_improves_likelihood() {
        let data = bas_pixels(2);
        let mut rbm = Rbm::new(4, 6, 0.05, 5).unwrap();
        let before = rbm.exact_log_likelihood(&data).unwrap();
        let config = TrainConfig {
            epochs: 500,
            learning_rate: 0.5,
            weight_decay: 0.0,
        };
        // Small mode-substitution probability, as in the mode-assisted
        // training literature (large p_mode over-flattens early training).
        Trainer::mode_assisted(0.05, ModeSearch::Exhaustive)
            .train(&mut rbm, &data, &config, 1)
            .unwrap();
        let after = rbm.exact_log_likelihood(&data).unwrap();
        assert!(after > before + 0.5, "LL {before} → {after}");
    }

    #[test]
    fn training_history_tracks_epochs() {
        let data = bas_pixels(2);
        let mut rbm = Rbm::new(4, 3, 0.05, 6).unwrap();
        let config = TrainConfig {
            epochs: 10,
            ..TrainConfig::default()
        };
        let history = Trainer::cd(1).train(&mut rbm, &data, &config, 2).unwrap();
        assert_eq!(history.len(), 10);
    }

    #[test]
    fn train_rejects_bad_data() {
        let mut rbm = Rbm::new(4, 3, 0.05, 6).unwrap();
        let config = TrainConfig::default();
        assert!(Trainer::cd(1).train(&mut rbm, &[], &config, 1).is_err());
        assert!(Trainer::cd(1)
            .train(&mut rbm, &[vec![true; 3]], &config, 1)
            .is_err());
    }

    #[test]
    fn classifier_learns_labels() {
        let patterns = bars_and_stripes(2);
        let labeled = with_label_units(&patterns);
        let mut rbm = Rbm::new(6, 8, 0.05, 7).unwrap();
        let config = TrainConfig {
            epochs: 300,
            learning_rate: 0.3,
            weight_decay: 0.0,
        };
        Trainer::cd(1)
            .train(&mut rbm, &labeled, &config, 3)
            .unwrap();
        let correct = patterns
            .iter()
            .filter(|p| rbm.classify(&p.pixels) == p.is_stripe)
            .count();
        assert!(
            correct * 2 > patterns.len(),
            "classifier below chance: {correct}/{}",
            patterns.len()
        );
    }

    #[test]
    fn reconstruction_error_bounded() {
        let data = bas_pixels(2);
        let rbm = Rbm::new(4, 4, 0.05, 8).unwrap();
        let err = rbm.reconstruction_error(&data, 1);
        assert!((0.0..=1.0).contains(&err));
    }

    #[test]
    fn deterministic_training_per_seed() {
        let data = bas_pixels(2);
        let config = TrainConfig {
            epochs: 5,
            ..TrainConfig::default()
        };
        let mut a = Rbm::new(4, 3, 0.05, 9).unwrap();
        let mut b = Rbm::new(4, 3, 0.05, 9).unwrap();
        Trainer::cd(1).train(&mut a, &data, &config, 4).unwrap();
        Trainer::cd(1).train(&mut b, &data, &config, 4).unwrap();
        assert_eq!(a, b);
    }
}
