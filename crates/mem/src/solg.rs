//! Self-organizing logic gate (SOLG) dynamics.
//!
//! The paper's Eqs. 1–2 describe DMM circuits abstractly: voltage variables
//! driven by memristive (`Δg_M·x·ΔV_M`) and resistive (`g_R·ΔV_R`) terms,
//! plus bounded memory variables `x ∈ [0, 1]` evolving as `ẋ = h(ΔV_M, x)`.
//! For SAT, the concrete realization used throughout the memcomputing
//! literature (Traversa & Di Ventra 2017; Bearden, Pei & Di Ventra 2020)
//! assigns each variable a continuous voltage `v ∈ [−1, 1]` and each clause
//! `m` (an OR-SOLG) two memory variables — a fast one `x_s ∈ [0, 1]` and a
//! slow one `x_l ≥ 1` — with per-clause terms:
//!
//! ```text
//! C_m(v)   = ½ · min_i (1 − q_{m,i} v_i)          clause "unsatisfaction"
//! G_{m,i}  = ½ · q_{m,i} · min_{j≠i} (1 − q_{m,j} v_j)   gradient-like drive
//! R_{m,i}  = ½ · (q_{m,i} − v_i)  if i = argmin, else 0  rigidity drive
//!
//! v̇_i  = Σ_m  x_l,m · x_s,m · G_{m,i} + (1 + ζ·x_l,m)(1 − x_s,m) · R_{m,i}
//! ẋ_s,m = β · x_s,m · (C_m − γ)
//! ẋ_l,m = α · (C_m − δ)
//! ```
//!
//! where `q_{m,i} = ±1` is the literal polarity. The memory terms are what
//! makes the gate *terminal agnostic*: information flows from outputs back
//! to inputs until the gate self-organizes into a satisfied configuration.
//!
//! This module computes the per-clause quantities; [`crate::dmm`] assembles
//! and integrates the full system.
//!
//! # Example
//!
//! ```
//! use mem::cnf::{Clause, Literal};
//! use mem::solg::ClauseDynamics;
//!
//! let clause = Clause::new(vec![Literal::positive(0), Literal::negative(1)])?;
//! let dyn_ = ClauseDynamics::new(&clause);
//! // v0 = 1 satisfies the first literal: C = 0.
//! assert_eq!(dyn_.unsatisfaction(&[1.0, 1.0]), 0.0);
//! // v = (−1, 1) violates both literals maximally: C = 1.
//! assert_eq!(dyn_.unsatisfaction(&[-1.0, 1.0]), 1.0);
//! # Ok::<(), mem::MemError>(())
//! ```

use crate::cnf::Clause;

/// Precomputed per-clause dynamics: variable indices and polarities.
#[derive(Debug, Clone, PartialEq)]
pub struct ClauseDynamics {
    vars: Vec<usize>,
    polarities: Vec<f64>,
}

impl ClauseDynamics {
    /// Extracts the dynamics data from a clause.
    #[must_use]
    pub fn new(clause: &Clause) -> Self {
        ClauseDynamics {
            vars: clause.literals().iter().map(|l| l.var()).collect(),
            polarities: clause.literals().iter().map(|l| l.polarity()).collect(),
        }
    }

    /// The variable indices of the clause's literals.
    #[must_use]
    pub fn vars(&self) -> &[usize] {
        &self.vars
    }

    /// The ±1 polarities `q_{m,i}`.
    #[must_use]
    pub fn polarities(&self) -> &[f64] {
        &self.polarities
    }

    /// Clause width.
    #[must_use]
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Never true — clauses are non-empty by construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// The literal terms `1 − q_i·v_i` (each in `[0, 2]` for `v ∈ [−1,1]`).
    fn literal_terms<'a>(&'a self, v: &'a [f64]) -> impl Iterator<Item = f64> + 'a {
        self.vars
            .iter()
            .zip(&self.polarities)
            .map(move |(&var, &q)| 1.0 - q * v[var])
    }

    /// The clause unsatisfaction `C_m(v) ∈ [0, 1]`: 0 when some literal is
    /// fully satisfied (`q·v = 1`), 1 when every literal is maximally
    /// violated.
    #[must_use]
    pub fn unsatisfaction(&self, v: &[f64]) -> f64 {
        0.5 * self.literal_terms(v).fold(f64::INFINITY, f64::min).max(0.0)
    }

    /// The index (within the clause) of the minimizing literal — the one
    /// closest to satisfying the clause.
    #[must_use]
    pub fn argmin_literal(&self, v: &[f64]) -> usize {
        let mut best = 0;
        let mut best_term = f64::INFINITY;
        for (i, term) in self.literal_terms(v).enumerate() {
            if term < best_term {
                best_term = term;
                best = i;
            }
        }
        best
    }

    /// The gradient-like drive `G_{m,i} = ½·q_i·min_{j≠i}(1 − q_j·v_j)` for
    /// the clause's `i`-th literal. For unit clauses the empty minimum is
    /// taken as 1 (full drive toward satisfaction).
    #[must_use]
    pub fn gradient(&self, v: &[f64], i: usize) -> f64 {
        let mut min_other = f64::INFINITY;
        for (j, term) in self.literal_terms(v).enumerate() {
            if j != i {
                min_other = min_other.min(term);
            }
        }
        if min_other.is_infinite() {
            min_other = 1.0;
        }
        0.5 * self.polarities[i] * min_other
    }

    /// The rigidity drive `R_{m,i}`: `½·(q_i − v_i)` when `i` is the
    /// minimizing literal, 0 otherwise. It holds the best literal at its
    /// satisfying rail while the others are free.
    #[must_use]
    pub fn rigidity(&self, v: &[f64], i: usize) -> f64 {
        if self.argmin_literal(v) == i {
            0.5 * (self.polarities[i] - v[self.vars[i]])
        } else {
            0.0
        }
    }

    /// Accumulates this clause's contribution to `dv` given its memory
    /// variables and the SOLG mixing parameter `zeta`, optionally scaled by
    /// a clause weight (used by weighted MaxSAT).
    pub fn accumulate_dv(
        &self,
        v: &[f64],
        x_s: f64,
        x_l: f64,
        zeta: f64,
        weight: f64,
        dv: &mut [f64],
    ) {
        for i in 0..self.vars.len() {
            let g = self.gradient(v, i);
            let r = self.rigidity(v, i);
            dv[self.vars[i]] += weight * (x_l * x_s * g + (1.0 + zeta * x_l) * (1.0 - x_s) * r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Literal;

    fn clause3() -> ClauseDynamics {
        // (x0 ∨ ¬x1 ∨ x2)
        ClauseDynamics::new(
            &Clause::new(vec![
                Literal::positive(0),
                Literal::negative(1),
                Literal::positive(2),
            ])
            .unwrap(),
        )
    }

    #[test]
    fn unsatisfaction_range() {
        let d = clause3();
        // All literals satisfied at the rails.
        assert_eq!(d.unsatisfaction(&[1.0, -1.0, 1.0]), 0.0);
        // All maximally violated.
        assert_eq!(d.unsatisfaction(&[-1.0, 1.0, -1.0]), 1.0);
        // Anything in between is within [0, 1].
        let c = d.unsatisfaction(&[0.3, 0.2, -0.5]);
        assert!((0.0..=1.0).contains(&c));
    }

    #[test]
    fn unsatisfaction_zero_iff_some_literal_at_rail() {
        let d = clause3();
        assert_eq!(d.unsatisfaction(&[1.0, 1.0, -1.0]), 0.0); // x0 = 1 wins
        assert!(d.unsatisfaction(&[0.9, 1.0, -1.0]) > 0.0);
    }

    #[test]
    fn argmin_picks_best_literal() {
        let d = clause3();
        // x2 closest to its rail.
        assert_eq!(d.argmin_literal(&[0.0, 0.0, 0.9]), 2);
        // ¬x1 with v1 = −0.95 is the best.
        assert_eq!(d.argmin_literal(&[0.0, -0.95, 0.5]), 1);
    }

    #[test]
    fn gradient_sign_pushes_toward_satisfaction() {
        let d = clause3();
        let v = [-0.5, 0.5, -0.5];
        // Positive literal x0: gradient positive (push v0 up).
        assert!(d.gradient(&v, 0) > 0.0);
        // Negative literal ¬x1: gradient negative (push v1 down).
        assert!(d.gradient(&v, 1) < 0.0);
    }

    #[test]
    fn gradient_vanishes_when_another_literal_satisfied() {
        let d = clause3();
        // x2 at its rail satisfies the clause: other literals feel no drive.
        let v = [0.0, 0.0, 1.0];
        assert_eq!(d.gradient(&v, 0), 0.0);
        assert_eq!(d.gradient(&v, 1), 0.0);
    }

    #[test]
    fn rigidity_only_on_argmin() {
        let d = clause3();
        let v = [0.2, 0.1, 0.8];
        let am = d.argmin_literal(&v);
        for i in 0..3 {
            if i == am {
                assert_ne!(d.rigidity(&v, i), 0.0);
            } else {
                assert_eq!(d.rigidity(&v, i), 0.0);
            }
        }
    }

    #[test]
    fn rigidity_pulls_to_rail() {
        // Unit clause (x0): rigidity drives v0 toward +1.
        let d = ClauseDynamics::new(&Clause::new(vec![Literal::positive(0)]).unwrap());
        assert!(d.rigidity(&[0.0], 0) > 0.0);
        assert_eq!(d.rigidity(&[1.0], 0), 0.0);
    }

    #[test]
    fn unit_clause_gradient_full_drive() {
        let d = ClauseDynamics::new(&Clause::new(vec![Literal::negative(3)]).unwrap());
        let v = [0.0, 0.0, 0.0, 0.5];
        assert_eq!(d.gradient(&v, 0), -0.5);
    }

    #[test]
    fn accumulate_dv_adds_to_buffer() {
        let d = clause3();
        let v = [-0.5, 0.5, -0.5];
        let mut dv = vec![0.0; 3];
        d.accumulate_dv(&v, 0.5, 2.0, 0.1, 1.0, &mut dv);
        // Every variable in the clause receives a push.
        assert!(dv.iter().any(|&x| x != 0.0));
        // Doubling the weight doubles the contribution.
        let mut dv2 = vec![0.0; 3];
        d.accumulate_dv(&v, 0.5, 2.0, 0.1, 2.0, &mut dv2);
        for (a, b) in dv.iter().zip(&dv2) {
            assert!((2.0 * a - b).abs() < 1e-12);
        }
    }
}
