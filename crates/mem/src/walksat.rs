//! Stochastic local search baselines: WalkSAT and GSAT.
//!
//! The "traditional algorithmic approaches" the paper's §IV compares
//! against. WalkSAT (Selman–Kautz–Cohen): pick a violated clause; with
//! probability `noise` flip a random variable in it, otherwise flip the
//! variable minimizing the break count. GSAT: greedy best-flip over all
//! variables with restarts.
//!
//! Both report their work in *flips*, the standard cost unit for
//! local-search SAT solvers, so scaling plots can compare machine-agnostic
//! costs against the DMM's integration steps.
//!
//! # Example
//!
//! ```
//! use mem::generators::planted_3sat;
//! use mem::walksat::{WalkSat, WalkSatParams};
//!
//! let inst = planted_3sat(20, 4.0, 3)?;
//! let result = WalkSat::new(WalkSatParams::default()).solve(&inst.formula, 1);
//! let solution = result.solution.expect("planted instance solvable");
//! assert!(inst.formula.is_satisfied(&solution));
//! # Ok::<(), mem::MemError>(())
//! ```

use crate::assignment::Assignment;
use crate::cnf::Formula;
use numerics::rng::rng_from_seed;
use numerics::rng::Rng;

/// WalkSAT parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkSatParams {
    /// Random-walk probability (SKC noise parameter, typically 0.5 for
    /// random 3-SAT).
    pub noise: f64,
    /// Maximum flips per try.
    pub max_flips: u64,
    /// Number of restarts.
    pub max_tries: u32,
}

impl Default for WalkSatParams {
    fn default() -> Self {
        WalkSatParams {
            noise: 0.5,
            max_flips: 100_000,
            max_tries: 10,
        }
    }
}

/// Result of a local-search run.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// The satisfying assignment, when found.
    pub solution: Option<Assignment>,
    /// Total variable flips performed.
    pub flips: u64,
    /// Restarts used.
    pub tries: u32,
    /// Fewest violated clauses seen (0 when solved).
    pub best_unsat: usize,
}

/// The WalkSAT/SKC solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkSat {
    params: WalkSatParams,
}

impl WalkSat {
    /// Creates a solver.
    #[must_use]
    pub fn new(params: WalkSatParams) -> Self {
        WalkSat { params }
    }

    /// The parameters.
    #[must_use]
    pub fn params(&self) -> &WalkSatParams {
        &self.params
    }

    /// Solves (or gives up on) a formula.
    #[must_use]
    pub fn solve(&self, formula: &Formula, seed: u64) -> SearchResult {
        let mut rng = rng_from_seed(seed);
        let n = formula.n_vars();
        let occ = formula.occurrence_lists();
        let mut total_flips = 0u64;
        let mut best_unsat = usize::MAX;

        for try_no in 0..self.params.max_tries.max(1) {
            let mut assignment = Assignment::random(n, &mut rng);
            // Track violated clauses incrementally.
            let mut unsat: Vec<usize> = formula.unsatisfied_clauses(&assignment);
            best_unsat = best_unsat.min(unsat.len());
            if unsat.is_empty() {
                return SearchResult {
                    solution: Some(assignment),
                    flips: total_flips,
                    tries: try_no + 1,
                    best_unsat: 0,
                };
            }
            for _ in 0..self.params.max_flips {
                // Pick a random violated clause.
                let ci = unsat[rng.gen_range(0..unsat.len())];
                let clause = &formula.clauses()[ci];
                let flip_var = if rng.gen::<f64>() < self.params.noise {
                    clause.literals()[rng.gen_range(0..clause.len())].var()
                } else {
                    // Minimize break count: clauses that become violated.
                    let mut best_var = clause.literals()[0].var();
                    let mut best_break = usize::MAX;
                    for lit in clause.literals() {
                        let v = lit.var();
                        assignment.flip(v);
                        let breaks = occ[v]
                            .iter()
                            .filter(|&&c| !formula.clauses()[c].is_satisfied(&assignment))
                            .count();
                        assignment.flip(v);
                        if breaks < best_break {
                            best_break = breaks;
                            best_var = v;
                        }
                    }
                    best_var
                };
                assignment.flip(flip_var);
                total_flips += 1;
                // Recompute affected clauses only.
                unsat.retain(|&c| !formula.clauses()[c].is_satisfied(&assignment));
                for &c in &occ[flip_var] {
                    if !formula.clauses()[c].is_satisfied(&assignment) && !unsat.contains(&c) {
                        unsat.push(c);
                    }
                }
                best_unsat = best_unsat.min(unsat.len());
                if unsat.is_empty() {
                    return SearchResult {
                        solution: Some(assignment),
                        flips: total_flips,
                        tries: try_no + 1,
                        best_unsat: 0,
                    };
                }
            }
        }
        SearchResult {
            solution: None,
            flips: total_flips,
            tries: self.params.max_tries,
            best_unsat,
        }
    }
}

/// GSAT parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GsatParams {
    /// Maximum flips per try.
    pub max_flips: u64,
    /// Number of restarts.
    pub max_tries: u32,
    /// Sideways-move probability when no improving flip exists.
    pub sideways: bool,
}

impl Default for GsatParams {
    fn default() -> Self {
        GsatParams {
            max_flips: 20_000,
            max_tries: 10,
            sideways: true,
        }
    }
}

/// The GSAT greedy solver (best-improvement local search with restarts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gsat {
    params: GsatParams,
}

impl Gsat {
    /// Creates a solver.
    #[must_use]
    pub fn new(params: GsatParams) -> Self {
        Gsat { params }
    }

    /// Solves (or gives up on) a formula.
    #[must_use]
    pub fn solve(&self, formula: &Formula, seed: u64) -> SearchResult {
        let mut rng = rng_from_seed(seed);
        let n = formula.n_vars();
        let mut total_flips = 0u64;
        let mut best_unsat = usize::MAX;
        for try_no in 0..self.params.max_tries.max(1) {
            let mut assignment = Assignment::random(n, &mut rng);
            let mut current = formula.count_unsatisfied(&assignment);
            best_unsat = best_unsat.min(current);
            for _ in 0..self.params.max_flips {
                if current == 0 {
                    return SearchResult {
                        solution: Some(assignment),
                        flips: total_flips,
                        tries: try_no + 1,
                        best_unsat: 0,
                    };
                }
                // Evaluate all flips; keep the best (random tie-break).
                let mut best_delta = i64::MAX;
                let mut candidates: Vec<usize> = Vec::new();
                for v in 0..n {
                    assignment.flip(v);
                    let after = formula.count_unsatisfied(&assignment);
                    assignment.flip(v);
                    let delta = after as i64 - current as i64;
                    match delta.cmp(&best_delta) {
                        std::cmp::Ordering::Less => {
                            best_delta = delta;
                            candidates.clear();
                            candidates.push(v);
                        }
                        std::cmp::Ordering::Equal => candidates.push(v),
                        std::cmp::Ordering::Greater => {}
                    }
                }
                if best_delta > 0 || (best_delta == 0 && !self.params.sideways) {
                    break; // local minimum; restart
                }
                let v = candidates[rng.gen_range(0..candidates.len())];
                assignment.flip(v);
                current = (current as i64 + best_delta) as usize;
                total_flips += 1;
                best_unsat = best_unsat.min(current);
            }
            if current == 0 {
                return SearchResult {
                    solution: Some(assignment),
                    flips: total_flips,
                    tries: try_no + 1,
                    best_unsat: 0,
                };
            }
        }
        SearchResult {
            solution: None,
            flips: total_flips,
            tries: self.params.max_tries,
            best_unsat,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{Clause, Literal};
    use crate::generators::{planted_3sat, random_ksat};

    #[test]
    fn walksat_solves_planted_instances() {
        for seed in 0..3 {
            let inst = planted_3sat(30, 4.0, seed).unwrap();
            let result = WalkSat::new(WalkSatParams::default()).solve(&inst.formula, seed);
            let sol = result.solution.expect("solvable");
            assert!(inst.formula.is_satisfied(&sol));
            assert_eq!(result.best_unsat, 0);
        }
    }

    #[test]
    fn walksat_gives_up_on_unsat() {
        // x0 ∧ ¬x0 (as two unit clauses).
        let f = Formula::new(
            1,
            vec![
                Clause::new(vec![Literal::positive(0)]).unwrap(),
                Clause::new(vec![Literal::negative(0)]).unwrap(),
            ],
        )
        .unwrap();
        let params = WalkSatParams {
            max_flips: 200,
            max_tries: 2,
            ..WalkSatParams::default()
        };
        let result = WalkSat::new(params).solve(&f, 1);
        assert!(result.solution.is_none());
        assert_eq!(result.best_unsat, 1);
    }

    #[test]
    fn walksat_deterministic_per_seed() {
        let f = random_ksat(20, 3, 4.0, 5).unwrap();
        let a = WalkSat::new(WalkSatParams::default()).solve(&f, 7);
        let b = WalkSat::new(WalkSatParams::default()).solve(&f, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn gsat_solves_planted_instances() {
        let inst = planted_3sat(25, 3.5, 1).unwrap();
        let result = Gsat::new(GsatParams::default()).solve(&inst.formula, 2);
        let sol = result.solution.expect("solvable");
        assert!(inst.formula.is_satisfied(&sol));
    }

    #[test]
    fn gsat_counts_flips() {
        let inst = planted_3sat(20, 4.0, 4).unwrap();
        let result = Gsat::new(GsatParams::default()).solve(&inst.formula, 3);
        if result.solution.is_some() {
            // At least some work unless the random start was lucky.
            assert!(result.flips < 20_000 * 10);
        }
    }

    #[test]
    fn trivial_formula_immediate() {
        let f = Formula::new(2, vec![]).unwrap();
        let result = WalkSat::new(WalkSatParams::default()).solve(&f, 1);
        assert!(result.solution.is_some());
        assert_eq!(result.flips, 0);
    }
}
