//! Randomized tests of the memcomputing crate's invariants.
//!
//! Formerly written with `proptest`; rewritten on the in-repo
//! `numerics::rng` so the suite builds offline. Each test draws many
//! random cases from a fixed seed, so failures reproduce deterministically.

use mem::assignment::Assignment;
use mem::cnf::{Clause, Formula, Literal};
use mem::solg::ClauseDynamics;
use numerics::rng::{rng_from_seed, sample_indices, Rng, StdRng};

const CASES: usize = 128;

/// Draws a clause of 1–3 distinct variables with alternating polarities.
fn random_clause(rng: &mut StdRng, n_vars: usize) -> Clause {
    let width = rng.gen_range(1..=3usize.min(n_vars));
    let mut vars = sample_indices(rng, n_vars, width);
    vars.sort_unstable();
    Clause::new(
        vars.into_iter()
            .enumerate()
            .map(|(i, v)| {
                if i % 2 == 0 {
                    Literal::positive(v)
                } else {
                    Literal::negative(v)
                }
            })
            .collect(),
    )
    .expect("distinct vars")
}

fn random_bools(rng: &mut StdRng, len: usize) -> Vec<bool> {
    (0..len).map(|_| rng.gen()).collect()
}

/// The SOLG clause unsatisfaction is 0 exactly when the clause is
/// satisfied at the voltage rails.
#[test]
fn solg_unsat_matches_boolean_at_rails() {
    let mut rng = rng_from_seed(0x501);
    for _ in 0..CASES {
        let clause = random_clause(&mut rng, 6);
        let bits = random_bools(&mut rng, 6);
        let dyn_ = ClauseDynamics::new(&clause);
        let v: Vec<f64> = bits.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        let c = dyn_.unsatisfaction(&v);
        let satisfied = clause.is_satisfied(&Assignment::from_bools(&bits));
        if satisfied {
            assert!(c.abs() < 1e-12, "satisfied clause has C = {c}");
        } else {
            assert!(c >= 1.0 - 1e-12, "violated clause has C = {c}");
        }
    }
}

/// SOLG unsatisfaction is always within [0, 1] for in-range voltages.
#[test]
fn solg_unsat_bounded() {
    let mut rng = rng_from_seed(0x502);
    for _ in 0..CASES {
        let clause = random_clause(&mut rng, 6);
        let v: Vec<f64> = (0..6).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let c = ClauseDynamics::new(&clause).unsatisfaction(&v);
        assert!((0.0..=1.0 + 1e-12).contains(&c));
    }
}

/// Gradient drive always points toward satisfying the chosen literal.
#[test]
fn solg_gradient_sign_matches_polarity() {
    let mut rng = rng_from_seed(0x503);
    for _ in 0..CASES {
        let clause = random_clause(&mut rng, 6);
        let v: Vec<f64> = (0..6).map(|_| rng.gen_range(-0.99..0.99)).collect();
        let dyn_ = ClauseDynamics::new(&clause);
        for i in 0..dyn_.len() {
            let g = dyn_.gradient(&v, i);
            let q = dyn_.polarities()[i];
            // g = ½·q·min_other(non-negative), so sign(g) ∈ {0, sign(q)}.
            assert!(g * q >= -1e-12, "gradient {g} against polarity {q}");
        }
    }
}

/// Flipping a variable changes the unsat count by exactly the number of
/// clauses whose satisfaction status flips.
#[test]
fn flip_delta_consistency() {
    let mut rng = rng_from_seed(0x504);
    for _ in 0..CASES {
        let n_clauses = rng.gen_range(1..20);
        let clauses: Vec<Clause> = (0..n_clauses).map(|_| random_clause(&mut rng, 8)).collect();
        let bits = random_bools(&mut rng, 8);
        let var = rng.gen_range(0..8usize);
        let formula = Formula::new(8, clauses).unwrap();
        let mut a = Assignment::from_bools(&bits);
        let before = formula.count_unsatisfied(&a);
        a.flip(var);
        let after = formula.count_unsatisfied(&a);
        a.flip(var);
        assert_eq!(formula.count_unsatisfied(&a), before);
        // The delta is bounded by the number of clauses containing var.
        let occ = formula.occurrence_lists();
        assert!(before.abs_diff(after) <= occ[var].len());
    }
}

/// DIMACS round-trips arbitrary valid formulas.
#[test]
fn dimacs_roundtrip() {
    let mut rng = rng_from_seed(0x505);
    for _ in 0..CASES {
        let n_clauses = rng.gen_range(0..25);
        let clauses: Vec<Clause> = (0..n_clauses)
            .map(|_| random_clause(&mut rng, 10))
            .collect();
        let f = Formula::new(10, clauses).unwrap();
        let parsed = mem::dimacs::parse(&mem::dimacs::emit(&f)).unwrap();
        assert_eq!(parsed, f);
    }
}

/// Ising flip_delta agrees with the energy difference.
#[test]
fn ising_flip_delta_exact() {
    let mut rng = rng_from_seed(0x506);
    for _ in 0..CASES {
        let n_couplings = rng.gen_range(0..12);
        let couplings: Vec<(usize, usize, f64)> = (0..n_couplings)
            .map(|_| {
                (
                    rng.gen_range(0..6usize),
                    rng.gen_range(0..6usize),
                    rng.gen_range(-2.0..2.0),
                )
            })
            .filter(|&(a, b, _)| a != b)
            .collect();
        let fields: Vec<f64> = (0..6).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let bits = random_bools(&mut rng, 6);
        let spin = rng.gen_range(0..6usize);
        let model = mem::ising::IsingModel::new(6, couplings, fields).unwrap();
        let mut spins = Assignment::from_bools(&bits).to_spins();
        let before = model.energy_spins(&spins);
        let delta = model.flip_delta(&spins, spin);
        spins[spin] = -spins[spin];
        let after = model.energy_spins(&spins);
        assert!((after - before - delta).abs() < 1e-9);
    }
}

/// QUBO ↔ Ising reduction is exact pointwise.
#[test]
fn qubo_ising_pointwise() {
    let mut rng = rng_from_seed(0x507);
    for _ in 0..CASES {
        let mut q = mem::qubo::Qubo::new(5).unwrap();
        for i in 0..5 {
            q.add_linear(i, rng.gen_range(-2.0..2.0)).unwrap();
        }
        for k in 0..4 {
            q.add_quadratic(k, (k + 2) % 5, rng.gen_range(-2.0..2.0))
                .unwrap();
        }
        let bits = random_bools(&mut rng, 5);
        let (model, offset) = q.to_ising().unwrap();
        let direct = q.value(&bits);
        let via = model.energy(&Assignment::from_bools(&bits)) + offset;
        assert!((direct - via).abs() < 1e-9);
    }
}
