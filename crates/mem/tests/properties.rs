//! Property-based tests of the memcomputing crate's invariants.

use mem::assignment::Assignment;
use mem::cnf::{Clause, Formula, Literal};
use mem::solg::ClauseDynamics;
use proptest::prelude::*;

fn clause_strategy(n_vars: usize) -> impl Strategy<Value = Clause> {
    prop::collection::btree_set(0..n_vars, 1..=3).prop_map(|vars| {
        Clause::new(
            vars.into_iter()
                .enumerate()
                .map(|(i, v)| {
                    if i % 2 == 0 {
                        Literal::positive(v)
                    } else {
                        Literal::negative(v)
                    }
                })
                .collect(),
        )
        .expect("distinct vars")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The SOLG clause unsatisfaction is 0 exactly when the clause is
    /// satisfied at the voltage rails.
    #[test]
    fn solg_unsat_matches_boolean_at_rails(
        clause in clause_strategy(6),
        bits in prop::collection::vec(any::<bool>(), 6),
    ) {
        let dyn_ = ClauseDynamics::new(&clause);
        let v: Vec<f64> = bits.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        let c = dyn_.unsatisfaction(&v);
        let satisfied = clause.is_satisfied(&Assignment::from_bools(&bits));
        if satisfied {
            prop_assert!(c.abs() < 1e-12, "satisfied clause has C = {}", c);
        } else {
            prop_assert!(c >= 1.0 - 1e-12, "violated clause has C = {}", c);
        }
    }

    /// SOLG unsatisfaction is always within [0, 1] for in-range voltages.
    #[test]
    fn solg_unsat_bounded(
        clause in clause_strategy(6),
        v in prop::collection::vec(-1.0f64..1.0, 6),
    ) {
        let c = ClauseDynamics::new(&clause).unsatisfaction(&v);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&c));
    }

    /// Gradient drive always points toward satisfying the chosen literal.
    #[test]
    fn solg_gradient_sign_matches_polarity(
        clause in clause_strategy(6),
        v in prop::collection::vec(-0.99f64..0.99, 6),
    ) {
        let dyn_ = ClauseDynamics::new(&clause);
        for i in 0..dyn_.len() {
            let g = dyn_.gradient(&v, i);
            let q = dyn_.polarities()[i];
            // g = ½·q·min_other(non-negative), so sign(g) ∈ {0, sign(q)}.
            prop_assert!(g * q >= -1e-12, "gradient {} against polarity {}", g, q);
        }
    }

    /// Flipping a variable changes the unsat count by exactly the number of
    /// clauses whose satisfaction status flips.
    #[test]
    fn flip_delta_consistency(
        clauses in prop::collection::vec(clause_strategy(8), 1..20),
        bits in prop::collection::vec(any::<bool>(), 8),
        var in 0usize..8,
    ) {
        let formula = Formula::new(8, clauses).unwrap();
        let mut a = Assignment::from_bools(&bits);
        let before = formula.count_unsatisfied(&a);
        a.flip(var);
        let after = formula.count_unsatisfied(&a);
        a.flip(var);
        prop_assert_eq!(formula.count_unsatisfied(&a), before);
        // The delta is bounded by the number of clauses containing var.
        let occ = formula.occurrence_lists();
        prop_assert!(before.abs_diff(after) <= occ[var].len());
    }

    /// DIMACS round-trips arbitrary valid formulas.
    #[test]
    fn dimacs_roundtrip(clauses in prop::collection::vec(clause_strategy(10), 0..25)) {
        let f = Formula::new(10, clauses).unwrap();
        let parsed = mem::dimacs::parse(&mem::dimacs::emit(&f)).unwrap();
        prop_assert_eq!(parsed, f);
    }

    /// Ising flip_delta agrees with the energy difference.
    #[test]
    fn ising_flip_delta_exact(
        couplings in prop::collection::vec((0usize..6, 0usize..6, -2.0f64..2.0), 0..12),
        fields in prop::collection::vec(-1.0f64..1.0, 6),
        bits in prop::collection::vec(any::<bool>(), 6),
        spin in 0usize..6,
    ) {
        let couplings: Vec<(usize, usize, f64)> = couplings
            .into_iter()
            .filter(|&(a, b, _)| a != b)
            .collect();
        let model = mem::ising::IsingModel::new(6, couplings, fields).unwrap();
        let mut spins = Assignment::from_bools(&bits).to_spins();
        let before = model.energy_spins(&spins);
        let delta = model.flip_delta(&spins, spin);
        spins[spin] = -spins[spin];
        let after = model.energy_spins(&spins);
        prop_assert!((after - before - delta).abs() < 1e-9);
    }

    /// QUBO ↔ Ising reduction is exact pointwise.
    #[test]
    fn qubo_ising_pointwise(
        linear in prop::collection::vec(-2.0f64..2.0, 5),
        quad in prop::collection::vec(-2.0f64..2.0, 4),
        bits in prop::collection::vec(any::<bool>(), 5),
    ) {
        let mut q = mem::qubo::Qubo::new(5).unwrap();
        for (i, &c) in linear.iter().enumerate() {
            q.add_linear(i, c).unwrap();
        }
        for (k, &w) in quad.iter().enumerate() {
            q.add_quadratic(k, (k + 2) % 5, w).unwrap();
        }
        let (model, offset) = q.to_ising().unwrap();
        let direct = q.value(&bits);
        let via = model.energy(&Assignment::from_bools(&bits)) + offset;
        prop_assert!((direct - via).abs() < 1e-9);
    }
}
