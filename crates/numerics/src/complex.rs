//! Complex arithmetic.
//!
//! A small, dependency-free complex number type. The quantum simulator stores
//! state vectors as `Vec<Complex>`, and the FFT operates on `&mut [Complex]`,
//! so this type is `Copy` and all operations are branch-free.
//!
//! # Example
//!
//! ```
//! use numerics::Complex;
//!
//! let i = Complex::I;
//! assert_eq!(i * i, Complex::new(-1.0, 0.0));
//! assert!((Complex::from_polar(2.0, std::f64::consts::PI).re + 2.0).abs() < 1e-12);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i·im` over `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular components.
    #[must_use]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a complex number from polar form `r·e^{iθ}`.
    ///
    /// # Example
    ///
    /// ```
    /// use numerics::Complex;
    /// let z = Complex::from_polar(1.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z - Complex::I).norm() < 1e-12);
    /// ```
    #[must_use]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{iθ}`, a unit-modulus phase factor.
    #[must_use]
    pub fn cis(theta: f64) -> Self {
        Complex::from_polar(1.0, theta)
    }

    /// Complex conjugate `re − i·im`.
    #[must_use]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Squared modulus `re² + im²` — the probability weight of a quantum
    /// amplitude. Cheaper than [`Complex::norm`] (no square root).
    #[must_use]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[must_use]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in `(-π, π]`.
    #[must_use]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns a non-finite result when `z == 0`, matching `f64` division
    /// semantics.
    #[must_use]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Complex exponential `e^z`.
    #[must_use]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Complex::from_polar(r, self.im)
    }

    /// Scales by a real factor.
    #[must_use]
    pub fn scale(self, k: f64) -> Self {
        Complex::new(self.re * k, self.im * k)
    }

    /// Returns `true` when both components are finite.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div for Complex {
    type Output = Complex;
    // z / w computed as z · w⁻¹ — the multiplication is intentional.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn basic_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex::I * Complex::I, Complex::new(-1.0, 0.0));
    }

    #[test]
    fn division_roundtrip() {
        let a = Complex::new(1.5, -2.5);
        let b = Complex::new(0.3, 0.7);
        let q = a / b;
        let r = q * b;
        assert!(approx_eq(r.re, a.re, 1e-12));
        assert!(approx_eq(r.im, a.im, 1e-12));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::new(-0.6, 0.8);
        let w = Complex::from_polar(z.norm(), z.arg());
        assert!((z - w).norm() < 1e-12);
    }

    #[test]
    fn conj_and_norm() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.norm(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
        let zz = z * z.conj();
        assert!(approx_eq(zz.re, 25.0, 1e-12));
        assert!(approx_eq(zz.im, 0.0, 1e-12));
    }

    #[test]
    fn exp_of_i_pi() {
        let z = (Complex::I * std::f64::consts::PI).exp();
        assert!((z.re + 1.0).abs() < 1e-12);
        assert!(z.im.abs() < 1e-12);
    }

    #[test]
    fn recip_inverse() {
        let z = Complex::new(2.0, -3.0);
        let p = z * z.recip();
        assert!((p - Complex::ONE).norm() < 1e-12);
    }

    #[test]
    fn sum_iterator() {
        let total: Complex = (0..4).map(|k| Complex::new(k as f64, 1.0)).sum();
        assert_eq!(total, Complex::new(6.0, 4.0));
    }

    #[test]
    fn display_format() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn scalar_multiplication_commutes() {
        let z = Complex::new(1.0, -1.0);
        assert_eq!(z * 2.0, 2.0 * z);
    }
}
