//! Radix-2 fast Fourier transform.
//!
//! Used to compute oscillator spectra: the frequency-locking experiments
//! (paper Fig. 3) cross-check the threshold-crossing frequency estimator in
//! [`crate::signal`] against the dominant FFT bin.
//!
//! # Example
//!
//! ```
//! use numerics::fft;
//!
//! // 8 Hz tone, 256 samples at 64 Hz sample rate.
//! let dt = 1.0 / 64.0;
//! let wave: Vec<f64> = (0..256)
//!     .map(|i| (std::f64::consts::TAU * 8.0 * i as f64 * dt).cos())
//!     .collect();
//! let f = fft::dominant_frequency(&wave, dt)?;
//! assert!((f - 8.0).abs() < 0.3);
//! # Ok::<(), numerics::NumericsError>(())
//! ```

use crate::complex::Complex;
use crate::NumericsError;

/// In-place radix-2 decimation-in-time FFT.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidArgument`] when the length is not a power
/// of two (zero-length input is accepted as a no-op).
pub fn fft_in_place(data: &mut [Complex]) -> Result<(), NumericsError> {
    transform(data, false)
}

/// In-place inverse FFT, including the `1/N` normalization.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidArgument`] when the length is not a power
/// of two.
pub fn ifft_in_place(data: &mut [Complex]) -> Result<(), NumericsError> {
    transform(data, true)?;
    let n = data.len() as f64;
    for z in data.iter_mut() {
        *z = *z / n;
    }
    Ok(())
}

fn transform(data: &mut [Complex], inverse: bool) -> Result<(), NumericsError> {
    let n = data.len();
    if n == 0 {
        return Ok(());
    }
    if !n.is_power_of_two() {
        return Err(NumericsError::InvalidArgument {
            what: "fft length must be a power of two",
        });
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let angle = sign * std::f64::consts::TAU / len as f64;
        let wlen = Complex::cis(angle);
        for start in (0..n).step_by(len) {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2] * w;
                data[start + k] = u + v;
                data[start + k + len / 2] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
    Ok(())
}

/// FFT of a real signal, zero-padded up to the next power of two.
///
/// Returns the complex spectrum of length `next_power_of_two(signal.len())`.
///
/// # Errors
///
/// Returns [`NumericsError::InsufficientData`] for an empty signal.
pub fn real_fft(signal: &[f64]) -> Result<Vec<Complex>, NumericsError> {
    if signal.is_empty() {
        return Err(NumericsError::InsufficientData {
            required: 1,
            provided: 0,
        });
    }
    let n = signal.len().next_power_of_two();
    let mut data: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
    data.resize(n, Complex::ZERO);
    fft_in_place(&mut data)?;
    Ok(data)
}

/// One-sided power spectrum `|X_k|²` for bins `0..N/2`.
///
/// # Errors
///
/// Propagates [`real_fft`] errors.
pub fn power_spectrum(signal: &[f64]) -> Result<Vec<f64>, NumericsError> {
    let spectrum = real_fft(signal)?;
    let half = spectrum.len() / 2;
    Ok(spectrum[..half.max(1)]
        .iter()
        .map(|z| z.norm_sqr())
        .collect())
}

/// Frequency (Hz) of the strongest non-DC bin of a real signal sampled at
/// interval `dt`.
///
/// The signal mean is removed before transforming so that a DC offset (e.g.
/// a relaxation oscillator swinging between two positive voltages) does not
/// mask the oscillation frequency.
///
/// # Errors
///
/// Returns [`NumericsError::InsufficientData`] when the signal has fewer
/// than 4 samples, or [`NumericsError::InvalidArgument`] when `dt <= 0`.
pub fn dominant_frequency(signal: &[f64], dt: f64) -> Result<f64, NumericsError> {
    if signal.len() < 4 {
        return Err(NumericsError::InsufficientData {
            required: 4,
            provided: signal.len(),
        });
    }
    if !(dt > 0.0) {
        return Err(NumericsError::InvalidArgument {
            what: "sample interval must be positive",
        });
    }
    let mean = signal.iter().sum::<f64>() / signal.len() as f64;
    let centered: Vec<f64> = signal.iter().map(|&x| x - mean).collect();
    let ps = power_spectrum(&centered)?;
    let n_fft = centered.len().next_power_of_two();
    let (best_bin, _) =
        ps.iter()
            .enumerate()
            .skip(1)
            .fold(
                (1usize, f64::MIN),
                |(bi, bv), (i, &v)| {
                    if v > bv {
                        (i, v)
                    } else {
                        (bi, bv)
                    }
                },
            );
    Ok(best_bin as f64 / (n_fft as f64 * dt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::ZERO; 8];
        data[0] = Complex::ONE;
        fft_in_place(&mut data).unwrap();
        for z in &data {
            assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_ifft_roundtrip() {
        let original: Vec<Complex> = (0..16)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let mut data = original.clone();
        fft_in_place(&mut data).unwrap();
        ifft_in_place(&mut data).unwrap();
        for (a, b) in data.iter().zip(&original) {
            assert!((*a - *b).norm() < 1e-10);
        }
    }

    #[test]
    fn fft_rejects_non_power_of_two() {
        let mut data = vec![Complex::ZERO; 3];
        assert!(fft_in_place(&mut data).is_err());
    }

    #[test]
    fn fft_parseval() {
        let signal: Vec<f64> = (0..64).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let spectrum = real_fft(&signal).unwrap();
        let freq_energy: f64 =
            spectrum.iter().map(|z| z.norm_sqr()).sum::<f64>() / spectrum.len() as f64;
        assert!(approx_eq(time_energy, freq_energy, 1e-9));
    }

    #[test]
    fn dominant_frequency_of_tone() {
        let dt = 1.0 / 128.0;
        let wave: Vec<f64> = (0..512)
            .map(|i| (std::f64::consts::TAU * 16.0 * i as f64 * dt).sin())
            .collect();
        let f = dominant_frequency(&wave, dt).unwrap();
        assert!((f - 16.0).abs() < 0.5, "estimated {f}");
    }

    #[test]
    fn dominant_frequency_ignores_dc() {
        let dt = 1.0 / 128.0;
        let wave: Vec<f64> = (0..512)
            .map(|i| 100.0 + (std::f64::consts::TAU * 10.0 * i as f64 * dt).sin())
            .collect();
        let f = dominant_frequency(&wave, dt).unwrap();
        assert!((f - 10.0).abs() < 0.5, "estimated {f}");
    }

    #[test]
    fn dominant_frequency_rejects_tiny_input() {
        assert!(dominant_frequency(&[1.0, 2.0], 1.0).is_err());
    }

    #[test]
    fn empty_fft_is_noop() {
        let mut data: Vec<Complex> = Vec::new();
        assert!(fft_in_place(&mut data).is_ok());
    }
}
