//! Curve fitting.
//!
//! The headline use is extracting the `l_k` norm exponent from the
//! coupled-oscillator XOR-measure curves (paper Fig. 5): near its minimum the
//! measure behaves as `m(Δ) ≈ a·|Δ|^k + c`, and the exponent `k` is the
//! quantity the paper tabulates (~1.6 → 2.0 → 3.4 with coupling strength).
//! [`fit_power_law_offset`] recovers `k` by golden-section search over the
//! exponent with an inner linear least-squares solve for `(a, c)`.
//!
//! # Example
//!
//! ```
//! use numerics::fit;
//!
//! // Synthesize y = 2·|x|^1.7 + 0.25 and recover the exponent.
//! let xs: Vec<f64> = (1..=40).map(|i| i as f64 * 0.05).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x.abs().powf(1.7) + 0.25).collect();
//! let fit = fit::fit_power_law_offset(&xs, &ys, 0.2, 6.0)?;
//! assert!((fit.exponent - 1.7).abs() < 1e-3);
//! # Ok::<(), numerics::NumericsError>(())
//! ```

use crate::linalg::Matrix;
use crate::NumericsError;

/// Result of an ordinary least-squares line fit `y = slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination R².
    pub r_squared: f64,
}

/// Ordinary least-squares straight-line fit.
///
/// # Errors
///
/// * [`NumericsError::DimensionMismatch`] when `xs` and `ys` differ in length.
/// * [`NumericsError::InsufficientData`] when fewer than 2 points are given.
/// * [`NumericsError::SingularMatrix`] when all `xs` are identical.
pub fn fit_line(xs: &[f64], ys: &[f64]) -> Result<LineFit, NumericsError> {
    if xs.len() != ys.len() {
        return Err(NumericsError::DimensionMismatch {
            expected: xs.len(),
            actual: ys.len(),
        });
    }
    if xs.len() < 2 {
        return Err(NumericsError::InsufficientData {
            required: 2,
            provided: xs.len(),
        });
    }
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-300 {
        return Err(NumericsError::SingularMatrix);
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;

    let mean_y = sy / n;
    let ss_tot: f64 = ys.iter().map(|y| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| (y - (slope * x + intercept)).powi(2))
        .sum();
    let r_squared = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    Ok(LineFit {
        slope,
        intercept,
        r_squared,
    })
}

/// Result of a power-law-with-offset fit `y = amplitude·|x|^exponent + offset`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawFit {
    /// Fitted exponent `k`.
    pub exponent: f64,
    /// Fitted amplitude `a`.
    pub amplitude: f64,
    /// Fitted offset `c`.
    pub offset: f64,
    /// Residual sum of squares at the optimum.
    pub rss: f64,
}

/// Fits `y = a·|x|^k + c` over `k ∈ [k_lo, k_hi]`.
///
/// The exponent is located by golden-section search on the residual sum of
/// squares; for each candidate `k` the optimal `(a, c)` are found by linear
/// least squares (a 2×2 normal-equation solve), making the search robust.
///
/// # Errors
///
/// * [`NumericsError::DimensionMismatch`] when `xs` and `ys` differ in length.
/// * [`NumericsError::InsufficientData`] when fewer than 3 points are given.
/// * [`NumericsError::InvalidArgument`] when the exponent bracket is invalid.
/// * [`NumericsError::SingularMatrix`] when the design matrix degenerates
///   (e.g. all `|x|` identical).
pub fn fit_power_law_offset(
    xs: &[f64],
    ys: &[f64],
    k_lo: f64,
    k_hi: f64,
) -> Result<PowerLawFit, NumericsError> {
    if xs.len() != ys.len() {
        return Err(NumericsError::DimensionMismatch {
            expected: xs.len(),
            actual: ys.len(),
        });
    }
    if xs.len() < 3 {
        return Err(NumericsError::InsufficientData {
            required: 3,
            provided: xs.len(),
        });
    }
    if !(k_lo > 0.0) || !(k_hi > k_lo) {
        return Err(NumericsError::InvalidArgument {
            what: "exponent bracket must satisfy 0 < k_lo < k_hi",
        });
    }

    let rss_for = |k: f64| -> Result<(f64, f64, f64), NumericsError> {
        // Least squares for y = a·b(x) + c with b(x) = |x|^k.
        let n = xs.len() as f64;
        let b: Vec<f64> = xs.iter().map(|x| x.abs().powf(k)).collect();
        let sb: f64 = b.iter().sum();
        let sbb: f64 = b.iter().map(|v| v * v).sum();
        let sy: f64 = ys.iter().sum();
        let sby: f64 = b.iter().zip(ys).map(|(v, y)| v * y).sum();
        let m = Matrix::from_rows(&[&[sbb, sb], &[sb, n]])?;
        let sol = m.solve(&[sby, sy])?;
        let (a, c) = (sol[0], sol[1]);
        let rss: f64 = b
            .iter()
            .zip(ys)
            .map(|(v, y)| (y - (a * v + c)).powi(2))
            .sum();
        Ok((rss, a, c))
    };

    // Golden-section search for the exponent minimizing RSS.
    const PHI: f64 = 0.618_033_988_749_894_8;
    let mut lo = k_lo;
    let mut hi = k_hi;
    let mut k1 = hi - PHI * (hi - lo);
    let mut k2 = lo + PHI * (hi - lo);
    let mut f1 = rss_for(k1)?.0;
    let mut f2 = rss_for(k2)?.0;
    for _ in 0..120 {
        if (hi - lo).abs() < 1e-10 {
            break;
        }
        if f1 < f2 {
            hi = k2;
            k2 = k1;
            f2 = f1;
            k1 = hi - PHI * (hi - lo);
            f1 = rss_for(k1)?.0;
        } else {
            lo = k1;
            k1 = k2;
            f1 = f2;
            k2 = lo + PHI * (hi - lo);
            f2 = rss_for(k2)?.0;
        }
    }
    let k = 0.5 * (lo + hi);
    let (rss, amplitude, offset) = rss_for(k)?;
    Ok(PowerLawFit {
        exponent: k,
        amplitude,
        offset,
        rss,
    })
}

/// Fits `y = a·x^k` on strictly positive data via log–log linear regression.
///
/// Used for scaling-law extraction (e.g. solver time-to-solution vs problem
/// size in the §IV experiments). Returns `(k, a, r²)`.
///
/// # Errors
///
/// * Propagates [`fit_line`] errors.
/// * [`NumericsError::InvalidArgument`] when any point is non-positive.
pub fn fit_scaling_law(xs: &[f64], ys: &[f64]) -> Result<(f64, f64, f64), NumericsError> {
    if xs.iter().chain(ys).any(|&v| !(v > 0.0)) {
        return Err(NumericsError::InvalidArgument {
            what: "scaling-law fit requires strictly positive data",
        });
    }
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    let line = fit_line(&lx, &ly)?;
    Ok((line.slope, line.intercept.exp(), line.r_squared))
}

/// Fits `y = a·e^{b·x}` on strictly positive `y` via semi-log regression.
///
/// Returns `(b, a, r²)`. Used to test for exponential vs polynomial growth
/// in solver scaling comparisons.
///
/// # Errors
///
/// * Propagates [`fit_line`] errors.
/// * [`NumericsError::InvalidArgument`] when any `y` is non-positive.
pub fn fit_exponential_law(xs: &[f64], ys: &[f64]) -> Result<(f64, f64, f64), NumericsError> {
    if ys.iter().any(|&v| !(v > 0.0)) {
        return Err(NumericsError::InvalidArgument {
            what: "exponential fit requires strictly positive y",
        });
    }
    let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    let line = fit_line(xs, &ly)?;
    Ok((line.slope, line.intercept.exp(), line.r_squared))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn line_fit_exact() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 3.0, 5.0, 7.0];
        let fit = fit_line(&xs, &ys).unwrap();
        assert!(approx_eq(fit.slope, 2.0, 1e-12));
        assert!(approx_eq(fit.intercept, 1.0, 1e-12));
        assert!(approx_eq(fit.r_squared, 1.0, 1e-12));
    }

    #[test]
    fn line_fit_r_squared_degrades_with_noise() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 2.0 * x + if *x as usize % 2 == 0 { 20.0 } else { -20.0 })
            .collect();
        let fit = fit_line(&xs, &ys).unwrap();
        assert!(fit.r_squared < 0.99);
        assert!(approx_eq(fit.slope, 2.0, 0.1));
    }

    #[test]
    fn line_fit_rejects_degenerate() {
        assert!(fit_line(&[1.0], &[1.0]).is_err());
        assert!(fit_line(&[2.0, 2.0], &[1.0, 3.0]).is_err());
    }

    #[test]
    fn power_law_recovers_quadratic() {
        let xs: Vec<f64> = (-20..=20)
            .filter(|&i| i != 0)
            .map(|i| i as f64 * 0.05)
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x * x + 0.1).collect();
        let fit = fit_power_law_offset(&xs, &ys, 0.5, 5.0).unwrap();
        assert!((fit.exponent - 2.0).abs() < 1e-4, "k={}", fit.exponent);
        assert!(approx_eq(fit.amplitude, 3.0, 1e-3));
        assert!(approx_eq(fit.offset, 0.1, 1e-3));
    }

    #[test]
    fn power_law_recovers_fractional_exponent() {
        let xs: Vec<f64> = (1..=50).map(|i| i as f64 * 0.02).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.5 * x.powf(0.8) - 0.3).collect();
        let fit = fit_power_law_offset(&xs, &ys, 0.2, 4.0).unwrap();
        assert!((fit.exponent - 0.8).abs() < 1e-3, "k={}", fit.exponent);
    }

    #[test]
    fn power_law_recovers_steep_exponent() {
        // The paper's strong-coupling regime: k ≈ 3.4.
        let xs: Vec<f64> = (1..=60).map(|i| i as f64 * 0.01).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 0.9 * x.powf(3.4) + 0.02).collect();
        let fit = fit_power_law_offset(&xs, &ys, 1.0, 6.0).unwrap();
        assert!((fit.exponent - 3.4).abs() < 1e-2, "k={}", fit.exponent);
    }

    #[test]
    fn power_law_bad_bracket_rejected() {
        let xs = [0.1, 0.2, 0.3];
        let ys = [1.0, 2.0, 3.0];
        assert!(fit_power_law_offset(&xs, &ys, 2.0, 1.0).is_err());
        assert!(fit_power_law_offset(&xs, &ys, -1.0, 1.0).is_err());
    }

    #[test]
    fn scaling_law_recovers_cubic() {
        let xs: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 0.5 * x.powi(3)).collect();
        let (k, a, r2) = fit_scaling_law(&xs, &ys).unwrap();
        assert!(approx_eq(k, 3.0, 1e-9));
        assert!(approx_eq(a, 0.5, 1e-9));
        assert!(approx_eq(r2, 1.0, 1e-9));
    }

    #[test]
    fn exponential_law_recovers_rate() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * (0.3 * x).exp()).collect();
        let (b, a, r2) = fit_exponential_law(&xs, &ys).unwrap();
        assert!(approx_eq(b, 0.3, 1e-9));
        assert!(approx_eq(a, 2.0, 1e-9));
        assert!(approx_eq(r2, 1.0, 1e-9));
    }

    #[test]
    fn scaling_law_rejects_nonpositive() {
        assert!(fit_scaling_law(&[1.0, 2.0], &[0.0, 1.0]).is_err());
        assert!(fit_scaling_law(&[-1.0, 2.0], &[1.0, 1.0]).is_err());
    }
}
