//! Interpolation over tabulated data.
//!
//! Device models (the VO₂ I–V curve, CMOS energy tables) are specified as
//! sample points; [`Interpolator`] evaluates them continuously. Linear
//! interpolation is the default; monotone cubic (Fritsch–Carlson PCHIP) is
//! available where smooth derivatives matter, e.g. feeding device curves
//! into an ODE right-hand side without introducing artificial kinks.
//!
//! # Example
//!
//! ```
//! use numerics::interp::Interpolator;
//!
//! let interp = Interpolator::linear(&[0.0, 1.0, 2.0], &[0.0, 10.0, 0.0])?;
//! assert_eq!(interp.eval(0.5), 5.0);
//! assert_eq!(interp.eval(1.5), 5.0);
//! // Out-of-range clamps to the boundary values.
//! assert_eq!(interp.eval(-1.0), 0.0);
//! # Ok::<(), numerics::NumericsError>(())
//! ```

use crate::NumericsError;

#[derive(Debug, Clone, PartialEq)]
enum Kind {
    Linear,
    /// Monotone cubic with precomputed endpoint slopes per knot.
    Pchip {
        slopes: Vec<f64>,
    },
}

/// A 1-D interpolator over strictly increasing knots, clamped outside the
/// knot range.
#[derive(Debug, Clone, PartialEq)]
pub struct Interpolator {
    xs: Vec<f64>,
    ys: Vec<f64>,
    kind: Kind,
}

impl Interpolator {
    /// Builds a piecewise-linear interpolator.
    ///
    /// # Errors
    ///
    /// * [`NumericsError::DimensionMismatch`] when `xs` and `ys` differ in
    ///   length.
    /// * [`NumericsError::InsufficientData`] with fewer than 2 knots.
    /// * [`NumericsError::InvalidArgument`] when `xs` is not strictly
    ///   increasing.
    pub fn linear(xs: &[f64], ys: &[f64]) -> Result<Self, NumericsError> {
        Self::validate(xs, ys)?;
        Ok(Interpolator {
            xs: xs.to_vec(),
            ys: ys.to_vec(),
            kind: Kind::Linear,
        })
    }

    /// Builds a monotone cubic (PCHIP / Fritsch–Carlson) interpolator: the
    /// result is C¹ and never overshoots the data.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Interpolator::linear`].
    pub fn pchip(xs: &[f64], ys: &[f64]) -> Result<Self, NumericsError> {
        Self::validate(xs, ys)?;
        let n = xs.len();
        // Secant slopes.
        let d: Vec<f64> = (0..n - 1)
            .map(|i| (ys[i + 1] - ys[i]) / (xs[i + 1] - xs[i]))
            .collect();
        let mut m = vec![0.0; n];
        m[0] = d[0];
        m[n - 1] = d[n - 2];
        for i in 1..n - 1 {
            if d[i - 1] * d[i] <= 0.0 {
                m[i] = 0.0;
            } else {
                // Weighted harmonic mean preserves monotonicity.
                let w1 = 2.0 * (xs[i + 1] - xs[i]) + (xs[i] - xs[i - 1]);
                let w2 = (xs[i + 1] - xs[i]) + 2.0 * (xs[i] - xs[i - 1]);
                m[i] = (w1 + w2) / (w1 / d[i - 1] + w2 / d[i]);
            }
        }
        Ok(Interpolator {
            xs: xs.to_vec(),
            ys: ys.to_vec(),
            kind: Kind::Pchip { slopes: m },
        })
    }

    fn validate(xs: &[f64], ys: &[f64]) -> Result<(), NumericsError> {
        if xs.len() != ys.len() {
            return Err(NumericsError::DimensionMismatch {
                expected: xs.len(),
                actual: ys.len(),
            });
        }
        if xs.len() < 2 {
            return Err(NumericsError::InsufficientData {
                required: 2,
                provided: xs.len(),
            });
        }
        if xs.windows(2).any(|w| w[1] <= w[0]) {
            return Err(NumericsError::InvalidArgument {
                what: "interpolation knots must be strictly increasing",
            });
        }
        Ok(())
    }

    /// The knot range `(x_min, x_max)`.
    #[must_use]
    pub fn domain(&self) -> (f64, f64) {
        (self.xs[0], *self.xs.last().expect("validated nonempty"))
    }

    /// Evaluates the interpolant at `x`, clamping outside the knot range.
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1];
        }
        // Binary search for the containing interval.
        let i = match self
            .xs
            .binary_search_by(|probe| probe.partial_cmp(&x).expect("finite knots"))
        {
            Ok(exact) => return self.ys[exact],
            Err(ins) => ins - 1,
        };
        let h = self.xs[i + 1] - self.xs[i];
        let t = (x - self.xs[i]) / h;
        match &self.kind {
            Kind::Linear => self.ys[i] * (1.0 - t) + self.ys[i + 1] * t,
            Kind::Pchip { slopes } => {
                // Cubic Hermite basis.
                let t2 = t * t;
                let t3 = t2 * t;
                let h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
                let h10 = t3 - 2.0 * t2 + t;
                let h01 = -2.0 * t3 + 3.0 * t2;
                let h11 = t3 - t2;
                h00 * self.ys[i]
                    + h10 * h * slopes[i]
                    + h01 * self.ys[i + 1]
                    + h11 * h * slopes[i + 1]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn linear_hits_knots() {
        let interp = Interpolator::linear(&[0.0, 1.0, 3.0], &[2.0, 4.0, -2.0]).unwrap();
        assert_eq!(interp.eval(0.0), 2.0);
        assert_eq!(interp.eval(1.0), 4.0);
        assert_eq!(interp.eval(3.0), -2.0);
    }

    #[test]
    fn linear_midpoints() {
        let interp = Interpolator::linear(&[0.0, 2.0], &[0.0, 10.0]).unwrap();
        assert_eq!(interp.eval(1.0), 5.0);
        assert_eq!(interp.eval(0.5), 2.5);
    }

    #[test]
    fn clamping_outside_domain() {
        let interp = Interpolator::linear(&[0.0, 1.0], &[3.0, 7.0]).unwrap();
        assert_eq!(interp.eval(-5.0), 3.0);
        assert_eq!(interp.eval(99.0), 7.0);
    }

    #[test]
    fn pchip_hits_knots() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [0.0, 1.0, 4.0, 9.0];
        let interp = Interpolator::pchip(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            assert!(approx_eq(interp.eval(*x), *y, 1e-12));
        }
    }

    #[test]
    fn pchip_monotone_data_stays_monotone() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys = [0.0, 0.1, 0.5, 0.9, 1.0];
        let interp = Interpolator::pchip(&xs, &ys).unwrap();
        let mut prev = interp.eval(0.0);
        for i in 1..=400 {
            let x = i as f64 * 0.01;
            let y = interp.eval(x);
            assert!(y >= prev - 1e-12, "non-monotone at x={x}");
            prev = y;
        }
    }

    #[test]
    fn pchip_does_not_overshoot_plateau() {
        // Flat-then-step data: classic cubic splines overshoot here.
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [0.0, 0.0, 1.0, 1.0];
        let interp = Interpolator::pchip(&xs, &ys).unwrap();
        for i in 0..=300 {
            let y = interp.eval(i as f64 * 0.01);
            assert!((-1e-12..=1.0 + 1e-12).contains(&y), "overshoot: {y}");
        }
    }

    #[test]
    fn rejects_unsorted_knots() {
        assert!(Interpolator::linear(&[0.0, 0.0], &[1.0, 2.0]).is_err());
        assert!(Interpolator::linear(&[1.0, 0.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn rejects_mismatched_lengths() {
        assert!(Interpolator::linear(&[0.0, 1.0], &[1.0]).is_err());
    }

    #[test]
    fn rejects_single_knot() {
        assert!(Interpolator::linear(&[0.0], &[1.0]).is_err());
    }

    #[test]
    fn domain_reported() {
        let interp = Interpolator::linear(&[-2.0, 5.0], &[0.0, 1.0]).unwrap();
        assert_eq!(interp.domain(), (-2.0, 5.0));
    }
}
