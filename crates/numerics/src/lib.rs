//! Shared numerical substrate for the *Rebooting Our Computing Models*
//! reproduction.
//!
//! Every simulator in the workspace (the VO₂ coupled-oscillator engine, the
//! digital-memcomputing ODE solver, and the quantum state-vector simulator)
//! is built on the primitives in this crate:
//!
//! * [`complex`] — complex arithmetic used by the quantum simulator and FFT.
//! * [`linalg`] — small dense vectors/matrices and linear solvers.
//! * [`ode`] — explicit Runge–Kutta integrators (fixed-step RK4 and adaptive
//!   RKF45) plus a clamped forward-Euler stepper used by the memcomputing
//!   dynamics, all driven through the [`ode::OdeSystem`] trait.
//! * [`signal`] — threshold crossings, period/frequency estimation, duty
//!   cycles, and time-averaged boolean measures (the XOR readout of Fig. 4).
//! * [`fft`] — radix-2 FFT for oscillator spectra.
//! * [`stats`] — descriptive statistics, online accumulators, histograms.
//! * [`fit`] — linear least squares and power-law exponent fitting (used to
//!   extract the `l_k` norm exponent of Fig. 5).
//! * [`rng`] — deterministic, seedable PRNG helpers shared by experiments.
//! * [`interp`] — linear and monotone-cubic interpolation.
//!
//! # Example
//!
//! Integrate the harmonic oscillator with RK4 and check energy conservation:
//!
//! ```
//! use numerics::ode::{OdeSystem, Rk4, Stepper};
//!
//! struct Harmonic;
//! impl OdeSystem for Harmonic {
//!     fn dim(&self) -> usize { 2 }
//!     fn rhs(&self, _t: f64, y: &[f64], dy: &mut [f64]) {
//!         dy[0] = y[1];
//!         dy[1] = -y[0];
//!     }
//! }
//!
//! let mut rk4 = Rk4::new(1e-3);
//! let mut y = vec![1.0, 0.0];
//! let mut t = 0.0;
//! for _ in 0..1000 {
//!     t = rk4.step(&Harmonic, t, &mut y);
//! }
//! let energy = 0.5 * (y[0] * y[0] + y[1] * y[1]);
//! assert!((energy - 0.5).abs() < 1e-9);
//! ```

// Deliberate style choices for numerical simulation code: `!(x > 0.0)`
// rejects NaN alongside non-positive values, and indexed loops mirror the
// mathematics they implement (state-vector strides, lattice walks).
#![allow(
    clippy::neg_cmp_op_on_partial_ord,
    clippy::needless_range_loop,
    clippy::manual_is_multiple_of,
    clippy::field_reassign_with_default
)]
pub mod complex;
pub mod fft;
pub mod fit;
pub mod interp;
pub mod linalg;
pub mod ode;
pub mod rng;
pub mod signal;
pub mod stats;

pub use complex::Complex;
pub use linalg::{Matrix, Vector};

/// Crate-wide error type for numerical routines.
///
/// Every fallible public function in this crate returns
/// `Result<_, NumericsError>`.
#[derive(Debug, Clone, PartialEq)]
pub enum NumericsError {
    /// Input slices or matrices had incompatible or invalid dimensions.
    DimensionMismatch {
        /// What the routine expected.
        expected: usize,
        /// What it received.
        actual: usize,
    },
    /// A matrix was singular (or numerically singular) during a solve.
    SingularMatrix,
    /// The input data set was empty or too small for the requested operation.
    InsufficientData {
        /// Minimum number of points required.
        required: usize,
        /// Number of points provided.
        provided: usize,
    },
    /// An adaptive routine failed to converge within its iteration budget.
    NoConvergence {
        /// Human-readable description of the failing routine.
        context: &'static str,
    },
    /// An argument was outside the routine's domain.
    InvalidArgument {
        /// Description of the offending argument.
        what: &'static str,
    },
}

impl std::fmt::Display for NumericsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NumericsError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            NumericsError::SingularMatrix => write!(f, "matrix is singular"),
            NumericsError::InsufficientData { required, provided } => {
                write!(f, "insufficient data: need {required}, have {provided}")
            }
            NumericsError::NoConvergence { context } => {
                write!(f, "no convergence in {context}")
            }
            NumericsError::InvalidArgument { what } => {
                write!(f, "invalid argument: {what}")
            }
        }
    }
}

impl std::error::Error for NumericsError {}

/// Returns `true` when two floats agree to within `tol` absolutely *or*
/// relatively (whichever is looser), which is the comparison used throughout
/// the test suites of this workspace.
///
/// # Example
///
/// ```
/// assert!(numerics::approx_eq(1.0, 1.0 + 1e-12, 1e-9));
/// assert!(!numerics::approx_eq(1.0, 1.1, 1e-9));
/// ```
#[must_use]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    if diff <= tol {
        return true;
    }
    let scale = a.abs().max(b.abs());
    diff <= tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute() {
        assert!(approx_eq(0.0, 1e-10, 1e-9));
        assert!(!approx_eq(0.0, 1e-8, 1e-9));
    }

    #[test]
    fn approx_eq_relative() {
        assert!(approx_eq(1e12, 1e12 + 1.0, 1e-9));
        assert!(!approx_eq(1e12, 1.1e12, 1e-9));
    }

    #[test]
    fn error_display_is_nonempty() {
        let errors = [
            NumericsError::DimensionMismatch {
                expected: 3,
                actual: 2,
            },
            NumericsError::SingularMatrix,
            NumericsError::InsufficientData {
                required: 2,
                provided: 0,
            },
            NumericsError::NoConvergence { context: "rkf45" },
            NumericsError::InvalidArgument { what: "n" },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumericsError>();
    }
}
