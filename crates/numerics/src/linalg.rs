//! Small dense linear algebra.
//!
//! The workspace needs modest-size dense operations: least-squares normal
//! equations in [`crate::fit`], small Jacobians in device models, and 2×2 /
//! 4×4 systems in circuit analysis. [`Matrix`] is a row-major dense matrix
//! with partial-pivot LU solving; [`Vector`] is a thin newtype over
//! `Vec<f64>` with the handful of BLAS-1 operations we use.
//!
//! # Example
//!
//! ```
//! use numerics::linalg::Matrix;
//!
//! let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
//! let x = a.solve(&[3.0, 5.0])?;
//! assert!((x[0] - 0.8).abs() < 1e-12);
//! assert!((x[1] - 1.4).abs() < 1e-12);
//! # Ok::<(), numerics::NumericsError>(())
//! ```

use crate::NumericsError;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense vector of `f64` with basic BLAS-1 operations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Vector(Vec<f64>);

impl Vector {
    /// Creates a zero vector of length `n`.
    #[must_use]
    pub fn zeros(n: usize) -> Self {
        Vector(vec![0.0; n])
    }

    /// Creates a vector from a slice.
    #[must_use]
    pub fn from_slice(values: &[f64]) -> Self {
        Vector(values.to_vec())
    }

    /// Length of the vector.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` when the vector has no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Borrow the underlying slice.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Mutably borrow the underlying slice.
    #[must_use]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.0
    }

    /// Consumes the vector and returns the underlying `Vec<f64>`.
    #[must_use]
    pub fn into_inner(self) -> Vec<f64> {
        self.0
    }

    /// Dot product with another vector.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if lengths differ.
    pub fn dot(&self, other: &Vector) -> Result<f64, NumericsError> {
        if self.len() != other.len() {
            return Err(NumericsError::DimensionMismatch {
                expected: self.len(),
                actual: other.len(),
            });
        }
        Ok(self.0.iter().zip(other.0.iter()).map(|(a, b)| a * b).sum())
    }

    /// Euclidean (l₂) norm.
    #[must_use]
    pub fn norm(&self) -> f64 {
        self.0.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// General `l_k` norm `(Σ|xᵢ|^k)^{1/k}` for `k > 0`.
    ///
    /// This is the distance family the coupled-oscillator readout realizes in
    /// hardware (paper Fig. 5); fractional `k < 1` is allowed (then this is a
    /// quasi-norm, as in the paper's "fractional norm" regime).
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidArgument`] if `k <= 0` or non-finite.
    pub fn lk_norm(&self, k: f64) -> Result<f64, NumericsError> {
        if !(k > 0.0) || !k.is_finite() {
            return Err(NumericsError::InvalidArgument {
                what: "lk_norm exponent must be finite and > 0",
            });
        }
        Ok(self
            .0
            .iter()
            .map(|x| x.abs().powf(k))
            .sum::<f64>()
            .powf(1.0 / k))
    }

    /// In-place `self += alpha * other` (axpy).
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if lengths differ.
    pub fn axpy(&mut self, alpha: f64, other: &Vector) -> Result<(), NumericsError> {
        if self.len() != other.len() {
            return Err(NumericsError::DimensionMismatch {
                expected: self.len(),
                actual: other.len(),
            });
        }
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Scales every element by `k` in place.
    pub fn scale(&mut self, k: f64) {
        for x in &mut self.0 {
            *x *= k;
        }
    }
}

impl From<Vec<f64>> for Vector {
    fn from(v: Vec<f64>) -> Self {
        Vector(v)
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Vector(iter.into_iter().collect())
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.0[i]
    }
}

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] when rows have unequal
    /// lengths, or [`NumericsError::InsufficientData`] when `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, NumericsError> {
        let nrows = rows.len();
        if nrows == 0 {
            return Err(NumericsError::InsufficientData {
                required: 1,
                provided: 0,
            });
        }
        let ncols = rows[0].len();
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            if row.len() != ncols {
                return Err(NumericsError::DimensionMismatch {
                    expected: ncols,
                    actual: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix transpose.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, NumericsError> {
        if x.len() != self.cols {
            return Err(NumericsError::DimensionMismatch {
                expected: self.cols,
                actual: x.len(),
            });
        }
        let mut y = vec![0.0; self.rows];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            y[r] = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        Ok(y)
    }

    /// Matrix–matrix product `A·B`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if inner dimensions
    /// disagree.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, NumericsError> {
        if self.cols != other.rows {
            return Err(NumericsError::DimensionMismatch {
                expected: self.cols,
                actual: other.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    out[(r, c)] += a * other[(k, c)];
                }
            }
        }
        Ok(out)
    }

    /// Solves `A·x = b` by LU decomposition with partial pivoting.
    ///
    /// # Errors
    ///
    /// * [`NumericsError::DimensionMismatch`] if `A` is not square or `b` has
    ///   the wrong length.
    /// * [`NumericsError::SingularMatrix`] if a pivot collapses below
    ///   `1e-300`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericsError> {
        if self.rows != self.cols {
            return Err(NumericsError::DimensionMismatch {
                expected: self.rows,
                actual: self.cols,
            });
        }
        if b.len() != self.rows {
            return Err(NumericsError::DimensionMismatch {
                expected: self.rows,
                actual: b.len(),
            });
        }
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();

        for col in 0..n {
            // Partial pivot: find the row with the largest magnitude in this
            // column at or below the diagonal.
            let mut pivot_row = col;
            let mut pivot_val = a[col * n + col].abs();
            for r in (col + 1)..n {
                let v = a[r * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-300 {
                return Err(NumericsError::SingularMatrix);
            }
            if pivot_row != col {
                for c in 0..n {
                    a.swap(col * n + c, pivot_row * n + c);
                }
                x.swap(col, pivot_row);
            }
            let pivot = a[col * n + col];
            for r in (col + 1)..n {
                let factor = a[r * n + col] / pivot;
                if factor == 0.0 {
                    continue;
                }
                for c in col..n {
                    a[r * n + c] -= factor * a[col * n + c];
                }
                x[r] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut sum = x[col];
            for c in (col + 1)..n {
                sum -= a[col * n + c] * x[c];
            }
            x[col] = sum / a[col * n + col];
        }
        Ok(x)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:10.4}", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn vector_dot_and_norm() {
        let a = Vector::from_slice(&[3.0, 4.0]);
        let b = Vector::from_slice(&[1.0, 2.0]);
        assert_eq!(a.dot(&b).unwrap(), 11.0);
        assert_eq!(a.norm(), 5.0);
    }

    #[test]
    fn vector_dot_dimension_mismatch() {
        let a = Vector::from_slice(&[1.0]);
        let b = Vector::from_slice(&[1.0, 2.0]);
        assert!(matches!(
            a.dot(&b),
            Err(NumericsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn lk_norm_special_cases() {
        let v = Vector::from_slice(&[3.0, -4.0]);
        // k = 2 is the euclidean norm.
        assert!(approx_eq(v.lk_norm(2.0).unwrap(), 5.0, 1e-12));
        // k = 1 is the taxicab norm.
        assert!(approx_eq(v.lk_norm(1.0).unwrap(), 7.0, 1e-12));
        // large k approaches the max norm.
        assert!((v.lk_norm(60.0).unwrap() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn lk_norm_rejects_bad_exponent() {
        let v = Vector::from_slice(&[1.0]);
        assert!(v.lk_norm(0.0).is_err());
        assert!(v.lk_norm(-1.0).is_err());
        assert!(v.lk_norm(f64::NAN).is_err());
    }

    #[test]
    fn fractional_norm_is_smaller_than_l1_for_spread_vectors() {
        // For vectors with several comparable components, the fractional
        // quasi-norm exceeds l1 — that inversion is what makes fractional
        // norms interesting in the paper's Fig. 5 tails.
        let v = Vector::from_slice(&[1.0, 1.0, 1.0, 1.0]);
        let half = v.lk_norm(0.5).unwrap();
        let one = v.lk_norm(1.0).unwrap();
        assert!(half > one);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Vector::from_slice(&[1.0, 2.0]);
        let b = Vector::from_slice(&[10.0, 20.0]);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.as_slice(), &[6.0, 12.0]);
    }

    #[test]
    fn matrix_identity_solve() {
        let a = Matrix::identity(3);
        let x = a.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matrix_solve_2x2() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let x = a.solve(&[3.0, 5.0]).unwrap();
        assert!(approx_eq(x[0], 0.8, 1e-12));
        assert!(approx_eq(x[1], 1.4, 1e-12));
    }

    #[test]
    fn matrix_solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = a.solve(&[7.0, 9.0]).unwrap();
        assert!(approx_eq(x[0], 9.0, 1e-12));
        assert!(approx_eq(x[1], 7.0, 1e-12));
    }

    #[test]
    fn singular_matrix_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert_eq!(a.solve(&[1.0, 2.0]), Err(NumericsError::SingularMatrix));
    }

    #[test]
    fn matmul_against_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matvec_matches_manual() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let y = a.matvec(&[1.0, 0.0, -1.0]).unwrap();
        assert_eq!(y, vec![-2.0, -2.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn from_rows_ragged_rejected() {
        let r1: &[f64] = &[1.0, 2.0];
        let r2: &[f64] = &[3.0];
        assert!(Matrix::from_rows(&[r1, r2]).is_err());
    }

    #[test]
    fn solve_roundtrip_random() {
        use crate::rng::Rng;
        let mut rng = crate::rng::StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let n = rng.gen_range(1..6);
            let mut m = Matrix::zeros(n, n);
            for r in 0..n {
                for c in 0..n {
                    m[(r, c)] = rng.gen_range(-1.0..1.0);
                }
                // Diagonal dominance keeps the system well conditioned.
                m[(r, r)] += 4.0;
            }
            let x_true: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let b = m.matvec(&x_true).unwrap();
            let x = m.solve(&b).unwrap();
            for (xi, ti) in x.iter().zip(&x_true) {
                assert!(approx_eq(*xi, *ti, 1e-9), "{xi} vs {ti}");
            }
        }
    }
}
