//! Ordinary differential equation integrators.
//!
//! Three steppers, selected by the character of the dynamics being simulated:
//!
//! * [`Rk4`] — classic fixed-step 4th-order Runge–Kutta; the workhorse for
//!   the VO₂ relaxation-oscillator circuits, whose time constants are known
//!   in advance.
//! * [`Rkf45`] — Runge–Kutta–Fehlberg 4(5) adaptive stepper with error
//!   control; used where stiffness varies during a run (locking sweeps).
//! * [`ClampedEuler`] — forward Euler with per-component box clamping; this
//!   is the integrator the digital-memcomputing literature uses, because DMM
//!   trajectories must respect hard bounds on memory variables (`x ∈ [0,1]`)
//!   and the dynamics are designed to be robust to integration error (the
//!   paper's §IV noise-robustness discussion).
//!
//! All steppers drive a user-supplied [`OdeSystem`], and [`integrate`] /
//! [`integrate_sampled`] provide whole-trajectory convenience drivers.
//!
//! # Example
//!
//! ```
//! use numerics::ode::{integrate, OdeSystem, Rk4};
//!
//! /// dy/dt = -y  → y(t) = e^{-t}
//! struct Decay;
//! impl OdeSystem for Decay {
//!     fn dim(&self) -> usize { 1 }
//!     fn rhs(&self, _t: f64, y: &[f64], dy: &mut [f64]) { dy[0] = -y[0]; }
//! }
//!
//! let mut y = vec![1.0];
//! integrate(&Decay, &mut Rk4::new(1e-3), 0.0, 1.0, &mut y);
//! assert!((y[0] - (-1.0f64).exp()).abs() < 1e-9);
//! ```

/// A first-order ODE system `dy/dt = f(t, y)`.
///
/// Implementors describe only the right-hand side; integration state lives in
/// the steppers. The `rhs` signature writes into a caller-provided buffer so
/// that inner loops are allocation-free.
pub trait OdeSystem {
    /// Number of state variables.
    fn dim(&self) -> usize;

    /// Evaluates the derivative `dy = f(t, y)`.
    ///
    /// `dy` is guaranteed to have length [`OdeSystem::dim`]; its previous
    /// contents are unspecified and must be fully overwritten.
    fn rhs(&self, t: f64, y: &[f64], dy: &mut [f64]);

    /// Optional post-step projection applied after every accepted step —
    /// e.g. clamping memory variables into `[0, 1]` for memcomputing
    /// dynamics. The default is a no-op.
    fn project(&self, _y: &mut [f64]) {}
}

/// A single-step integration scheme.
///
/// `step` advances `y` in place from time `t` and returns the new time. The
/// step size actually taken may differ from the nominal one for adaptive
/// steppers.
pub trait Stepper {
    /// Advances `y` by one step of the scheme, returning the new time.
    fn step<S: OdeSystem>(&mut self, system: &S, t: f64, y: &mut [f64]) -> f64;

    /// The step size the *next* call to `step` intends to take.
    fn step_size(&self) -> f64;
}

/// Classic fixed-step 4th-order Runge–Kutta.
#[derive(Debug, Clone)]
pub struct Rk4 {
    h: f64,
    k1: Vec<f64>,
    k2: Vec<f64>,
    k3: Vec<f64>,
    k4: Vec<f64>,
    tmp: Vec<f64>,
}

impl Rk4 {
    /// Creates an RK4 stepper with step size `h`.
    ///
    /// # Panics
    ///
    /// Panics if `h` is not finite and positive.
    #[must_use]
    pub fn new(h: f64) -> Self {
        assert!(h.is_finite() && h > 0.0, "step size must be positive");
        Rk4 {
            h,
            k1: Vec::new(),
            k2: Vec::new(),
            k3: Vec::new(),
            k4: Vec::new(),
            tmp: Vec::new(),
        }
    }

    fn ensure_dim(&mut self, n: usize) {
        if self.k1.len() != n {
            self.k1.resize(n, 0.0);
            self.k2.resize(n, 0.0);
            self.k3.resize(n, 0.0);
            self.k4.resize(n, 0.0);
            self.tmp.resize(n, 0.0);
        }
    }
}

impl Stepper for Rk4 {
    fn step<S: OdeSystem>(&mut self, system: &S, t: f64, y: &mut [f64]) -> f64 {
        let n = system.dim();
        debug_assert_eq!(y.len(), n);
        self.ensure_dim(n);
        let h = self.h;

        system.rhs(t, y, &mut self.k1);
        for i in 0..n {
            self.tmp[i] = y[i] + 0.5 * h * self.k1[i];
        }
        system.rhs(t + 0.5 * h, &self.tmp, &mut self.k2);
        for i in 0..n {
            self.tmp[i] = y[i] + 0.5 * h * self.k2[i];
        }
        system.rhs(t + 0.5 * h, &self.tmp, &mut self.k3);
        for i in 0..n {
            self.tmp[i] = y[i] + h * self.k3[i];
        }
        system.rhs(t + h, &self.tmp, &mut self.k4);
        for i in 0..n {
            y[i] += h / 6.0 * (self.k1[i] + 2.0 * self.k2[i] + 2.0 * self.k3[i] + self.k4[i]);
        }
        system.project(y);
        t + h
    }

    fn step_size(&self) -> f64 {
        self.h
    }
}

/// Runge–Kutta–Fehlberg 4(5) adaptive stepper.
///
/// Embedded 4th/5th-order pair with standard PI-free step-size control: the
/// step is retried with a smaller `h` until the scaled error estimate is
/// below 1, then `h` grows for the next step.
#[derive(Debug, Clone)]
pub struct Rkf45 {
    h: f64,
    h_min: f64,
    h_max: f64,
    /// Absolute error tolerance per step per component.
    pub tol: f64,
    work: Vec<Vec<f64>>,
    tmp: Vec<f64>,
    y5: Vec<f64>,
}

impl Rkf45 {
    /// Creates an adaptive stepper with initial step `h0`, bounds
    /// `[h_min, h_max]` and per-step absolute tolerance `tol`.
    ///
    /// # Panics
    ///
    /// Panics if `h0`, `h_min`, `h_max` are not positive or disordered, or if
    /// `tol` is not positive.
    #[must_use]
    pub fn new(h0: f64, h_min: f64, h_max: f64, tol: f64) -> Self {
        assert!(h_min > 0.0 && h_max >= h_min, "invalid step bounds");
        assert!(h0 >= h_min && h0 <= h_max, "h0 outside [h_min, h_max]");
        assert!(tol > 0.0, "tolerance must be positive");
        Rkf45 {
            h: h0,
            h_min,
            h_max,
            tol,
            work: vec![Vec::new(); 6],
            tmp: Vec::new(),
            y5: Vec::new(),
        }
    }

    fn ensure_dim(&mut self, n: usize) {
        if self.tmp.len() != n {
            for k in &mut self.work {
                k.resize(n, 0.0);
            }
            self.tmp.resize(n, 0.0);
            self.y5.resize(n, 0.0);
        }
    }
}

// Fehlberg coefficients.
const A: [f64; 5] = [1.0 / 4.0, 3.0 / 8.0, 12.0 / 13.0, 1.0, 1.0 / 2.0];
const B: [[f64; 5]; 5] = [
    [1.0 / 4.0, 0.0, 0.0, 0.0, 0.0],
    [3.0 / 32.0, 9.0 / 32.0, 0.0, 0.0, 0.0],
    [1932.0 / 2197.0, -7200.0 / 2197.0, 7296.0 / 2197.0, 0.0, 0.0],
    [439.0 / 216.0, -8.0, 3680.0 / 513.0, -845.0 / 4104.0, 0.0],
    [
        -8.0 / 27.0,
        2.0,
        -3544.0 / 2565.0,
        1859.0 / 4104.0,
        -11.0 / 40.0,
    ],
];
const C4: [f64; 6] = [
    25.0 / 216.0,
    0.0,
    1408.0 / 2565.0,
    2197.0 / 4104.0,
    -1.0 / 5.0,
    0.0,
];
const C5: [f64; 6] = [
    16.0 / 135.0,
    0.0,
    6656.0 / 12825.0,
    28561.0 / 56430.0,
    -9.0 / 50.0,
    2.0 / 55.0,
];

impl Stepper for Rkf45 {
    fn step<S: OdeSystem>(&mut self, system: &S, t: f64, y: &mut [f64]) -> f64 {
        let n = system.dim();
        self.ensure_dim(n);

        loop {
            let h = self.h;
            system.rhs(t, y, &mut self.work[0]);
            for stage in 0..5 {
                for i in 0..n {
                    let mut acc = 0.0;
                    for (j, b) in B[stage].iter().enumerate().take(stage + 1) {
                        acc += b * self.work[j][i];
                    }
                    self.tmp[i] = y[i] + h * acc;
                }
                let (head, tail) = self.work.split_at_mut(stage + 1);
                let _ = head;
                system.rhs(t + A[stage] * h, &self.tmp, &mut tail[0]);
            }

            // 4th- and 5th-order solutions and the error estimate.
            let mut err: f64 = 0.0;
            for i in 0..n {
                let mut y4 = y[i];
                let mut y5 = y[i];
                for k in 0..6 {
                    y4 += h * C4[k] * self.work[k][i];
                    y5 += h * C5[k] * self.work[k][i];
                }
                self.tmp[i] = y4;
                self.y5[i] = y5;
                err = err.max((y5 - y4).abs());
            }

            if err <= self.tol || self.h <= self.h_min {
                // Accept (propagate the higher-order solution).
                y.copy_from_slice(&self.y5);
                system.project(y);
                let t_new = t + h;
                // Grow the step for the next call.
                let scale = if err > 0.0 {
                    0.9 * (self.tol / err).powf(0.2)
                } else {
                    2.0
                };
                self.h = (self.h * scale.clamp(0.2, 2.0)).clamp(self.h_min, self.h_max);
                return t_new;
            }
            // Reject: shrink and retry.
            let scale = 0.9 * (self.tol / err).powf(0.25);
            self.h = (self.h * scale.clamp(0.1, 0.9)).max(self.h_min);
        }
    }

    fn step_size(&self) -> f64 {
        self.h
    }
}

/// Forward Euler with post-step projection.
///
/// Deliberately simple: digital-memcomputing dynamics are engineered so that
/// their attractors survive coarse integration (the paper's robustness
/// argument), and forward Euler with clamping is what the DMM literature
/// itself uses.
#[derive(Debug, Clone)]
pub struct ClampedEuler {
    h: f64,
    dy: Vec<f64>,
}

impl ClampedEuler {
    /// Creates a forward-Euler stepper with step size `h`.
    ///
    /// # Panics
    ///
    /// Panics if `h` is not finite and positive.
    #[must_use]
    pub fn new(h: f64) -> Self {
        assert!(h.is_finite() && h > 0.0, "step size must be positive");
        ClampedEuler { h, dy: Vec::new() }
    }
}

impl Stepper for ClampedEuler {
    fn step<S: OdeSystem>(&mut self, system: &S, t: f64, y: &mut [f64]) -> f64 {
        let n = system.dim();
        if self.dy.len() != n {
            self.dy.resize(n, 0.0);
        }
        system.rhs(t, y, &mut self.dy);
        for i in 0..n {
            y[i] += self.h * self.dy[i];
        }
        system.project(y);
        t + self.h
    }

    fn step_size(&self) -> f64 {
        self.h
    }
}

/// Integrates `system` from `t0` to at least `t1`, mutating `y` in place.
///
/// Returns the actual final time (≥ `t1`; the last step may overshoot by at
/// most one step size).
pub fn integrate<S: OdeSystem, P: Stepper>(
    system: &S,
    stepper: &mut P,
    t0: f64,
    t1: f64,
    y: &mut [f64],
) -> f64 {
    let mut t = t0;
    while t < t1 {
        t = stepper.step(system, t, y);
    }
    t
}

/// Integrates and records the trajectory every `sample_every` accepted steps.
///
/// Returns `(times, states)` where `states[k]` is the state at `times[k]`.
/// The initial condition is always included as the first sample.
pub fn integrate_sampled<S: OdeSystem, P: Stepper>(
    system: &S,
    stepper: &mut P,
    t0: f64,
    t1: f64,
    y: &mut [f64],
    sample_every: usize,
) -> (Vec<f64>, Vec<Vec<f64>>) {
    let every = sample_every.max(1);
    let mut times = vec![t0];
    let mut states = vec![y.to_vec()];
    let mut t = t0;
    let mut count = 0usize;
    while t < t1 {
        t = stepper.step(system, t, y);
        count += 1;
        if count % every == 0 {
            times.push(t);
            states.push(y.to_vec());
        }
    }
    if *times.last().expect("nonempty") < t {
        times.push(t);
        states.push(y.to_vec());
    }
    (times, states)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    struct Decay {
        lambda: f64,
    }
    impl OdeSystem for Decay {
        fn dim(&self) -> usize {
            1
        }
        fn rhs(&self, _t: f64, y: &[f64], dy: &mut [f64]) {
            dy[0] = -self.lambda * y[0];
        }
    }

    struct Harmonic;
    impl OdeSystem for Harmonic {
        fn dim(&self) -> usize {
            2
        }
        fn rhs(&self, _t: f64, y: &[f64], dy: &mut [f64]) {
            dy[0] = y[1];
            dy[1] = -y[0];
        }
    }

    /// dy/dt = 1 but project clamps y into [0, 0.5].
    struct Clamped;
    impl OdeSystem for Clamped {
        fn dim(&self) -> usize {
            1
        }
        fn rhs(&self, _t: f64, _y: &[f64], dy: &mut [f64]) {
            dy[0] = 1.0;
        }
        fn project(&self, y: &mut [f64]) {
            y[0] = y[0].clamp(0.0, 0.5);
        }
    }

    #[test]
    fn rk4_exponential_decay() {
        let sys = Decay { lambda: 2.0 };
        let mut y = vec![1.0];
        integrate(&sys, &mut Rk4::new(1e-3), 0.0, 1.0, &mut y);
        assert!(approx_eq(y[0], (-2.0f64).exp(), 1e-8));
    }

    #[test]
    fn rk4_energy_conservation() {
        let mut y = vec![1.0, 0.0];
        integrate(&Harmonic, &mut Rk4::new(1e-3), 0.0, 20.0, &mut y);
        let e = 0.5 * (y[0] * y[0] + y[1] * y[1]);
        assert!(approx_eq(e, 0.5, 1e-7));
    }

    #[test]
    fn rkf45_matches_rk4_with_fewer_steps() {
        let sys = Decay { lambda: 1.0 };
        let mut y = vec![1.0];
        let mut stepper = Rkf45::new(1e-4, 1e-8, 0.5, 1e-10);
        let mut t = 0.0;
        let mut steps = 0;
        while t < 5.0 {
            t = stepper.step(&sys, t, &mut y);
            steps += 1;
        }
        // Compare against the exact solution at the (possibly overshot) time.
        assert!(approx_eq(y[0], (-t).exp(), 1e-7));
        assert!(steps < 5000, "adaptive stepper took {steps} steps");
    }

    #[test]
    fn rkf45_grows_step() {
        let sys = Decay { lambda: 0.01 };
        let mut stepper = Rkf45::new(1e-4, 1e-8, 1.0, 1e-8);
        let mut y = vec![1.0];
        let mut t = 0.0;
        for _ in 0..20 {
            t = stepper.step(&sys, t, &mut y);
        }
        assert!(stepper.step_size() > 1e-4, "step did not grow");
        assert!(t > 0.0);
    }

    #[test]
    fn clamped_euler_respects_projection() {
        let mut y = vec![0.0];
        integrate(&Clamped, &mut ClampedEuler::new(0.1), 0.0, 10.0, &mut y);
        assert_eq!(y[0], 0.5);
    }

    #[test]
    fn rk4_projection_applied() {
        let mut y = vec![0.0];
        integrate(&Clamped, &mut Rk4::new(0.1), 0.0, 10.0, &mut y);
        assert_eq!(y[0], 0.5);
    }

    #[test]
    fn sampled_trajectory_includes_endpoints() {
        let sys = Decay { lambda: 1.0 };
        let mut y = vec![1.0];
        let (times, states) = integrate_sampled(&sys, &mut Rk4::new(0.01), 0.0, 1.0, &mut y, 10);
        assert_eq!(times.len(), states.len());
        assert_eq!(times[0], 0.0);
        assert!(*times.last().unwrap() >= 1.0);
        // Trajectory is monotone decreasing.
        for w in states.windows(2) {
            assert!(w[1][0] < w[0][0]);
        }
    }

    #[test]
    #[should_panic(expected = "step size must be positive")]
    fn rk4_rejects_zero_step() {
        let _ = Rk4::new(0.0);
    }

    #[test]
    #[should_panic(expected = "invalid step bounds")]
    fn rkf45_rejects_bad_bounds() {
        let _ = Rkf45::new(1e-3, 1e-2, 1e-3, 1e-6);
    }

    #[test]
    fn integrate_reaches_target_time() {
        let sys = Decay { lambda: 1.0 };
        let mut y = vec![1.0];
        let t_end = integrate(&sys, &mut Rk4::new(0.3), 0.0, 1.0, &mut y);
        assert!((1.0..1.3 + 1e-12).contains(&t_end));
    }
}
