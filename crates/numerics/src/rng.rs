//! Deterministic random-number helpers.
//!
//! Every experiment in the workspace is seeded so results reproduce
//! bit-for-bit. [`SeedStream`] derives independent child seeds from one
//! master seed (so, e.g., 100 SAT instances each get their own stream and
//! adding an experiment never perturbs existing ones), and the free
//! functions wrap the [`rand`] idioms used throughout.
//!
//! # Example
//!
//! ```
//! use numerics::rng::SeedStream;
//!
//! let mut stream = SeedStream::new(42);
//! let a = stream.next_seed();
//! let b = stream.next_seed();
//! assert_ne!(a, b);
//!
//! // Same master seed ⇒ same children.
//! let mut again = SeedStream::new(42);
//! assert_eq!(again.next_seed(), a);
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Derives a deterministic sequence of independent `u64` seeds from one
/// master seed using the SplitMix64 finalizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedStream {
    state: u64,
}

impl SeedStream {
    /// Creates a stream rooted at `master_seed`.
    #[must_use]
    pub fn new(master_seed: u64) -> Self {
        SeedStream { state: master_seed }
    }

    /// Returns the next child seed.
    pub fn next_seed(&mut self) -> u64 {
        // SplitMix64: well-distributed even for sequential states.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a ready-to-use PRNG seeded with the next child seed.
    pub fn next_rng(&mut self) -> StdRng {
        StdRng::seed_from_u64(self.next_seed())
    }
}

/// Creates a deterministic PRNG from a seed.
#[must_use]
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Samples a standard normal via the Box–Muller transform.
///
/// Kept here (rather than pulling in `rand_distr`) per the workspace's
/// dependency policy.
pub fn sample_normal<R: Rng>(rng: &mut R) -> f64 {
    // Avoid u1 == 0 which would send ln to -inf.
    let u1: f64 = loop {
        let v: f64 = rng.gen();
        if v > f64::MIN_POSITIVE {
            break v;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples `N(mu, sigma²)`.
pub fn sample_gaussian<R: Rng>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    mu + sigma * sample_normal(rng)
}

/// Fisher–Yates shuffles a slice in place.
pub fn shuffle<R: Rng, T>(rng: &mut R, items: &mut [T]) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

/// Draws `k` distinct indices from `0..n` (partial Fisher–Yates).
///
/// # Panics
///
/// Panics when `k > n`.
pub fn sample_indices<R: Rng>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} distinct indices from {n}");
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_stream_deterministic() {
        let mut a = SeedStream::new(7);
        let mut b = SeedStream::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_seed(), b.next_seed());
        }
    }

    #[test]
    fn seed_stream_distinct_masters_diverge() {
        let mut a = SeedStream::new(1);
        let mut b = SeedStream::new(2);
        assert_ne!(a.next_seed(), b.next_seed());
    }

    #[test]
    fn seed_stream_children_distinct() {
        let mut s = SeedStream::new(0);
        let children: Vec<u64> = (0..100).map(|_| s.next_seed()).collect();
        let mut unique = children.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), children.len());
    }

    #[test]
    fn normal_sample_moments() {
        let mut rng = rng_from_seed(123);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gaussian_shift_scale() {
        let mut rng = rng_from_seed(9);
        let n = 20_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| sample_gaussian(&mut rng, 5.0, 2.0))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = rng_from_seed(4);
        let mut v: Vec<usize> = (0..50).collect();
        shuffle(&mut rng, &mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = rng_from_seed(11);
        for _ in 0..20 {
            let idx = sample_indices(&mut rng, 10, 4);
            assert_eq!(idx.len(), 4);
            let mut sorted = idx.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4);
            assert!(idx.iter().all(|&i| i < 10));
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_indices_overdraw_panics() {
        let mut rng = rng_from_seed(1);
        let _ = sample_indices(&mut rng, 3, 4);
    }
}
